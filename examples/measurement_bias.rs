//! The motivating demonstration (§1): an *unchanged* program's
//! performance swings with link order and environment size, and a
//! semantics-free padding change shows up as a phantom
//! speedup/regression under conventional measurement — but not under
//! STABILIZER.
//!
//! Run with `cargo run --release --example measurement_bias`.

use stabilizer_repro::prelude::*;

use sz_harness::experiments::bias;
use sz_harness::ExperimentOptions;

fn main() {
    let mut opts = ExperimentOptions::paper();
    opts.runs = 20;

    println!("=== Incidental layout factors move performance ===\n");
    for name in ["gcc", "bzip2", "sjeng"] {
        let link = bias::link_order_sweep(&opts, name, 16);
        let env = bias::env_size_sweep(&opts, name, 12);
        println!(
            "{name:<8} 16 link orders: min {:.3}ms / max {:.3}ms -> swing {:+.1}%",
            link.summary.min * 1e3,
            link.summary.max * 1e3,
            link.swing * 100.0
        );
        println!("{:<8} 12 env sizes:   swing {:+.1}%", "", env.swing * 100.0);
    }
    println!(
        "\n(The paper reports up to 57% from link order alone, and cites\n\
         environment-size swings up to 300% from Mytkowicz et al.)"
    );

    println!("\n=== A no-op change, evaluated both ways ===\n");
    for name in ["gcc", "bzip2"] {
        let r = bias::no_op_change_comparison(&opts, name);
        println!(
            "{name:<8} conventional (one layout per binary): {:+.2}% 'performance change'",
            r.biased_delta * 100.0
        );
        println!(
            "{:<8} STABILIZER (30 sampled layouts each):  {:+.3}% with p = {:.3}",
            "",
            r.stabilized_delta * 100.0,
            r.p_value
        );
    }
    println!(
        "\nThe conventional numbers are layout luck; the stabilized deltas\n\
         are the change's true (near-zero) cost."
    );
}
