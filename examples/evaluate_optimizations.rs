//! The §6 evaluation in miniature: is `-O3` distinguishable from
//! `-O2` once layout is controlled for?
//!
//! Runs a subset of the suite at `-O1`/`-O2`/`-O3` under STABILIZER,
//! reports per-benchmark significance (Figure 7) and the suite-wide
//! within-subjects ANOVA (§6.1).
//!
//! Run with `cargo run --release --example evaluate_optimizations`.

use stabilizer_repro::prelude::*;

use sz_harness::experiments::{anova, fig7};
use sz_harness::ExperimentOptions;

fn main() {
    let mut opts = ExperimentOptions::paper();
    // A representative slice of the suite so the example finishes in
    // about a minute; drop the filter to run all 18.
    opts.benchmarks = Some(
        [
            "astar",
            "bzip2",
            "gcc",
            "hmmer",
            "libquantum",
            "mcf",
            "milc",
            "sphinx3",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    );

    let rows = fig7::run(&opts);
    println!("{}", fig7::render(&rows));
    let s = fig7::summarize(&rows);
    println!(
        "significant -O2 vs -O1: {}/{}   significant -O3 vs -O2: {}/{}\n",
        s.significant_o2, s.total, s.significant_o3, s.total
    );

    match anova::run(&rows) {
        Ok(result) => {
            println!("Suite-wide within-subjects ANOVA (§6.1):");
            print!("{}", anova::render(&result));
            println!(
                "\nThe paper's conclusion: -O2 matters (at 90%); the marginal\n\
                 effect of -O3 over -O2 is indistinguishable from random noise."
            );
        }
        Err(e) => println!("ANOVA unavailable: {e}"),
    }
}
