//! Table 1 / Figure 5 in miniature: does re-randomization make
//! execution times Gaussian?
//!
//! Run with `cargo run --release --example normality_study`.

use stabilizer_repro::prelude::*;

use sz_harness::experiments::{fig5, table1};
use sz_harness::ExperimentOptions;
use sz_stats::qq::qq_slope;

fn main() {
    let mut opts = ExperimentOptions::paper();
    opts.benchmarks = Some(
        ["astar", "gcc", "gromacs", "h264ref", "mcf", "wrf"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );

    let rows = table1::run(&opts);
    println!("{}", table1::render(&rows));
    let s = table1::summarize(&rows);
    println!(
        "non-normal one-time: {}/{}   non-normal re-randomized: {}/{}\n",
        s.non_normal_one_time, s.total, s.non_normal_rerandomized, s.total
    );

    println!("QQ slopes vs the Gaussian (1.0 = reference variance):");
    for panel in fig5::from_table1(&rows) {
        println!(
            "  {:<10} one-time {:.2}   re-randomized {:.2}",
            panel.benchmark,
            qq_slope(&panel.one_time),
            qq_slope(&panel.rerandomized)
        );
    }
    println!(
        "\nA steeper one-time slope means higher variance — §5.1's\n\
         'regression to the mean' effect of re-randomization."
    );
}
