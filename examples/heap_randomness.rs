//! §3.2 in miniature: how random are heap addresses, really?
//!
//! Compares the NIST SP 800-22 verdicts for `lrand48`, DieHard, and
//! the shuffling layer at several `N`, plus a direct look at the
//! address streams.
//!
//! Run with `cargo run --release --example heap_randomness`.

use stabilizer_repro::prelude::*;

use sz_harness::experiments::nist;
use sz_heap::{Allocator, Region, SegregatedAllocator, ShuffleLayer};
use sz_rng::Marsaglia;

fn main() {
    // First, the intuition: watch a malloc/free loop's addresses.
    println!("A malloc/free loop's addresses, base allocator vs shuffled:\n");
    let mut base = SegregatedAllocator::new(Region::new(0x1000_0000, 1 << 30));
    let mut shuffled = ShuffleLayer::new(
        SegregatedAllocator::new(Region::new(0x1000_0000, 1 << 30)),
        256,
        Marsaglia::seeded(7),
    );
    print!("  base:     ");
    for _ in 0..6 {
        let p = base.malloc(64).unwrap();
        print!("{p:#x} ");
        base.free(p);
    }
    print!("\n  shuffled: ");
    for _ in 0..6 {
        let p = shuffled.malloc(64).unwrap();
        print!("{p:#x} ");
        shuffled.free(p);
    }
    println!("\n\nThe base allocator's LIFO reuse returns one address forever;");
    println!("the shuffling layer samples the space (§3.2, Figure 1).\n");

    // Then the formal version: the NIST suite over index bits.
    let rows = nist::run(32_768, &[2, 16, 256]);
    println!("{}", nist::render(&rows));
    for row in &rows {
        println!("{}: {}/7 tests passed", row.source, row.passes());
    }
    println!("\n(The paper: lrand48 and DieHard pass six tests; the shuffled");
    println!(" heap matches them once N = 256.)");
}
