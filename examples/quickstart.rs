//! Quickstart: measure one benchmark under STABILIZER and test whether
//! an optimization helps.
//!
//! Run with `cargo run --release --example quickstart`.

use stabilizer_repro::prelude::*;

use stabilizer::Config;
use sz_harness::{runner, ExperimentOptions};
use sz_opt::{optimize, OptLevel};
use sz_stats::{mean, shapiro_wilk, welch_t_test, Summary};
use sz_workloads::Scale;

fn main() {
    // 1. Pick a benchmark and build it.
    let program = sz_workloads::build("mcf", Scale::Small).expect("mcf is in the suite");
    println!(
        "benchmark: {} ({} functions, {} instructions, {} bytes of code)",
        program.name,
        program.functions.len(),
        program.instr_count(),
        program.code_size()
    );

    // 2. Collect 30 stabilized runs — each a fresh sample of the
    //    space of memory layouts.
    let opts = ExperimentOptions::paper();
    let times = runner::stabilized_samples(&program, &opts, Config::default(), 30);
    let summary = Summary::from_slice(&times).expect("30 samples");
    println!(
        "\n30 stabilized runs: mean {:.3}ms, sd {:.3}ms (cv {:.2}%)",
        summary.mean * 1e3,
        summary.std * 1e3,
        summary.cv() * 100.0
    );

    // 3. Re-randomization makes the distribution Gaussian, so
    //    parametric statistics apply (the paper's central claim).
    let sw = shapiro_wilk(&times).expect("well-formed sample");
    println!(
        "Shapiro-Wilk: W = {:.4}, p = {:.3} -> {}",
        sw.w,
        sw.p_value,
        if sw.p_value >= 0.05 {
            "consistent with a normal distribution"
        } else {
            "non-normal"
        }
    );

    // 4. Evaluate a change: does -O2 beat -O1 on this benchmark?
    let o1 = optimize(&program, OptLevel::O1);
    let o2 = optimize(&program, OptLevel::O2);
    let t_o1 = runner::stabilized_samples(&o1, &opts, Config::default(), 30);
    let t_o2 = runner::stabilized_samples(&o2, &opts, Config::default(), 30);
    let t = welch_t_test(&t_o1, &t_o2).expect("well-formed samples");
    println!(
        "\n-O2 vs -O1: speedup {:.3}x, t = {:.2}, p = {:.4} -> {}",
        mean(&t_o1) / mean(&t_o2),
        t.t,
        t.p_value,
        if t.p_value < 0.05 {
            "statistically significant"
        } else {
            "indistinguishable from noise"
        }
    );
}
