//! # stabilizer-repro
//!
//! A full reproduction of **STABILIZER: Statistically Sound Performance
//! Evaluation** (Curtsinger & Berger, ASPLOS 2013) as a Rust workspace.
//!
//! This facade crate re-exports every subsystem so examples and
//! integration tests can reach the whole system through one dependency.
//! See `DESIGN.md` for the system inventory and the per-experiment index,
//! and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ## Quickstart
//!
//! ```
//! use stabilizer_repro::prelude::*;
//!
//! // Build a workload, run it once under STABILIZER, and inspect the time.
//! let program = sz_workloads::build("mcf", sz_workloads::Scale::Tiny)
//!     .expect("mcf is part of the suite");
//! let config = stabilizer::Config::default();
//! let report = sz_harness::run_once(&program, &config, 1);
//! assert!(report.cycles > 0);
//! ```

pub use stabilizer;
pub use sz_harness;
pub use sz_heap;
pub use sz_ir;
pub use sz_link;
pub use sz_machine;
pub use sz_nist;
pub use sz_opt;
pub use sz_rng;
pub use sz_serve;
pub use sz_stats;
pub use sz_vm;
pub use sz_workloads;

/// Convenience imports for examples and tests.
pub mod prelude {
    pub use crate::{
        stabilizer, sz_harness, sz_heap, sz_ir, sz_link, sz_machine, sz_nist, sz_opt, sz_rng,
        sz_serve, sz_stats, sz_vm, sz_workloads,
    };
}
