//! Cross-engine differential conformance: generated programs must
//! compute the *same architectural result* — return value and error
//! class — under every layout engine × allocator combination, even
//! though every engine places code, stacks, globals, and heap objects
//! at different addresses and therefore produces different counters.
//!
//! This is the paper's correctness premise made executable: layout
//! randomization (§3) must be *semantics-preserving*; only time may
//! change. The machinery lives in `crates/szfuzz` (staged generator,
//! engine matrix, parallel driver) — this test pins the in-tree sweep,
//! and `ci.sh` runs the same driver at fuzzing scale through the
//! `sz-fuzz` binary. Each program runs through both interpreters
//! (pre-decoded and reference) per engine, so the suite doubles as a
//! broad differential test of the decoded dispatch rewrite.
//!
//! Seeds are fixed for reproducibility; set `SZ_CONF_SEED` to sweep a
//! different region of program space (CI exercises this hook).

use sz_fuzz::diff::FUZZ_LIMITS;
use sz_fuzz::driver::{self, FuzzConfig};
use sz_fuzz::gen;

fn suite_config() -> FuzzConfig {
    FuzzConfig {
        seed_base: gen::base_seed(),
        programs: gen::DEFAULT_PROGRAMS,
        threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        ..FuzzConfig::default()
    }
}

#[test]
fn generated_programs_have_layout_invariant_results() {
    let summary = driver::run(&suite_config());
    assert_eq!(
        summary.failure, None,
        "conformance sweep found a divergence"
    );
    assert_eq!(summary.programs_run, gen::DEFAULT_PROGRAMS);
}

#[test]
fn generator_is_deterministic() {
    let a = gen::generate(0xDEAD_BEEF);
    let b = gen::generate(0xDEAD_BEEF);
    assert_eq!(a, b, "equal seeds must produce identical programs");
    let c = gen::generate(0xDEAD_BEF0);
    assert_ne!(a, c, "different seeds should produce different programs");
}

#[test]
fn fuzz_results_are_identical_across_thread_counts() {
    // The driver's contract: seed→outcome is positional, so the whole
    // summary — counters, first failure, everything but wall-clock —
    // is bit-identical no matter how many workers ran it.
    let single = driver::run(&FuzzConfig {
        threads: 1,
        ..suite_config()
    });
    let parallel = driver::run(&FuzzConfig {
        threads: 8,
        ..suite_config()
    });
    assert_eq!(single, parallel, "thread count changed fuzz results");
}

#[test]
fn fuel_sweep_cuts_every_clean_program_identically() {
    // Re-run a slice of the sweep at reduced fuel budgets: both
    // interpreters must report OutOfFuel at exactly the budget with
    // identical layout-engine traces at every cut point. A seam here
    // would mean the batched executor retires fuel in different-sized
    // chunks than the reference.
    let summary = driver::run(&FuzzConfig {
        programs: 150,
        fuel_sweep: true,
        ..suite_config()
    });
    assert_eq!(summary.failure, None, "fuel sweep found a seam");
    assert!(
        summary.diversity.fuel_sweeps > 0,
        "no program was actually re-cut; the sweep is vacuous"
    );
}

#[test]
fn fuzz_smoke_terminates_within_bound_with_diverse_programs() {
    // Termination-by-construction across the whole in-tree sweep (the
    // driver turns a baseline OutOfFuel into a failure), plus
    // generator-health checks: the sweep must exercise every memory
    // shape and end in more than one architectural outcome shape, or
    // the suite has quietly stopped testing what it thinks it tests.
    let summary = driver::run(&suite_config());
    assert_eq!(summary.failure, None);
    assert!(
        summary.max_instructions < FUZZ_LIMITS.max_instructions,
        "a program came within the fuel bound: {}",
        summary.max_instructions
    );
    let d = &summary.diversity;
    assert_eq!(
        d.arch_classes.iter().sum::<u64>(),
        summary.programs_run,
        "every checked program lands in exactly one result class"
    );
    assert!(d.returns_value > 0, "no program returned a value");
    let mix = &d.op_mix;
    let total: u64 = mix.iter().sum();
    assert!(total > 0);
    for (kind, &count) in ["alu", "malloc", "free", "call", "load-global"]
        .iter()
        .zip([mix[0], mix[10], mix[11], mix[12], mix[6]].iter())
    {
        assert!(count > 0, "op mix is missing {kind}: {mix:?}");
    }
}
