//! Cross-engine differential conformance: generated programs must
//! compute the *same architectural result* — return value and error
//! class — under every layout engine × allocator combination, even
//! though every engine places code, stacks, globals, and heap objects
//! at different addresses and therefore produces different counters.
//!
//! This is the paper's correctness premise made executable: layout
//! randomization (§3) must be *semantics-preserving*; only time may
//! change. Each program additionally runs through both interpreters
//! (pre-decoded and reference) per engine, so the suite doubles as a
//! broad differential test of the decoded dispatch rewrite.
//!
//! Seeds are fixed for reproducibility; set `SZ_CONF_SEED` to sweep a
//! different region of program space (CI exercises this hook).

mod conf_gen;

use stabilizer::{prepare_program, BaseAllocator, Config, Stabilizer};
use sz_ir::Program;
use sz_link::{LinkOrder, LinkedLayout};
use sz_machine::{MachineConfig, SimTime};
use sz_vm::{reference::run_reference, LayoutEngine, RunLimits, RunReport, Vm, VmError};

/// The architectural result of a run: everything a program's *user*
/// can observe. Counters are deliberately excluded — they are the one
/// thing engines are supposed to change.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ArchResult {
    Ok(Option<u64>),
    OutOfFuel,
    StackOverflow,
    OutOfMemory,
    InvalidFree,
}

fn arch(r: &Result<RunReport, VmError>) -> ArchResult {
    match r {
        Ok(rep) => ArchResult::Ok(rep.return_value),
        Err(VmError::OutOfFuel { .. }) => ArchResult::OutOfFuel,
        Err(VmError::StackOverflow { .. }) => ArchResult::StackOverflow,
        Err(VmError::OutOfMemory { .. }) => ArchResult::OutOfMemory,
        Err(VmError::InvalidFree { .. }) => ArchResult::InvalidFree,
    }
}

/// Runs `program` under one engine through BOTH interpreters, asserts
/// they agree bit-for-bit, and returns the architectural result.
fn run_both(
    program: &Program,
    engine_factory: impl Fn() -> Box<dyn LayoutEngine>,
    label: &str,
    seed: u64,
) -> ArchResult {
    let machine = MachineConfig::tiny();
    let limits = RunLimits::default();
    let mut e1 = engine_factory();
    let decoded = Vm::new(program).run(e1.as_mut(), machine, limits);
    let mut e2 = engine_factory();
    let reference = run_reference(program, e2.as_mut(), machine, limits);
    match (&decoded, &reference) {
        (Ok(a), Ok(b)) => assert_eq!(
            a, b,
            "seed {seed:#x} engine {label}: decoded and reference reports diverge"
        ),
        _ => assert_eq!(
            arch(&decoded),
            arch(&reference),
            "seed {seed:#x} engine {label}: decoded and reference error classes diverge"
        ),
    }
    arch(&decoded)
}

/// One conformance check: every engine/allocator combination must
/// agree on the architectural result.
fn check_program(seed: u64) {
    let program = conf_gen::generate(seed);
    let machine = MachineConfig::tiny();

    // Baseline: the unrandomized bump-allocator engine.
    let expected = run_both(
        &program,
        || Box::new(sz_vm::SimpleLayout::new()),
        "simple",
        seed,
    );

    // Link-order engines (real allocator underneath).
    let linked: [(&str, LinkOrder); 2] = [
        ("linked-default", LinkOrder::Default),
        ("linked-shuffled", LinkOrder::Shuffled { seed }),
    ];
    for (label, order) in linked {
        let got = run_both(
            &program,
            || Box::new(LinkedLayout::builder().link_order(order.clone()).build()),
            label,
            seed,
        );
        assert_eq!(
            expected, got,
            "seed {seed:#x}: {label} changed the architectural result"
        );
    }

    // STABILIZER engines run the *prepared* program (the transform
    // must also be semantics-preserving), one per base allocator. The
    // segregated configuration re-randomizes aggressively mid-run.
    let (prepared, info) = prepare_program(&program);
    let stab: [(&str, Config); 3] = [
        (
            "stabilizer-segregated-rerand",
            Config::default().with_interval(SimTime::from_nanos(3_000.0)),
        ),
        (
            "stabilizer-tlsf",
            Config {
                base_allocator: BaseAllocator::Tlsf,
                ..Config::one_time()
            },
        ),
        (
            "stabilizer-diehard",
            Config {
                base_allocator: BaseAllocator::DieHard,
                ..Config::one_time()
            },
        ),
    ];
    for (label, config) in stab {
        let got = run_both(
            &prepared,
            || {
                Box::new(Stabilizer::new(
                    config.clone().with_seed(seed),
                    &machine,
                    &info,
                ))
            },
            label,
            seed,
        );
        assert_eq!(
            expected, got,
            "seed {seed:#x}: {label} changed the architectural result"
        );
    }
}

#[test]
fn generated_programs_have_layout_invariant_results() {
    let base = conf_gen::base_seed();
    for k in 0..conf_gen::DEFAULT_PROGRAMS {
        check_program(base.wrapping_add(k));
    }
}

#[test]
fn generator_is_deterministic() {
    let a = conf_gen::generate(0xDEAD_BEEF);
    let b = conf_gen::generate(0xDEAD_BEEF);
    assert_eq!(a, b, "equal seeds must produce identical programs");
    let c = conf_gen::generate(0xDEAD_BEF0);
    assert_ne!(a, c, "different seeds should produce different programs");
}

#[test]
fn generated_programs_terminate_quickly() {
    // Termination-by-construction sanity: a tight fuel budget is
    // enough for every generated program (bounded loops, acyclic
    // calls).
    let base = conf_gen::base_seed();
    for k in 0..8 {
        let program = conf_gen::generate(base.wrapping_add(k));
        let mut e = sz_vm::SimpleLayout::new();
        let r = Vm::new(&program)
            .run(
                &mut e,
                MachineConfig::tiny(),
                RunLimits {
                    max_instructions: 2_000_000,
                    max_stack_depth: 1_000,
                },
            )
            .expect("generated programs terminate");
        assert!(r.instructions < 2_000_000);
    }
}
