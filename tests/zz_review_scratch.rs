//! Review scratch: fuel limit landing mid-span (>=2 ops left).

use sz_ir::{AluOp, ProgramBuilder};
use sz_machine::MachineConfig;
use sz_vm::{RunLimits, SimpleLayout, Vm, VmError};

#[test]
fn fuel_straddle_mid_span() {
    let mut p = ProgramBuilder::new("straddle");
    let mut f = p.function("main", 0);
    let a = f.alu(AluOp::Add, 1, 1);
    let b = f.alu(AluOp::Add, a, 1);
    let c = f.alu(AluOp::Add, b, 1);
    f.ret(Some(c.into()));
    let main = p.add_function(f);
    let prog = p.finish(main).unwrap();

    let limits = RunLimits {
        max_instructions: 2,
        max_stack_depth: 16,
    };
    let mut e = SimpleLayout::new();
    let err = Vm::new(&prog)
        .run(&mut e, MachineConfig::tiny(), limits)
        .unwrap_err();
    assert_eq!(err, VmError::OutOfFuel { limit: 2 });
}
