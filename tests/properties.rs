//! Property-based cross-crate tests: a random-program differential
//! fuzzer for the optimizer and the randomizing runtime, plus
//! allocator and statistics invariants.
//!
//! The generators are hand-rolled on [`sz_rng::SplitMix64`] so the
//! suite has no dependencies outside the workspace: each property runs
//! a fixed number of cases from a fixed seed, which also makes every
//! failure trivially reproducible (the failing case index *is* the
//! repro).

use stabilizer::{prepare_program, Config, Stabilizer};
use sz_heap::{Allocator, Region, SegregatedAllocator, ShuffleLayer, TlsfAllocator};
use sz_ir::{AluOp, Block, BlockId, FuncId, Function, Instr, Operand, Program, Reg, Terminator};
use sz_machine::MachineConfig;
use sz_opt::{optimize, OptLevel};
use sz_rng::{Marsaglia, Rng, SplitMix64};
use sz_vm::{RunLimits, SimpleLayout, Vm};

/// Number of registers in generated functions.
const REGS: u16 = 8;
/// Stack slots in generated functions.
const SLOTS: u32 = 4;
/// Cases per property (matches the proptest suite this replaces).
const CASES: u64 = 64;

fn rng_for(property: &str, case: u64) -> SplitMix64 {
    // Mix the property name in so distinct properties see distinct
    // streams even at the same case index.
    let tag: u64 = property.bytes().fold(0xcbf2_9ce4_8422_2325, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
    });
    SplitMix64::new(tag ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

fn gen_operand(rng: &mut SplitMix64) -> Operand {
    if rng.chance(0.5) {
        Operand::Reg(Reg(rng.below(u64::from(REGS)) as u16))
    } else {
        Operand::Imm(rng.below(200) as i64 - 100)
    }
}

fn gen_instr(rng: &mut SplitMix64) -> Instr {
    const OPS: [AluOp; 12] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Rem,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::CmpLt,
        AluOp::CmpEq,
    ];
    // Same weighting as the original proptest strategy: 8/2/2/1.
    match rng.below(13) {
        0..=7 => Instr::Alu {
            dst: Reg(rng.below(u64::from(REGS)) as u16),
            op: OPS[rng.below(OPS.len() as u64) as usize],
            a: gen_operand(rng),
            b: gen_operand(rng),
        },
        8 | 9 => Instr::LoadSlot {
            dst: Reg(rng.below(u64::from(REGS)) as u16),
            slot: rng.below(u64::from(SLOTS)) as u32,
        },
        10 | 11 => Instr::StoreSlot {
            src: gen_operand(rng),
            slot: rng.below(u64::from(SLOTS)) as u32,
        },
        _ => Instr::Nop {
            bytes: 1 + rng.below(19) as u8,
        },
    }
}

/// A structured random program: a chain of blocks with forward-only
/// control flow (always terminates), ending in a return of r0.
fn gen_program(rng: &mut SplitMix64) -> Program {
    let n = 2 + rng.below(4) as usize;
    let blocks: Vec<Block> = (0..n)
        .map(|i| {
            let instrs = (0..rng.below(12)).map(|_| gen_instr(rng)).collect();
            let term = if i + 1 >= n {
                Terminator::Ret {
                    value: Some(Operand::Reg(Reg(0))),
                }
            } else if i % 2 == 0 && i + 2 < n {
                Terminator::Branch {
                    cond: Operand::Reg(Reg(1)),
                    taken: BlockId((i + 1) as u32),
                    not_taken: BlockId((i + 2) as u32),
                }
            } else {
                Terminator::Jump(BlockId((i + 1) as u32))
            };
            Block { instrs, term }
        })
        .collect();
    let p = Program {
        name: "fuzz".into(),
        functions: vec![Function {
            name: "main".into(),
            params: 0,
            num_regs: REGS,
            num_slots: SLOTS,
            blocks,
        }],
        globals: vec![],
        entry: FuncId(0),
    };
    assert_eq!(
        p.validate(),
        Ok(()),
        "generator produced an invalid program"
    );
    p
}

fn run_simple(p: &Program) -> Option<u64> {
    let mut e = SimpleLayout::new();
    Vm::new(p)
        .run(&mut e, MachineConfig::tiny(), RunLimits::default())
        .unwrap()
        .return_value
}

/// Differential test: every optimization level preserves the result of
/// every random program.
#[test]
fn optimizer_preserves_semantics() {
    for case in 0..CASES {
        let mut rng = rng_for("optimizer_preserves_semantics", case);
        let p = gen_program(&mut rng);
        let expected = run_simple(&p);
        for level in OptLevel::ALL {
            let o = optimize(&p, level);
            assert_eq!(o.validate(), Ok(()), "case {case}");
            assert_eq!(run_simple(&o), expected, "case {case}: {level} diverged");
        }
    }
}

/// STABILIZER's transformation and randomizing runtime preserve the
/// result of every random program, for any seed.
#[test]
fn stabilizer_preserves_semantics() {
    for case in 0..CASES {
        let mut rng = rng_for("stabilizer_preserves_semantics", case);
        let p = gen_program(&mut rng);
        let seed = rng.below(1000);
        let expected = run_simple(&p);
        let machine = MachineConfig::tiny();
        let (prepared, info) = prepare_program(&p);
        let mut engine = Stabilizer::new(Config::default().with_seed(seed), &machine, &info);
        let got = Vm::new(&prepared)
            .run(&mut engine, machine, RunLimits::default())
            .unwrap()
            .return_value;
        assert_eq!(got, expected, "case {case} seed {seed}");
    }
}

/// Allocators never hand out overlapping live blocks, under any
/// operation sequence.
#[test]
fn allocators_never_overlap() {
    for case in 0..CASES {
        let mut rng = rng_for("allocators_never_overlap", case);
        let ops: Vec<(u64, bool)> = (0..1 + rng.below(119))
            .map(|_| (1 + rng.below(499), rng.chance(0.5)))
            .collect();
        let allocators: Vec<Box<dyn Allocator>> = vec![
            Box::new(SegregatedAllocator::new(Region::new(0x10000, 1 << 28))),
            Box::new(TlsfAllocator::new(Region::new(0x10000, 1 << 28))),
            Box::new(ShuffleLayer::new(
                SegregatedAllocator::new(Region::new(0x10000, 1 << 28)),
                16,
                Marsaglia::seeded(1),
            )),
        ];
        for mut a in allocators {
            let mut live: Vec<(u64, u64)> = Vec::new();
            for &(size, is_free) in &ops {
                if is_free && !live.is_empty() {
                    let (addr, _) = live.swap_remove(size as usize % live.len());
                    a.free(addr);
                } else {
                    let addr = a.malloc(size).unwrap();
                    for &(o, os) in &live {
                        assert!(
                            addr + size <= o || o + os <= addr,
                            "case {case} {}: overlap {addr:#x}+{size} vs {o:#x}+{os}",
                            a.name()
                        );
                    }
                    live.push((addr, size));
                }
            }
            let total: u64 = live.iter().map(|&(_, s)| s).sum();
            assert_eq!(a.live_bytes(), total, "case {case} {}", a.name());
        }
    }
}

/// Shapiro-Wilk is invariant under positive affine transforms.
#[test]
fn shapiro_wilk_affine_invariant() {
    let mut tested = 0u64;
    for case in 0..CASES * 2 {
        let mut rng = rng_for("shapiro_wilk_affine_invariant", case);
        let data: Vec<f64> = (0..5 + rng.below(35))
            .map(|_| rng.next_f64() * 2000.0 - 1000.0)
            .collect();
        let scale = 0.001 + rng.next_f64() * 999.999;
        let shift = rng.next_f64() * 2e6 - 1e6;
        if !data.iter().any(|&v| (v - data[0]).abs() > 1e-9) {
            continue;
        }
        tested += 1;
        let base = sz_stats::shapiro_wilk(&data);
        let moved: Vec<f64> = data.iter().map(|v| shift + scale * v).collect();
        let transformed = sz_stats::shapiro_wilk(&moved);
        match (base, transformed) {
            (Ok(a), Ok(b)) => {
                assert!(
                    (a.w - b.w).abs() < 1e-6,
                    "case {case}: W {} vs {}",
                    a.w,
                    b.w
                );
            }
            (a, b) => assert_eq!(a.is_err(), b.is_err(), "case {case}"),
        }
    }
    assert!(tested >= CASES, "degenerate-data filter rejected too much");
}

/// Positive timing-like samples for the verdict properties: a base
/// level with mild multiplicative noise, scaled per arm.
fn timing_series(rng: &mut SplitMix64, n: usize, level: f64) -> Vec<f64> {
    (0..n)
        .map(|_| level * (1.0 + 0.1 * (rng.next_f64() - 0.5)))
        .collect()
}

/// Widening the equivalence band never radicalizes a verdict: anything
/// `Equivalent` stays `Equivalent`, and a wider band can only move
/// verdicts *toward* `Equivalent` (Robustly* may soften to
/// `Equivalent`/`Inconclusive`, never appear from nowhere).
#[test]
fn verdict_band_widening_is_monotone() {
    use sz_stats::{judge, EffectVerdict, VerdictConfig};
    for case in 0..CASES {
        let mut rng = rng_for("verdict_band_widening_is_monotone", case);
        let n_a = 6 + rng.below(12) as usize;
        let a = timing_series(&mut rng, n_a, 10.0);
        let b_level = 8.0 + 4.0 * rng.next_f64();
        let n_b = 6 + rng.below(12) as usize;
        let b = timing_series(&mut rng, n_b, b_level);
        let at = |band: f64| {
            judge(
                &a,
                &b,
                &VerdictConfig {
                    band,
                    ..VerdictConfig::default()
                },
            )
            .unwrap()
            .verdict
        };
        let mut prev = at(0.01);
        for band in [0.03, 0.05, 0.1, 0.2, 0.5] {
            let next = at(band);
            if prev == EffectVerdict::Equivalent {
                assert_eq!(
                    next,
                    EffectVerdict::Equivalent,
                    "case {case}: widening to {band} left Equivalent"
                );
            }
            if prev == EffectVerdict::Inconclusive {
                assert_ne!(
                    next,
                    EffectVerdict::RobustlyFaster,
                    "case {case}: widening to {band} manufactured Faster"
                );
                assert_ne!(
                    next,
                    EffectVerdict::RobustlySlower,
                    "case {case}: widening to {band} manufactured Slower"
                );
            }
            prev = next;
        }
    }
}

/// Swapping the arms flips Faster and Slower and fixes Equivalent and
/// Inconclusive — the CI construction is exactly antisymmetric, so
/// this holds bit-for-bit, not just in distribution.
#[test]
fn verdict_swap_antisymmetry() {
    use sz_stats::{judge, EffectVerdict, VerdictConfig};
    for case in 0..CASES {
        let mut rng = rng_for("verdict_swap_antisymmetry", case);
        let n_a = 6 + rng.below(12) as usize;
        let a = timing_series(&mut rng, n_a, 10.0);
        let b_level = 8.0 + 4.0 * rng.next_f64();
        let n_b = 6 + rng.below(12) as usize;
        let b = timing_series(&mut rng, n_b, b_level);
        let cfg = VerdictConfig::default();
        let fwd = judge(&a, &b, &cfg).unwrap();
        let rev = judge(&b, &a, &cfg).unwrap();
        let expected = match fwd.verdict {
            EffectVerdict::RobustlyFaster => EffectVerdict::RobustlySlower,
            EffectVerdict::RobustlySlower => EffectVerdict::RobustlyFaster,
            other => other,
        };
        assert_eq!(rev.verdict, expected, "case {case}");
        // Reciprocal intervals: swap inverts and swaps the CI bounds.
        assert!(
            (rev.effect.lo * fwd.effect.hi - 1.0).abs() < 1e-12
                && (rev.effect.hi * fwd.effect.lo - 1.0).abs() < 1e-12,
            "case {case}: CIs are not reciprocal: {:?} vs {:?}",
            fwd.effect,
            rev.effect
        );
    }
}

/// The harness pool is bit-deterministic for any thread count, so a
/// verdict computed over pool-generated samples cannot depend on the
/// machine's parallelism.
#[test]
fn pool_results_are_thread_count_invariant() {
    use sz_harness::pool;
    let job = |i: usize| {
        let mut rng = SplitMix64::new(0xF1EE7 ^ i as u64);
        (0..50).map(|_| rng.next_f64()).sum::<f64>()
    };
    let reference: Vec<u64> = pool::run_indexed(1, 24, job)
        .into_iter()
        .map(f64::to_bits)
        .collect();
    for threads in [2, 3, 8] {
        let got: Vec<u64> = pool::run_indexed(threads, 24, job)
            .into_iter()
            .map(f64::to_bits)
            .collect();
        assert_eq!(got, reference, "{threads} threads diverged from 1");
    }
}

/// The t-test p-value is symmetric in its arguments and bounded.
#[test]
fn t_test_symmetry() {
    for case in 0..CASES {
        let mut rng = rng_for("t_test_symmetry", case);
        let mut series = || -> Vec<f64> {
            (0..3 + rng.below(17))
                .map(|_| rng.next_f64() * 200.0 - 100.0)
                .collect()
        };
        let a = series();
        let b = series();
        if let (Ok(ab), Ok(ba)) = (
            sz_stats::welch_t_test(&a, &b),
            sz_stats::welch_t_test(&b, &a),
        ) {
            assert!((ab.p_value - ba.p_value).abs() < 1e-9, "case {case}");
            assert!((0.0..=1.0).contains(&ab.p_value), "case {case}");
            assert!((ab.t + ba.t).abs() < 1e-9, "case {case}");
        }
    }
}
