//! Property-based cross-crate tests: a random-program differential
//! fuzzer for the optimizer and the randomizing runtime, plus
//! allocator and statistics invariants.

use proptest::prelude::*;

use stabilizer::{prepare_program, Config, Stabilizer};
use sz_heap::{Allocator, Region, SegregatedAllocator, ShuffleLayer, TlsfAllocator};
use sz_ir::{AluOp, Block, BlockId, FuncId, Function, Instr, Operand, Program, Reg, Terminator};
use sz_machine::MachineConfig;
use sz_opt::{optimize, OptLevel};
use sz_rng::Marsaglia;
use sz_vm::{RunLimits, SimpleLayout, Vm};

/// Number of registers in generated functions.
const REGS: u16 = 8;
/// Stack slots in generated functions.
const SLOTS: u32 = 4;

/// Strategy for one random (pure-ish) instruction.
fn arb_instr() -> impl Strategy<Value = Instr> {
    let reg = 0..REGS;
    let operand = prop_oneof![
        (0..REGS).prop_map(|r| Operand::Reg(Reg(r))),
        (-100i64..100).prop_map(Operand::Imm),
    ];
    let op = prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::Div),
        Just(AluOp::Rem),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Shl),
        Just(AluOp::Shr),
        Just(AluOp::CmpLt),
        Just(AluOp::CmpEq),
    ];
    prop_oneof![
        8 => (reg.clone(), op, operand.clone(), operand.clone())
            .prop_map(|(d, op, a, b)| Instr::Alu { dst: Reg(d), op, a, b }),
        2 => (reg.clone(), 0..SLOTS).prop_map(|(d, s)| Instr::LoadSlot { dst: Reg(d), slot: s }),
        2 => (operand, 0..SLOTS).prop_map(|(src, s)| Instr::StoreSlot { src, slot: s }),
        1 => (1u8..20).prop_map(|b| Instr::Nop { bytes: b }),
    ]
}

/// A structured random program: a chain of blocks with forward-only
/// control flow (always terminates), ending in a return of r0.
fn arb_program() -> impl Strategy<Value = Program> {
    (2usize..6, proptest::collection::vec(proptest::collection::vec(arb_instr(), 0..12), 2..6))
        .prop_map(|(_, block_bodies)| {
            let n = block_bodies.len();
            let blocks: Vec<Block> = block_bodies
                .into_iter()
                .enumerate()
                .map(|(i, instrs)| {
                    let term = if i + 1 >= n {
                        Terminator::Ret { value: Some(Operand::Reg(Reg(0))) }
                    } else if i % 2 == 0 && i + 2 < n {
                        Terminator::Branch {
                            cond: Operand::Reg(Reg(1)),
                            taken: BlockId((i + 1) as u32),
                            not_taken: BlockId((i + 2) as u32),
                        }
                    } else {
                        Terminator::Jump(BlockId((i + 1) as u32))
                    };
                    Block { instrs, term }
                })
                .collect();
            Program {
                name: "fuzz".into(),
                functions: vec![Function {
                    name: "main".into(),
                    params: 0,
                    num_regs: REGS,
                    num_slots: SLOTS,
                    blocks,
                }],
                globals: vec![],
                entry: FuncId(0),
            }
        })
        .prop_filter("valid", |p| p.validate().is_ok())
}

fn run_simple(p: &Program) -> Option<u64> {
    let mut e = SimpleLayout::new();
    Vm::new(p)
        .run(&mut e, MachineConfig::tiny(), RunLimits::default())
        .unwrap()
        .return_value
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Differential test: every optimization level preserves the
    /// result of every random program.
    #[test]
    fn optimizer_preserves_semantics(p in arb_program()) {
        let expected = run_simple(&p);
        for level in OptLevel::ALL {
            let o = optimize(&p, level);
            prop_assert_eq!(o.validate(), Ok(()));
            prop_assert_eq!(run_simple(&o), expected, "{} diverged", level);
        }
    }

    /// STABILIZER's transformation and randomizing runtime preserve the
    /// result of every random program, for any seed.
    #[test]
    fn stabilizer_preserves_semantics(p in arb_program(), seed in 0u64..1000) {
        let expected = run_simple(&p);
        let machine = MachineConfig::tiny();
        let (prepared, info) = prepare_program(&p);
        let mut engine = Stabilizer::new(Config::default().with_seed(seed), &machine, &info);
        let got = Vm::new(&prepared)
            .run(&mut engine, machine, RunLimits::default())
            .unwrap()
            .return_value;
        prop_assert_eq!(got, expected);
    }

    /// Allocators never hand out overlapping live blocks, under any
    /// operation sequence.
    #[test]
    fn allocators_never_overlap(ops in proptest::collection::vec((1u64..500, any::<bool>()), 1..120)) {
        let allocators: Vec<Box<dyn Allocator>> = vec![
            Box::new(SegregatedAllocator::new(Region::new(0x10000, 1 << 28))),
            Box::new(TlsfAllocator::new(Region::new(0x10000, 1 << 28))),
            Box::new(ShuffleLayer::new(
                SegregatedAllocator::new(Region::new(0x10000, 1 << 28)),
                16,
                Marsaglia::seeded(1),
            )),
        ];
        for mut a in allocators {
            let mut live: Vec<(u64, u64)> = Vec::new();
            for &(size, is_free) in &ops {
                if is_free && !live.is_empty() {
                    let (addr, _) = live.swap_remove(size as usize % live.len());
                    a.free(addr);
                } else {
                    let addr = a.malloc(size).unwrap();
                    for &(o, os) in &live {
                        prop_assert!(addr + size <= o || o + os <= addr,
                            "{}: overlap {addr:#x}+{size} vs {o:#x}+{os}", a.name());
                    }
                    live.push((addr, size));
                }
            }
            let total: u64 = live.iter().map(|&(_, s)| s).sum();
            prop_assert_eq!(a.live_bytes(), total);
        }
    }

    /// Shapiro-Wilk is invariant under positive affine transforms.
    #[test]
    fn shapiro_wilk_affine_invariant(
        data in proptest::collection::vec(-1000.0f64..1000.0, 5..40),
        scale in 0.001f64..1000.0,
        shift in -1e6f64..1e6,
    ) {
        prop_assume!(data.iter().any(|&v| (v - data[0]).abs() > 1e-9));
        let base = sz_stats::shapiro_wilk(&data);
        let moved: Vec<f64> = data.iter().map(|v| shift + scale * v).collect();
        let transformed = sz_stats::shapiro_wilk(&moved);
        match (base, transformed) {
            (Ok(a), Ok(b)) => {
                prop_assert!((a.w - b.w).abs() < 1e-6, "W {} vs {}", a.w, b.w);
            }
            (a, b) => prop_assert_eq!(a.is_err(), b.is_err()),
        }
    }

    /// The t-test p-value is symmetric in its arguments and bounded.
    #[test]
    fn t_test_symmetry(
        a in proptest::collection::vec(-100.0f64..100.0, 3..20),
        b in proptest::collection::vec(-100.0f64..100.0, 3..20),
    ) {
        if let (Ok(ab), Ok(ba)) = (sz_stats::welch_t_test(&a, &b), sz_stats::welch_t_test(&b, &a)) {
            prop_assert!((ab.p_value - ba.p_value).abs() < 1e-9);
            prop_assert!((0.0..=1.0).contains(&ab.p_value));
            prop_assert!((ab.t + ba.t).abs() < 1e-9);
        }
    }
}
