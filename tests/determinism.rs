//! Thread-count invariance of the experiment engine.
//!
//! The in-tree pool (`sz_harness::pool`) claims run indices atomically
//! but reassembles results *by index*, and run `i` always derives its
//! seed from `seed_base + i` — so the sample vector an experiment
//! produces must be bit-identical no matter how many worker threads
//! execute it. These tests pin that contract at the public API level;
//! the pool's own unit tests cover the scheduling edge cases.

use stabilizer::Config;
use sz_harness::pool::run_indexed;
use sz_harness::runner::{stabilized_samples, ExperimentOptions};
use sz_workloads::Scale;

fn opts_with_threads(threads: usize) -> ExperimentOptions {
    let mut o = ExperimentOptions::quick();
    o.threads = threads;
    o
}

/// The acceptance check: identical sample vectors for 1 and 8 threads
/// (and 2, while we're at it), compared bit-for-bit.
#[test]
fn stabilized_samples_are_identical_across_thread_counts() {
    let program = sz_workloads::build("bzip2", Scale::Tiny).unwrap();
    let runs = 12; // more runs than any thread count so work actually interleaves
    let baseline = stabilized_samples(&program, &opts_with_threads(1), Config::default(), runs);
    assert_eq!(baseline.len(), runs);
    for threads in [2, 8] {
        let samples = stabilized_samples(
            &program,
            &opts_with_threads(threads),
            Config::default(),
            runs,
        );
        let eq = baseline.len() == samples.len()
            && baseline
                .iter()
                .zip(&samples)
                .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(
            eq,
            "threads={threads} changed the samples:\n  1 thread: {baseline:?}\n  {threads} threads: {samples:?}"
        );
    }
}

/// Fewer jobs than workers: the pool must not deadlock, drop, or
/// duplicate runs when most workers find the queue already empty.
#[test]
fn fewer_runs_than_threads_still_complete_in_order() {
    let program = sz_workloads::build("mcf", Scale::Tiny).unwrap();
    let few = stabilized_samples(&program, &opts_with_threads(8), Config::default(), 3);
    let one = stabilized_samples(&program, &opts_with_threads(1), Config::default(), 3);
    assert_eq!(few.len(), 3);
    assert_eq!(
        few.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
        one.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
    );
}

/// Zero runs is a valid request and yields an empty vector.
#[test]
fn zero_runs_yield_no_samples() {
    let program = sz_workloads::build("lbm", Scale::Tiny).unwrap();
    let none = stabilized_samples(&program, &opts_with_threads(8), Config::default(), 0);
    assert!(none.is_empty());
}

/// The same invariants hold for the raw pool with a job whose result
/// depends only on its index.
#[test]
fn raw_pool_preserves_order_for_every_thread_count() {
    let expected: Vec<u64> = (0..40u64).map(|i| i * i).collect();
    for threads in [1, 2, 8, 32] {
        let got = run_indexed(threads, 40, |i| (i as u64) * (i as u64));
        assert_eq!(got, expected, "threads={threads}");
    }
    assert!(run_indexed(8, 0, |i| i).is_empty());
    assert_eq!(run_indexed(8, 2, |i| i), vec![0, 1]);
}
