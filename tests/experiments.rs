//! Integration coverage of every paper-artifact experiment at reduced
//! scale.

use sz_harness::experiments::{anova, bias, fig5, fig6, fig7, nist, table1};
use sz_harness::ExperimentOptions;

fn opts(benchmarks: &[&str], runs: usize) -> ExperimentOptions {
    let mut o = ExperimentOptions::quick();
    o.benchmarks = Some(benchmarks.iter().map(|s| s.to_string()).collect());
    o.runs = runs;
    o
}

#[test]
fn table1_and_fig5_pipeline() {
    let rows = table1::run(&opts(&["astar", "lbm"], 8));
    assert_eq!(rows.len(), 2);
    let rendered = table1::render(&rows);
    assert!(rendered.contains("astar") && rendered.contains("lbm"));

    let panels = fig5::from_table1(&rows);
    assert_eq!(panels.len(), 2);
    for p in &panels {
        assert_eq!(p.one_time.len(), 8);
        // Theoretical quantiles must be sorted.
        for w in p.rerandomized.windows(2) {
            assert!(w[0].theoretical <= w[1].theoretical);
        }
    }
}

#[test]
fn fig6_overheads_are_plausible() {
    let result = fig6::run(&opts(&["wrf"], 5));
    assert_eq!(result.rows.len(), 1);
    for o in result.rows[0].overhead {
        assert!(o > -0.5 && o < 3.0, "overhead {o} out of plausible band");
    }
    assert!(result.median_full_overhead.is_finite());
}

#[test]
fn fig7_and_anova_pipeline() {
    let rows = fig7::run(&opts(&["gcc", "hmmer", "libquantum"], 6));
    assert_eq!(rows.len(), 3);
    // O2 should win on at least one of these (they all have redundancy
    // and calls); the suite-wide ANOVA must run.
    assert!(rows.iter().any(|r| r.o2_vs_o1.speedup > 1.0));
    let a = anova::run(&rows).expect("three subjects suffice");
    assert!(a.o2_vs_o1.p_value <= 1.0 && a.o2_vs_o1.p_value >= 0.0);
    assert!(anova::render(&a).contains("-O2 vs -O1"));
}

#[test]
fn nist_comparison_has_the_papers_shape() {
    let rows = nist::run(16_384, &[256]);
    let lr = rows.iter().find(|r| r.source == "lrand48").unwrap();
    let sh = rows.iter().find(|r| r.source == "shuffle(N=256)").unwrap();
    // The shuffled heap must be competitive with lrand48 (§3.2's
    // conclusion), allowing one marginal test either way.
    assert!(
        sh.passes() + 1 >= lr.passes(),
        "shuffle {}/7 vs lrand48 {}/7",
        sh.passes(),
        lr.passes()
    );
    assert!(
        sh.passes() >= 6,
        "shuffle(256) passed only {}/7",
        sh.passes()
    );
}

#[test]
fn bias_sweeps_and_noop_comparison() {
    let o = opts(&["gcc"], 8);
    let link = bias::link_order_sweep(&o, "gcc", 6);
    assert!(link.swing >= 0.0 && link.times.len() == 6);
    let cv = bias::stabilized_cv(&o, "gcc");
    assert!(cv > 0.0, "stabilized runs must vary");
    let noop = bias::no_op_change_comparison(&o, "gcc");
    assert!(noop.stabilized_delta.abs() < 0.05);
}
