//! Cross-crate integration: the full pipeline from workload generation
//! through STABILIZER to statistical verdicts.

use stabilizer::{prepare_program, Config, Stabilizer};
use sz_harness::{runner, ExperimentOptions};
use sz_link::{LinkOrder, LinkedLayout};
use sz_machine::MachineConfig;
use sz_stats::{sample_variance, shapiro_wilk};
use sz_vm::{RunLimits, Vm};
use sz_workloads::Scale;

#[test]
fn stabilized_execution_preserves_benchmark_results() {
    // Every benchmark must compute the same answer under the
    // conventional layout and under full randomization.
    let machine = MachineConfig::core_i3_550();
    for spec in sz_workloads::suite() {
        let program = spec.program(Scale::Tiny);
        let mut linked = LinkedLayout::builder().build();
        let expected = Vm::new(&program)
            .run(&mut linked, machine, RunLimits::default())
            .unwrap()
            .return_value;

        let (prepared, info) = prepare_program(&program);
        let mut engine = Stabilizer::new(Config::default().with_seed(99), &machine, &info);
        let got = Vm::new(&prepared)
            .run(&mut engine, machine, RunLimits::default())
            .unwrap()
            .return_value;
        assert_eq!(
            expected, got,
            "{} result changed under STABILIZER",
            spec.name
        );
    }
}

#[test]
fn one_binary_is_one_sample_but_stabilizer_samples_the_space() {
    let opts = ExperimentOptions::quick();
    let program = sz_workloads::build("sjeng", Scale::Tiny).unwrap();

    // Conventional: identical runs.
    let a = runner::linked_run(&program, &opts, LinkOrder::Default, 0);
    let b = runner::linked_run(&program, &opts, LinkOrder::Default, 0);
    assert_eq!(a.cycles, b.cycles);

    // Stabilized: a distribution.
    let samples = runner::stabilized_samples(&program, &opts, Config::default(), 8);
    assert!(sample_variance(&samples) > 0.0);
}

#[test]
fn both_randomization_modes_give_usable_distributions() {
    // §5.1 finds re-randomization usually reduces variance but can
    // also increase it (cactusADM, mcf) — the direction is
    // benchmark-specific, so the integration check is sanity, not
    // direction: both modes must yield genuine distributions with
    // small relative spread (layout effects are a few percent, not a
    // few hundred).
    let mut opts = ExperimentOptions::quick();
    opts.runs = 12;
    let program = sz_workloads::build("gcc", Scale::Tiny).unwrap();
    for config in [Config::one_time(), Config::default()] {
        let samples = runner::stabilized_samples(&program, &opts, config, opts.runs);
        let var = sample_variance(&samples);
        assert!(var > 0.0, "layouts must differ");
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let cv = var.sqrt() / mean;
        assert!(cv < 0.25, "cv {cv} implausibly wide");
    }
}

#[test]
fn stabilizer_run_report_is_reproducible_across_engines() {
    // The same seed must give bit-identical reports even when the
    // engine is constructed twice.
    let machine = MachineConfig::core_i3_550();
    let program = sz_workloads::build("libquantum", Scale::Tiny).unwrap();
    let (prepared, info) = prepare_program(&program);
    let run = |seed| {
        let mut e = Stabilizer::new(Config::default().with_seed(seed), &machine, &info);
        Vm::new(&prepared)
            .run(&mut e, machine, RunLimits::default())
            .unwrap()
    };
    assert_eq!(run(5).counters, run(5).counters);
    assert_ne!(run(5).cycles, run(6).cycles);
}

#[test]
fn shapiro_wilk_accepts_rerandomized_times_on_a_clean_benchmark() {
    // A benchmark with strong phase mixing should give comfortably
    // normal times under re-randomization.
    let mut opts = ExperimentOptions::quick();
    opts.runs = 20;
    let program = sz_workloads::build("milc", Scale::Tiny).unwrap();
    let samples = runner::stabilized_samples(&program, &opts, Config::default(), opts.runs);
    let sw = shapiro_wilk(&samples).unwrap();
    assert!(
        sw.p_value > 0.001,
        "unexpectedly strong non-normality: p = {}",
        sw.p_value
    );
}

#[test]
fn reduced_suite_reproduces_the_full_o2_vs_o3_verdict() {
    // μOpTime-style reduction over the real 18-benchmark suite: run
    // Figure 7 at quick settings, reduce, and confirm — by an
    // independent recomputation over the selected benchmarks only —
    // that the reduced subset reaches the same practical verdict as
    // the full suite for the O2 -> O3 comparison.
    use sz_harness::experiments::fig7;
    use sz_stats::{judge_hierarchical, VerdictConfig};

    let opts = ExperimentOptions::quick();
    let rows = fig7::run(&opts);
    assert_eq!(rows.len(), sz_workloads::suite().len());

    let cfg = VerdictConfig::default();
    let reduction = fig7::suite_reduction(&rows, &cfg).unwrap();
    assert!(!reduction.selected.is_empty());
    assert!(reduction.selected.len() <= rows.len());
    assert_eq!(
        reduction.reduced.verdict, reduction.full.verdict,
        "reduction must preserve the suite verdict"
    );

    // Independent check: recompute the verdict from the selected
    // benchmarks' raw samples without going through reduce_suite.
    let selected_rows: Vec<&fig7::Fig7Row> = reduction
        .selected
        .iter()
        .map(|name| rows.iter().find(|r| &r.benchmark == name).unwrap())
        .collect();
    let o2: Vec<Vec<f64>> = selected_rows.iter().map(|r| r.samples[1].clone()).collect();
    let o3: Vec<Vec<f64>> = selected_rows.iter().map(|r| r.samples[2].clone()).collect();
    let recomputed = judge_hierarchical(&o2, &o3, &cfg).unwrap();
    assert_eq!(
        recomputed.verdict, reduction.full.verdict,
        "independent recomputation over the reduced subset disagreed"
    );
}

#[test]
fn wild_free_is_a_structured_error_not_a_crash() {
    // A guest program freeing an interior pointer must surface as
    // `VmError::InvalidFree` so the harness can record a failed run
    // instead of the whole experiment process aborting.
    use sz_ir::{AluOp, ProgramBuilder};
    use sz_vm::VmError;

    let mut p = ProgramBuilder::new("wildfree");
    let mut main = p.function("main", 0);
    let buf = main.malloc(64);
    let bogus = main.alu(AluOp::Add, buf, 8);
    main.free(bogus);
    main.ret(None);
    let entry = p.add_function(main);
    let program = p.finish(entry).unwrap();

    let machine = MachineConfig::core_i3_550();
    let (prepared, info) = prepare_program(&program);
    let mut engine = Stabilizer::new(Config::default().with_seed(11), &machine, &info);
    let err = Vm::new(&prepared)
        .run(&mut engine, machine, RunLimits::default())
        .unwrap_err();
    assert!(matches!(err, VmError::InvalidFree { addr } if addr % 16 == 8));
}
