//! The core phenomenon, demonstrated with a hand-built layout engine:
//! moving data or code — changing *nothing* else — changes execution
//! time through cache-set conflicts. This is the measurement-bias
//! mechanism of §1 distilled to its smallest reproducible case, and it
//! doubles as a test that `LayoutEngine` implementations outside the
//! workspace crates are first-class citizens.

use sz_ir::{AluOp, Program, ProgramBuilder};
use sz_machine::{MachineConfig, MemorySystem};
use sz_vm::{FrameView, LayoutEngine, RunLimits, Vm};

/// A fully explicit layout: every base address is a field.
struct PinnedLayout {
    code_base: u64,
    global_a: u64,
    global_b: u64,
    stack_base: u64,
    heap_cursor: u64,
}

impl PinnedLayout {
    fn new(global_b: u64) -> Self {
        PinnedLayout {
            code_base: 0x40_0000,
            global_a: 0x100_0000,
            global_b,
            stack_base: 0x7FFF_0000,
            heap_cursor: 0x2000_0000,
        }
    }
}

impl LayoutEngine for PinnedLayout {
    fn prepare(&mut self, _program: &Program) {}

    fn enter_function(&mut self, func: sz_ir::FuncId, _mem: &mut MemorySystem) -> u64 {
        self.code_base + u64::from(func.0) * 0x1000
    }

    fn stack_pad(&mut self, _f: sz_ir::FuncId, _mem: &mut MemorySystem) -> u64 {
        0
    }

    fn global_base(&self, g: sz_ir::GlobalId) -> u64 {
        if g.0 == 0 {
            self.global_a
        } else {
            self.global_b
        }
    }

    fn stack_base(&self) -> u64 {
        self.stack_base
    }

    fn malloc(&mut self, size: u64, _mem: &mut MemorySystem) -> Option<u64> {
        let addr = self.heap_cursor;
        self.heap_cursor += (size + 15) & !15;
        Some(addr)
    }

    fn free(&mut self, _addr: u64, _mem: &mut MemorySystem) -> bool {
        true
    }

    fn tick(&mut self, _now: u64, _stack: &[FrameView], _mem: &mut MemorySystem) {}

    fn name(&self) -> &'static str {
        "pinned"
    }
}

/// A program that alternates accesses to two globals in a tight loop.
fn ping_pong_program() -> Program {
    let mut p = ProgramBuilder::new("pingpong");
    let a = p.global("a", 64);
    let b = p.global("b", 64);
    let mut f = p.function("main", 0);
    let acc = f.reg();
    f.alu_into(acc, AluOp::Add, 0, 0);
    let i = f.reg();
    f.alu_into(i, AluOp::Add, 0, 0);
    let header = f.new_block();
    let body = f.new_block();
    let exit = f.new_block();
    f.jump(header);
    f.switch_to(header);
    let c = f.alu(AluOp::CmpLt, i, 2000);
    f.branch(c, body, exit);
    f.switch_to(body);
    let va = f.load_global(a, 0);
    let vb = f.load_global(b, 0);
    let s = f.alu(AluOp::Add, va, vb);
    f.alu_into(acc, AluOp::Add, acc, s);
    f.alu_into(i, AluOp::Add, i, 1);
    f.jump(header);
    f.switch_to(exit);
    f.ret(Some(acc.into()));
    let main = p.add_function(f);
    p.finish(main).unwrap()
}

fn cycles_with_b_at(global_b: u64) -> (u64, u64) {
    let program = ping_pong_program();
    let mut engine = PinnedLayout::new(global_b);
    let machine = MachineConfig::tiny(); // 2 KiB 2-way L1D: alias stride 1 KiB
    let report = Vm::new(&program)
        .run(&mut engine, machine, RunLimits::default())
        .unwrap();
    (report.cycles, report.counters.l1d_misses)
}

#[test]
fn moving_one_global_changes_execution_time() {
    // `a` is at 0x100_0000. Place `b` to alias it in the 2-way L1
    // (stride 1 KiB, need 3 ways... two lines in a 2-way set coexist,
    // so add the stack/linkage line pressure by choosing the exact
    // stack set) vs somewhere harmless.
    let (t_far, m_far) = cycles_with_b_at(0x100_0040); // next line: no conflict
    let (t_alias, m_alias) = cycles_with_b_at((0x7FFF_0000 - 0x8) & !0x3F); // stack's set
                                                                            // The two layouts run the same instructions...
    assert_ne!(
        (t_far, m_far),
        (t_alias, m_alias),
        "identical code, different layout, must differ somewhere"
    );
}

#[test]
fn semantics_are_layout_independent_even_when_time_is_not() {
    let program = ping_pong_program();
    let machine = MachineConfig::tiny();
    let run = |b: u64| {
        let mut e = PinnedLayout::new(b);
        Vm::new(&program)
            .run(&mut e, machine, RunLimits::default())
            .unwrap()
    };
    let x = run(0x100_0040);
    let y = run(0x300_0000);
    assert_eq!(
        x.return_value, y.return_value,
        "results never depend on layout"
    );
}

#[test]
fn custom_engines_are_first_class() {
    // The trait must be implementable outside the workspace: run a
    // full suite benchmark on the pinned engine.
    let program = sz_workloads::build("hmmer", sz_workloads::Scale::Tiny).unwrap();
    let mut engine = PinnedLayout::new(0x180_0000);
    let report = Vm::new(&program)
        .run(&mut engine, MachineConfig::tiny(), RunLimits::default())
        .unwrap();
    assert_eq!(report.engine, "pinned");
    assert!(report.cycles > 0);
}
