//! Error paths through the decoded dispatch: `OutOfFuel`,
//! `OutOfMemory`, and `InvalidFree` must fire identically under the
//! decoded and reference interpreters — same error, and the same
//! engine-observed counter state at the failure point — plus pinning
//! tests for each engine's `free` semantics and the consolidated
//! zero-size-malloc policy.

use stabilizer::{prepare_program, Config, Stabilizer};
use sz_ir::{AluOp, FuncId, GlobalId, Program, ProgramBuilder};
use sz_link::LinkedLayout;
use sz_machine::{MachineConfig, MemorySystem, PerfCounters};
use sz_vm::{
    reference::run_reference, FrameView, LayoutEngine, RunLimits, SimpleLayout, Vm, VmError,
};

/// Wraps any engine and records the counter state the engine observes
/// at every callback that carries the memory system. Two interpreters
/// executing the same instruction stream must produce identical
/// traces — including the trailing entries right before a failure.
struct SpyEngine<E> {
    inner: E,
    trace: Vec<(&'static str, PerfCounters)>,
}

impl<E> SpyEngine<E> {
    fn new(inner: E) -> Self {
        SpyEngine {
            inner,
            trace: Vec::new(),
        }
    }
}

impl<E: LayoutEngine> LayoutEngine for SpyEngine<E> {
    fn prepare(&mut self, program: &Program) {
        self.inner.prepare(program);
    }
    fn enter_function(&mut self, func: FuncId, mem: &mut MemorySystem) -> u64 {
        self.trace.push(("enter", *mem.counters()));
        self.inner.enter_function(func, mem)
    }
    fn stack_pad(&mut self, func: FuncId, mem: &mut MemorySystem) -> u64 {
        self.trace.push(("pad", *mem.counters()));
        self.inner.stack_pad(func, mem)
    }
    fn global_base(&self, g: GlobalId) -> u64 {
        self.inner.global_base(g)
    }
    fn stack_base(&self) -> u64 {
        self.inner.stack_base()
    }
    fn malloc(&mut self, size: u64, mem: &mut MemorySystem) -> Option<u64> {
        self.trace.push(("malloc", *mem.counters()));
        self.inner.malloc(size, mem)
    }
    fn free(&mut self, addr: u64, mem: &mut MemorySystem) -> bool {
        self.trace.push(("free", *mem.counters()));
        self.inner.free(addr, mem)
    }
    fn tick(&mut self, now_cycles: u64, stack: &[FrameView], mem: &mut MemorySystem) {
        self.trace.push(("tick", *mem.counters()));
        self.inner.tick(now_cycles, stack, mem);
    }
    fn name(&self) -> &'static str {
        self.inner.name()
    }
    fn period_marks(&self) -> &[PerfCounters] {
        self.inner.period_marks()
    }
}

/// Runs `program` under both interpreters on spy-wrapped copies of the
/// engine, asserts the errors match exactly and the engine-observed
/// counter traces are identical, and returns the error.
fn assert_error_identical<E: LayoutEngine>(
    program: &Program,
    make_engine: impl Fn() -> E,
    limits: RunLimits,
    label: &str,
) -> VmError {
    let machine = MachineConfig::tiny();
    let mut a = SpyEngine::new(make_engine());
    let decoded = Vm::new(program).run(&mut a, machine, limits);
    let mut b = SpyEngine::new(make_engine());
    let reference = run_reference(program, &mut b, machine, limits);
    let de = decoded.expect_err(&format!("{label}: decoded run should fail"));
    let re = reference.expect_err(&format!("{label}: reference run should fail"));
    assert_eq!(de, re, "{label}: interpreters disagree on the error");
    assert_eq!(
        a.trace, b.trace,
        "{label}: engine-observed counter state diverged before the failure"
    );
    de
}

fn infinite_loop() -> Program {
    let mut p = ProgramBuilder::new("spin");
    let mut f = p.function("main", 0);
    let spin = f.new_block();
    f.jump(spin);
    f.switch_to(spin);
    let g = f.alu(AluOp::Add, 1, 1);
    let _ = g;
    f.jump(spin);
    let main = p.add_function(f);
    p.finish(main).unwrap()
}

fn huge_malloc() -> Program {
    let mut p = ProgramBuilder::new("oom");
    let mut f = p.function("main", 0);
    // Allocate far beyond any engine's arena, in a loop so engines
    // with different capacities all eventually refuse.
    let header = f.new_block();
    f.jump(header);
    f.switch_to(header);
    let ptr = f.malloc(1 << 30);
    f.store_ptr(ptr, 0, 1);
    f.jump(header);
    let main = p.add_function(f);
    p.finish(main).unwrap()
}

fn double_free() -> Program {
    let mut p = ProgramBuilder::new("dfree");
    let mut f = p.function("main", 0);
    let ptr = f.malloc(32);
    f.store_ptr(ptr, 0, 9);
    f.free(ptr);
    f.free(ptr);
    f.ret(Some(0.into()));
    let main = p.add_function(f);
    p.finish(main).unwrap()
}

fn wild_free() -> Program {
    let mut p = ProgramBuilder::new("wfree");
    let mut f = p.function("main", 0);
    // A made-up address that was never allocated.
    let r = f.alu(AluOp::Add, 0x1234, 0);
    f.free(r);
    f.ret(Some(7.into()));
    let main = p.add_function(f);
    p.finish(main).unwrap()
}

#[test]
fn out_of_fuel_is_identical_on_both_interpreters() {
    let program = infinite_loop();
    let limits = RunLimits {
        max_instructions: 5_000,
        max_stack_depth: 100,
    };
    let e = assert_error_identical(&program, SimpleLayout::new, limits, "fuel/simple");
    assert_eq!(e, VmError::OutOfFuel { limit: 5_000 });
    let e = assert_error_identical(
        &program,
        || LinkedLayout::builder().build(),
        limits,
        "fuel/linked",
    );
    assert_eq!(e, VmError::OutOfFuel { limit: 5_000 });
}

/// A fuel limit that lands *mid-span* — the decoded interpreter has
/// fetched a span with two or more undispatched ops remaining when the
/// budget runs out — must fail exactly like the reference interpreter,
/// which meters one instruction at a time.
#[test]
fn out_of_fuel_mid_span_is_identical_on_both_interpreters() {
    let mut p = ProgramBuilder::new("straddle");
    let mut f = p.function("main", 0);
    let a = f.alu(AluOp::Add, 1, 1);
    let b = f.alu(AluOp::Add, a, 1);
    let c = f.alu(AluOp::Add, b, 1);
    f.ret(Some(c.into()));
    let main = p.add_function(f);
    let program = p.finish(main).unwrap();

    let limits = RunLimits {
        max_instructions: 2,
        max_stack_depth: 16,
    };
    let e = assert_error_identical(&program, SimpleLayout::new, limits, "straddle/simple");
    assert_eq!(e, VmError::OutOfFuel { limit: 2 });
}

/// Delegates to [`SimpleLayout`] but plants the stack low, so a deep
/// call chain with large frames runs the guest stack off the bottom of
/// the address space long before the depth limit.
struct LowStack(SimpleLayout);

impl LayoutEngine for LowStack {
    fn prepare(&mut self, program: &Program) {
        self.0.prepare(program);
    }
    fn enter_function(&mut self, func: FuncId, mem: &mut MemorySystem) -> u64 {
        self.0.enter_function(func, mem)
    }
    fn stack_pad(&mut self, func: FuncId, mem: &mut MemorySystem) -> u64 {
        self.0.stack_pad(func, mem)
    }
    fn global_base(&self, g: GlobalId) -> u64 {
        self.0.global_base(g)
    }
    fn stack_base(&self) -> u64 {
        64 * 1024
    }
    fn malloc(&mut self, size: u64, mem: &mut MemorySystem) -> Option<u64> {
        self.0.malloc(size, mem)
    }
    fn free(&mut self, addr: u64, mem: &mut MemorySystem) -> bool {
        self.0.free(addr, mem)
    }
    fn tick(&mut self, now_cycles: u64, stack: &[FrameView], mem: &mut MemorySystem) {
        self.0.tick(now_cycles, stack, mem);
    }
    fn name(&self) -> &'static str {
        "low-stack"
    }
    fn period_marks(&self) -> &[PerfCounters] {
        self.0.period_marks()
    }
}

/// Recursing with oversized frames under a low stack base used to
/// underflow the unchecked `sp - pad - frame_bytes - 8` in
/// `push_frame` (debug panic, silent wrap in release). It must surface
/// as a clean `StackOverflow`, identically on both interpreters.
#[test]
fn stack_bytes_underflow_is_a_clean_overflow_on_both_interpreters() {
    let mut p = ProgramBuilder::new("deep");
    let rec = p.declare();
    let mut fb = p.function("rec", 0);
    // A ~16 KiB frame: a few activations outgrow the 64 KiB stack,
    // well inside the 100-frame depth limit.
    let slots: Vec<_> = (0..2048).map(|_| fb.slot()).collect();
    fb.store_slot(slots[0], 1);
    fb.store_slot(*slots.last().unwrap(), 2);
    fb.call_void(rec, vec![]);
    fb.ret(None);
    p.define(rec, fb);
    let mut main = p.function("main", 0);
    main.call_void(rec, vec![]);
    main.ret(None);
    let entry = p.add_function(main);
    let program = p.finish(entry).unwrap();

    let limits = RunLimits {
        max_instructions: 10_000_000,
        max_stack_depth: 100,
    };
    let e = assert_error_identical(
        &program,
        || LowStack(SimpleLayout::new()),
        limits,
        "stack-bytes/low",
    );
    assert_eq!(e, VmError::StackOverflow { limit: 100 });
}

#[test]
fn out_of_memory_is_identical_on_both_interpreters() {
    let program = huge_malloc();
    let limits = RunLimits::default();
    let e = assert_error_identical(&program, SimpleLayout::new, limits, "oom/simple");
    assert!(matches!(e, VmError::OutOfMemory { .. }), "got {e:?}");
    let e = assert_error_identical(
        &program,
        || LinkedLayout::builder().build(),
        limits,
        "oom/linked",
    );
    assert!(matches!(e, VmError::OutOfMemory { .. }), "got {e:?}");
}

#[test]
fn invalid_free_is_identical_on_both_interpreters() {
    // SimpleLayout cannot detect invalid frees, so the detecting
    // engines carry this test: the linked engine and STABILIZER.
    let limits = RunLimits::default();
    for program in [double_free(), wild_free()] {
        let e = assert_error_identical(
            &program,
            || LinkedLayout::builder().build(),
            limits,
            "invalid-free/linked",
        );
        assert!(matches!(e, VmError::InvalidFree { .. }), "got {e:?}");

        let (prepared, info) = prepare_program(&program);
        let machine = MachineConfig::tiny();
        let e = assert_error_identical(
            &prepared,
            || Stabilizer::new(Config::one_time().with_seed(3), &machine, &info),
            limits,
            "invalid-free/stabilizer",
        );
        assert!(matches!(e, VmError::InvalidFree { .. }), "got {e:?}");
    }
}

/// Pins each in-tree engine's documented `free` semantics: the bump
/// engine accepts every address (it cannot detect liveness); the
/// allocator-backed engines report wild and double frees.
#[test]
fn free_semantics_are_pinned_per_engine() {
    let machine = MachineConfig::tiny();
    let limits = RunLimits::default();
    for program in [double_free(), wild_free()] {
        // simple: accepts, run completes.
        let mut simple = SimpleLayout::new();
        let r = Vm::new(&program).run(&mut simple, machine, limits);
        assert!(
            r.is_ok(),
            "SimpleLayout is documented to accept every free: {r:?}"
        );

        // linked: detects.
        let mut linked = LinkedLayout::builder().build();
        let r = Vm::new(&program).run(&mut linked, machine, limits);
        assert!(matches!(r, Err(VmError::InvalidFree { .. })), "got {r:?}");

        // stabilizer: detects under every base allocator.
        use stabilizer::BaseAllocator;
        for base in [
            BaseAllocator::Segregated,
            BaseAllocator::Tlsf,
            BaseAllocator::DieHard,
        ] {
            let (prepared, info) = prepare_program(&program);
            let config = Config {
                base_allocator: base,
                ..Config::one_time()
            };
            let mut engine = Stabilizer::new(config.with_seed(5), &machine, &info);
            let r = Vm::new(&prepared).run(&mut engine, machine, limits);
            assert!(
                matches!(r, Err(VmError::InvalidFree { .. })),
                "stabilizer/{base:?}: got {r:?}"
            );
        }
    }
}

/// The zero-size-malloc policy lives in one place (the VM clamps the
/// guest request to one byte) — so on EVERY engine, `malloc(0)` yields
/// a real, distinct, freeable allocation.
#[test]
fn malloc_zero_is_consistent_across_engines() {
    let mut p = ProgramBuilder::new("mz");
    let mut f = p.function("main", 0);
    let a = f.malloc(0);
    let b = f.malloc(0);
    // Addresses must be distinct; their equality bit is the only
    // address-derived value that is layout-invariant.
    let same = f.alu(AluOp::CmpEq, a, b);
    f.free(a);
    f.free(b);
    f.ret(Some(same.into()));
    let main = p.add_function(f);
    let program = p.finish(main).unwrap();

    let machine = MachineConfig::tiny();
    let limits = RunLimits::default();

    let run = |engine: &mut dyn LayoutEngine, program: &Program| {
        let decoded = Vm::new(program).run(engine, machine, limits);
        let report = decoded.expect("malloc(0) must succeed on every engine");
        assert_eq!(
            report.return_value,
            Some(0),
            "two zero-size allocations returned the same address"
        );
    };

    let mut simple = SimpleLayout::new();
    run(&mut simple, &program);
    let mut linked = LinkedLayout::builder().build();
    run(&mut linked, &program);

    use stabilizer::BaseAllocator;
    for base in [
        BaseAllocator::Segregated,
        BaseAllocator::Tlsf,
        BaseAllocator::DieHard,
    ] {
        let (prepared, info) = prepare_program(&program);
        let config = Config {
            base_allocator: base,
            ..Config::one_time()
        };
        let mut engine = Stabilizer::new(config.with_seed(11), &machine, &info);
        run(&mut engine, &prepared);
    }
}
