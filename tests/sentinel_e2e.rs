//! End-to-end pins for the szsentinel regression sentinel.
//!
//! Two properties the subsystem stakes its usefulness on:
//!
//! 1. **Statistical soundness** — the change-point detector frames
//!    alerts as practical-equivalence verdicts over bootstrap effect
//!    CIs, so on clean i.i.d. streams (no true shift) its
//!    false-positive rate must stay at or below the nominal
//!    `1 - confidence`. A Monte-Carlo sweep over many seeded streams
//!    checks that empirically.
//! 2. **Determinism** — for a given input stream the emitted alert
//!    JSONL is byte-for-byte identical across repeated scans and
//!    across the thread count of the process running the scan. Every
//!    RNG in the pipeline is seeded and single-threaded, so this is
//!    pinnable exactly.

use std::fmt::Write as _;
use std::io::Cursor;
use std::thread;

use sz_rng::{Rng, SplitMix64};
use sz_sentinel::{Sentinel, SentinelConfig};

/// Renders a synthetic recorded trace: `{"schema":1}` header plus
/// `runs` run records per variant whose `seconds` metric is scaled by
/// `factor` from `step_at` onward. Counter fields ride along so the
/// anomaly forest has feature vectors to chew on.
fn synthetic_trace(seed: u64, runs: u64, step_at: u64, factor: f64) -> String {
    let mut rng = SplitMix64::new(seed);
    let mut out = String::from("{\"schema\":1}\n");
    for run in 0..runs {
        // Irwin-Hall pseudo-normal around 10ms with 1% noise.
        let noise: f64 = (0..12).map(|_| rng.next_f64()).sum::<f64>() - 6.0;
        let mut seconds = 0.010 * (1.0 + 0.01 * noise);
        if run >= step_at {
            seconds *= factor;
        }
        let instructions = 1_000_000 + (rng.next_u64() % 1000);
        let cycles = instructions + 500_000 + (rng.next_u64() % 1000);
        writeln!(
            out,
            "{{\"type\":\"run\",\"experiment\":\"sentinel-e2e\",\
             \"benchmark\":\"bzip2\",\"variant\":\"stabilized\",\"run\":{run},\
             \"engine\":\"vm\",\"seconds\":{seconds:.9},\
             \"counters\":{{\"instructions\":{instructions},\"cycles\":{cycles},\
             \"l1i_misses\":{},\"l1d_misses\":{},\"branches\":100000,\
             \"branch_mispredicts\":{}}}}}",
            rng.next_u64() % 500,
            rng.next_u64() % 2000,
            rng.next_u64() % 300,
        )
        .expect("write to String");
    }
    out
}

/// Scans a trace and renders the full output (alerts then anomalies)
/// as one JSONL string — the exact bytes `sz-sentinel` would print.
fn scan_to_string(trace: &str) -> String {
    let mut sentinel = Sentinel::new(SentinelConfig::default());
    let records = sentinel
        .scan(Cursor::new(trace.as_bytes()))
        .expect("synthetic trace is well-formed");
    let mut out = String::new();
    for record in records {
        writeln!(out, "{record}").expect("write to String");
    }
    out
}

#[test]
fn injected_step_is_detected_end_to_end() {
    let trace = synthetic_trace(0x5E2E_0001, 24, 12, 1.4);
    let out = scan_to_string(&trace);
    assert!(
        out.contains("\"type\":\"alert\"") && out.contains("robustly-slower"),
        "a +40% step must alert: {out}"
    );
    assert!(
        out.contains("\"old_window\""),
        "alerts must carry the offending windows: {out}"
    );
}

/// Clean i.i.d. streams must alert at no more than the nominal rate.
/// 120 independent streams at 95% confidence: the expected number of
/// alerting streams is at most 6; we allow 2x slack (12) so the test
/// is not itself flaky, while still catching any detector that trips
/// on noise (a naive threshold detector alerts on most of these).
#[test]
fn monte_carlo_false_positive_rate_stays_nominal() {
    const STREAMS: u64 = 120;
    let mut alerting_streams = 0u64;
    for stream in 0..STREAMS {
        let trace = synthetic_trace(0xFA15_E000 + stream, 24, u64::MAX, 1.0);
        let mut sentinel = Sentinel::new(SentinelConfig::default());
        sentinel
            .scan(Cursor::new(trace.as_bytes()))
            .expect("synthetic trace is well-formed");
        if sentinel.alerts_emitted() > 0 {
            alerting_streams += 1;
        }
    }
    assert!(
        alerting_streams <= STREAMS / 10,
        "false-positive rate too high: {alerting_streams}/{STREAMS} clean \
         streams alerted"
    );
}

/// The acceptance bar: byte-for-byte identical detections at any
/// thread count. The scan is run in the main thread and concurrently
/// from 1-, 2-, and 4-thread pools; every rendering must match the
/// reference exactly.
#[test]
fn alert_stream_is_byte_identical_across_thread_counts() {
    let trace = synthetic_trace(0x5E2E_0002, 24, 12, 1.4);
    let reference = scan_to_string(&trace);
    assert!(
        reference.contains("\"type\":\"alert\""),
        "fixture must produce at least one alert"
    );
    for threads in [1usize, 2, 4] {
        let outputs: Vec<String> = thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| scope.spawn(|| scan_to_string(&trace)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scan thread panicked"))
                .collect()
        });
        for out in outputs {
            assert_eq!(
                out, reference,
                "sentinel output drifted at thread count {threads}"
            );
        }
    }
}

/// Repeated scans of the same bytes in the same process must agree
/// too (no hidden global state between Sentinel instances).
#[test]
fn repeated_scans_are_stable() {
    let trace = synthetic_trace(0x5E2E_0003, 24, 12, 1.4);
    let first = scan_to_string(&trace);
    for _ in 0..3 {
        assert_eq!(scan_to_string(&trace), first);
    }
}
