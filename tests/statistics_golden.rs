//! Golden regression tests for the statistical kernel.
//!
//! The datasets are generated from fixed `SplitMix64` seeds, so they
//! are bit-identical on every platform; the expected statistics live
//! in `paper-results/golden_stats.txt` and were produced by this same
//! code (run with `SZ_GOLDEN_PRINT=1 cargo test --test
//! statistics_golden -- --nocapture` to regenerate after an
//! *intentional* change). Any unintentional drift in Shapiro–Wilk, the
//! two-sample t-test, or the one-way ANOVA — the three tests every
//! experiment's verdicts rest on — fails here at 1e-9.

use std::collections::BTreeMap;

use sz_rng::{Rng, SplitMix64};
use sz_stats::{one_way_anova, shapiro_wilk, welch_t_test};

const TOLERANCE: f64 = 1e-9;

/// A deterministic pseudo-normal sample: mean + std * (sum of 12
/// uniforms - 6), the classic Irwin–Hall approximation. Good enough to
/// exercise every code path; bit-exact forever.
fn pseudo_normal(seed: u64, n: usize, mean: f64, std: f64) -> Vec<f64> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let s: f64 = (0..12).map(|_| rng.next_f64()).sum();
            mean + std * (s - 6.0)
        })
        .collect()
}

/// The fixed inputs: three 30-sample groups, as in the paper's
/// 30-runs-per-configuration protocol.
fn groups() -> [Vec<f64>; 3] {
    [
        pseudo_normal(0xA11CE, 30, 10.0, 1.0),
        pseudo_normal(0xB0B, 30, 10.5, 1.0),
        pseudo_normal(0xCAFE, 30, 12.0, 1.5),
    ]
}

/// Computes every golden quantity as ordered `(key, value)` pairs.
fn computed() -> Vec<(String, f64)> {
    let [a, b, c] = groups();
    let mut out = Vec::new();
    for (name, g) in [("a", &a), ("b", &b), ("c", &c)] {
        let sw = shapiro_wilk(g).expect("30 finite samples");
        out.push((format!("shapiro_wilk.{name}.w"), sw.w));
        out.push((format!("shapiro_wilk.{name}.p"), sw.p_value));
    }
    let t = welch_t_test(&a, &b).expect("two valid samples");
    out.push(("welch_t.a_vs_b.t".into(), t.t));
    out.push(("welch_t.a_vs_b.df".into(), t.df));
    out.push(("welch_t.a_vs_b.p".into(), t.p_value));
    out.push(("welch_t.a_vs_b.mean_diff".into(), t.mean_diff));
    let f = one_way_anova(&[a, b, c]).expect("three valid groups");
    out.push(("anova.f".into(), f.f));
    out.push(("anova.df_treatment".into(), f.df_treatment));
    out.push(("anova.df_error".into(), f.df_error));
    out.push(("anova.p".into(), f.p_value));
    out
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("paper-results/golden_stats.txt")
}

fn load_golden() -> BTreeMap<String, f64> {
    let text = std::fs::read_to_string(golden_path())
        .expect("paper-results/golden_stats.txt is checked in");
    text.lines()
        .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
        .map(|l| {
            let (k, v) = l.split_once('=').expect("golden line is key=value");
            (
                k.trim().to_string(),
                v.trim().parse::<f64>().expect("golden value parses"),
            )
        })
        .collect()
}

#[test]
fn statistics_match_golden_values() {
    let computed = computed();
    if std::env::var_os("SZ_GOLDEN_PRINT").is_some() {
        println!("# Golden statistics for tests/statistics_golden.rs.");
        println!(
            "# Regenerate: SZ_GOLDEN_PRINT=1 cargo test --test statistics_golden -- --nocapture"
        );
        for (k, v) in &computed {
            println!("{k} = {v:.17e}");
        }
        return;
    }
    let golden = load_golden();
    assert_eq!(
        golden.len(),
        computed.len(),
        "golden file and computed set disagree on the number of statistics"
    );
    for (key, value) in computed {
        let expected = *golden
            .get(&key)
            .unwrap_or_else(|| panic!("{key} missing from golden_stats.txt"));
        assert!(
            (value - expected).abs() <= TOLERANCE,
            "{key}: computed {value:.17e}, golden {expected:.17e} \
             (|diff| = {:.3e} > {TOLERANCE:e})",
            (value - expected).abs()
        );
    }
}

/// The golden inputs themselves must never drift: pin the first draw
/// of each group.
#[test]
fn golden_inputs_are_stable() {
    let [a, b, c] = groups();
    assert_eq!(a.len(), 30);
    assert_eq!(b.len(), 30);
    assert_eq!(c.len(), 30);
    // First element of each stream, exact to the bit.
    let heads = [a[0], b[0], c[0]];
    for (i, h) in heads.iter().enumerate() {
        assert!(h.is_finite(), "group {i} head {h}");
    }
    // Groups are distinct streams.
    assert_ne!(a[0].to_bits(), b[0].to_bits());
    assert_ne!(b[0].to_bits(), c[0].to_bits());
}
