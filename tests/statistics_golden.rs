//! Golden regression tests for the statistical kernel.
//!
//! The datasets are generated from fixed `SplitMix64` seeds, so they
//! are bit-identical on every platform; the expected statistics live
//! in `paper-results/golden_stats.txt` and were produced by this same
//! code (run with `SZ_GOLDEN_PRINT=1 cargo test --test
//! statistics_golden -- --nocapture` to regenerate after an
//! *intentional* change). Any unintentional drift in Shapiro–Wilk, the
//! two-sample t-test, the one-way ANOVA, the bootstrap effect CIs,
//! the practical-equivalence verdicts, or the suite reduction — the
//! machinery every experiment's verdicts rest on — fails here at 1e-9
//! (verdict codes and the reduction membership mask are exact
//! integers, so any tolerance pins them exactly).

use std::collections::BTreeMap;

use sz_rng::{Rng, SplitMix64};
use sz_sentinel::{score_matrix, ChangeConfig, ChangePointDetector, ForestConfig};
use sz_stats::{
    effect_ci, judge, one_way_anova, reduce_suite, shapiro_wilk, welch_t_test, BenchmarkArms,
    VerdictConfig,
};

const TOLERANCE: f64 = 1e-9;

/// A deterministic pseudo-normal sample: mean + std * (sum of 12
/// uniforms - 6), the classic Irwin–Hall approximation. Good enough to
/// exercise every code path; bit-exact forever.
fn pseudo_normal(seed: u64, n: usize, mean: f64, std: f64) -> Vec<f64> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| {
            let s: f64 = (0..12).map(|_| rng.next_f64()).sum();
            mean + std * (s - 6.0)
        })
        .collect()
}

/// The fixed inputs: three 30-sample groups, as in the paper's
/// 30-runs-per-configuration protocol.
fn groups() -> [Vec<f64>; 3] {
    [
        pseudo_normal(0xA11CE, 30, 10.0, 1.0),
        pseudo_normal(0xB0B, 30, 10.5, 1.0),
        pseudo_normal(0xCAFE, 30, 12.0, 1.5),
    ]
}

/// Computes every golden quantity as ordered `(key, value)` pairs.
fn computed() -> Vec<(String, f64)> {
    let [a, b, c] = groups();
    let mut out = Vec::new();
    for (name, g) in [("a", &a), ("b", &b), ("c", &c)] {
        let sw = shapiro_wilk(g).expect("30 finite samples");
        out.push((format!("shapiro_wilk.{name}.w"), sw.w));
        out.push((format!("shapiro_wilk.{name}.p"), sw.p_value));
    }
    let t = welch_t_test(&a, &b).expect("two valid samples");
    out.push(("welch_t.a_vs_b.t".into(), t.t));
    out.push(("welch_t.a_vs_b.df".into(), t.df));
    out.push(("welch_t.a_vs_b.p".into(), t.p_value));
    out.push(("welch_t.a_vs_b.mean_diff".into(), t.mean_diff));
    let f = one_way_anova(&[a.clone(), b.clone(), c.clone()]).expect("three valid groups");
    out.push(("anova.f".into(), f.f));
    out.push(("anova.df_treatment".into(), f.df_treatment));
    out.push(("anova.df_error".into(), f.df_error));
    out.push(("anova.p".into(), f.p_value));

    // Bootstrap effect CIs and practical-equivalence verdicts over the
    // same pinned groups. a vs b is a small (~5%) shift; b vs c is a
    // large one — together they exercise both sides of the band.
    let cfg = VerdictConfig::default();
    for (name, x, y) in [("a_vs_b", &a, &b), ("b_vs_c", &b, &c)] {
        let ci = effect_ci(x, y, 0.95, 2000, 0x5EED_B007).expect("arms are valid");
        out.push((format!("effect.{name}.ratio"), ci.ratio));
        out.push((format!("effect.{name}.lo"), ci.lo));
        out.push((format!("effect.{name}.hi"), ci.hi));
        let v = judge(x, y, &cfg).expect("verdict is computable");
        out.push((format!("verdict.{name}.code"), f64::from(v.verdict.code())));
        out.push((format!("verdict.{name}.welch_lo"), v.welch.lo));
        out.push((format!("verdict.{name}.welch_hi"), v.welch.hi));
    }

    // Suite reduction over a synthetic 18-benchmark fixture built on
    // the real suite's names: the selected subset is pinned as a count
    // plus an 18-bit membership mask in fixture (suite) order.
    let fixture = reduction_fixture();
    let arms: Vec<BenchmarkArms> = fixture
        .iter()
        .map(|(name, x, y)| BenchmarkArms { name, a: x, b: y })
        .collect();
    let red = reduce_suite(&arms, &cfg).expect("fixture reduces");
    out.push(("reduction.selected_count".into(), red.selected.len() as f64));
    let mut mask = 0u64;
    for (i, (name, _, _)) in fixture.iter().enumerate() {
        if red.selected.iter().any(|s| s == name) {
            mask |= 1 << i;
        }
    }
    out.push(("reduction.membership_mask".into(), mask as f64));
    out.push((
        "reduction.full_verdict_code".into(),
        f64::from(red.full.verdict.code()),
    ));
    out.push((
        "reduction.reduced_verdict_code".into(),
        f64::from(red.reduced.verdict.code()),
    ));

    // Sentinel change-point detections over the pinned step/clean
    // streams. The step stream must alert exactly once at a pinned
    // position with a pinned bootstrap ratio CI; the clean stream must
    // stay silent — both are exact-integer pins plus 1e-9 CI pins.
    let (step, clean) = sentinel_streams();
    let change = ChangeConfig::default();
    let mut det = ChangePointDetector::new(change.clone());
    let mut alerts = Vec::new();
    for v in &step {
        if let Some(alert) = det.push(*v) {
            alerts.push(alert);
        }
    }
    out.push(("sentinel.step.alerts".into(), alerts.len() as f64));
    let first = alerts.first().expect("step stream alerts");
    out.push(("sentinel.step.first_at".into(), first.at as f64));
    out.push((
        "sentinel.step.verdict_code".into(),
        f64::from(first.report.verdict.code()),
    ));
    out.push(("sentinel.step.ratio".into(), first.report.effect.ratio));
    out.push(("sentinel.step.ratio_lo".into(), first.report.effect.lo));
    out.push(("sentinel.step.ratio_hi".into(), first.report.effect.hi));
    let mut det = ChangePointDetector::new(change);
    let clean_alerts = clean.iter().filter(|v| det.push(**v).is_some()).count();
    out.push(("sentinel.clean.alerts".into(), clean_alerts as f64));

    // Isolation-forest scores over a planted-outlier feature matrix:
    // the outlier row's rank-1 position is an exact pin and its score
    // (plus the matrix mean) pins the whole seeded forest traversal.
    let matrix = forest_fixture();
    let scores = score_matrix(&matrix, &ForestConfig::default());
    let top = (0..scores.len())
        .max_by(|&i, &j| scores[i].total_cmp(&scores[j]))
        .expect("fixture is non-empty");
    out.push(("sentinel.forest.top_index".into(), top as f64));
    out.push(("sentinel.forest.top_score".into(), scores[top]));
    out.push((
        "sentinel.forest.mean_score".into(),
        scores.iter().sum::<f64>() / scores.len() as f64,
    ));
    out
}

/// Pinned sentinel inputs: a step stream that shifts +40% halfway
/// (well outside the default ±5% band) and a clean stream with 1%
/// noise around a flat mean.
fn sentinel_streams() -> (Vec<f64>, Vec<f64>) {
    let mut step = pseudo_normal(0x57E9, 12, 10.0, 0.05);
    step.extend(pseudo_normal(0x57EA, 12, 14.0, 0.05));
    let clean = pseudo_normal(0xC_1EA4, 24, 10.0, 0.1);
    (step, clean)
}

/// A 24-row feature matrix: 23 rows clustered near the same counter
/// profile plus one planted outlier far outside the cluster.
fn forest_fixture() -> Vec<Vec<f64>> {
    let mut rng = SplitMix64::new(0xF0_4E57);
    let mut rows: Vec<Vec<f64>> = (0..23)
        .map(|_| {
            (0..8)
                .map(|_| 1.0 + 0.05 * (rng.next_f64() - 0.5))
                .collect()
        })
        .collect();
    rows.push(vec![8.0; 8]);
    rows
}

/// An 18-benchmark reduction fixture on the real suite's names: every
/// benchmark sees the same true ~8% speedup, but noise grows with the
/// benchmark's index so the stability ranking is non-trivial and the
/// minimal verdict-preserving prefix is a strict subset.
fn reduction_fixture() -> Vec<(String, Vec<f64>, Vec<f64>)> {
    sz_workloads::suite()
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let sd = 0.05 + 0.04 * i as f64;
            let a = pseudo_normal(0x9000 + 2 * i as u64, 12, 10.0, sd);
            let b = pseudo_normal(0x9001 + 2 * i as u64, 12, 9.26, sd);
            (spec.name.to_string(), a, b)
        })
        .collect()
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("paper-results/golden_stats.txt")
}

fn load_golden() -> BTreeMap<String, f64> {
    let text = std::fs::read_to_string(golden_path())
        .expect("paper-results/golden_stats.txt is checked in");
    text.lines()
        .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
        .map(|l| {
            let (k, v) = l.split_once('=').expect("golden line is key=value");
            (
                k.trim().to_string(),
                v.trim().parse::<f64>().expect("golden value parses"),
            )
        })
        .collect()
}

#[test]
fn statistics_match_golden_values() {
    let computed = computed();
    if std::env::var_os("SZ_GOLDEN_PRINT").is_some() {
        println!("# Golden statistics for tests/statistics_golden.rs.");
        println!(
            "# Regenerate: SZ_GOLDEN_PRINT=1 cargo test --test statistics_golden -- --nocapture"
        );
        for (k, v) in &computed {
            println!("{k} = {v:.17e}");
        }
        return;
    }
    let golden = load_golden();
    assert_eq!(
        golden.len(),
        computed.len(),
        "golden file and computed set disagree on the number of statistics"
    );
    for (key, value) in computed {
        let expected = *golden
            .get(&key)
            .unwrap_or_else(|| panic!("{key} missing from golden_stats.txt"));
        assert!(
            (value - expected).abs() <= TOLERANCE,
            "{key}: computed {value:.17e}, golden {expected:.17e} \
             (|diff| = {:.3e} > {TOLERANCE:e})",
            (value - expected).abs()
        );
    }
}

/// The golden inputs themselves must never drift: pin the first draw
/// of each group.
#[test]
fn golden_inputs_are_stable() {
    let [a, b, c] = groups();
    assert_eq!(a.len(), 30);
    assert_eq!(b.len(), 30);
    assert_eq!(c.len(), 30);
    // First element of each stream, exact to the bit.
    let heads = [a[0], b[0], c[0]];
    for (i, h) in heads.iter().enumerate() {
        assert!(h.is_finite(), "group {i} head {h}");
    }
    // Groups are distinct streams.
    assert_ne!(a[0].to_bits(), b[0].to_bits());
    assert_ne!(b[0].to_bits(), c[0].to_bits());
}
