//! Monte Carlo calibration of the statistics engine.
//!
//! The whole point of the paper is that sound conclusions need sound
//! tests, so the tests themselves deserve validation: under a true
//! null hypothesis a test's p-values must be roughly uniform (type-I
//! error ≈ α), and under a true effect its power must rise with effect
//! size and sample count.

use sz_rng::{Marsaglia, Rng};
use sz_stats::dist::Normal;
use sz_stats::{effect_ci, one_way_anova, shapiro_wilk, welch_t_test, wilcoxon_signed_rank};

/// Standard-normal draws via inverse-CDF sampling of our own quantile.
fn normal_sample(rng: &mut Marsaglia, n: usize, mean: f64, sd: f64) -> Vec<f64> {
    (0..n)
        .map(|_| {
            let u = rng.next_f64().clamp(1e-12, 1.0 - 1e-12);
            mean + sd * Normal::quantile(u)
        })
        .collect()
}

#[test]
fn t_test_type_i_error_is_calibrated() {
    // Two samples from the SAME normal population: p < 0.05 should
    // happen about 5% of the time.
    let mut rng = Marsaglia::seeded(0xCA11);
    let trials = 400;
    let mut rejections = 0;
    for _ in 0..trials {
        let a = normal_sample(&mut rng, 20, 10.0, 1.0);
        let b = normal_sample(&mut rng, 20, 10.0, 1.0);
        if welch_t_test(&a, &b).unwrap().p_value < 0.05 {
            rejections += 1;
        }
    }
    let rate = rejections as f64 / trials as f64;
    // Binomial sd at p=0.05, n=400 is ~1.1%; allow 4 sigma.
    assert!((0.005..=0.095).contains(&rate), "type-I rate {rate}");
}

#[test]
fn t_test_power_grows_with_effect_and_samples() {
    let mut rng = Marsaglia::seeded(0x90E5);
    let power = |n: usize, delta: f64, rng: &mut Marsaglia| {
        let trials = 150;
        let mut hits = 0;
        for _ in 0..trials {
            let a = normal_sample(rng, n, 10.0, 1.0);
            let b = normal_sample(rng, n, 10.0 + delta, 1.0);
            if welch_t_test(&a, &b).unwrap().p_value < 0.05 {
                hits += 1;
            }
        }
        hits as f64 / trials as f64
    };
    let weak = power(10, 0.3, &mut rng);
    let strong_effect = power(10, 1.5, &mut rng);
    let strong_n = power(80, 0.3, &mut rng);
    assert!(strong_effect > weak + 0.3, "{strong_effect} vs {weak}");
    assert!(strong_n > weak + 0.15, "{strong_n} vs {weak}");
    assert!(
        strong_effect > 0.8,
        "d = 1.5 at n = 10 should be near-certain"
    );
}

#[test]
fn shapiro_wilk_type_i_error_is_calibrated() {
    // Normal data should be rejected ~5% of the time at alpha = 0.05.
    let mut rng = Marsaglia::seeded(0x57A7);
    let trials = 300;
    let mut rejections = 0;
    for _ in 0..trials {
        let x = normal_sample(&mut rng, 30, 0.0, 1.0);
        if shapiro_wilk(&x).unwrap().p_value < 0.05 {
            rejections += 1;
        }
    }
    let rate = rejections as f64 / trials as f64;
    assert!((0.005..=0.11).contains(&rate), "SW type-I rate {rate}");
}

#[test]
fn shapiro_wilk_detects_uniform_and_exponential() {
    let mut rng = Marsaglia::seeded(0xDE7E);
    let mut uniform_rejections = 0;
    let mut expo_rejections = 0;
    let trials = 60;
    for _ in 0..trials {
        let u: Vec<f64> = (0..50).map(|_| rng.next_f64()).collect();
        if shapiro_wilk(&u).unwrap().p_value < 0.05 {
            uniform_rejections += 1;
        }
        let e: Vec<f64> = (0..50)
            .map(|_| -(1.0 - rng.next_f64()).max(1e-12).ln())
            .collect();
        if shapiro_wilk(&e).unwrap().p_value < 0.05 {
            expo_rejections += 1;
        }
    }
    // Exponential (heavily skewed) must be rejected almost always at
    // n = 50; uniform (short tails) often but less reliably.
    assert!(
        expo_rejections as f64 > 0.9 * trials as f64,
        "{expo_rejections}/{trials}"
    );
    assert!(
        uniform_rejections as f64 > 0.3 * trials as f64,
        "{uniform_rejections}/{trials}"
    );
}

#[test]
fn anova_type_i_error_is_calibrated() {
    let mut rng = Marsaglia::seeded(0xA0A0);
    let trials = 250;
    let mut rejections = 0;
    for _ in 0..trials {
        let groups: Vec<Vec<f64>> = (0..4)
            .map(|_| normal_sample(&mut rng, 12, 3.0, 0.7))
            .collect();
        if one_way_anova(&groups).unwrap().p_value < 0.05 {
            rejections += 1;
        }
    }
    let rate = rejections as f64 / trials as f64;
    assert!((0.005..=0.10).contains(&rate), "ANOVA type-I rate {rate}");
}

#[test]
fn wilcoxon_agrees_with_t_test_on_normal_shifts() {
    // On clean normal data both tests should reach the same verdict
    // for a solid effect; Wilcoxon just pays a small power premium.
    let mut rng = Marsaglia::seeded(0x3117);
    let mut agreements = 0;
    let trials = 100;
    for _ in 0..trials {
        let a = normal_sample(&mut rng, 25, 10.0, 1.0);
        let b: Vec<f64> = normal_sample(&mut rng, 25, 11.2, 1.0);
        let t_sig = welch_t_test(&a, &b).unwrap().p_value < 0.05;
        let w_sig = wilcoxon_signed_rank(&a, &b).unwrap().p_value < 0.05;
        if t_sig == w_sig {
            agreements += 1;
        }
    }
    assert!(agreements > 85, "agreement {agreements}/{trials}");
}

#[test]
fn effect_ci_coverage_matches_nominal() {
    // Empirical coverage calibration of the bootstrap ratio CI: draw
    // arms with a KNOWN true effect (mean 10.5 vs 10.0 → true
    // ratio-of-means 1.05) and count how often the nominal-95% CI
    // contains the truth. The percentile bootstrap is known to
    // undercover slightly at small n; the tolerance below pins how
    // much slack we accept at n = 18 per arm. `SZ_COVERAGE_TRIALS`
    // scales the trial count (CI runs it higher in release mode).
    let trials: usize = std::env::var("SZ_COVERAGE_TRIALS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(220);
    assert!(trials >= 200, "need >= 200 trials for a stable estimate");
    let true_ratio = 10.5 / 10.0;
    let mut rng = Marsaglia::seeded(0x0B00_7CA1);
    let mut covered = 0usize;
    for t in 0..trials {
        let a = normal_sample(&mut rng, 18, 10.5, 1.0);
        let b = normal_sample(&mut rng, 18, 10.0, 1.0);
        let ci = effect_ci(&a, &b, 0.95, 500, 0x5EED_0000 + t as u64).unwrap();
        if (ci.lo..=ci.hi).contains(&true_ratio) {
            covered += 1;
        }
    }
    let coverage = covered as f64 / trials as f64;
    // Measured 0.927 at the pinned seed with 220 trials (0.942 at
    // 1000; binomial sd ~1.5% at 220) — the expected small-n
    // percentile-bootstrap undercoverage. The band below holds that
    // with ~2.5 sigma of Monte Carlo slack on either side.
    assert!(
        (coverage - 0.95).abs() <= 0.06,
        "empirical coverage {coverage} strayed from nominal 0.95"
    );
}

#[test]
fn p_values_are_uniform_under_the_null() {
    // Kolmogorov-style check: under H0, t-test p-values are Uniform(0,1).
    let mut rng = Marsaglia::seeded(0x0F0F);
    let mut ps: Vec<f64> = (0..300)
        .map(|_| {
            let a = normal_sample(&mut rng, 15, 0.0, 1.0);
            let b = normal_sample(&mut rng, 15, 0.0, 1.0);
            welch_t_test(&a, &b).unwrap().p_value
        })
        .collect();
    ps.sort_by(|x, y| x.partial_cmp(y).unwrap());
    let n = ps.len() as f64;
    let d = ps
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            let ecdf_hi = (i + 1) as f64 / n;
            let ecdf_lo = i as f64 / n;
            (p - ecdf_lo).abs().max((ecdf_hi - p).abs())
        })
        .fold(0.0f64, f64::max);
    // KS critical value at alpha = 0.01 for n = 300 is ~0.094.
    assert!(d < 0.094, "KS distance {d} from uniform");
}
