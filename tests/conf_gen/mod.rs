//! Deterministic staged random-IR generator for the cross-engine
//! conformance suite.
//!
//! Programs come out of a seeded [`SplitMix64`]; equal seeds produce
//! identical programs, so every failure is replayable from the seed
//! alone. Generation is *staged*: globals first, then straight-line
//! leaf functions, then an optional looping mid-tier that calls the
//! leaves, then a looping `main` that calls everything — the call graph
//! is acyclic by construction and every loop is a bounded counter loop,
//! so every generated program terminates.
//!
//! The generator enforces the *layout-invariance discipline* that makes
//! a program's architectural result (return value + error class)
//! independent of the layout engine executing it:
//!
//! - **Addresses never become data.** A register holding a `malloc`
//!   result is used only as a load/store base and as the operand of
//!   `free`; it never flows into ALU inputs, comparisons, call
//!   arguments, stores, or return values.
//! - **Reads are dominated by writes.** Stack slots are initialized at
//!   function entry before any load; heap cells are loaded only at
//!   offsets the same allocation has already stored. (Engines reuse
//!   freed memory differently, so reading an unwritten heap cell would
//!   observe engine-dependent stale data.) Global cells may be read
//!   uninitialized — globals are never reused, so the zero/init value
//!   is engine-independent.
//! - **Only live pointers are freed**, each at most once, because
//!   engines legitimately disagree on wild frees: allocator-backed
//!   engines report them, the bump-allocator engine cannot (see
//!   `LayoutEngine::free`).

// Each integration-test binary that includes this module uses a
// different subset of it.
#![allow(dead_code)]

use sz_ir::{AluOp, FuncId, FunctionBuilder, GlobalId, GlobalInit, Operand, Program};
use sz_ir::{ProgramBuilder, Reg};
use sz_rng::{Rng, SplitMix64};

/// Base seed used when `SZ_CONF_SEED` is not set.
pub const DEFAULT_SEED: u64 = 0xC0FF_EE00;

/// Number of programs the suite checks per run.
pub const DEFAULT_PROGRAMS: u64 = 64;

/// Reads the suite's base seed, overridable via `SZ_CONF_SEED` so CI
/// (and bug hunts) can sweep fresh regions of program space without a
/// code change.
pub fn base_seed() -> u64 {
    match std::env::var("SZ_CONF_SEED") {
        Ok(s) if !s.trim().is_empty() => s
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("SZ_CONF_SEED must be an integer, got {s:?}")),
        _ => DEFAULT_SEED,
    }
}

/// A function the generator may call: id, arity.
#[derive(Clone, Copy)]
struct Callee {
    id: FuncId,
    params: u16,
}

/// Generates one always-terminating, layout-invariant program.
pub fn generate(seed: u64) -> Program {
    let mut rng = SplitMix64::new(seed);
    let mut p = ProgramBuilder::new(format!("conf-{seed:#x}"));

    // Stage 1: globals (always at least one, 128 bytes each — offsets
    // stay 8-aligned and in-bounds).
    let globals: Vec<GlobalId> = (0..1 + rng.below(3))
        .map(|i| {
            if rng.chance(0.5) {
                p.global_init(format!("g{i}"), 128, GlobalInit::U64(rng.below(100_000)))
            } else {
                p.global(format!("g{i}"), 128)
            }
        })
        .collect();

    // Stage 2: straight-line leaves.
    let mut callees: Vec<Callee> = Vec::new();
    for i in 0..1 + rng.below(3) {
        let params = rng.below(3) as u16;
        let mut f = p.function(format!("leaf{i}"), params);
        gen_straight_body(&mut f, &mut rng, &globals, &[], params);
        let id = p.add_function(f);
        callees.push(Callee { id, params });
    }

    // Stage 3: an optional looping mid-tier calling the leaves.
    if rng.chance(0.5) {
        let params = 1;
        let mut f = p.function("mid", params);
        let trip = 2 + rng.below(5);
        gen_loop_body(&mut f, &mut rng, &globals, &callees, params, trip);
        let id = p.add_function(f);
        callees.push(Callee { id, params });
    }

    // Stage 4: main loops over everything.
    let mut f = p.function("main", 0);
    let trip = 3 + rng.below(10);
    gen_loop_body(&mut f, &mut rng, &globals, &callees, 0, trip);
    let main = p.add_function(f);
    p.finish(main).expect("generated programs are valid")
}

/// Emits a function that initializes its slots, runs a bounded counter
/// loop accumulating into a slot, and returns the accumulator.
fn gen_loop_body(
    f: &mut FunctionBuilder,
    rng: &mut SplitMix64,
    globals: &[GlobalId],
    callees: &[Callee],
    params: u16,
    trip: u64,
) {
    let s_i = f.slot();
    let s_acc = f.slot();
    f.store_slot(s_i, 0);
    let acc0 = (rng.below(1 << 20)) as i64;
    f.store_slot(s_acc, acc0);

    let header = f.new_block();
    let body = f.new_block();
    let exit = f.new_block();
    f.jump(header);

    f.switch_to(header);
    let i = f.load_slot(s_i);
    let c = f.alu(AluOp::CmpLt, i, trip as i64);
    f.branch(c, body, exit);

    f.switch_to(body);
    let i = f.load_slot(s_i);
    let acc = f.load_slot(s_acc);
    let mut data: Vec<Reg> = vec![i, acc];
    for k in 0..params {
        data.push(f.param(k));
    }
    let n_ops = 2 + rng.below(6);
    for _ in 0..n_ops {
        emit_op(f, rng, &mut data, globals, callees);
    }
    let new_acc = fold_data(f, rng, &data);
    f.store_slot(s_acc, new_acc);
    let ni = f.alu(AluOp::Add, i, 1);
    f.store_slot(s_i, ni);
    f.jump(header);

    f.switch_to(exit);
    let out = f.load_slot(s_acc);
    f.ret(Some(out.into()));
}

/// Emits a straight-line function body: init slots, a few ops, return
/// a fold of the data pool.
fn gen_straight_body(
    f: &mut FunctionBuilder,
    rng: &mut SplitMix64,
    globals: &[GlobalId],
    callees: &[Callee],
    params: u16,
) {
    let mut data: Vec<Reg> = (0..params).map(|k| f.param(k)).collect();
    let n_slots = rng.below(3);
    for _ in 0..n_slots {
        let s = f.slot();
        let init = (rng.below(1 << 16)) as i64;
        f.store_slot(s, init);
        let v = f.load_slot(s);
        data.push(v);
    }
    if data.is_empty() {
        let v = f.alu(AluOp::Add, (rng.below(1 << 16)) as i64, 0);
        data.push(v);
    }
    let n_ops = 1 + rng.below(5);
    for _ in 0..n_ops {
        emit_op(f, rng, &mut data, globals, callees);
    }
    let out = fold_data(f, rng, &data);
    f.ret(Some(out.into()));
}

/// Emits one random operation into the current block, growing the data
/// pool. Pointer values produced here never enter `data`.
fn emit_op(
    f: &mut FunctionBuilder,
    rng: &mut SplitMix64,
    data: &mut Vec<Reg>,
    globals: &[GlobalId],
    callees: &[Callee],
) {
    match rng.below(10) {
        // ALU on data values.
        0..=3 => {
            const OPS: [AluOp; 13] = [
                AluOp::Add,
                AluOp::Sub,
                AluOp::Mul,
                AluOp::Div,
                AluOp::Rem,
                AluOp::And,
                AluOp::Or,
                AluOp::Xor,
                AluOp::Shl,
                AluOp::Shr,
                AluOp::CmpLt,
                AluOp::CmpEq,
                AluOp::CmpGt,
            ];
            let op = OPS[rng.below(OPS.len() as u64) as usize];
            let a = pick_operand(rng, data);
            let b = pick_operand(rng, data);
            let r = f.alu(op, a, b);
            data.push(r);
        }
        // Float round trip: int -> f64 -> arithmetic -> int.
        4 => {
            let a = f.int_to_fp(pick_operand(rng, data));
            let b = f.fp_const(rng.below(1000) as f64 + 0.5);
            const FOPS: [AluOp; 4] = [AluOp::FAdd, AluOp::FSub, AluOp::FMul, AluOp::FDiv];
            let op = FOPS[rng.below(4) as usize];
            let c = f.alu(op, a, b);
            let r = f.fp_to_int(c);
            data.push(r);
        }
        // Global traffic, constant or masked register offset.
        5 | 6 => {
            let g = globals[rng.below(globals.len() as u64) as usize];
            let off: Operand = if rng.chance(0.5) {
                (8 * rng.below(16) as i64).into()
            } else {
                // Mask a data value to an 8-aligned in-bounds offset.
                let base = pick_reg(rng, data);
                f.alu(AluOp::And, base, 0x78).into()
            };
            if rng.chance(0.5) {
                let v = pick_operand(rng, data);
                f.store_global(g, off, v);
            } else {
                let r = f.load_global(g, off);
                data.push(r);
            }
        }
        // A heap episode: malloc, stores, loads of stored cells, free.
        7 | 8 => {
            let words = 1 + rng.below(12);
            let ptr = f.malloc((words * 8) as i64);
            let mut stored: Vec<i64> = Vec::new();
            for w in 0..words {
                if rng.chance(0.6) {
                    let v = pick_operand(rng, data);
                    f.store_ptr(ptr, (w * 8) as i64, v);
                    stored.push((w * 8) as i64);
                }
            }
            for _ in 0..rng.below(3) {
                if let Some(&off) = pick(rng, &stored) {
                    let r = f.load_ptr(ptr, off);
                    data.push(r);
                }
            }
            // Leaking sometimes is deliberate: engines must agree with
            // and without reuse pressure.
            if rng.chance(0.75) {
                f.free(ptr);
            }
        }
        // A call; arguments are data values only.
        _ => {
            if let Some(&callee) = pick(rng, callees) {
                let args: Vec<Operand> = (0..callee.params)
                    .map(|_| pick_operand(rng, data))
                    .collect();
                let r = f.call(callee.id, args);
                data.push(r);
            } else {
                f.nop(rng.below(6) as u8 + 1);
            }
        }
    }
}

/// Folds a few pool values into one register for accumulation.
fn fold_data(f: &mut FunctionBuilder, rng: &mut SplitMix64, data: &[Reg]) -> Reg {
    let mut acc = *data.last().expect("pool is never empty");
    for _ in 0..2 {
        let other = *pick(rng, data).expect("pool is never empty");
        let op = if rng.chance(0.5) {
            AluOp::Add
        } else {
            AluOp::Xor
        };
        acc = f.alu(op, acc, other);
    }
    acc
}

fn pick_operand(rng: &mut SplitMix64, data: &[Reg]) -> Operand {
    if data.is_empty() || rng.chance(0.3) {
        ((rng.below(1 << 12)) as i64).into()
    } else {
        data[rng.below(data.len() as u64) as usize].into()
    }
}

fn pick_reg(rng: &mut SplitMix64, data: &[Reg]) -> Reg {
    data[rng.below(data.len() as u64) as usize]
}

fn pick<'a, T>(rng: &mut SplitMix64, pool: &'a [T]) -> Option<&'a T> {
    if pool.is_empty() {
        None
    } else {
        Some(&pool[rng.below(pool.len() as u64) as usize])
    }
}
