//! The pre-decoded dispatch rewrite must be *invisible*: for every
//! engine configuration the seven experiments use (table1, fig5, fig6,
//! fig7, anova, nist, bias), the decoded interpreter and the reference
//! interpreter must produce bit-identical `RunReport`s — total
//! counters AND per-period snapshots. Plus decoder golden/property
//! tests pinning the decoded metadata to the `CodeLayout` ground
//! truth.

use stabilizer::{prepare_program, Config, Stabilizer};
use sz_ir::{AluOp, BlockId, Program, ProgramBuilder};
use sz_link::{LinkOrder, LinkedLayout};
use sz_machine::{MachineConfig, SimTime};
use sz_opt::{optimize, OptLevel};
use sz_vm::{reference::run_reference, LayoutEngine, OpKind, RunLimits, Vm};
use sz_workloads::Scale;

/// Runs one program under one engine through both interpreters and
/// asserts the reports are equal in every field.
fn assert_bit_identical(
    program: &Program,
    mut a: Box<dyn LayoutEngine>,
    mut b: Box<dyn LayoutEngine>,
    machine: MachineConfig,
    label: &str,
) {
    let decoded = Vm::new(program).run(a.as_mut(), machine, RunLimits::default());
    let reference = run_reference(program, b.as_mut(), machine, RunLimits::default());
    let decoded = decoded.unwrap_or_else(|e| panic!("{label}: decoded run failed: {e}"));
    let reference = reference.unwrap_or_else(|e| panic!("{label}: reference run failed: {e}"));
    assert_eq!(
        decoded.counters, reference.counters,
        "{label}: PerfCounters diverged"
    );
    assert_eq!(
        decoded.periods, reference.periods,
        "{label}: per-period snapshots diverged"
    );
    assert_eq!(decoded, reference, "{label}: RunReport diverged");
}

/// The experiments' engine configurations, one probe per experiment.
///
/// - **bias** pins the conventional world: fixed link order plus an
///   environment-size shift.
/// - **fig5** samples link orders.
/// - **table1** compares one-time vs re-randomized STABILIZER.
/// - **fig6** sweeps the three randomization subsets.
/// - **fig7** runs optimizer output under full randomization.
/// - **anova/nist** use the same full-randomization engine on further
///   benchmarks; the probes vary the workload.
#[test]
fn all_seven_experiment_configs_are_bit_identical() {
    let machine = MachineConfig::core_i3_550();
    // Short interval so the probe actually crosses re-randomization
    // period boundaries and the periods vector has real content.
    let fast = SimTime::from_nanos(6_000.0);

    let bzip2 = sz_workloads::build("bzip2", Scale::Tiny).unwrap();
    let mcf = sz_workloads::build("mcf", Scale::Tiny).unwrap();
    let sjeng = sz_workloads::build("sjeng", Scale::Tiny).unwrap();

    // bias: default link order with environment bytes.
    let linked = |order: LinkOrder, env: u64| -> Box<dyn LayoutEngine> {
        Box::new(
            LinkedLayout::builder()
                .link_order(order)
                .env_bytes(env)
                .build(),
        )
    };
    assert_bit_identical(
        &bzip2,
        linked(LinkOrder::Default, 128),
        linked(LinkOrder::Default, 128),
        machine,
        "bias: linked default + env",
    );
    // fig5: shuffled link order.
    assert_bit_identical(
        &bzip2,
        linked(LinkOrder::Shuffled { seed: 7 }, 0),
        linked(LinkOrder::Shuffled { seed: 7 }, 0),
        machine,
        "fig5: linked shuffled",
    );

    // STABILIZER configurations share one prepared program.
    let stab = |program: &Program, config: Config, label: &str| {
        let (prepared, info) = prepare_program(program);
        let mk = || -> Box<dyn LayoutEngine> {
            Box::new(Stabilizer::new(
                config.clone().with_seed(42),
                &machine,
                &info,
            ))
        };
        assert_bit_identical(&prepared, mk(), mk(), machine, label);
    };
    // table1: one-time and re-randomized.
    stab(&bzip2, Config::one_time(), "table1: one-time");
    stab(
        &bzip2,
        Config::default().with_interval(fast),
        "table1: re-randomized",
    );
    // fig6: the randomization subsets.
    stab(&mcf, Config::code_only().with_interval(fast), "fig6: code");
    stab(
        &mcf,
        Config::code_stack().with_interval(fast),
        "fig6: code.stack",
    );
    stab(
        &mcf,
        Config::default().with_interval(fast),
        "fig6: code.heap.stack",
    );
    // fig7: optimizer output under full randomization.
    for (lv, name) in [
        (OptLevel::O1, "O1"),
        (OptLevel::O2, "O2"),
        (OptLevel::O3, "O3"),
    ] {
        let p = optimize(&bzip2, lv);
        stab(
            &p,
            Config::default().with_interval(fast),
            &format!("fig7: {name}"),
        );
    }
    // anova / nist: full randomization on further workloads.
    stab(
        &sjeng,
        Config::default().with_interval(fast),
        "anova: sjeng",
    );
    stab(&mcf, Config::one_time(), "nist: mcf one-time");
}

/// Property: decoded per-op metadata equals the `CodeLayout` path for
/// every function of every suite benchmark.
#[test]
fn decoded_metadata_matches_layout_for_the_whole_suite() {
    for spec in sz_workloads::suite() {
        let program = spec.program(Scale::Tiny);
        let vm = Vm::new(&program);
        for (func, decoded) in program.functions.iter().zip(vm.decoded_funcs()) {
            let layout = func.layout();
            assert_eq!(decoded.num_regs, func.num_regs);
            assert_eq!(decoded.frame_bytes, func.frame_bytes());
            assert_eq!(
                decoded.ops.len(),
                func.instr_count() + func.blocks.len(),
                "{}: stream must cover every instr + terminator",
                spec.name
            );
            for (bi, block) in func.blocks.iter().enumerate() {
                let start = decoded.block_starts[bi] as usize;
                for (ii, instr) in block.instrs.iter().enumerate() {
                    let op = &decoded.ops[start + ii];
                    assert_eq!(op.pc, layout.instr_offsets[bi][ii], "{}", spec.name);
                    assert_eq!(u64::from(op.size), instr.encoded_size(), "{}", spec.name);
                    assert_eq!(u64::from(op.cycles), instr.base_cycles(), "{}", spec.name);
                }
                let term = &decoded.ops[start + block.instrs.len()];
                assert_eq!(
                    term.pc,
                    layout.terminator_offset(BlockId(bi as u32)),
                    "{}",
                    spec.name
                );
                assert_eq!(
                    u64::from(term.size),
                    block.term.encoded_size(),
                    "{}",
                    spec.name
                );
                assert_eq!(
                    u64::from(term.cycles),
                    block.term.base_cycles(),
                    "{}",
                    spec.name
                );
            }
        }
    }
}

/// Property: for every function of every suite benchmark, the decoded
/// fetch spans partition the stream, break exactly at control
/// transfers and engine-visible ops, carry correct extents and
/// latency sums, and start at every dispatchable index — the
/// structural facts the batched interpreter's exactness argument
/// rests on.
#[test]
fn fetch_spans_partition_every_suite_function() {
    let breaking = |k: &OpKind| {
        matches!(
            k,
            OpKind::Malloc { .. }
                | OpKind::Free { .. }
                | OpKind::Call { .. }
                | OpKind::Jump { .. }
                | OpKind::Branch { .. }
                | OpKind::Ret { .. }
        )
    };
    for spec in sz_workloads::suite() {
        let program = spec.program(Scale::Tiny);
        let vm = Vm::new(&program);
        for d in vm.decoded_funcs() {
            assert_eq!(d.span_of.len(), d.ops.len(), "{}", spec.name);
            let mut next = 0u32;
            for span in &d.spans {
                assert_eq!(span.start, next, "{}: contiguous spans", spec.name);
                assert!(span.count >= 1, "{}", spec.name);
                next += span.count;
                let ops = &d.ops[span.start as usize..next as usize];
                let (mid, last) = ops.split_at(ops.len() - 1);
                assert!(breaking(&last[0].kind), "{}: span ends breaking", spec.name);
                assert!(
                    mid.iter().all(|op| !breaking(&op.kind)),
                    "{}: breaking op mid-span",
                    spec.name
                );
                assert_eq!(span.first_pc, ops[0].pc, "{}", spec.name);
                assert_eq!(
                    span.end_pc,
                    last[0].pc + u64::from(last[0].size),
                    "{}",
                    spec.name
                );
                assert_eq!(
                    span.base_cycles,
                    ops.iter().map(|op| u64::from(op.cycles)).sum::<u64>(),
                    "{}",
                    spec.name
                );
            }
            assert_eq!(next as usize, d.ops.len(), "{}: full coverage", spec.name);
            // Every dispatchable index is a span start: block starts
            // (jump/branch targets) and call continuations.
            for &bs in &d.block_starts {
                assert_eq!(
                    d.spans[d.span_of[bs as usize] as usize].start, bs,
                    "{}: block start mid-span",
                    spec.name
                );
            }
            for (i, op) in d.ops.iter().enumerate() {
                if matches!(op.kind, OpKind::Call { .. }) && i + 1 < d.ops.len() {
                    assert_eq!(
                        d.spans[d.span_of[i + 1] as usize].start as usize,
                        i + 1,
                        "{}: call continuation mid-span",
                        spec.name
                    );
                }
            }
        }
    }
}

/// Golden snapshot: the decoded stream of one small program, op by op.
/// Any change to instruction sizes, latencies, or decode lowering
/// shows up here first.
#[test]
fn golden_decoded_stream() {
    let mut p = ProgramBuilder::new("golden");
    let mut f = p.function("main", 0);
    let s = f.slot();
    f.store_slot(s, 5); // pc 0, size 4, 1 cycle
    let header = f.new_block();
    let body = f.new_block();
    let exit = f.new_block();
    f.jump(header); // pc 4, size 5, 1 cycle
    f.switch_to(header);
    let i = f.load_slot(s); // pc 9, size 4, 1 cycle
    let c = f.alu(AluOp::CmpLt, i, 10); // pc 13, size 5 (imm), 1 cycle
    f.branch(c, body, exit); // pc 18, size 6, 1 cycle
    f.switch_to(body);
    let ni = f.alu(AluOp::Add, i, 1); // pc 24, size 5, 1 cycle
    f.store_slot(s, ni); // pc 29, size 4, 1 cycle
    f.jump(header); // pc 33, size 5, 1 cycle
    f.switch_to(exit);
    f.ret(Some(i.into())); // pc 38, size 1, 1 cycle
    let main = p.add_function(f);
    let prog = p.finish(main).unwrap();

    let vm = Vm::new(&prog);
    let d = &vm.decoded_funcs()[0];
    assert_eq!(d.block_starts, vec![0, 2, 5, 8]);
    assert_eq!(d.num_regs, 3);
    assert_eq!(d.frame_bytes, 8);

    let expected: Vec<(u64, u32, u32)> = vec![
        (0, 4, 1),  // store_slot
        (4, 5, 1),  // jump -> header
        (9, 4, 1),  // load_slot
        (13, 5, 1), // cmp imm
        (18, 6, 1), // branch
        (24, 5, 1), // add imm
        (29, 4, 1), // store_slot
        (33, 5, 1), // jump -> header
        (38, 1, 1), // ret
    ];
    let got: Vec<(u64, u32, u32)> = d.ops.iter().map(|op| (op.pc, op.size, op.cycles)).collect();
    assert_eq!(got, expected);

    // Control flow is pre-resolved to flat indices.
    assert!(matches!(d.ops[1].kind, OpKind::Jump { target: 2 }));
    assert!(matches!(
        d.ops[4].kind,
        OpKind::Branch {
            taken: 5,
            not_taken: 8,
            ..
        }
    ));
    assert!(matches!(d.ops[7].kind, OpKind::Jump { target: 2 }));
    assert!(matches!(d.ops[8].kind, OpKind::Ret { .. }));
    // Slot accesses are pre-scaled to byte offsets.
    assert!(matches!(
        d.ops[0].kind,
        OpKind::StoreSlot { byte_off: 0, .. }
    ));
}
