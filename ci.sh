#!/bin/sh
# Tier-1 CI entry point.
#
# The workspace has zero external dependencies, so everything below
# runs with an empty cargo registry cache and no network. Keep it that
# way: any step that needs the registry is a regression.
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> fuzz gate: differential fuzz, 2000 programs (seed base ${SZ_CONF_SEED:-default})"
# The standing conformance gate: 2,000 generated programs through all
# six engine/allocator configurations and both interpreters, wall-time
# capped. Export SZ_CONF_SEED=<n> to sweep a different region of
# program space without a code change; on divergence the binary exits
# nonzero and prints a self-contained reproducer artifact.
SZ_CONF_SEED="${SZ_CONF_SEED:-}" cargo run -q --release --offline -p sz-fuzz --bin sz-fuzz -- \
    --programs 2000 --time-cap-ms 50000

echo "==> fuzz fuel sweep: 300 programs re-cut at reduced budgets"
# Re-run a slice of the sweep with --fuel-sweep: each clean program is
# replayed at 2-3 reduced max_instructions budgets and both
# interpreters must report OutOfFuel at exactly the cut with identical
# engine-visible counter traces. Catches batched executors that retire
# fuel in different-sized chunks than the reference.
SZ_CONF_SEED="${SZ_CONF_SEED:-}" cargo run -q --release --offline -p sz-fuzz --bin sz-fuzz -- \
    --programs 300 --fuel-sweep --time-cap-ms 30000

echo "==> fuzz negative control: injected engine must be caught and shrunk"
# Arm the deliberately broken global-aliasing engine at a pinned seed
# base: the fuzzer must exit nonzero and print a reproducer. This
# proves the gate can actually fail, and that failures arrive shrunk.
if OUT="$(cargo run -q --release --offline -p sz-fuzz --bin sz-fuzz -- \
    --seed-base 0xC0FFEE00 --programs 500 --inject-global-alias 2>/dev/null)"; then
    echo "injected divergence was not detected"; exit 1
fi
echo "$OUT" | grep -q '"type":"reproducer"' \
    || { echo "no reproducer artifact printed"; exit 1; }
echo "fuzz negative control: divergence caught, reproducer emitted"

echo "==> bench smoke: micro emits parseable BENCH_sim.json (3 runs for medians)"
# Three full micro runs: the regression gate below compares the
# per-metric *median* of the three against the committed baseline, so
# a single noisy run cannot fail CI (or, worse, mask a regression).
for i in 1 2 3; do
    SZ_BENCH_SIM_PATH="target/BENCH_sim.$i.json" \
        cargo run -q --release --offline -p sz-bench --bin micro >/dev/null
done
if command -v jq >/dev/null 2>&1; then
    jq empty target/BENCH_sim.1.json
else
    python3 -c 'import json,sys; json.load(open(sys.argv[1]))' target/BENCH_sim.1.json
fi

echo "==> throughput gate: bench_gate verdicts vs committed baseline (band ±${SZ_GATE_BAND:-0.20})"
# Statistically sound replacement for the old fixed 20% threshold:
# bench_gate bootstraps an effect CI per gated metric (baseline samples
# vs the three fresh runs) and fails ONLY on a robustly-slower verdict
# — the whole CI must clear the equivalence band, so one noisy CI run
# can neither fail the build nor hide a real regression. On failure it
# prints the full verdict metadata (ratio CI, Welch CI, band, seed,
# samples per arm). Tune with SZ_GATE_BAND (default 0.20).
SZ_GATE_BAND="${SZ_GATE_BAND:-}" cargo run -q --release --offline -p sz-bench --bin bench_gate -- \
    --baseline BENCH_sim.json \
    target/BENCH_sim.1.json target/BENCH_sim.2.json target/BENCH_sim.3.json

echo "==> statistics calibration: bootstrap CI coverage self-test (release, 300 trials)"
# Monte Carlo check that the effect CI's empirical coverage stays
# within the pinned tolerance of nominal 95% — the gate above is only
# sound if the intervals it trusts are calibrated.
SZ_COVERAGE_TRIALS=300 cargo test -q --release --offline \
    --test statistics_validation effect_ci_coverage_matches_nominal

echo "==> sz-serve smoke: daemon round-trip with a cache hit"
# Start the daemon on an ephemeral port, make the same quick request
# twice (the second must be a cache hit), and shut it down cleanly —
# all within a bounded timeout.
SERVE_LOG="target/sz-serve-smoke.log"
cargo run -q --release --offline -p sz-serve --bin sz-serve -- \
    --addr 127.0.0.1:0 --workers 1 --queue 4 >"$SERVE_LOG" 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT
SERVE_ADDR=""
for _ in $(seq 1 100); do
    SERVE_ADDR="$(sed -n 's/^sz-serve listening on //p' "$SERVE_LOG")"
    [ -n "$SERVE_ADDR" ] && break
    sleep 0.1
done
[ -n "$SERVE_ADDR" ] || { echo "sz-serve did not start"; cat "$SERVE_LOG"; exit 1; }
SZCTL="target/release/szctl"
"$SZCTL" --addr "$SERVE_ADDR" --json run table1 --bench bzip2 --runs 3 \
    | grep -q '"cached":false' || { echo "first request should miss"; exit 1; }
"$SZCTL" --addr "$SERVE_ADDR" --json run table1 --bench bzip2 --runs 3 \
    | grep -q '"cached":true' || { echo "second request should hit the cache"; exit 1; }
"$SZCTL" --addr "$SERVE_ADDR" --json stats | grep -q '"type":"stats"' \
    || { echo "stats request failed"; exit 1; }
"$SZCTL" --addr "$SERVE_ADDR" shutdown >/dev/null
for _ in $(seq 1 100); do
    kill -0 "$SERVE_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "sz-serve did not shut down within 10s"
    kill "$SERVE_PID"
    exit 1
fi
trap - EXIT
echo "sz-serve smoke: miss, hit, stats, clean shutdown"

echo "ci.sh: all checks passed"
