#!/bin/sh
# Tier-1 CI entry point.
#
# The workspace has zero external dependencies, so everything below
# runs with an empty cargo registry cache and no network. Keep it that
# way: any step that needs the registry is a regression.
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "ci.sh: all checks passed"
