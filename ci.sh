#!/bin/sh
# Tier-1 CI entry point.
#
# The workspace has zero external dependencies, so everything below
# runs with an empty cargo registry cache and no network. Keep it that
# way: any step that needs the registry is a regression.
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> fuzz gate: differential fuzz, 2000 programs (seed base ${SZ_CONF_SEED:-default})"
# The standing conformance gate: 2,000 generated programs through all
# six engine/allocator configurations and both interpreters, wall-time
# capped. Export SZ_CONF_SEED=<n> to sweep a different region of
# program space without a code change; on divergence the binary exits
# nonzero and prints a self-contained reproducer artifact.
SZ_CONF_SEED="${SZ_CONF_SEED:-}" cargo run -q --release --offline -p sz-fuzz --bin sz-fuzz -- \
    --programs 2000 --time-cap-ms 50000

echo "==> fuzz fuel sweep: 300 programs re-cut at reduced budgets"
# Re-run a slice of the sweep with --fuel-sweep: each clean program is
# replayed at 2-3 reduced max_instructions budgets and both
# interpreters must report OutOfFuel at exactly the cut with identical
# engine-visible counter traces. Catches batched executors that retire
# fuel in different-sized chunks than the reference.
SZ_CONF_SEED="${SZ_CONF_SEED:-}" cargo run -q --release --offline -p sz-fuzz --bin sz-fuzz -- \
    --programs 300 --fuel-sweep --time-cap-ms 30000

echo "==> fuzz negative control: injected engine must be caught and shrunk"
# Arm the deliberately broken global-aliasing engine at a pinned seed
# base: the fuzzer must exit nonzero and print a reproducer. This
# proves the gate can actually fail, and that failures arrive shrunk.
if OUT="$(cargo run -q --release --offline -p sz-fuzz --bin sz-fuzz -- \
    --seed-base 0xC0FFEE00 --programs 500 --inject-global-alias 2>/dev/null)"; then
    echo "injected divergence was not detected"; exit 1
fi
echo "$OUT" | grep -q '"type":"reproducer"' \
    || { echo "no reproducer artifact printed"; exit 1; }
echo "fuzz negative control: divergence caught, reproducer emitted"

echo "==> bench smoke: micro emits parseable BENCH_sim.json (3 runs for medians)"
# Three full micro runs: the regression gate below compares the
# per-metric *median* of the three against the committed baseline, so
# a single noisy run cannot fail CI (or, worse, mask a regression).
for i in 1 2 3; do
    SZ_BENCH_SIM_PATH="target/BENCH_sim.$i.json" \
        cargo run -q --release --offline -p sz-bench --bin micro >/dev/null
done
if command -v jq >/dev/null 2>&1; then
    jq empty target/BENCH_sim.1.json
else
    python3 -c 'import json,sys; json.load(open(sys.argv[1]))' target/BENCH_sim.1.json
fi

echo "==> throughput gate: bench_gate verdicts vs committed baseline (band ±${SZ_GATE_BAND:-0.20})"
# Statistically sound replacement for the old fixed 20% threshold:
# bench_gate bootstraps an effect CI per gated metric (baseline samples
# vs the three fresh runs) and fails ONLY on a robustly-slower verdict
# — the whole CI must clear the equivalence band, so one noisy CI run
# can neither fail the build nor hide a real regression. On failure it
# prints the full verdict metadata (ratio CI, Welch CI, band, seed,
# samples per arm). Tune with SZ_GATE_BAND (default 0.20). The
# --history file gives the gate memory across runs: each invocation
# appends its fresh sample sets and a sentinel change-point pass over
# the per-entry trajectory fails the build if the *latest* entry is a
# robustly-slower shift — catching slow drift that each individual
# baseline comparison would wave through.
SZ_GATE_BAND="${SZ_GATE_BAND:-}" cargo run -q --release --offline -p sz-bench --bin bench_gate -- \
    --history paper-results/BENCH_history.jsonl \
    --baseline BENCH_sim.json \
    target/BENCH_sim.1.json target/BENCH_sim.2.json target/BENCH_sim.3.json

echo "==> statistics calibration: bootstrap CI coverage self-test (release, 300 trials)"
# Monte Carlo check that the effect CI's empirical coverage stays
# within the pinned tolerance of nominal 95% — the gate above is only
# sound if the intervals it trusts are calibrated.
SZ_COVERAGE_TRIALS=300 cargo test -q --release --offline \
    --test statistics_validation effect_ci_coverage_matches_nominal

echo "==> sz-serve smoke: daemon round-trip with a cache hit"
# Start the daemon on an ephemeral port, make the same quick request
# twice (the second must be a cache hit), and shut it down cleanly —
# all within a bounded timeout.
SERVE_LOG="target/sz-serve-smoke.log"
cargo run -q --release --offline -p sz-serve --bin sz-serve -- \
    --addr 127.0.0.1:0 --workers 1 --queue 4 >"$SERVE_LOG" 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT
SERVE_ADDR=""
for _ in $(seq 1 100); do
    SERVE_ADDR="$(sed -n 's/^sz-serve listening on //p' "$SERVE_LOG")"
    [ -n "$SERVE_ADDR" ] && break
    sleep 0.1
done
[ -n "$SERVE_ADDR" ] || { echo "sz-serve did not start"; cat "$SERVE_LOG"; exit 1; }
SZCTL="target/release/szctl"
"$SZCTL" --addr "$SERVE_ADDR" --json run table1 --bench bzip2 --runs 3 \
    | grep -q '"cached":false' || { echo "first request should miss"; exit 1; }
"$SZCTL" --addr "$SERVE_ADDR" --json run table1 --bench bzip2 --runs 3 \
    | grep -q '"cached":true' || { echo "second request should hit the cache"; exit 1; }
"$SZCTL" --addr "$SERVE_ADDR" --json stats | grep -q '"type":"stats"' \
    || { echo "stats request failed"; exit 1; }
# Record a real 8-runs-per-variant trace for the sentinel smoke below
# (8 samples = exactly two 4-sample detector windows per series).
"$SZCTL" --addr "$SERVE_ADDR" --json run evaluate --bench bzip2 --runs 8 --trace \
    >target/sentinel-clean.jsonl
"$SZCTL" --addr "$SERVE_ADDR" shutdown >/dev/null
for _ in $(seq 1 100); do
    kill -0 "$SERVE_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "sz-serve did not shut down within 10s"
    kill "$SERVE_PID"
    exit 1
fi
trap - EXIT
echo "sz-serve smoke: miss, hit, stats, clean shutdown"

echo "==> sentinel smoke: clean trace silent, injected regression caught"
# Offline scan of the trace recorded above: a clean stream must exit 0
# with no alerts, and the same stream with a +50% step injected into
# the back half must alert — the armed negative control proving the
# detector can actually fire — and the alert must name the offending
# windows so the report is actionable.
SENTINEL="target/release/sz-sentinel"
"$SENTINEL" target/sentinel-clean.jsonl >/dev/null \
    || { echo "clean trace must scan silently"; exit 1; }
if OUT="$("$SENTINEL" --inject-step 1.5 --inject-at 4 \
    target/sentinel-clean.jsonl 2>/dev/null)"; then
    echo "injected regression was not detected"; exit 1
fi
echo "$OUT" | grep -q '"type":"alert"' \
    || { echo "no alert record printed"; exit 1; }
echo "$OUT" | grep -q '"old_window"' \
    || { echo "alert does not carry the offending window"; exit 1; }
echo "sentinel smoke: clean stream silent, injected step alerted with windows"

echo "==> loadgen smoke: 512 concurrent clients against a spawned server"
# The event-loop front-end under real concurrency: 512 clients issuing
# cache-hit run + stats requests. Exit is nonzero if any connection
# dies; the statistical p99 regression gate ran above (the `loadgen`
# section of BENCH_sim.json, judged by bench_gate alongside the
# interpreter metrics).
target/release/sz-loadgen --spawn --clients 512 --requests 4 --waves 3

echo "==> federation smoke: coordinator + 2 nodes, byte-identical shard merge"
# Spawn a single-node reference, two workers, and a coordinator that
# shards across them; the coordinator-merged evaluate transcript must
# be byte-identical to the single-node run, and one szctl --peers
# shutdown must stop the whole fleet cleanly.
serve_wait_addr() {
    _SA=""
    for _ in $(seq 1 100); do
        _SA="$(sed -n 's/^sz-serve listening on //p' "$1")"
        [ -n "$_SA" ] && break
        sleep 0.1
    done
    [ -n "$_SA" ] || { echo "sz-serve did not start ($1)"; cat "$1"; exit 1; }
    echo "$_SA"
}
SERVE="target/release/sz-serve"
"$SERVE" --addr 127.0.0.1:0 --workers 1 >target/fed-single.log 2>&1 &
FED_SINGLE_PID=$!
"$SERVE" --addr 127.0.0.1:0 --workers 1 --role node >target/fed-node-a.log 2>&1 &
FED_A_PID=$!
"$SERVE" --addr 127.0.0.1:0 --workers 1 --role node >target/fed-node-b.log 2>&1 &
FED_B_PID=$!
trap 'kill "$FED_SINGLE_PID" "$FED_A_PID" "$FED_B_PID" ${FED_COORD_PID:-} 2>/dev/null || true' EXIT
SINGLE_ADDR="$(serve_wait_addr target/fed-single.log)"
NODE_A_ADDR="$(serve_wait_addr target/fed-node-a.log)"
NODE_B_ADDR="$(serve_wait_addr target/fed-node-b.log)"
"$SERVE" --addr 127.0.0.1:0 --workers 1 --role coordinator \
    --peers "$NODE_A_ADDR,$NODE_B_ADDR" >target/fed-coord.log 2>&1 &
FED_COORD_PID=$!
COORD_ADDR="$(serve_wait_addr target/fed-coord.log)"
"$SZCTL" --addr "$SINGLE_ADDR" --json run evaluate --bench bzip2 --runs 4 --trace \
    >target/fed-single.jsonl
"$SZCTL" --addr "$COORD_ADDR" --json run evaluate --bench bzip2 --runs 4 --trace \
    >target/fed-merged.jsonl
python3 - target/fed-single.jsonl target/fed-merged.jsonl <<'EOF'
import json, sys
single = open(sys.argv[1]).read().splitlines()
merged = open(sys.argv[2]).read().splitlines()
assert len(single) > 1, "single-node run streamed no trace lines"
assert single[:-1] == merged[:-1], "merged trace is not byte-identical"
s, m = json.loads(single[-1]), json.loads(merged[-1])
assert s["summary"] == m["summary"], "verdict summaries differ"
assert m["cached"] is False, "coordinator run must be a cold fan-out"
print(f"federation smoke: {len(single) - 1} trace lines byte-identical, verdicts match")
EOF
"$SZCTL" --addr "$COORD_ADDR" --json stats | grep -q '"shard_fanouts":1' \
    || { echo "coordinator did not shard the run"; exit 1; }
"$SZCTL" --addr "$COORD_ADDR" --peers "$NODE_A_ADDR,$NODE_B_ADDR" shutdown >/dev/null
"$SZCTL" --addr "$SINGLE_ADDR" shutdown >/dev/null
for PID in "$FED_SINGLE_PID" "$FED_A_PID" "$FED_B_PID" "$FED_COORD_PID"; do
    for _ in $(seq 1 100); do
        kill -0 "$PID" 2>/dev/null || break
        sleep 0.1
    done
    if kill -0 "$PID" 2>/dev/null; then
        echo "federation process $PID did not shut down within 10s"
        exit 1
    fi
done
trap - EXIT
echo "federation smoke: sharded run merged bit-identically, fleet shut down cleanly"

echo "ci.sh: all checks passed"
