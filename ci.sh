#!/bin/sh
# Tier-1 CI entry point.
#
# The workspace has zero external dependencies, so everything below
# runs with an empty cargo registry cache and no network. Keep it that
# way: any step that needs the registry is a regression.
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> conformance: cross-engine differential suite (seed ${SZ_CONF_SEED:-default})"
# Runs the generated-program conformance suite at its fixed committed
# seeds; export SZ_CONF_SEED=<n> to sweep a different region of program
# space without a code change.
SZ_CONF_SEED="${SZ_CONF_SEED:-}" cargo test -q --release --offline --test conformance_differential

echo "==> bench smoke: micro emits parseable BENCH_sim.json"
SZ_BENCH_SIM_PATH=target/BENCH_sim.json cargo run -q --release --offline -p sz-bench --bin micro >/dev/null
if command -v jq >/dev/null 2>&1; then
    jq empty target/BENCH_sim.json
else
    python3 -c 'import json,sys; json.load(open(sys.argv[1]))' target/BENCH_sim.json
fi

echo "==> throughput smoke: fig6 sweep vs committed baseline"
# Fails if the fresh fig6 wall time regresses more than 20% against the
# committed BENCH_sim.json baseline (it ratchets forward when the
# committed file is re-baselined).
python3 - target/BENCH_sim.json BENCH_sim.json <<'EOF'
import json, sys
fresh = json.load(open(sys.argv[1]))["fig6_quick"]["wall_seconds"]
baseline = json.load(open(sys.argv[2]))["fig6_quick"]["wall_seconds"]
limit = baseline * 1.20
print(f"fig6_quick: fresh {fresh:.3f}s vs baseline {baseline:.3f}s (limit {limit:.3f}s)")
if fresh > limit:
    sys.exit(f"fig6 throughput regressed >20%: {fresh:.3f}s > {limit:.3f}s")
EOF

echo "ci.sh: all checks passed"
