#!/bin/sh
# Tier-1 CI entry point.
#
# The workspace has zero external dependencies, so everything below
# runs with an empty cargo registry cache and no network. Keep it that
# way: any step that needs the registry is a regression.
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> bench smoke: micro emits parseable BENCH_sim.json"
SZ_BENCH_SIM_PATH=target/BENCH_sim.json cargo run -q --release --offline -p sz-bench --bin micro >/dev/null
if command -v jq >/dev/null 2>&1; then
    jq empty target/BENCH_sim.json
else
    python3 -c 'import json,sys; json.load(open(sys.argv[1]))' target/BENCH_sim.json
fi

echo "ci.sh: all checks passed"
