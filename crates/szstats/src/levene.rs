//! The Brown–Forsythe test for homogeneity of variance.
//!
//! Table 1 of the paper uses Brown–Forsythe to ask whether one-time
//! randomization and re-randomization produce execution times with the
//! same variance (re-randomization usually *reduces* variance through
//! regression to the mean, §5.1).

use crate::anova::one_way_anova;
use crate::desc::median;
use crate::StatError;

/// Result of the Brown–Forsythe (median-centered Levene) test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeveneResult {
    /// The F statistic of the ANOVA on absolute median deviations.
    pub f: f64,
    /// Numerator degrees of freedom (`k - 1`).
    pub df_between: f64,
    /// Denominator degrees of freedom (`N - k`).
    pub df_within: f64,
    /// P-value for the null hypothesis of equal variances.
    pub p_value: f64,
}

/// Brown–Forsythe test: a one-way ANOVA on `|x_ij - median_j|`.
///
/// Median centering (rather than Levene's mean centering) makes the
/// test robust to the heavy-tailed timing distributions this crate
/// exists to diagnose.
///
/// # Errors
///
/// Propagates the error conditions of [`one_way_anova`]; in addition
/// all-identical groups yield [`StatError::ZeroVariance`].
///
/// # Examples
///
/// ```
/// use sz_stats::brown_forsythe;
///
/// let tight: Vec<f64> = (0..20).map(|i| 10.0 + 0.01 * (i % 5) as f64).collect();
/// let wide: Vec<f64> = (0..20).map(|i| 10.0 + 1.0 * (i % 5) as f64).collect();
/// let r = brown_forsythe(&[tight, wide])?;
/// assert!(r.p_value < 0.01, "variances clearly differ");
/// # Ok::<(), sz_stats::StatError>(())
/// ```
pub fn brown_forsythe(groups: &[Vec<f64>]) -> Result<LeveneResult, StatError> {
    if groups.len() < 2 {
        return Err(StatError::TooFewSamples {
            needed: 2,
            got: groups.len(),
        });
    }
    let mut deviations = Vec::with_capacity(groups.len());
    for g in groups {
        if g.len() < 2 {
            return Err(StatError::TooFewSamples {
                needed: 2,
                got: g.len(),
            });
        }
        let med = median(g)?;
        deviations.push(g.iter().map(|v| (v - med).abs()).collect::<Vec<f64>>());
    }
    let anova = one_way_anova(&deviations)?;
    Ok(LeveneResult {
        f: anova.f,
        df_between: anova.df_treatment,
        df_within: anova.df_error,
        p_value: anova.p_value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_spread_not_rejected() {
        let a: Vec<f64> = (0..30).map(|i| (i % 7) as f64).collect();
        let b: Vec<f64> = (0..30).map(|i| 100.0 + ((i + 3) % 7) as f64).collect();
        let r = brown_forsythe(&[a, b]).unwrap();
        assert!(r.p_value > 0.5, "p = {}", r.p_value);
    }

    #[test]
    fn location_shift_alone_is_ignored() {
        // Same shape, wildly different means: the test must not fire.
        let a: Vec<f64> = (0..25).map(|i| (i % 5) as f64 * 0.3).collect();
        let b: Vec<f64> = a.iter().map(|v| v + 1000.0).collect();
        let r = brown_forsythe(&[a, b]).unwrap();
        assert!(r.p_value > 0.9, "p = {}", r.p_value);
    }

    #[test]
    fn tenfold_spread_detected() {
        let a: Vec<f64> = (0..30).map(|i| 0.1 * (i % 10) as f64).collect();
        let b: Vec<f64> = (0..30).map(|i| 1.0 * (i % 10) as f64).collect();
        let r = brown_forsythe(&[a, b]).unwrap();
        assert!(r.p_value < 0.001, "p = {}", r.p_value);
        assert_eq!(r.df_between, 1.0);
        assert_eq!(r.df_within, 58.0);
    }

    #[test]
    fn identical_groups_error() {
        assert_eq!(
            brown_forsythe(&[vec![1.0; 5], vec![1.0; 5]]),
            Err(StatError::ZeroVariance)
        );
    }

    #[test]
    fn three_groups_supported() {
        let groups: Vec<Vec<f64>> = (1..=3)
            .map(|k| (0..20).map(|i| k as f64 * (i % 6) as f64).collect())
            .collect();
        let r = brown_forsythe(&groups).unwrap();
        assert_eq!(r.df_between, 2.0);
        assert!(r.p_value < 0.05);
    }
}
