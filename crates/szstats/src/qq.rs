//! Quantile-quantile points against the Gaussian (Figure 5).

use crate::dist::Normal;
use crate::error::check_finite;
use crate::{mean, sample_std, StatError};

/// One point of a QQ plot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QqPoint {
    /// Theoretical standard-normal quantile (x axis).
    pub theoretical: f64,
    /// Observed sample quantile (y axis).
    pub observed: f64,
}

/// Computes QQ-plot points for `data` against the standard normal.
///
/// Sample quantiles use Blom's plotting positions
/// `(i − 0.375) / (n + 0.25)`. When `standardize` is set, observations
/// are shifted to mean zero and scaled by `scale` (the paper's Figure 5
/// normalizes every benchmark to the standard deviation of its
/// *re-randomized* samples so both configurations share axes); pass
/// `None` to use the sample's own standard deviation.
///
/// Points from a normal sample fall on the line `y = x`; a steeper
/// slope indicates greater variance.
///
/// # Errors
///
/// - [`StatError::TooFewSamples`] for fewer than 3 observations;
/// - [`StatError::ZeroVariance`] when standardizing constant data;
/// - [`StatError::NonFinite`] for NaN/infinite data.
///
/// # Examples
///
/// ```
/// use sz_stats::qq_points;
///
/// let data: Vec<f64> = (1..=30).map(|i| i as f64).collect();
/// let pts = qq_points(&data, true, None)?;
/// assert_eq!(pts.len(), 30);
/// // Middle of a symmetric sample sits near the origin.
/// assert!(pts[14].theoretical.abs() < 0.1);
/// # Ok::<(), sz_stats::StatError>(())
/// ```
pub fn qq_points(
    data: &[f64],
    standardize: bool,
    scale: Option<f64>,
) -> Result<Vec<QqPoint>, StatError> {
    let n = data.len();
    if n < 3 {
        return Err(StatError::TooFewSamples { needed: 3, got: n });
    }
    check_finite(data)?;
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite data"));

    let (shift, s) = if standardize {
        let s = match scale {
            Some(s) => s,
            None => sample_std(&sorted),
        };
        if s <= 0.0 {
            return Err(StatError::ZeroVariance);
        }
        (mean(&sorted), s)
    } else {
        (0.0, 1.0)
    };

    let nf = n as f64;
    Ok(sorted
        .iter()
        .enumerate()
        .map(|(i, &v)| QqPoint {
            theoretical: Normal::quantile(((i + 1) as f64 - 0.375) / (nf + 0.25)),
            observed: (v - shift) / s,
        })
        .collect())
}

/// Least-squares slope of observed on theoretical quantiles.
///
/// A slope near 1 for standardized data indicates the sample variance
/// matches the reference; the paper reads variance differences off the
/// QQ slopes in Figure 5.
pub fn qq_slope(points: &[QqPoint]) -> f64 {
    let n = points.len() as f64;
    let mx = points.iter().map(|p| p.theoretical).sum::<f64>() / n;
    let my = points.iter().map(|p| p.observed).sum::<f64>() / n;
    let mut num = 0.0;
    let mut den = 0.0;
    for p in points {
        num += (p.theoretical - mx) * (p.observed - my);
        den += (p.theoretical - mx) * (p.theoretical - mx);
    }
    num / den
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_scores_lie_on_diagonal() {
        // Feed exact normal scores back in: points must sit on y = x.
        let n = 50;
        let data: Vec<f64> = (1..=n)
            .map(|i| Normal::quantile((i as f64 - 0.375) / (n as f64 + 0.25)))
            .collect();
        let pts = qq_points(&data, false, None).unwrap();
        for p in &pts {
            assert!((p.theoretical - p.observed).abs() < 1e-9);
        }
        assert!((qq_slope(&pts) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn standardization_centers_the_points() {
        let data: Vec<f64> = (1..=30).map(|i| 1000.0 + 3.0 * i as f64).collect();
        let pts = qq_points(&data, true, None).unwrap();
        let mean_obs: f64 = pts.iter().map(|p| p.observed).sum::<f64>() / 30.0;
        assert!(mean_obs.abs() < 1e-9);
    }

    #[test]
    fn external_scale_controls_slope() {
        let data: Vec<f64> = (1..=40)
            .map(|i| 2.0 * Normal::quantile((i as f64 - 0.375) / 40.25))
            .collect();
        // Standardized by sigma = 1 (not the sample's own 2.0), the slope
        // must come out near 2 — exactly how Figure 5 shows variance.
        let pts = qq_points(&data, true, Some(1.0)).unwrap();
        let slope = qq_slope(&pts);
        assert!((slope - 2.0).abs() < 0.05, "slope = {slope}");
    }

    #[test]
    fn rejects_degenerate_input() {
        assert!(matches!(
            qq_points(&[1.0, 2.0], false, None),
            Err(StatError::TooFewSamples { .. })
        ));
        assert_eq!(
            qq_points(&[1.0, 1.0, 1.0], true, None),
            Err(StatError::ZeroVariance)
        );
    }
}
