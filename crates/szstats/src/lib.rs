//! Statistical machinery for statistically sound performance evaluation.
//!
//! STABILIZER's whole point (§2 of the paper) is that once execution
//! times are normally distributed, *parametric* hypothesis tests become
//! applicable. This crate supplies everything the paper's evaluation
//! uses:
//!
//! - [`shapiro_wilk`] — the test for normality behind **Table 1**;
//! - [`brown_forsythe`] — the variance-homogeneity test in **Table 1**;
//! - [`welch_t_test`] / [`student_t_test`] / [`paired_t_test`] — the
//!   per-benchmark significance tests of **Figure 7** (§2.4);
//! - [`wilcoxon_signed_rank`] / [`mann_whitney_u`] — the non-parametric
//!   fallbacks for non-normal benchmarks (§6);
//! - [`one_way_anova`] / [`repeated_measures_anova`] — the suite-wide
//!   analysis of **§6.1**;
//! - [`qq_points`] — quantile-quantile points against the Gaussian for
//!   **Figure 5**;
//! - [`dist`] — normal, Student-t, F and χ² distributions built on the
//!   special functions in [`special`];
//! - [`effect_ci`] / [`effect_ci_hierarchical`] — deterministic
//!   percentile-bootstrap CIs on the ratio-of-means effect size
//!   (Kalibera & Jones);
//! - [`judge`] / [`judge_hierarchical`] — practical-equivalence
//!   verdicts (`RobustlyFaster` / `RobustlySlower` / `Equivalent` /
//!   `Inconclusive`) combining the bootstrap and Welch intervals;
//! - [`reduce_suite`] — μOpTime-style static suite reduction by
//!   stability metrics.
//!
//! # Examples
//!
//! ```
//! use sz_stats::{shapiro_wilk, welch_t_test};
//!
//! let before = [10.1, 10.3, 9.8, 10.0, 10.2, 9.9, 10.15, 10.05];
//! let after = [9.1, 9.3, 8.8, 9.0, 9.2, 8.9, 9.15, 9.05];
//!
//! let sw = shapiro_wilk(&before)?;
//! assert!(sw.p_value > 0.05, "plausibly normal");
//!
//! let t = welch_t_test(&before, &after)?;
//! assert!(t.p_value < 0.05, "the change is statistically significant");
//! # Ok::<(), sz_stats::StatError>(())
//! ```

pub mod anova;
pub mod bootstrap;
pub mod desc;
pub mod dist;
pub mod qq;
pub mod reduce;
pub mod special;
pub mod verdict;

mod effect;
mod error;
mod levene;
mod shapiro;
mod ttest;
mod wilcoxon;

pub use anova::{one_way_anova, repeated_measures_anova, AnovaResult};
pub use bootstrap::{effect_ci, effect_ci_hierarchical, EffectCi};
pub use desc::{geometric_mean, mean, median, quantile, sample_std, sample_variance, Summary};
pub use effect::{cohens_d, diff_ci, diff_half_width, mean_ci, ConfidenceInterval};
pub use error::StatError;
pub use levene::{brown_forsythe, LeveneResult};
pub use qq::{qq_points, QqPoint};
pub use reduce::{rank_stability, reduce_suite, BenchmarkArms, StabilityRow, SuiteReduction};
pub use shapiro::{shapiro_wilk, ShapiroWilk};
pub use ttest::{paired_t_test, student_t_test, welch_t_test, TTest};
pub use verdict::{judge, judge_hierarchical, EffectVerdict, VerdictConfig, VerdictReport};
pub use wilcoxon::{mann_whitney_u, wilcoxon_signed_rank, RankTest};

/// Conventional significance threshold used throughout the paper.
pub const ALPHA: f64 = 0.05;

/// Outcome of a two-sided hypothesis test at a given significance level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The null hypothesis is rejected at the chosen `α`.
    Significant,
    /// The null hypothesis cannot be rejected.
    NotSignificant,
}

impl Verdict {
    /// Classifies a p-value against a significance level.
    pub fn from_p(p_value: f64, alpha: f64) -> Self {
        if p_value < alpha {
            Verdict::Significant
        } else {
            Verdict::NotSignificant
        }
    }

    /// Returns `true` for [`Verdict::Significant`].
    pub fn is_significant(self) -> bool {
        matches!(self, Verdict::Significant)
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::Significant => write!(f, "significant"),
            Verdict::NotSignificant => write!(f, "not significant"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_classification() {
        assert!(Verdict::from_p(0.01, ALPHA).is_significant());
        assert!(!Verdict::from_p(0.3, ALPHA).is_significant());
        assert!(
            !Verdict::from_p(0.05, ALPHA).is_significant(),
            "boundary is not significant"
        );
    }

    #[test]
    fn verdict_display() {
        assert_eq!(Verdict::Significant.to_string(), "significant");
        assert_eq!(Verdict::NotSignificant.to_string(), "not significant");
    }
}
