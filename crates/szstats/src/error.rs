//! Error type shared by all statistical routines.

/// Error returned by statistical tests on unusable input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatError {
    /// Fewer observations than the test requires.
    TooFewSamples {
        /// Minimum number of observations the test needs.
        needed: usize,
        /// Number actually supplied.
        got: usize,
    },
    /// More observations than the method's approximations support.
    TooManySamples {
        /// Maximum supported number of observations.
        max: usize,
        /// Number actually supplied.
        got: usize,
    },
    /// All observations are identical, so scale-based statistics are
    /// undefined.
    ZeroVariance,
    /// An observation was NaN or infinite.
    NonFinite,
    /// An observation was zero or negative where strictly positive
    /// data is required (e.g. ratios of mean execution times).
    NonPositive,
    /// Group sizes are inconsistent (e.g. ragged repeated-measures data).
    RaggedData,
}

impl std::fmt::Display for StatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatError::TooFewSamples { needed, got } => {
                write!(f, "needs at least {needed} samples, got {got}")
            }
            StatError::TooManySamples { max, got } => {
                write!(f, "supports at most {max} samples, got {got}")
            }
            StatError::ZeroVariance => write!(f, "all observations are identical"),
            StatError::NonFinite => write!(f, "observations must be finite"),
            StatError::NonPositive => write!(f, "observations must be strictly positive"),
            StatError::RaggedData => write!(f, "groups must have equal sizes"),
        }
    }
}

impl std::error::Error for StatError {}

/// Validates that every value in `data` is finite.
pub(crate) fn check_finite(data: &[f64]) -> Result<(), StatError> {
    if data.iter().all(|v| v.is_finite()) {
        Ok(())
    } else {
        Err(StatError::NonFinite)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            StatError::TooFewSamples { needed: 3, got: 1 }.to_string(),
            "needs at least 3 samples, got 1"
        );
        assert_eq!(
            StatError::ZeroVariance.to_string(),
            "all observations are identical"
        );
    }

    #[test]
    fn finite_check() {
        assert!(check_finite(&[1.0, 2.0]).is_ok());
        assert_eq!(check_finite(&[1.0, f64::NAN]), Err(StatError::NonFinite));
        assert_eq!(check_finite(&[f64::INFINITY]), Err(StatError::NonFinite));
    }
}
