//! μOpTime-style static suite reduction.
//!
//! A full-suite comparison (say `-O3` vs `-O2` across all 18
//! benchmarks) is expensive; μOpTime's observation is that a *stable*
//! subset of the suite usually reaches the same verdict. This module
//! ranks benchmarks by stability — the relative half-width of each
//! benchmark's own bootstrap effect CI, with the coefficient of
//! variation as a tie-break — and selects the shortest
//! stability-ranked prefix whose suite-level verdict matches the full
//! suite's.
//!
//! The suite-level verdict treats each benchmark as one *run* of a
//! hierarchical arm ([`judge_hierarchical`]): run-level resampling
//! captures benchmark-to-benchmark disagreement, iteration-level
//! resampling the per-benchmark noise. (The resulting ratio weighs
//! benchmarks by their mean execution time, like a total-time-of-suite
//! comparison; it is pinned in the golden file alongside everything
//! else.) The full-suite verdict is computed over the same
//! stability-ranked ordering the prefixes are drawn from, so the
//! search is guaranteed to terminate: the full prefix is bit-identical
//! to the full suite.

use crate::bootstrap::effect_ci;
use crate::desc::{mean, sample_std};
use crate::verdict::{judge_hierarchical, VerdictConfig, VerdictReport};
use crate::StatError;

/// One benchmark's two arms: baseline `a`, candidate `b`.
#[derive(Debug, Clone, Copy)]
pub struct BenchmarkArms<'a> {
    /// Benchmark name (carried through ranking and selection).
    pub name: &'a str,
    /// Baseline samples (e.g. `-O2` seconds).
    pub a: &'a [f64],
    /// Candidate samples (e.g. `-O3` seconds).
    pub b: &'a [f64],
}

/// One benchmark's stability metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct StabilityRow {
    /// Benchmark name.
    pub name: String,
    /// Relative half-width of the benchmark's own effect CI — the
    /// primary (ascending) ranking key.
    pub rel_half_width: f64,
    /// Worst coefficient of variation of the two arms — the
    /// tie-break.
    pub cv: f64,
    /// The benchmark's own effect ratio (`mean(a) / mean(b)`).
    pub ratio: f64,
}

/// The outcome of a suite reduction.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteReduction {
    /// All benchmarks, most stable first.
    pub ranking: Vec<StabilityRow>,
    /// Names of the selected (minimal verdict-preserving) subset, in
    /// ranking order.
    pub selected: Vec<String>,
    /// Suite-level verdict over the full ranked suite.
    pub full: VerdictReport,
    /// Suite-level verdict over the selected subset.
    pub reduced: VerdictReport,
}

impl SuiteReduction {
    /// Fraction of benchmarks the reduced suite drops.
    pub fn savings(&self) -> f64 {
        1.0 - self.selected.len() as f64 / self.ranking.len() as f64
    }
}

/// Ranks benchmarks by stability: ascending relative CI half-width,
/// then ascending CV, then name.
///
/// # Errors
///
/// As [`effect_ci`], per benchmark.
pub fn rank_stability(
    benches: &[BenchmarkArms<'_>],
    cfg: &VerdictConfig,
) -> Result<Vec<StabilityRow>, StatError> {
    let mut rows = Vec::with_capacity(benches.len());
    for bench in benches {
        let ci = effect_ci(bench.a, bench.b, cfg.confidence, cfg.resamples, cfg.seed)?;
        let cv = |s: &[f64]| sample_std(s) / mean(s);
        rows.push(StabilityRow {
            name: bench.name.to_string(),
            rel_half_width: ci.relative_half_width(),
            cv: cv(bench.a).max(cv(bench.b)),
            ratio: ci.ratio,
        });
    }
    rows.sort_by(|x, y| {
        x.rel_half_width
            .total_cmp(&y.rel_half_width)
            .then(x.cv.total_cmp(&y.cv))
            .then(x.name.cmp(&y.name))
    });
    Ok(rows)
}

/// Reduces a suite: returns the shortest stability-ranked prefix
/// whose suite-level verdict matches the full suite's.
///
/// # Errors
///
/// As [`rank_stability`] / [`judge_hierarchical`];
/// [`StatError::TooFewSamples`] for an empty suite.
pub fn reduce_suite(
    benches: &[BenchmarkArms<'_>],
    cfg: &VerdictConfig,
) -> Result<SuiteReduction, StatError> {
    if benches.is_empty() {
        return Err(StatError::TooFewSamples { needed: 1, got: 0 });
    }
    let ranking = rank_stability(benches, cfg)?;
    let by_name = |name: &str| {
        benches
            .iter()
            .find(|b| b.name == name)
            .expect("ranked benchmark exists")
    };
    let a_runs: Vec<Vec<f64>> = ranking
        .iter()
        .map(|r| by_name(&r.name).a.to_vec())
        .collect();
    let b_runs: Vec<Vec<f64>> = ranking
        .iter()
        .map(|r| by_name(&r.name).b.to_vec())
        .collect();
    let full = judge_hierarchical(&a_runs, &b_runs, cfg)?;
    for k in 1..=ranking.len() {
        let reduced = judge_hierarchical(&a_runs[..k], &b_runs[..k], cfg)?;
        if reduced.verdict == full.verdict {
            return Ok(SuiteReduction {
                selected: ranking[..k].iter().map(|r| r.name.clone()).collect(),
                ranking,
                full,
                reduced,
            });
        }
    }
    unreachable!("the full prefix is the full suite and matches itself")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verdict::EffectVerdict;

    fn arm(base: f64, spread: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| base + spread * (i % 7) as f64 / 7.0)
            .collect()
    }

    fn cfg() -> VerdictConfig {
        VerdictConfig::default()
    }

    #[test]
    fn ranking_prefers_tight_benchmarks() {
        let tight_a = arm(10.0, 0.05, 12);
        let tight_b = arm(9.0, 0.05, 12);
        let loose_a = arm(10.0, 5.0, 12);
        let loose_b = arm(9.0, 5.0, 12);
        let rows = rank_stability(
            &[
                BenchmarkArms {
                    name: "loose",
                    a: &loose_a,
                    b: &loose_b,
                },
                BenchmarkArms {
                    name: "tight",
                    a: &tight_a,
                    b: &tight_b,
                },
            ],
            &cfg(),
        )
        .unwrap();
        assert_eq!(rows[0].name, "tight");
        assert!(rows[0].rel_half_width < rows[1].rel_half_width);
    }

    #[test]
    fn homogeneous_suite_reduces_to_one_benchmark() {
        // Every benchmark shows the same clear 20% speedup: the most
        // stable one alone already reproduces the suite verdict.
        let arms: Vec<(Vec<f64>, Vec<f64>)> = (0..6)
            .map(|i| {
                (
                    arm(10.0 + i as f64, 0.1 + 0.02 * i as f64, 10),
                    arm(8.0 + 0.8 * i as f64, 0.1 + 0.02 * i as f64, 10),
                )
            })
            .collect();
        let names: Vec<String> = (0..6).map(|i| format!("bench{i}")).collect();
        let benches: Vec<BenchmarkArms<'_>> = arms
            .iter()
            .zip(&names)
            .map(|((a, b), name)| BenchmarkArms { name, a, b })
            .collect();
        let red = reduce_suite(&benches, &cfg()).unwrap();
        assert_eq!(red.full.verdict, EffectVerdict::RobustlyFaster);
        assert_eq!(red.reduced.verdict, red.full.verdict);
        assert_eq!(red.selected.len(), 1, "{:?}", red.selected);
        assert!(red.savings() > 0.8);
    }

    #[test]
    fn conflicted_suite_keeps_enough_benchmarks() {
        // One stable benchmark says "faster", the rest disagree; the
        // one-benchmark prefix must NOT satisfy the (inconclusive or
        // slower) suite verdict, forcing a larger subset.
        let fast_a = arm(10.0, 0.05, 10);
        let fast_b = arm(8.0, 0.05, 10);
        let slow: Vec<(Vec<f64>, Vec<f64>)> = (0..4)
            .map(|i| {
                (
                    arm(8.0 + i as f64, 0.4, 10),
                    arm(10.0 + 1.3 * i as f64, 0.4, 10),
                )
            })
            .collect();
        let names: Vec<String> = (0..4).map(|i| format!("slow{i}")).collect();
        let mut benches = vec![BenchmarkArms {
            name: "fast",
            a: &fast_a,
            b: &fast_b,
        }];
        benches.extend(
            slow.iter()
                .zip(&names)
                .map(|((a, b), name)| BenchmarkArms { name, a, b }),
        );
        let red = reduce_suite(&benches, &cfg()).unwrap();
        assert_ne!(red.full.verdict, EffectVerdict::RobustlyFaster);
        assert!(
            red.selected.len() > 1,
            "a single benchmark cannot fake this suite: {red:?}"
        );
        assert_eq!(red.reduced.verdict, red.full.verdict);
    }

    #[test]
    fn empty_suite_is_an_error() {
        assert!(matches!(
            reduce_suite(&[], &cfg()),
            Err(StatError::TooFewSamples { .. })
        ));
    }

    #[test]
    fn ranking_is_deterministic() {
        let a0 = arm(10.0, 0.3, 10);
        let b0 = arm(9.0, 0.3, 10);
        let a1 = arm(12.0, 0.4, 10);
        let b1 = arm(11.0, 0.4, 10);
        let benches = [
            BenchmarkArms {
                name: "x",
                a: &a0,
                b: &b0,
            },
            BenchmarkArms {
                name: "y",
                a: &a1,
                b: &b1,
            },
        ];
        let r1 = rank_stability(&benches, &cfg()).unwrap();
        let r2 = rank_stability(&benches, &cfg()).unwrap();
        assert_eq!(r1, r2);
    }
}
