//! Student's and Welch's t-tests (§2.4 of the paper).

use crate::desc::{mean, sample_variance};
use crate::dist::StudentT;
use crate::error::check_finite;
use crate::StatError;

/// Result of a t-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TTest {
    /// The t statistic.
    pub t: f64,
    /// Degrees of freedom (possibly fractional for Welch).
    pub df: f64,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Difference of means, `mean(a) - mean(b)`.
    pub mean_diff: f64,
}

fn validate_pair(a: &[f64], b: &[f64]) -> Result<(), StatError> {
    for s in [a, b] {
        if s.len() < 2 {
            return Err(StatError::TooFewSamples {
                needed: 2,
                got: s.len(),
            });
        }
        check_finite(s)?;
    }
    Ok(())
}

/// Welch's two-sample t-test (unequal variances).
///
/// This is the robust default for comparing two sets of execution
/// times, e.g. a benchmark under `-O2` vs `-O3` (Figure 7).
///
/// # Errors
///
/// Returns [`StatError::TooFewSamples`], [`StatError::NonFinite`], or
/// [`StatError::ZeroVariance`] if both samples are constant.
///
/// # Examples
///
/// ```
/// use sz_stats::welch_t_test;
///
/// let fast = [9.0, 9.2, 8.9, 9.1, 9.05, 8.95];
/// let slow = [10.0, 10.2, 9.9, 10.1, 10.05, 9.95];
/// let r = welch_t_test(&fast, &slow)?;
/// assert!(r.p_value < 1e-6);
/// assert!(r.mean_diff < 0.0);
/// # Ok::<(), sz_stats::StatError>(())
/// ```
pub fn welch_t_test(a: &[f64], b: &[f64]) -> Result<TTest, StatError> {
    validate_pair(a, b)?;
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let (ma, mb) = (mean(a), mean(b));
    let (va, vb) = (sample_variance(a), sample_variance(b));
    let se2 = va / na + vb / nb;
    if se2 <= 0.0 {
        return Err(StatError::ZeroVariance);
    }
    let t = (ma - mb) / se2.sqrt();
    // Welch–Satterthwaite degrees of freedom.
    let df = se2 * se2 / ((va / na) * (va / na) / (na - 1.0) + (vb / nb) * (vb / nb) / (nb - 1.0));
    let p_value = StudentT::new(df).two_sided_p(t);
    Ok(TTest {
        t,
        df,
        p_value,
        mean_diff: ma - mb,
    })
}

/// Student's two-sample t-test with pooled variance (equal variances
/// assumed) — the textbook test the paper references in §2.4.
///
/// # Errors
///
/// Same conditions as [`welch_t_test`].
pub fn student_t_test(a: &[f64], b: &[f64]) -> Result<TTest, StatError> {
    validate_pair(a, b)?;
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let (ma, mb) = (mean(a), mean(b));
    let (va, vb) = (sample_variance(a), sample_variance(b));
    let df = na + nb - 2.0;
    let pooled = ((na - 1.0) * va + (nb - 1.0) * vb) / df;
    if pooled <= 0.0 {
        return Err(StatError::ZeroVariance);
    }
    let t = (ma - mb) / (pooled * (1.0 / na + 1.0 / nb)).sqrt();
    let p_value = StudentT::new(df).two_sided_p(t);
    Ok(TTest {
        t,
        df,
        p_value,
        mean_diff: ma - mb,
    })
}

/// Paired t-test on per-index differences `a[i] - b[i]`.
///
/// # Errors
///
/// Returns [`StatError::RaggedData`] if the slices differ in length,
/// plus the conditions of [`welch_t_test`].
pub fn paired_t_test(a: &[f64], b: &[f64]) -> Result<TTest, StatError> {
    if a.len() != b.len() {
        return Err(StatError::RaggedData);
    }
    validate_pair(a, b)?;
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let md = mean(&diffs);
    let vd = sample_variance(&diffs);
    if vd <= 0.0 {
        return Err(StatError::ZeroVariance);
    }
    let n = diffs.len() as f64;
    let t = md / (vd / n).sqrt();
    let df = n - 1.0;
    let p_value = StudentT::new(df).two_sided_p(t);
    Ok(TTest {
        t,
        df,
        p_value,
        mean_diff: md,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pooled_t_hand_computed_fixture() {
        // x = 1..5, y = 2..6: means 3 and 4, both variances 2.5,
        // pooled t = -1 / sqrt(2.5 * (2/5)) = -1, df = 8.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.0, 3.0, 4.0, 5.0, 6.0];
        let r = student_t_test(&x, &y).unwrap();
        assert!((r.t - (-1.0)).abs() < 1e-12, "t = {}", r.t);
        assert_eq!(r.df, 8.0);
        // Classic table value: P(T_8 > 1) = 0.17330, two-sided 0.34660.
        assert!((r.p_value - 0.346_59).abs() < 1e-3, "p = {}", r.p_value);
    }

    #[test]
    fn welch_equals_student_for_equal_variance_equal_n() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.0, 3.0, 4.0, 5.0, 6.0];
        let w = welch_t_test(&x, &y).unwrap();
        let s = student_t_test(&x, &y).unwrap();
        assert!((w.t - s.t).abs() < 1e-12);
        assert_eq!(w.df, 8.0, "Welch df equals pooled df when variances match");
    }

    #[test]
    fn detects_no_difference() {
        let x = [5.0, 6.0, 7.0, 8.0, 9.0];
        let r = welch_t_test(&x, &x).unwrap();
        assert_eq!(r.t, 0.0);
        assert!((r.p_value - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paired_fixture() {
        // Differences all equal to -1 plus tiny jitter: strongly significant.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [2.01, 2.99, 4.02, 4.98, 6.01, 6.99];
        let r = paired_t_test(&a, &b).unwrap();
        assert!(r.p_value < 1e-8, "p = {}", r.p_value);
        assert!(r.mean_diff < 0.0);
    }

    #[test]
    fn paired_requires_same_length() {
        assert_eq!(
            paired_t_test(&[1.0, 2.0], &[1.0, 2.0, 3.0]),
            Err(StatError::RaggedData)
        );
    }

    #[test]
    fn zero_variance_is_error() {
        assert_eq!(
            welch_t_test(&[1.0, 1.0, 1.0], &[1.0, 1.0, 1.0]),
            Err(StatError::ZeroVariance)
        );
        assert_eq!(
            paired_t_test(&[1.0, 2.0, 3.0], &[2.0, 3.0, 4.0]),
            Err(StatError::ZeroVariance),
            "constant differences have zero variance"
        );
    }

    #[test]
    fn symmetry_in_arguments() {
        let x = [3.0, 4.1, 5.2, 3.9, 4.4, 5.0];
        let y = [4.0, 5.1, 6.2, 4.9, 5.4, 6.0];
        let xy = welch_t_test(&x, &y).unwrap();
        let yx = welch_t_test(&y, &x).unwrap();
        assert!((xy.t + yx.t).abs() < 1e-12);
        assert!((xy.p_value - yx.p_value).abs() < 1e-12);
    }

    #[test]
    fn more_samples_more_power() {
        let a6: Vec<f64> = (0..6).map(|i| 10.0 + 0.3 * (i % 3) as f64).collect();
        let b6: Vec<f64> = (0..6).map(|i| 10.25 + 0.3 * (i % 3) as f64).collect();
        let a24: Vec<f64> = (0..24).map(|i| 10.0 + 0.3 * (i % 3) as f64).collect();
        let b24: Vec<f64> = (0..24).map(|i| 10.25 + 0.3 * (i % 3) as f64).collect();
        let small = welch_t_test(&a6, &b6).unwrap();
        let large = welch_t_test(&a24, &b24).unwrap();
        assert!(large.p_value < small.p_value);
    }
}
