//! Percentile bootstrap confidence intervals on the ratio-of-means
//! effect size.
//!
//! Kalibera & Jones ("Quantifying Performance Changes with Effect
//! Size Confidence Intervals") argue that performance comparisons
//! should report *how large* a change is — the ratio of mean execution
//! times, with a confidence interval — rather than a bare p-value.
//! Their data has hierarchical variance: repeated iterations within a
//! run share a layout/warm-up state, and independent runs differ more
//! than iterations do. The bootstrap here resamples both levels: runs
//! are drawn with replacement, then iterations are drawn with
//! replacement within each drawn run.
//!
//! Everything is driven by [`SplitMix64`] so a CI is a pure function
//! of `(data, confidence, resamples, seed)` — bit-identical on every
//! platform and thread count, and therefore pinnable in the golden
//! file like every other statistic in this crate.
//!
//! Two symmetry properties are deliberate design constraints, because
//! the verdict layer ([`crate::verdict`]) relies on them:
//!
//! - **Per-arm streams.** Each arm's resampling stream is keyed by
//!   `seed ^ fnv1a(arm contents)`, so an arm draws the same resample
//!   indices whether it is passed first or second. Swapping the arms
//!   therefore produces pointwise-reciprocal resampled ratios.
//! - **Symmetric order statistics.** The interval takes the `k`-th
//!   smallest and `k`-th largest resampled ratio *without*
//!   interpolation, so the swapped interval is (up to rounding) the
//!   reciprocal of the original and verdicts flip exactly.

use sz_rng::{Rng, SplitMix64};

use crate::desc::mean;
use crate::StatError;

/// A bootstrap confidence interval on `mean(a) / mean(b)`.
///
/// For execution times, `a` is the baseline arm and `b` the candidate:
/// a ratio above 1 means the candidate is faster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EffectCi {
    /// Point estimate: `grand_mean(a) / grand_mean(b)`.
    pub ratio: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
    /// Confidence level in (0, 1).
    pub confidence: f64,
    /// Bootstrap resamples drawn.
    pub resamples: usize,
    /// Seed of the SplitMix64 streams (the CI is a pure function of
    /// data + confidence + resamples + seed).
    pub seed: u64,
}

impl EffectCi {
    /// Half-width as a fraction of the point estimate — the stability
    /// metric suite reduction ranks by.
    pub fn relative_half_width(&self) -> f64 {
        (self.hi - self.lo) / (2.0 * self.ratio)
    }
}

/// Bootstrap CI on the ratio of means of two flat samples (the
/// single-run special case of [`effect_ci_hierarchical`]).
///
/// # Errors
///
/// [`StatError::TooFewSamples`] for fewer than two observations per
/// arm, [`StatError::NonFinite`] for NaN/infinite data, and
/// [`StatError::NonPositive`] for values ≤ 0 (a ratio of mean times
/// needs strictly positive data).
///
/// # Panics
///
/// Panics unless `0 < confidence < 1` and `resamples >= 2`.
///
/// # Examples
///
/// ```
/// use sz_stats::effect_ci;
///
/// let before = [10.0, 10.2, 9.8, 10.1, 9.9, 10.0];
/// let after = [8.0, 8.2, 7.8, 8.1, 7.9, 8.0];
/// let ci = effect_ci(&before, &after, 0.95, 1000, 42)?;
/// assert!(ci.lo > 1.1, "the change is robustly faster");
/// # Ok::<(), sz_stats::StatError>(())
/// ```
pub fn effect_ci(
    a: &[f64],
    b: &[f64],
    confidence: f64,
    resamples: usize,
    seed: u64,
) -> Result<EffectCi, StatError> {
    effect_ci_core(&[a], &[b], confidence, resamples, seed)
}

/// Hierarchical bootstrap CI on the ratio of grand means: each arm is
/// a set of runs, each run a set of iteration measurements. Runs are
/// resampled with replacement, then iterations within each drawn run.
///
/// # Errors
///
/// As [`effect_ci`]; additionally every run must be non-empty
/// ([`StatError::TooFewSamples`]).
///
/// # Panics
///
/// As [`effect_ci`].
pub fn effect_ci_hierarchical(
    a: &[Vec<f64>],
    b: &[Vec<f64>],
    confidence: f64,
    resamples: usize,
    seed: u64,
) -> Result<EffectCi, StatError> {
    let a_runs: Vec<&[f64]> = a.iter().map(Vec::as_slice).collect();
    let b_runs: Vec<&[f64]> = b.iter().map(Vec::as_slice).collect();
    effect_ci_core(&a_runs, &b_runs, confidence, resamples, seed)
}

fn effect_ci_core(
    a: &[&[f64]],
    b: &[&[f64]],
    confidence: f64,
    resamples: usize,
    seed: u64,
) -> Result<EffectCi, StatError> {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1)"
    );
    assert!(resamples >= 2, "bootstrap needs at least 2 resamples");
    for arm in [a, b] {
        validate_arm(arm)?;
    }

    let means_a = resample_means(a, resamples, seed);
    let means_b = resample_means(b, resamples, seed);
    let mut ratios: Vec<f64> = means_a
        .iter()
        .zip(&means_b)
        .map(|(ma, mb)| ma / mb)
        .collect();
    ratios.sort_by(f64::total_cmp);

    // Symmetric order statistics, no interpolation: lo is the k-th
    // smallest and hi the k-th largest ratio, so swapping the arms
    // maps the interval to its reciprocal (see the module docs).
    let alpha = 1.0 - confidence;
    let k = ((alpha / 2.0) * resamples as f64).floor() as usize;
    let k = k.min((resamples - 1) / 2);

    Ok(EffectCi {
        ratio: grand_mean(a) / grand_mean(b),
        lo: ratios[k],
        hi: ratios[resamples - 1 - k],
        confidence,
        resamples,
        seed,
    })
}

fn validate_arm(runs: &[&[f64]]) -> Result<(), StatError> {
    let total: usize = runs.iter().map(|r| r.len()).sum();
    if runs.is_empty() || total < 2 || runs.iter().any(|r| r.is_empty()) {
        return Err(StatError::TooFewSamples {
            needed: 2,
            got: total,
        });
    }
    for run in runs {
        for &v in *run {
            if !v.is_finite() {
                return Err(StatError::NonFinite);
            }
            if v <= 0.0 {
                return Err(StatError::NonPositive);
            }
        }
    }
    Ok(())
}

fn grand_mean(runs: &[&[f64]]) -> f64 {
    let total: usize = runs.iter().map(|r| r.len()).sum();
    runs.iter().flat_map(|r| r.iter()).sum::<f64>() / total as f64
}

/// FNV-1a over the arm's structure and the bit patterns of its values.
/// Keying each arm's stream by its contents (not its position) is what
/// makes a swapped comparison draw identical indices per arm.
fn arm_key(runs: &[&[f64]]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |x: u64| {
        for byte in x.to_le_bytes() {
            h = (h ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    mix(runs.len() as u64);
    for run in runs {
        mix(run.len() as u64);
        for &v in *run {
            mix(v.to_bits());
        }
    }
    h
}

/// Draws `resamples` two-level bootstrap resamples of the arm and
/// returns each resample's mean.
fn resample_means(runs: &[&[f64]], resamples: usize, seed: u64) -> Vec<f64> {
    let mut rng = SplitMix64::new(seed ^ arm_key(runs));
    let n_runs = runs.len() as u64;
    (0..resamples)
        .map(|_| {
            let mut sum = 0.0;
            let mut count = 0usize;
            for _ in 0..runs.len() {
                let run = runs[rng.below(n_runs) as usize];
                let n_it = run.len() as u64;
                for _ in 0..run.len() {
                    sum += run[rng.below(n_it) as usize];
                }
                count += run.len();
            }
            sum / count as f64
        })
        .collect()
}

/// Convenience: the grand mean of a hierarchical arm (all iterations
/// pooled), matching the point estimate's numerator/denominator.
pub fn pooled_mean(runs: &[Vec<f64>]) -> f64 {
    let flat: Vec<f64> = runs.iter().flatten().copied().collect();
    mean(&flat)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arm(base: f64, n: usize) -> Vec<f64> {
        (0..n).map(|i| base + 0.05 * (i % 7) as f64).collect()
    }

    #[test]
    fn point_estimate_is_the_ratio_of_means() {
        let a = [2.0, 2.0, 2.0, 2.0];
        let b = [1.0, 1.0, 1.0, 1.0];
        let ci = effect_ci(&a, &b, 0.95, 200, 7).unwrap();
        assert_eq!(ci.ratio, 2.0);
        // Constant arms: every resample is the same, CI collapses.
        assert_eq!((ci.lo, ci.hi), (2.0, 2.0));
    }

    #[test]
    fn interval_brackets_an_obvious_effect() {
        let a = arm(10.0, 20);
        let b = arm(8.0, 20);
        let ci = effect_ci(&a, &b, 0.95, 1000, 1).unwrap();
        assert!(ci.lo <= ci.ratio && ci.ratio <= ci.hi, "{ci:?}");
        assert!(ci.lo > 1.15, "clear speedup: {ci:?}");
        assert!(ci.hi < 1.35, "{ci:?}");
    }

    #[test]
    fn bit_deterministic_for_a_fixed_seed() {
        let a = arm(10.0, 15);
        let b = arm(9.5, 15);
        let x = effect_ci(&a, &b, 0.95, 500, 0xDEAD).unwrap();
        let y = effect_ci(&a, &b, 0.95, 500, 0xDEAD).unwrap();
        assert_eq!(x.lo.to_bits(), y.lo.to_bits());
        assert_eq!(x.hi.to_bits(), y.hi.to_bits());
        let z = effect_ci(&a, &b, 0.95, 500, 0xBEEF).unwrap();
        assert_ne!(
            (x.lo.to_bits(), x.hi.to_bits()),
            (z.lo.to_bits(), z.hi.to_bits()),
            "a different seed draws different resamples"
        );
    }

    #[test]
    fn flat_is_the_single_run_hierarchical_case() {
        let a = arm(10.0, 12);
        let b = arm(9.0, 12);
        let flat = effect_ci(&a, &b, 0.95, 400, 3).unwrap();
        let hier = effect_ci_hierarchical(
            std::slice::from_ref(&a),
            std::slice::from_ref(&b),
            0.95,
            400,
            3,
        )
        .unwrap();
        assert_eq!(flat, hier);
    }

    #[test]
    fn hierarchical_widens_with_run_level_variance() {
        // Two arms with identical pooled values, but arm runs either
        // share a mean (iteration noise only) or differ strongly
        // between runs. The hierarchical CI must see the run-level
        // variance and widen.
        let tight: Vec<Vec<f64>> = (0..4).map(|_| arm(10.0, 10)).collect();
        let spread: Vec<Vec<f64>> = (0..4).map(|r| arm(9.0 + r as f64 * 0.7, 10)).collect();
        let denom = vec![arm(9.0, 10); 4];
        let narrow = effect_ci_hierarchical(&tight, &denom, 0.95, 1000, 5).unwrap();
        let wide = effect_ci_hierarchical(&spread, &denom, 0.95, 1000, 5).unwrap();
        assert!(
            wide.hi - wide.lo > 2.0 * (narrow.hi - narrow.lo),
            "run-level spread must widen the interval: {narrow:?} vs {wide:?}"
        );
    }

    #[test]
    fn wider_confidence_is_a_wider_interval() {
        let a = arm(10.0, 15);
        let b = arm(9.7, 15);
        let ci90 = effect_ci(&a, &b, 0.90, 1000, 11).unwrap();
        let ci99 = effect_ci(&a, &b, 0.99, 1000, 11).unwrap();
        assert!(ci99.lo <= ci90.lo && ci90.hi <= ci99.hi);
        assert!(ci99.hi - ci99.lo > ci90.hi - ci90.lo);
    }

    #[test]
    fn swapped_arms_are_reciprocal() {
        let a = arm(10.0, 16);
        let b = arm(8.5, 16);
        let fwd = effect_ci(&a, &b, 0.95, 800, 21).unwrap();
        let rev = effect_ci(&b, &a, 0.95, 800, 21).unwrap();
        // Content-keyed streams: the reversed comparison resamples the
        // same indices per arm, so the interval is the reciprocal of
        // the original (up to division rounding).
        assert!((rev.lo * fwd.hi - 1.0).abs() < 1e-12, "{fwd:?} / {rev:?}");
        assert!((rev.hi * fwd.lo - 1.0).abs() < 1e-12);
    }

    #[test]
    fn error_paths() {
        assert!(matches!(
            effect_ci(&[1.0], &[1.0, 2.0], 0.95, 100, 0),
            Err(StatError::TooFewSamples { .. })
        ));
        assert!(matches!(
            effect_ci_hierarchical(&[], &[vec![1.0, 2.0]], 0.95, 100, 0),
            Err(StatError::TooFewSamples { .. })
        ));
        assert!(matches!(
            effect_ci_hierarchical(&[vec![1.0, 2.0], vec![]], &[vec![1.0, 2.0]], 0.95, 100, 0),
            Err(StatError::TooFewSamples { .. })
        ));
        assert_eq!(
            effect_ci(&[1.0, f64::NAN], &[1.0, 2.0], 0.95, 100, 0),
            Err(StatError::NonFinite)
        );
        assert_eq!(
            effect_ci(&[1.0, -2.0], &[1.0, 2.0], 0.95, 100, 0),
            Err(StatError::NonPositive)
        );
        assert_eq!(
            effect_ci(&[1.0, 2.0], &[0.0, 2.0], 0.95, 100, 0),
            Err(StatError::NonPositive)
        );
    }

    #[test]
    #[should_panic(expected = "confidence must be in (0, 1)")]
    fn bad_confidence_panics() {
        let _ = effect_ci(&[1.0, 2.0], &[1.0, 2.0], 1.0, 100, 0);
    }

    #[test]
    fn relative_half_width_is_scale_free() {
        let a = arm(10.0, 15);
        let b = arm(9.0, 15);
        let ci = effect_ci(&a, &b, 0.95, 500, 2).unwrap();
        let expected = (ci.hi - ci.lo) / (2.0 * ci.ratio);
        assert_eq!(ci.relative_half_width(), expected);
    }

    #[test]
    fn pooled_mean_pools_all_iterations() {
        let runs = vec![vec![1.0, 2.0], vec![3.0, 4.0, 5.0]];
        assert_eq!(pooled_mean(&runs), 3.0);
    }
}
