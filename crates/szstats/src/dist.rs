//! Probability distributions used by the hypothesis tests.

use crate::special::{beta_inc, erfc, gamma_q};

/// The standard normal distribution.
///
/// # Examples
///
/// ```
/// use sz_stats::dist::Normal;
///
/// let p = Normal::cdf(1.96);
/// assert!((p - 0.975).abs() < 1e-4);
/// let z = Normal::quantile(0.975);
/// assert!((z - 1.96).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Normal;

impl Normal {
    /// Cumulative distribution function `P(Z <= z)`.
    pub fn cdf(z: f64) -> f64 {
        0.5 * erfc(-z / std::f64::consts::SQRT_2)
    }

    /// Survival function `P(Z > z)`, accurate deep in the tail.
    pub fn sf(z: f64) -> f64 {
        0.5 * erfc(z / std::f64::consts::SQRT_2)
    }

    /// Probability density function.
    pub fn pdf(z: f64) -> f64 {
        (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
    }

    /// Quantile function (inverse CDF), via Acklam's rational
    /// approximation refined with one Halley step.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p < 1`.
    pub fn quantile(p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires 0 < p < 1, got {p}");
        // Acklam's coefficients.
        const A: [f64; 6] = [
            -3.969_683_028_665_376e1,
            2.209_460_984_245_205e2,
            -2.759_285_104_469_687e2,
            1.383_577_518_672_69e2,
            -3.066_479_806_614_716e1,
            2.506_628_277_459_239,
        ];
        const B: [f64; 5] = [
            -5.447_609_879_822_406e1,
            1.615_858_368_580_409e2,
            -1.556_989_798_598_866e2,
            6.680_131_188_771_972e1,
            -1.328_068_155_288_572e1,
        ];
        const C: [f64; 6] = [
            -7.784_894_002_430_293e-3,
            -3.223_964_580_411_365e-1,
            -2.400_758_277_161_838,
            -2.549_732_539_343_734,
            4.374_664_141_464_968,
            2.938_163_982_698_783,
        ];
        const D: [f64; 4] = [
            7.784_695_709_041_462e-3,
            3.224_671_290_700_398e-1,
            2.445_134_137_142_996,
            3.754_408_661_907_416,
        ];
        const P_LOW: f64 = 0.024_25;
        let x = if p < P_LOW {
            let q = (-2.0 * p.ln()).sqrt();
            (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
                / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
        } else if p <= 1.0 - P_LOW {
            let q = p - 0.5;
            let r = q * q;
            (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
                / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
        } else {
            let q = (-2.0 * (1.0 - p).ln()).sqrt();
            -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
                / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
        };
        // One Halley refinement using the accurate CDF.
        let e = Normal::cdf(x) - p;
        let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
        x - u / (1.0 + x * u / 2.0)
    }
}

/// Student's t distribution with `df` degrees of freedom.
///
/// # Examples
///
/// ```
/// use sz_stats::dist::StudentT;
///
/// let t = StudentT::new(10.0);
/// // 2.228 is the classic two-sided 5% critical value for df = 10.
/// assert!((t.two_sided_p(2.228_138_85) - 0.05).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudentT {
    df: f64,
}

impl StudentT {
    /// Creates the distribution.
    ///
    /// # Panics
    ///
    /// Panics if `df <= 0`.
    pub fn new(df: f64) -> Self {
        assert!(df > 0.0, "degrees of freedom must be positive, got {df}");
        Self { df }
    }

    /// Degrees of freedom.
    pub fn df(&self) -> f64 {
        self.df
    }

    /// Cumulative distribution function `P(T <= t)`.
    pub fn cdf(&self, t: f64) -> f64 {
        if t == 0.0 {
            return 0.5;
        }
        let x = self.df / (self.df + t * t);
        let tail = 0.5 * beta_inc(self.df / 2.0, 0.5, x);
        if t > 0.0 {
            1.0 - tail
        } else {
            tail
        }
    }

    /// Two-sided p-value: `P(|T| >= |t|)`.
    pub fn two_sided_p(&self, t: f64) -> f64 {
        beta_inc(self.df / 2.0, 0.5, self.df / (self.df + t * t)).clamp(0.0, 1.0)
    }
}

/// Fisher's F distribution with `d1` and `d2` degrees of freedom.
///
/// # Examples
///
/// ```
/// use sz_stats::dist::FDist;
///
/// let f = FDist::new(1.0, 17.0);
/// // 4.4513 is the 5% critical value for F(1, 17).
/// assert!((f.sf(4.451_322) - 0.05).abs() < 1e-4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FDist {
    d1: f64,
    d2: f64,
}

impl FDist {
    /// Creates the distribution.
    ///
    /// # Panics
    ///
    /// Panics if either degrees-of-freedom parameter is not positive.
    pub fn new(d1: f64, d2: f64) -> Self {
        assert!(d1 > 0.0 && d2 > 0.0, "degrees of freedom must be positive");
        Self { d1, d2 }
    }

    /// Cumulative distribution function `P(F <= f)`.
    pub fn cdf(&self, f: f64) -> f64 {
        if f <= 0.0 {
            return 0.0;
        }
        beta_inc(
            self.d1 / 2.0,
            self.d2 / 2.0,
            self.d1 * f / (self.d1 * f + self.d2),
        )
    }

    /// Survival function `P(F > f)` — the ANOVA p-value.
    pub fn sf(&self, f: f64) -> f64 {
        if f <= 0.0 {
            return 1.0;
        }
        beta_inc(
            self.d2 / 2.0,
            self.d1 / 2.0,
            self.d2 / (self.d1 * f + self.d2),
        )
    }
}

/// The χ² distribution with `k` degrees of freedom.
///
/// # Examples
///
/// ```
/// use sz_stats::dist::ChiSquared;
///
/// let chi = ChiSquared::new(1.0);
/// assert!((chi.sf(3.841_458_8) - 0.05).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquared {
    k: f64,
}

impl ChiSquared {
    /// Creates the distribution.
    ///
    /// # Panics
    ///
    /// Panics if `k <= 0`.
    pub fn new(k: f64) -> Self {
        assert!(k > 0.0, "degrees of freedom must be positive, got {k}");
        Self { k }
    }

    /// Survival function `P(X > x)`.
    pub fn sf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 1.0;
        }
        gamma_q(self.k / 2.0, x / 2.0)
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        1.0 - self.sf(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn normal_cdf_fixtures() {
        close(Normal::cdf(0.0), 0.5, 1e-15);
        close(Normal::cdf(1.0), 0.841_344_746_068_543, 1e-12);
        close(Normal::cdf(1.959_963_985), 0.975, 1e-9);
        close(Normal::cdf(-2.0), 0.022_750_131_948_179_2, 1e-12);
        close(Normal::sf(3.0), 1.349_898_031_630_095e-3, 1e-12);
    }

    #[test]
    fn normal_quantile_round_trip() {
        for p in [
            1e-10,
            1e-6,
            0.001,
            0.01,
            0.05,
            0.3,
            0.5,
            0.7,
            0.95,
            0.999,
            1.0 - 1e-9,
        ] {
            let z = Normal::quantile(p);
            close(Normal::cdf(z), p, 1e-12);
        }
    }

    #[test]
    fn normal_quantile_fixtures() {
        close(Normal::quantile(0.975), 1.959_963_984_540_054, 1e-9);
        close(Normal::quantile(0.5), 0.0, 1e-12);
        close(Normal::quantile(0.05), -1.644_853_626_951_472, 1e-9);
    }

    #[test]
    fn normal_symmetry() {
        for z in [0.3, 1.0, 2.5, 4.0] {
            close(Normal::cdf(-z), Normal::sf(z), 1e-15);
        }
    }

    #[test]
    fn t_cdf_fixtures() {
        // df = 1 is the Cauchy distribution: CDF(1) = 3/4.
        let t1 = StudentT::new(1.0);
        close(t1.cdf(1.0), 0.75, 1e-10);
        // Large df approaches the normal.
        let t1000 = StudentT::new(1000.0);
        close(t1000.cdf(1.96), Normal::cdf(1.96), 2e-3);
        // Known critical value: P(T_29 <= 2.045230) = 0.975.
        let t29 = StudentT::new(29.0);
        close(t29.cdf(2.045_229_64), 0.975, 1e-6);
    }

    #[test]
    fn t_two_sided_consistency() {
        let t = StudentT::new(8.0);
        for v in [0.5, 1.0, 2.0, 3.5] {
            close(t.two_sided_p(v), 2.0 * (1.0 - t.cdf(v)), 1e-12);
            close(t.two_sided_p(-v), t.two_sided_p(v), 1e-12);
        }
        close(t.two_sided_p(0.0), 1.0, 1e-12);
    }

    #[test]
    fn f_dist_fixtures() {
        // F(1, n) is the square of T(n): P(F > t^2) = two-sided t p-value.
        let f = FDist::new(1.0, 12.0);
        let t = StudentT::new(12.0);
        for v in [0.8, 1.5, 2.2] {
            close(f.sf(v * v), t.two_sided_p(v), 1e-10);
        }
        close(f.cdf(2.0) + f.sf(2.0), 1.0, 1e-12);
    }

    #[test]
    fn chi_squared_fixtures() {
        let chi1 = ChiSquared::new(1.0);
        // chi^2_1 is Z^2: P(X > x) = 2 * P(Z > sqrt(x)).
        for x in [0.5, 1.0, 4.0, 9.0] {
            close(chi1.sf(x), 2.0 * Normal::sf(x.sqrt()), 1e-11);
        }
        // chi^2_2 is exponential(1/2).
        let chi2 = ChiSquared::new(2.0);
        for x in [0.5, 2.0, 6.0] {
            close(chi2.sf(x), (-x / 2.0).exp(), 1e-11);
        }
    }

    #[test]
    #[should_panic(expected = "quantile requires 0 < p < 1")]
    fn quantile_rejects_bounds() {
        Normal::quantile(1.0);
    }
}
