//! Effect sizes and confidence intervals.
//!
//! The paper's §2.4 stresses that significance alone is not the story:
//! "the t-test can detect arbitrarily small differences in the means
//! ... given a sufficient number of samples". Sound reporting pairs
//! every p-value with an effect size and an interval estimate; this
//! module provides both.

use crate::desc::{mean, sample_variance};
use crate::dist::StudentT;
use crate::error::check_finite;
use crate::StatError;

/// A two-sided confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate (the sample mean or mean difference).
    pub estimate: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Confidence level in (0, 1), e.g. 0.95.
    pub confidence: f64,
}

impl ConfidenceInterval {
    /// Half-width of the interval.
    pub fn margin(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }

    /// Whether the interval excludes `value` (e.g. 0 for a difference,
    /// 1 for a ratio).
    pub fn excludes(&self, value: f64) -> bool {
        value < self.lo || value > self.hi
    }

    /// Half-width as a fraction of `reference`'s magnitude — the
    /// scale-free precision measure behind adaptive stopping rules:
    /// "keep sampling until the interval on the effect is narrower
    /// than x% of the baseline mean". Returns infinity for a zero
    /// reference.
    pub fn relative_margin(&self, reference: f64) -> f64 {
        if reference == 0.0 {
            f64::INFINITY
        } else {
            self.margin() / reference.abs()
        }
    }
}

/// Half-width of the Welch confidence interval on `mean(a) - mean(b)`
/// — the quantity an adaptive sequential-sampling loop drives below a
/// target before stopping (Kalibera & Jones' effect-size-interval
/// protocol). Equivalent to `diff_ci(a, b, confidence)?.margin()`.
///
/// # Errors
///
/// Same conditions as [`diff_ci`].
pub fn diff_half_width(a: &[f64], b: &[f64], confidence: f64) -> Result<f64, StatError> {
    Ok(diff_ci(a, b, confidence)?.margin())
}

/// Upper quantile `t*` with `P(|T| <= t*) = confidence`, found by
/// bisection on the CDF (the CDF is strictly increasing, so 80
/// iterations pin the quantile to ~1e-12).
fn t_critical(df: f64, confidence: f64) -> f64 {
    let p = 0.5 + confidence / 2.0;
    let t = StudentT::new(df);
    let (mut lo, mut hi) = (0.0f64, 1e3);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if t.cdf(mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-12 {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Student-t confidence interval for a sample mean.
///
/// # Errors
///
/// Returns [`StatError::TooFewSamples`] for `n < 2`,
/// [`StatError::NonFinite`] for bad data.
///
/// # Panics
///
/// Panics unless `0 < confidence < 1`.
///
/// # Examples
///
/// ```
/// use sz_stats::mean_ci;
///
/// let data = [10.0, 10.2, 9.8, 10.1, 9.9, 10.0];
/// let ci = mean_ci(&data, 0.95)?;
/// assert!(ci.lo < 10.0 && 10.0 < ci.hi);
/// # Ok::<(), sz_stats::StatError>(())
/// ```
pub fn mean_ci(data: &[f64], confidence: f64) -> Result<ConfidenceInterval, StatError> {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1)"
    );
    if data.len() < 2 {
        return Err(StatError::TooFewSamples {
            needed: 2,
            got: data.len(),
        });
    }
    check_finite(data)?;
    let n = data.len() as f64;
    let m = mean(data);
    let se = (sample_variance(data) / n).sqrt();
    let t = t_critical(n - 1.0, confidence);
    Ok(ConfidenceInterval {
        estimate: m,
        lo: m - t * se,
        hi: m + t * se,
        confidence,
    })
}

/// Welch confidence interval for the difference of means
/// `mean(a) - mean(b)`.
///
/// # Errors
///
/// Same conditions as [`mean_ci`]; additionally
/// [`StatError::ZeroVariance`] when both samples are constant.
pub fn diff_ci(a: &[f64], b: &[f64], confidence: f64) -> Result<ConfidenceInterval, StatError> {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1)"
    );
    for s in [a, b] {
        if s.len() < 2 {
            return Err(StatError::TooFewSamples {
                needed: 2,
                got: s.len(),
            });
        }
        check_finite(s)?;
    }
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let (va, vb) = (sample_variance(a), sample_variance(b));
    let se2 = va / na + vb / nb;
    if se2 <= 0.0 {
        return Err(StatError::ZeroVariance);
    }
    let df = se2 * se2 / ((va / na) * (va / na) / (na - 1.0) + (vb / nb) * (vb / nb) / (nb - 1.0));
    let d = mean(a) - mean(b);
    let t = t_critical(df, confidence);
    let se = se2.sqrt();
    Ok(ConfidenceInterval {
        estimate: d,
        lo: d - t * se,
        hi: d + t * se,
        confidence,
    })
}

/// Cohen's d with pooled standard deviation: the standardized effect
/// size of `mean(a) - mean(b)`.
///
/// Rule-of-thumb bands: 0.2 small, 0.5 medium, 0.8 large.
///
/// # Errors
///
/// Same conditions as [`diff_ci`].
pub fn cohens_d(a: &[f64], b: &[f64]) -> Result<f64, StatError> {
    for s in [a, b] {
        if s.len() < 2 {
            return Err(StatError::TooFewSamples {
                needed: 2,
                got: s.len(),
            });
        }
        check_finite(s)?;
    }
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let pooled =
        ((na - 1.0) * sample_variance(a) + (nb - 1.0) * sample_variance(b)) / (na + nb - 2.0);
    if pooled <= 0.0 {
        return Err(StatError::ZeroVariance);
    }
    Ok((mean(a) - mean(b)) / pooled.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_critical_matches_tables() {
        // Classic values: t*(df=10, 95%) = 2.2281, t*(df=29, 95%) = 2.0452.
        assert!((t_critical(10.0, 0.95) - 2.228_138_85).abs() < 1e-4);
        assert!((t_critical(29.0, 0.95) - 2.045_229_64).abs() < 1e-4);
        // Large df approaches the normal 1.96.
        assert!((t_critical(1e6, 0.95) - 1.959_96).abs() < 1e-3);
    }

    #[test]
    fn mean_ci_contains_the_mean_and_scales_with_confidence() {
        let data: Vec<f64> = (0..20).map(|i| 5.0 + 0.1 * (i % 7) as f64).collect();
        let ci90 = mean_ci(&data, 0.90).unwrap();
        let ci99 = mean_ci(&data, 0.99).unwrap();
        assert!(ci90.lo < ci90.estimate && ci90.estimate < ci90.hi);
        assert!(
            ci99.margin() > ci90.margin(),
            "higher confidence = wider interval"
        );
        assert_eq!(ci90.estimate, ci99.estimate);
    }

    #[test]
    fn diff_ci_excludes_zero_for_a_real_difference() {
        let a: Vec<f64> = (0..15).map(|i| 10.0 + 0.05 * (i % 5) as f64).collect();
        let b: Vec<f64> = (0..15).map(|i| 9.0 + 0.05 * (i % 5) as f64).collect();
        let ci = diff_ci(&a, &b, 0.95).unwrap();
        assert!(ci.excludes(0.0));
        assert!((ci.estimate - 1.0).abs() < 1e-9);
    }

    #[test]
    fn diff_ci_includes_zero_under_the_null() {
        let a: Vec<f64> = (0..15).map(|i| 10.0 + 0.3 * (i % 5) as f64).collect();
        let b: Vec<f64> = (0..15).map(|i| 10.0 + 0.3 * ((i + 2) % 5) as f64).collect();
        let ci = diff_ci(&a, &b, 0.95).unwrap();
        assert!(!ci.excludes(0.0), "{ci:?}");
    }

    #[test]
    fn cohens_d_magnitude() {
        // Means 1 sd apart -> d ~ 1.
        let a: Vec<f64> = (0..30).map(|i| (i % 11) as f64).collect();
        let b: Vec<f64> = a.iter().map(|v| v + 3.162).collect(); // sd(a) ~ 3.3
        let d = cohens_d(&b, &a).unwrap();
        assert!((d - 1.0).abs() < 0.15, "d = {d}");
        // Antisymmetry.
        assert!((cohens_d(&a, &b).unwrap() + d).abs() < 1e-12);
    }

    #[test]
    fn half_width_helpers_agree_with_the_interval() {
        let a: Vec<f64> = (0..15).map(|i| 10.0 + 0.05 * (i % 5) as f64).collect();
        let b: Vec<f64> = (0..15).map(|i| 9.0 + 0.05 * (i % 5) as f64).collect();
        let ci = diff_ci(&a, &b, 0.95).unwrap();
        let hw = diff_half_width(&a, &b, 0.95).unwrap();
        assert_eq!(hw, ci.margin());
        assert!((ci.relative_margin(10.0) - ci.margin() / 10.0).abs() < 1e-15);
        assert_eq!(ci.relative_margin(0.0), f64::INFINITY);
        assert_eq!(ci.relative_margin(-10.0), ci.relative_margin(10.0));
    }

    #[test]
    fn half_width_shrinks_with_more_samples() {
        let gen = |n: usize, base: f64| -> Vec<f64> {
            (0..n).map(|i| base + 0.2 * (i % 7) as f64).collect()
        };
        let small = diff_half_width(&gen(8, 10.0), &gen(8, 9.5), 0.95).unwrap();
        let large = diff_half_width(&gen(32, 10.0), &gen(32, 9.5), 0.95).unwrap();
        assert!(large < small, "more samples must narrow the interval");
    }

    #[test]
    fn error_paths() {
        assert!(matches!(
            mean_ci(&[1.0], 0.95),
            Err(StatError::TooFewSamples { .. })
        ));
        assert_eq!(
            cohens_d(&[1.0, 1.0], &[1.0, 1.0]),
            Err(StatError::ZeroVariance)
        );
    }

    #[test]
    #[should_panic(expected = "confidence must be in (0, 1)")]
    fn bad_confidence_panics() {
        let _ = mean_ci(&[1.0, 2.0, 3.0], 1.0);
    }

    #[test]
    fn ci_consistent_with_t_test() {
        // The 95% diff CI excludes 0 iff the two-sided p < 0.05.
        let cases: Vec<(Vec<f64>, Vec<f64>)> = vec![
            (
                (0..12).map(|i| 5.0 + 0.1 * (i % 4) as f64).collect(),
                (0..12).map(|i| 5.3 + 0.1 * (i % 4) as f64).collect(),
            ),
            (
                (0..12).map(|i| 5.0 + 0.4 * (i % 4) as f64).collect(),
                (0..12).map(|i| 5.1 + 0.4 * ((i + 1) % 4) as f64).collect(),
            ),
        ];
        for (a, b) in cases {
            let ci = diff_ci(&a, &b, 0.95).unwrap();
            let t = crate::welch_t_test(&a, &b).unwrap();
            assert_eq!(ci.excludes(0.0), t.p_value < 0.05, "CI and t-test disagree");
        }
    }
}
