//! Special functions underlying the probability distributions.
//!
//! Everything here is implemented from first principles (Lanczos
//! log-gamma, series/continued-fraction incomplete gamma and beta,
//! series + Lentz continued-fraction error function) so the crate has
//! no numeric dependencies.

/// Natural log of the gamma function, via the Lanczos approximation
/// (g = 7, n = 9 coefficients; ~15 significant digits for `x > 0`).
///
/// # Panics
///
/// Panics if `x <= 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy for small x.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// The error function `erf(x)`, accurate to roughly 1e-15.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// The complementary error function `erfc(x)`.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    if x < 2.0 {
        1.0 - erf_series(x)
    } else {
        // erfc(x) = Q(1/2, x^2); for x >= 2 the incomplete-gamma
        // continued fraction converges quickly and keeps full relative
        // accuracy deep into the tail.
        gamma_q(0.5, x * x)
    }
}

/// Maclaurin series for erf, used for small |x|.
fn erf_series(x: f64) -> f64 {
    // erf(x) = 2/sqrt(pi) * sum_{n>=0} (-1)^n x^{2n+1} / (n! (2n+1))
    let x2 = x * x;
    let mut term = x;
    let mut sum = x;
    let mut n = 0u32;
    loop {
        n += 1;
        term *= -x2 / n as f64;
        let contrib = term / (2 * n + 1) as f64;
        sum += contrib;
        if contrib.abs() < 1e-18 * sum.abs().max(1e-300) || n > 200 {
            break;
        }
    }
    sum * 2.0 / std::f64::consts::PI.sqrt()
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_p requires a > 0, x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_q requires a > 0, x >= 0");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Series expansion for P(a, x), valid for x < a + 1.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued fraction for Q(a, x), valid for x >= a + 1 (modified Lentz).
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    let tiny = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// # Panics
///
/// Panics if `a <= 0`, `b <= 0`, or `x` is outside `[0, 1]`.
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta_inc requires a, b > 0");
    assert!(
        (0.0..=1.0).contains(&x),
        "beta_inc requires 0 <= x <= 1, got {x}"
    );
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta (Numerical Recipes betacf,
/// modified Lentz).
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    let tiny = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < tiny {
        d = tiny;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=500 {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < tiny {
            d = tiny;
        }
        c = 1.0 + aa / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < tiny {
            d = tiny;
        }
        c = 1.0 + aa / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Gamma(n) = (n-1)!
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), 24f64.ln(), 1e-12);
        close(ln_gamma(11.0), 3_628_800f64.ln(), 1e-10);
    }

    #[test]
    fn ln_gamma_half() {
        // Gamma(1/2) = sqrt(pi).
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
        // Gamma(3/2) = sqrt(pi)/2.
        close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-12,
        );
    }

    #[test]
    fn erf_known_values() {
        close(erf(0.0), 0.0, 1e-15);
        close(erf(1.0), 0.842_700_792_949_714_9, 1e-12);
        close(erf(2.0), 0.995_322_265_018_952_7, 1e-12);
        close(erf(-1.0), -0.842_700_792_949_714_9, 1e-12);
        close(erfc(3.0), 2.209_049_699_858_544e-5, 1e-14);
    }

    #[test]
    fn erf_erfc_complement() {
        for x in [-3.0, -1.2, -0.1, 0.0, 0.4, 1.7, 2.0, 2.5, 4.0, 6.0] {
            close(erf(x) + erfc(x), 1.0, 1e-13);
        }
    }

    #[test]
    fn erfc_deep_tail_positive() {
        // erfc(5) ~ 1.537e-12, must stay positive and finite.
        let v = erfc(5.0);
        assert!(v > 0.0 && v < 1e-10, "erfc(5) = {v}");
        close(v, 1.537_459_794_428_035e-12, 1e-20);
    }

    #[test]
    fn gamma_p_known_values() {
        // P(1, x) = 1 - exp(-x).
        for x in [0.1, 0.5, 1.0, 2.0, 5.0] {
            close(gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-12);
        }
        // P(a, 0) = 0; Q(a, 0) = 1.
        close(gamma_p(3.0, 0.0), 0.0, 1e-15);
        close(gamma_q(3.0, 0.0), 1.0, 1e-15);
    }

    #[test]
    fn gamma_pq_complement() {
        for a in [0.5, 1.0, 2.5, 10.0, 30.0] {
            for x in [0.1, 1.0, 5.0, 20.0, 50.0] {
                close(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12);
            }
        }
    }

    #[test]
    fn chi_squared_tail_via_gamma() {
        // P(chi2_1 > 3.841458821) = 0.05 (the classic critical value).
        close(gamma_q(0.5, 3.841_458_820_694_124 / 2.0), 0.05, 1e-9);
    }

    #[test]
    fn beta_inc_known_values() {
        // I_x(1, 1) = x (uniform).
        for x in [0.0, 0.25, 0.5, 0.75, 1.0] {
            close(beta_inc(1.0, 1.0, x), x, 1e-12);
        }
        // I_x(2, 2) = 3x^2 - 2x^3.
        for x in [0.2, 0.5, 0.8] {
            close(beta_inc(2.0, 2.0, x), 3.0 * x * x - 2.0 * x * x * x, 1e-12);
        }
        // Symmetry: I_x(a, b) = 1 - I_{1-x}(b, a).
        close(
            beta_inc(3.0, 5.0, 0.3),
            1.0 - beta_inc(5.0, 3.0, 0.7),
            1e-12,
        );
    }

    #[test]
    fn beta_inc_monotone_in_x() {
        let mut prev = 0.0;
        for i in 1..=20 {
            let x = i as f64 / 20.0;
            let v = beta_inc(2.5, 4.5, x);
            assert!(v >= prev, "beta_inc not monotone at x={x}");
            prev = v;
        }
    }

    #[test]
    #[should_panic(expected = "ln_gamma requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }
}
