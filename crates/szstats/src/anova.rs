//! Analysis of variance (§2.5 and §6.1 of the paper).
//!
//! The paper evaluates compiler optimizations with a *one-way analysis
//! of variance within subjects* (repeated measures): each benchmark is
//! a subject, each optimization level a treatment, and
//! benchmark-to-benchmark differences are removed from the error term
//! so that only the treatment effect and run-to-run noise remain.

use crate::desc::mean;
use crate::dist::FDist;
use crate::error::check_finite;
use crate::StatError;

/// Result of an analysis of variance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnovaResult {
    /// The F statistic.
    pub f: f64,
    /// Treatment degrees of freedom (numerator).
    pub df_treatment: f64,
    /// Error degrees of freedom (denominator).
    pub df_error: f64,
    /// P-value: probability of an F at least this large under the null.
    pub p_value: f64,
    /// Sum of squares attributed to the treatment.
    pub ss_treatment: f64,
    /// Sum of squares attributed to error.
    pub ss_error: f64,
}

impl AnovaResult {
    /// Effect size η² (partial): treatment SS over treatment + error SS.
    pub fn partial_eta_squared(&self) -> f64 {
        self.ss_treatment / (self.ss_treatment + self.ss_error)
    }
}

/// One-way between-subjects ANOVA over `groups`.
///
/// # Errors
///
/// - [`StatError::TooFewSamples`] with fewer than two groups or any
///   group smaller than two observations;
/// - [`StatError::ZeroVariance`] if all observations are identical;
/// - [`StatError::NonFinite`] for NaN/infinite data.
///
/// # Examples
///
/// ```
/// use sz_stats::one_way_anova;
///
/// let g1 = vec![1.0, 2.0, 3.0];
/// let g2 = vec![11.0, 12.0, 13.0];
/// let g3 = vec![21.0, 22.0, 23.0];
/// let r = one_way_anova(&[g1, g2, g3])?;
/// assert!(r.p_value < 1e-6);
/// # Ok::<(), sz_stats::StatError>(())
/// ```
pub fn one_way_anova(groups: &[Vec<f64>]) -> Result<AnovaResult, StatError> {
    if groups.len() < 2 {
        return Err(StatError::TooFewSamples {
            needed: 2,
            got: groups.len(),
        });
    }
    for g in groups {
        if g.len() < 2 {
            return Err(StatError::TooFewSamples {
                needed: 2,
                got: g.len(),
            });
        }
        check_finite(g)?;
    }
    let all: Vec<f64> = groups.iter().flatten().copied().collect();
    let grand = mean(&all);
    let n_total = all.len() as f64;
    let k = groups.len() as f64;

    let mut ss_between = 0.0;
    let mut ss_within = 0.0;
    for g in groups {
        let gm = mean(g);
        ss_between += g.len() as f64 * (gm - grand) * (gm - grand);
        ss_within += g.iter().map(|v| (v - gm) * (v - gm)).sum::<f64>();
    }
    let df_t = k - 1.0;
    let df_e = n_total - k;
    if ss_within <= 0.0 && ss_between <= 0.0 {
        return Err(StatError::ZeroVariance);
    }
    let ms_t = ss_between / df_t;
    let ms_e = ss_within / df_e;
    let f = if ms_e == 0.0 {
        f64::INFINITY
    } else {
        ms_t / ms_e
    };
    let p_value = if f.is_finite() {
        FDist::new(df_t, df_e).sf(f)
    } else {
        0.0
    };
    Ok(AnovaResult {
        f,
        df_treatment: df_t,
        df_error: df_e,
        p_value,
        ss_treatment: ss_between,
        ss_error: ss_within,
    })
}

/// One-way *within-subjects* (repeated-measures) ANOVA.
///
/// `data[i][j]` is subject `i`'s response under treatment `j` — in the
/// paper's §6.1, benchmark `i`'s mean execution time at optimization
/// level `j`. Subject-to-subject variation is partitioned out, so
/// "differences between benchmarks [are] not included in the final
/// result".
///
/// # Errors
///
/// - [`StatError::TooFewSamples`] with fewer than two subjects or two
///   treatments;
/// - [`StatError::RaggedData`] if subjects have differing numbers of
///   treatments;
/// - [`StatError::ZeroVariance`] / [`StatError::NonFinite`] as usual.
///
/// # Examples
///
/// ```
/// use sz_stats::repeated_measures_anova;
///
/// // Three subjects, two treatments; treatment 2 is consistently faster.
/// let data = vec![
///     vec![10.0, 9.0],
///     vec![20.0, 19.1],
///     vec![30.0, 28.9],
/// ];
/// let r = repeated_measures_anova(&data)?;
/// assert!(r.p_value < 0.05);
/// # Ok::<(), sz_stats::StatError>(())
/// ```
pub fn repeated_measures_anova(data: &[Vec<f64>]) -> Result<AnovaResult, StatError> {
    let n = data.len();
    if n < 2 {
        return Err(StatError::TooFewSamples { needed: 2, got: n });
    }
    let k = data[0].len();
    if k < 2 {
        return Err(StatError::TooFewSamples { needed: 2, got: k });
    }
    for row in data {
        if row.len() != k {
            return Err(StatError::RaggedData);
        }
        check_finite(row)?;
    }

    let nf = n as f64;
    let kf = k as f64;
    let grand = data.iter().flatten().sum::<f64>() / (nf * kf);

    // Treatment (column) means.
    let mut ss_treatment = 0.0;
    for j in 0..k {
        let col_mean = data.iter().map(|row| row[j]).sum::<f64>() / nf;
        ss_treatment += nf * (col_mean - grand) * (col_mean - grand);
    }
    // Subject (row) means.
    let mut ss_subjects = 0.0;
    for row in data {
        let rm = mean(row);
        ss_subjects += kf * (rm - grand) * (rm - grand);
    }
    // Total.
    let ss_total: f64 = data
        .iter()
        .flatten()
        .map(|v| (v - grand) * (v - grand))
        .sum();
    let ss_error = (ss_total - ss_treatment - ss_subjects).max(0.0);

    let df_t = kf - 1.0;
    let df_e = (kf - 1.0) * (nf - 1.0);
    if ss_total <= 0.0 {
        return Err(StatError::ZeroVariance);
    }
    let ms_t = ss_treatment / df_t;
    let ms_e = ss_error / df_e;
    let f = if ms_e == 0.0 {
        f64::INFINITY
    } else {
        ms_t / ms_e
    };
    let p_value = if f.is_finite() {
        FDist::new(df_t, df_e).sf(f)
    } else {
        0.0
    };
    Ok(AnovaResult {
        f,
        df_treatment: df_t,
        df_error: df_e,
        p_value,
        ss_treatment,
        ss_error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_way_hand_fixture() {
        // Two groups of two: {0, 2} and {2, 4}.
        // Grand mean 2; SS_between = 2*(1-2)^2 + 2*(3-2)^2 = 4;
        // SS_within = 2 + 2 = 4; df = (1, 2); F = 4 / (4/2) = 2.
        let r = one_way_anova(&[vec![0.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert!((r.f - 2.0).abs() < 1e-12, "F = {}", r.f);
        assert_eq!(r.df_treatment, 1.0);
        assert_eq!(r.df_error, 2.0);
    }

    #[test]
    fn one_way_no_effect() {
        let g: Vec<f64> = (0..10).map(|i| (i % 5) as f64).collect();
        let r = one_way_anova(&[g.clone(), g.clone(), g]).unwrap();
        assert!((r.f - 0.0).abs() < 1e-12);
        assert!((r.p_value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn repeated_measures_removes_subject_variance() {
        // Subjects at wildly different baselines, but a small consistent
        // treatment effect. Between-subjects ANOVA on the columns would
        // drown the effect; within-subjects must find it.
        let data: Vec<Vec<f64>> = (0..10)
            .map(|i| {
                let base = 100.0 * i as f64;
                // Deterministic jitter so the error term is nonzero.
                let j1 = 0.01 * ((i * 7 % 5) as f64);
                let j2 = 0.01 * ((i * 3 % 5) as f64);
                vec![base + j1, base - 1.0 + j2]
            })
            .collect();
        let rm = repeated_measures_anova(&data).unwrap();
        assert!(rm.p_value < 1e-6, "within-subjects p = {}", rm.p_value);

        let col1: Vec<f64> = data.iter().map(|r| r[0]).collect();
        let col2: Vec<f64> = data.iter().map(|r| r[1]).collect();
        let bw = one_way_anova(&[col1, col2]).unwrap();
        assert!(bw.p_value > 0.9, "between-subjects p = {}", bw.p_value);
    }

    #[test]
    fn repeated_measures_partition_adds_up() {
        let data = vec![
            vec![3.0, 4.0, 5.0],
            vec![2.0, 4.0, 6.0],
            vec![5.0, 5.0, 8.0],
            vec![1.0, 2.0, 3.0],
        ];
        let r = repeated_measures_anova(&data).unwrap();
        let grand = data.iter().flatten().sum::<f64>() / 12.0;
        let ss_total: f64 = data
            .iter()
            .flatten()
            .map(|v| (v - grand) * (v - grand))
            .sum();
        let mut ss_subjects = 0.0;
        for row in &data {
            let rm = mean(row);
            ss_subjects += 3.0 * (rm - grand) * (rm - grand);
        }
        assert!(
            (r.ss_treatment + r.ss_error + ss_subjects - ss_total).abs() < 1e-9,
            "partition must be exact"
        );
        assert_eq!(r.df_treatment, 2.0);
        assert_eq!(r.df_error, 6.0);
    }

    #[test]
    fn ragged_data_rejected() {
        let data = vec![vec![1.0, 2.0], vec![1.0, 2.0, 3.0]];
        assert_eq!(repeated_measures_anova(&data), Err(StatError::RaggedData));
    }

    #[test]
    fn eta_squared_bounds() {
        let r = one_way_anova(&[vec![0.0, 2.0], vec![2.0, 4.0]]).unwrap();
        let eta = r.partial_eta_squared();
        assert!((0.0..=1.0).contains(&eta));
    }
}
