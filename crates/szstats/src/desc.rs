//! Descriptive statistics.

use crate::error::check_finite;
use crate::StatError;

/// Arithmetic mean.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn mean(data: &[f64]) -> f64 {
    assert!(!data.is_empty(), "mean of empty data");
    data.iter().sum::<f64>() / data.len() as f64
}

/// Unbiased sample variance (the `n - 1` denominator).
///
/// # Panics
///
/// Panics if fewer than two observations are supplied.
pub fn sample_variance(data: &[f64]) -> f64 {
    assert!(data.len() >= 2, "variance needs at least 2 samples");
    let m = mean(data);
    data.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (data.len() - 1) as f64
}

/// Sample standard deviation.
///
/// # Panics
///
/// Panics if fewer than two observations are supplied.
pub fn sample_std(data: &[f64]) -> f64 {
    sample_variance(data).sqrt()
}

/// Median (average of the two central order statistics for even `n`).
///
/// # Errors
///
/// Same conditions as [`quantile`].
pub fn median(data: &[f64]) -> Result<f64, StatError> {
    quantile(data, 0.5)
}

/// Quantile with linear interpolation between order statistics
/// (R's default "type 7" definition).
///
/// # Errors
///
/// Returns [`StatError::TooFewSamples`] on an empty slice and
/// [`StatError::NonFinite`] on NaN/infinite observations (instead of
/// panicking mid-sort or silently propagating a NaN into downstream
/// statistics).
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]` (a programmer error, unlike bad
/// data).
pub fn quantile(data: &[f64], q: f64) -> Result<f64, StatError> {
    assert!((0.0..=1.0).contains(&q), "quantile level must be in [0, 1]");
    if data.is_empty() {
        return Err(StatError::TooFewSamples { needed: 1, got: 0 });
    }
    check_finite(data)?;
    let mut sorted = data.to_vec();
    sorted.sort_by(f64::total_cmp);
    let h = q * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    Ok(if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
    })
}

/// Geometric mean of strictly positive data.
///
/// # Panics
///
/// Panics on an empty slice or non-positive values.
pub fn geometric_mean(data: &[f64]) -> f64 {
    assert!(!data.is_empty(), "geometric mean of empty data");
    assert!(
        data.iter().all(|&v| v > 0.0),
        "geometric mean needs positive data"
    );
    (data.iter().map(|v| v.ln()).sum::<f64>() / data.len() as f64).exp()
}

/// A five-number-plus summary of a sample.
///
/// # Examples
///
/// ```
/// use sz_stats::Summary;
///
/// let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0, 100.0])?;
/// assert_eq!(s.median, 3.0);
/// assert!(s.mean > s.median, "the outlier pulls the mean up");
/// # Ok::<(), sz_stats::StatError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std: f64,
    /// Minimum observation.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// # Errors
    ///
    /// Returns [`StatError::TooFewSamples`] for fewer than two
    /// observations and [`StatError::NonFinite`] for NaN/infinite data.
    pub fn from_slice(data: &[f64]) -> Result<Self, StatError> {
        if data.len() < 2 {
            return Err(StatError::TooFewSamples {
                needed: 2,
                got: data.len(),
            });
        }
        check_finite(data)?;
        Ok(Summary {
            n: data.len(),
            mean: mean(data),
            std: sample_std(data),
            min: quantile(data, 0.0)?,
            q1: quantile(data, 0.25)?,
            median: median(data)?,
            q3: quantile(data, 0.75)?,
            max: quantile(data, 1.0)?,
        })
    }

    /// Coefficient of variation (`std / mean`).
    pub fn cv(&self) -> f64 {
        self.std / self.mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&data), 5.0);
        // Sum of squared deviations = 32; 32 / 7.
        assert!((sample_variance(&data) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn median_even_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Ok(2.0));
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), Ok(2.5));
    }

    #[test]
    fn quantile_interpolation() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&data, 0.0), Ok(1.0));
        assert_eq!(quantile(&data, 1.0), Ok(4.0));
        // h = 0.25 * 3 = 0.75 -> 1 + 0.75*(2-1) = 1.75 (type 7).
        assert!((quantile(&data, 0.25).unwrap() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_degenerate_inputs() {
        // One element: every quantile is that element.
        for q in [0.0, 0.25, 0.5, 1.0] {
            assert_eq!(quantile(&[7.5], q), Ok(7.5));
        }
        assert_eq!(median(&[7.5]), Ok(7.5));
        // Two elements: interpolation between the pair.
        assert_eq!(median(&[1.0, 3.0]), Ok(2.0));
        assert_eq!(quantile(&[1.0, 3.0], 0.25), Ok(1.5));
        assert_eq!(quantile(&[1.0, 3.0], 0.0), Ok(1.0));
        assert_eq!(quantile(&[1.0, 3.0], 1.0), Ok(3.0));
    }

    #[test]
    fn quantile_rejects_bad_data_instead_of_panicking() {
        assert_eq!(
            quantile(&[], 0.5),
            Err(StatError::TooFewSamples { needed: 1, got: 0 })
        );
        assert_eq!(
            median(&[]),
            Err(StatError::TooFewSamples { needed: 1, got: 0 })
        );
        assert_eq!(quantile(&[1.0, f64::NAN], 0.5), Err(StatError::NonFinite));
        assert_eq!(
            quantile(&[f64::INFINITY, 1.0], 0.5),
            Err(StatError::NonFinite)
        );
        assert_eq!(median(&[f64::NAN]), Err(StatError::NonFinite));
    }

    #[test]
    #[should_panic(expected = "quantile level must be in [0, 1]")]
    fn out_of_range_level_is_a_programmer_error() {
        let _ = quantile(&[1.0, 2.0], 1.5);
    }

    #[test]
    fn geometric_mean_fixture() {
        assert!((geometric_mean(&[1.0, 4.0, 16.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn summary_rejects_bad_input() {
        assert!(matches!(
            Summary::from_slice(&[1.0]),
            Err(StatError::TooFewSamples { .. })
        ));
        assert_eq!(
            Summary::from_slice(&[1.0, f64::NAN]),
            Err(StatError::NonFinite)
        );
    }

    #[test]
    fn summary_orders_quartiles() {
        let data: Vec<f64> = (0..101).map(|i| (i * 7 % 101) as f64).collect();
        let s = Summary::from_slice(&data).unwrap();
        assert!(s.min <= s.q1 && s.q1 <= s.median && s.median <= s.q3 && s.q3 <= s.max);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.median, 50.0);
    }
}
