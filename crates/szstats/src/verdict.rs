//! Practical-equivalence verdicts on performance comparisons.
//!
//! A p-value answers "is there *a* difference?"; a benchmark gate
//! needs "is the difference *big enough to care about*, and in which
//! direction?". Following the benchmark-defense rule popularized by
//! kiwi-rs-style CI gates, a comparison is judged against a
//! *practical-equivalence band* around a ratio of 1: effects inside
//! the band are noise by decree, and only an effect whose entire
//! confidence interval clears the band is "robust".
//!
//! The band is **multiplicative**: with `band = 0.05` the equivalence
//! region is `[1/1.05, 1.05]`, not `[0.95, 1.05]`. A multiplicative
//! band is symmetric in log space, which is what makes the verdict
//! flip exactly when the two arms are swapped (the bootstrap interval
//! maps to its reciprocal; see [`crate::bootstrap`]).
//!
//! Both interval estimators must agree before a comparison is called
//! robust: the bootstrap ratio CI must clear the band *and* the Welch
//! CI on the difference of means must exclude zero. Everything a
//! reader needs to audit the call — n per arm, both CIs, the band,
//! the bootstrap seed — travels in the [`VerdictReport`].

use crate::bootstrap::{effect_ci, effect_ci_hierarchical, EffectCi};
use crate::desc::mean;
use crate::effect::{diff_ci, ConfidenceInterval};
use crate::StatError;

/// The four-way outcome of a practical-equivalence comparison of a
/// candidate `b` against a baseline `a` (times: smaller is better).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EffectVerdict {
    /// The whole ratio CI clears the band upward and Welch agrees:
    /// `b` is faster by more than the band.
    RobustlyFaster,
    /// The whole ratio CI clears the band downward and Welch agrees:
    /// `b` is slower by more than the band.
    RobustlySlower,
    /// The whole ratio CI lies inside the band: any difference is
    /// below the practical threshold.
    Equivalent,
    /// The CI straddles a band edge — more samples could still move
    /// the call.
    Inconclusive,
}

impl EffectVerdict {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            EffectVerdict::RobustlyFaster => "robustly-faster",
            EffectVerdict::RobustlySlower => "robustly-slower",
            EffectVerdict::Equivalent => "equivalent",
            EffectVerdict::Inconclusive => "inconclusive",
        }
    }

    /// Stable numeric discriminant, for golden-file pinning.
    pub fn code(self) -> u8 {
        match self {
            EffectVerdict::RobustlyFaster => 0,
            EffectVerdict::RobustlySlower => 1,
            EffectVerdict::Equivalent => 2,
            EffectVerdict::Inconclusive => 3,
        }
    }

    /// Whether the comparison has settled (anything but
    /// [`EffectVerdict::Inconclusive`]) — the adaptive sampler's
    /// stopping condition.
    pub fn is_decided(self) -> bool {
        !matches!(self, EffectVerdict::Inconclusive)
    }
}

impl std::fmt::Display for EffectVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Parameters of a practical-equivalence judgement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VerdictConfig {
    /// Half-width of the multiplicative equivalence band: effects
    /// inside `[1/(1+band), 1+band]` are practically equivalent.
    pub band: f64,
    /// Confidence level of both intervals.
    pub confidence: f64,
    /// Bootstrap resamples.
    pub resamples: usize,
    /// Bootstrap seed.
    pub seed: u64,
}

impl Default for VerdictConfig {
    fn default() -> Self {
        VerdictConfig {
            band: 0.05,
            confidence: 0.95,
            resamples: 1000,
            seed: 0x5EED_B007,
        }
    }
}

/// A verdict with the publication-grade metadata needed to audit it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VerdictReport {
    /// The four-way call.
    pub verdict: EffectVerdict,
    /// Bootstrap CI on `mean(a) / mean(b)`.
    pub effect: EffectCi,
    /// Welch CI on `mean(a) - mean(b)` (for hierarchical arms, over
    /// per-run means).
    pub welch: ConfidenceInterval,
    /// The equivalence band the verdict was judged against.
    pub band: f64,
    /// Total observations in the baseline arm.
    pub n_a: usize,
    /// Total observations in the candidate arm.
    pub n_b: usize,
}

/// Classifies a bootstrap ratio CI + Welch difference CI against a
/// multiplicative equivalence band.
pub fn classify(effect: &EffectCi, welch: &ConfidenceInterval, band: f64) -> EffectVerdict {
    assert!(band > 0.0 && band.is_finite(), "band must be positive");
    let gamma = 1.0 + band;
    let inv_gamma = 1.0 / gamma;
    if effect.lo > gamma && welch.lo > 0.0 {
        EffectVerdict::RobustlyFaster
    } else if effect.hi < inv_gamma && welch.hi < 0.0 {
        EffectVerdict::RobustlySlower
    } else if effect.lo >= inv_gamma && effect.hi <= gamma {
        EffectVerdict::Equivalent
    } else {
        EffectVerdict::Inconclusive
    }
}

/// Judges candidate `b` against baseline `a` (flat arms of positive
/// measurements, e.g. seconds per run).
///
/// # Errors
///
/// As [`effect_ci`]; Welch needs two observations per arm, which
/// [`effect_ci`] already guarantees.
///
/// # Examples
///
/// ```
/// use sz_stats::verdict::{judge, EffectVerdict, VerdictConfig};
///
/// let before = [10.0, 10.2, 9.8, 10.1, 9.9, 10.0, 10.15, 9.95];
/// let after = [8.0, 8.2, 7.8, 8.1, 7.9, 8.0, 8.15, 7.95];
/// let report = judge(&before, &after, &VerdictConfig::default())?;
/// assert_eq!(report.verdict, EffectVerdict::RobustlyFaster);
/// # Ok::<(), sz_stats::StatError>(())
/// ```
pub fn judge(a: &[f64], b: &[f64], cfg: &VerdictConfig) -> Result<VerdictReport, StatError> {
    let effect = effect_ci(a, b, cfg.confidence, cfg.resamples, cfg.seed)?;
    let welch = welch_or_degenerate(a, b, cfg.confidence)?;
    Ok(VerdictReport {
        verdict: classify(&effect, &welch, cfg.band),
        effect,
        welch,
        band: cfg.band,
        n_a: a.len(),
        n_b: b.len(),
    })
}

/// [`judge`] over hierarchical arms (runs of iterations). The
/// bootstrap resamples both levels; the Welch interval is computed
/// over per-run means (each run is one independent observation) when
/// an arm has at least two runs, and over the single run's iterations
/// otherwise.
///
/// # Errors
///
/// As [`effect_ci_hierarchical`].
pub fn judge_hierarchical(
    a: &[Vec<f64>],
    b: &[Vec<f64>],
    cfg: &VerdictConfig,
) -> Result<VerdictReport, StatError> {
    let effect = effect_ci_hierarchical(a, b, cfg.confidence, cfg.resamples, cfg.seed)?;
    let wa = welch_arm(a);
    let wb = welch_arm(b);
    let welch = welch_or_degenerate(&wa, &wb, cfg.confidence)?;
    Ok(VerdictReport {
        verdict: classify(&effect, &welch, cfg.band),
        effect,
        welch,
        band: cfg.band,
        n_a: a.iter().map(Vec::len).sum(),
        n_b: b.iter().map(Vec::len).sum(),
    })
}

fn welch_arm(runs: &[Vec<f64>]) -> Vec<f64> {
    if runs.len() >= 2 {
        runs.iter().map(|r| mean(r)).collect()
    } else {
        runs.first().cloned().unwrap_or_default()
    }
}

/// Welch CI, degrading gracefully when both arms are constant (the
/// difference is then exact, so the interval collapses to a point).
fn welch_or_degenerate(
    a: &[f64],
    b: &[f64],
    confidence: f64,
) -> Result<ConfidenceInterval, StatError> {
    match diff_ci(a, b, confidence) {
        Err(StatError::ZeroVariance) => {
            let d = mean(a) - mean(b);
            Ok(ConfidenceInterval {
                estimate: d,
                lo: d,
                hi: d,
                confidence,
            })
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arm(base: f64, spread: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| base + spread * (i % 7) as f64 / 7.0)
            .collect()
    }

    fn cfg() -> VerdictConfig {
        VerdictConfig::default()
    }

    #[test]
    fn clear_speedup_is_robustly_faster() {
        let r = judge(&arm(10.0, 0.3, 16), &arm(8.0, 0.3, 16), &cfg()).unwrap();
        assert_eq!(r.verdict, EffectVerdict::RobustlyFaster);
        assert!(r.effect.lo > 1.05);
        assert!(r.welch.lo > 0.0);
        assert_eq!((r.n_a, r.n_b), (16, 16));
    }

    #[test]
    fn clear_slowdown_is_robustly_slower() {
        let r = judge(&arm(8.0, 0.3, 16), &arm(10.0, 0.3, 16), &cfg()).unwrap();
        assert_eq!(r.verdict, EffectVerdict::RobustlySlower);
        assert!(r.effect.hi < 1.0 / 1.05);
        assert!(r.welch.hi < 0.0);
    }

    #[test]
    fn matched_arms_are_equivalent() {
        let r = judge(&arm(10.0, 0.2, 20), &arm(10.02, 0.2, 20), &cfg()).unwrap();
        assert_eq!(r.verdict, EffectVerdict::Equivalent, "{r:?}");
    }

    #[test]
    fn noisy_borderline_effect_is_inconclusive() {
        // ~6% effect with large spread at small n: the CI straddles
        // the band edge.
        let r = judge(&arm(10.0, 4.0, 6), &arm(9.4, 4.0, 6), &cfg()).unwrap();
        assert_eq!(r.verdict, EffectVerdict::Inconclusive, "{r:?}");
    }

    #[test]
    fn identical_constant_arms_are_equivalent() {
        // Zero variance collapses the Welch interval instead of
        // erroring out.
        let a = vec![5.0; 8];
        let r = judge(&a, &a, &cfg()).unwrap();
        assert_eq!(r.verdict, EffectVerdict::Equivalent);
        assert_eq!((r.effect.lo, r.effect.hi), (1.0, 1.0));
        assert_eq!((r.welch.lo, r.welch.hi), (0.0, 0.0));
    }

    #[test]
    fn constant_arms_with_a_real_gap_are_robust() {
        let r = judge(&[10.0; 8], &[8.0; 8], &cfg()).unwrap();
        assert_eq!(r.verdict, EffectVerdict::RobustlyFaster);
    }

    #[test]
    fn welch_must_agree_for_a_robust_call() {
        // A ratio CI that clears the band but a Welch interval that
        // touches zero must not be called robust.
        let effect = EffectCi {
            ratio: 1.2,
            lo: 1.1,
            hi: 1.3,
            confidence: 0.95,
            resamples: 100,
            seed: 0,
        };
        let welch = ConfidenceInterval {
            estimate: 0.5,
            lo: -0.1,
            hi: 1.1,
            confidence: 0.95,
        };
        assert_eq!(classify(&effect, &welch, 0.05), EffectVerdict::Inconclusive);
    }

    #[test]
    fn hierarchical_judgement_uses_run_means() {
        let fast: Vec<Vec<f64>> = (0..5).map(|r| arm(8.0 + 0.01 * r as f64, 0.1, 6)).collect();
        let slow: Vec<Vec<f64>> = (0..5)
            .map(|r| arm(10.0 + 0.01 * r as f64, 0.1, 6))
            .collect();
        let r = judge_hierarchical(&slow, &fast, &cfg()).unwrap();
        assert_eq!(r.verdict, EffectVerdict::RobustlyFaster);
        assert_eq!((r.n_a, r.n_b), (30, 30));
    }

    #[test]
    fn verdict_codes_and_names_are_stable() {
        let all = [
            EffectVerdict::RobustlyFaster,
            EffectVerdict::RobustlySlower,
            EffectVerdict::Equivalent,
            EffectVerdict::Inconclusive,
        ];
        let names: Vec<&str> = all.iter().map(|v| v.as_str()).collect();
        assert_eq!(
            names,
            [
                "robustly-faster",
                "robustly-slower",
                "equivalent",
                "inconclusive"
            ]
        );
        let codes: Vec<u8> = all.iter().map(|v| v.code()).collect();
        assert_eq!(codes, [0, 1, 2, 3]);
        assert!(EffectVerdict::Equivalent.is_decided());
        assert!(!EffectVerdict::Inconclusive.is_decided());
    }

    #[test]
    fn widening_the_band_moves_calls_toward_equivalent() {
        let a = arm(10.0, 0.3, 16);
        let b = arm(9.2, 0.3, 16);
        let narrow = judge(
            &a,
            &b,
            &VerdictConfig {
                band: 0.02,
                ..cfg()
            },
        )
        .unwrap();
        let wide = judge(&a, &b, &VerdictConfig { band: 0.2, ..cfg() }).unwrap();
        assert_eq!(narrow.verdict, EffectVerdict::RobustlyFaster);
        assert_eq!(wide.verdict, EffectVerdict::Equivalent);
    }
}
