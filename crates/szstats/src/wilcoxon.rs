//! Non-parametric rank tests: Wilcoxon signed-rank and Mann–Whitney U.
//!
//! The paper (§6) falls back to the Wilcoxon signed-rank test for the
//! benchmarks whose execution times are not normally distributed even
//! under STABILIZER (hmmer, wrf, zeusmp).

use crate::dist::Normal;
use crate::error::check_finite;
use crate::StatError;

/// Result of a rank-based test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankTest {
    /// The test statistic (W⁺ for signed-rank, U for Mann–Whitney).
    pub statistic: f64,
    /// Normal-approximation z score (with continuity correction).
    pub z: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

/// Assigns mid-ranks (average ranks for ties) to the values and returns
/// `(ranks, tie_correction_sum)` where the correction sum is
/// `Σ (t³ - t)` over tie groups.
fn mid_ranks(values: &[f64]) -> (Vec<f64>, f64) {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| values[i].partial_cmp(&values[j]).expect("finite values"));
    let mut ranks = vec![0.0; n];
    let mut tie_sum = 0.0;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        let t = (j - i + 1) as f64;
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg_rank;
        }
        if t > 1.0 {
            tie_sum += t * t * t - t;
        }
        i = j + 1;
    }
    (ranks, tie_sum)
}

/// Wilcoxon signed-rank test on paired samples.
///
/// Zero differences are dropped (Wilcoxon's original treatment); the
/// p-value uses the normal approximation with tie correction and a
/// continuity correction, matching R's `wilcox.test(..., exact = FALSE,
/// correct = TRUE)`.
///
/// # Errors
///
/// - [`StatError::RaggedData`] if lengths differ;
/// - [`StatError::TooFewSamples`] if fewer than 6 non-zero differences
///   remain (below that, the normal approximation is meaningless);
/// - [`StatError::NonFinite`] for NaN/infinite data.
///
/// # Examples
///
/// ```
/// use sz_stats::wilcoxon_signed_rank;
///
/// let before = [10.0, 11.0, 12.0, 13.0, 14.0, 15.0, 16.0, 17.0];
/// let after = [9.0, 10.2, 11.1, 11.9, 13.2, 14.1, 15.0, 15.8];
/// let r = wilcoxon_signed_rank(&before, &after)?;
/// assert!(r.p_value < 0.05);
/// # Ok::<(), sz_stats::StatError>(())
/// ```
pub fn wilcoxon_signed_rank(a: &[f64], b: &[f64]) -> Result<RankTest, StatError> {
    if a.len() != b.len() {
        return Err(StatError::RaggedData);
    }
    check_finite(a)?;
    check_finite(b)?;
    let diffs: Vec<f64> = a
        .iter()
        .zip(b)
        .map(|(x, y)| x - y)
        .filter(|d| *d != 0.0)
        .collect();
    let n = diffs.len();
    if n < 6 {
        return Err(StatError::TooFewSamples { needed: 6, got: n });
    }
    let abs: Vec<f64> = diffs.iter().map(|d| d.abs()).collect();
    let (ranks, tie_sum) = mid_ranks(&abs);
    let w_plus: f64 = diffs
        .iter()
        .zip(&ranks)
        .filter(|(d, _)| **d > 0.0)
        .map(|(_, r)| r)
        .sum();
    let nf = n as f64;
    let mean = nf * (nf + 1.0) / 4.0;
    let var = nf * (nf + 1.0) * (2.0 * nf + 1.0) / 24.0 - tie_sum / 48.0;
    if var <= 0.0 {
        return Err(StatError::ZeroVariance);
    }
    let delta = w_plus - mean;
    // Continuity correction toward the mean.
    let z = (delta - 0.5 * delta.signum()) / var.sqrt();
    let p_value = (2.0 * Normal::sf(z.abs())).min(1.0);
    Ok(RankTest {
        statistic: w_plus,
        z,
        p_value,
    })
}

/// Mann–Whitney U test (Wilcoxon rank-sum) on two independent samples.
///
/// Uses the normal approximation with tie and continuity corrections.
///
/// # Errors
///
/// - [`StatError::TooFewSamples`] if either sample has fewer than 4
///   observations;
/// - [`StatError::ZeroVariance`] if all observations are tied;
/// - [`StatError::NonFinite`] for NaN/infinite data.
pub fn mann_whitney_u(a: &[f64], b: &[f64]) -> Result<RankTest, StatError> {
    for s in [a, b] {
        if s.len() < 4 {
            return Err(StatError::TooFewSamples {
                needed: 4,
                got: s.len(),
            });
        }
        check_finite(s)?;
    }
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let pooled: Vec<f64> = a.iter().chain(b).copied().collect();
    let (ranks, tie_sum) = mid_ranks(&pooled);
    let ra: f64 = ranks[..a.len()].iter().sum();
    let u = ra - na * (na + 1.0) / 2.0;
    let mean = na * nb / 2.0;
    let n = na + nb;
    let var = na * nb / 12.0 * ((n + 1.0) - tie_sum / (n * (n - 1.0)));
    if var <= 0.0 {
        return Err(StatError::ZeroVariance);
    }
    let delta = u - mean;
    let z = (delta - 0.5 * delta.signum()) / var.sqrt();
    let p_value = (2.0 * Normal::sf(z.abs())).min(1.0);
    Ok(RankTest {
        statistic: u,
        z,
        p_value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mid_ranks_handles_ties() {
        let (ranks, tie_sum) = mid_ranks(&[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(ranks, vec![1.0, 2.5, 2.5, 4.0]);
        assert_eq!(tie_sum, 2.0 * 2.0 * 2.0 - 2.0);
    }

    #[test]
    fn signed_rank_detects_consistent_shift() {
        let a: Vec<f64> = (0..20).map(|i| 10.0 + i as f64).collect();
        let b: Vec<f64> = a.iter().map(|v| v - 1.0 - 0.01 * (v % 3.0)).collect();
        let r = wilcoxon_signed_rank(&a, &b).unwrap();
        assert!(r.p_value < 0.001, "p = {}", r.p_value);
        assert!(r.z > 0.0);
    }

    #[test]
    fn signed_rank_null_case() {
        // Alternating +1/-1 differences: W+ should sit near its mean.
        let a: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..20)
            .map(|i| i as f64 + if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let r = wilcoxon_signed_rank(&a, &b).unwrap();
        assert!(r.p_value > 0.5, "p = {}", r.p_value);
    }

    #[test]
    fn signed_rank_drops_zero_differences() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let b = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        assert!(matches!(
            wilcoxon_signed_rank(&a, &b),
            Err(StatError::TooFewSamples { got: 0, .. })
        ));
    }

    #[test]
    fn mann_whitney_separated_samples() {
        let a: Vec<f64> = (0..15).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..15).map(|i| 100.0 + i as f64).collect();
        let r = mann_whitney_u(&a, &b).unwrap();
        // Complete separation: U = 0.
        assert_eq!(r.statistic, 0.0);
        assert!(r.p_value < 1e-5);
    }

    #[test]
    fn mann_whitney_identical_distributions() {
        let a: Vec<f64> = (0..20).map(|i| (i % 10) as f64).collect();
        let b = a.clone();
        let r = mann_whitney_u(&a, &b).unwrap();
        assert!(r.p_value > 0.9, "p = {}", r.p_value);
    }

    #[test]
    fn mann_whitney_all_tied_is_error() {
        assert_eq!(
            mann_whitney_u(&[3.0; 6], &[3.0; 6]),
            Err(StatError::ZeroVariance)
        );
    }

    #[test]
    fn signed_rank_symmetry() {
        let a = [1.0, 3.0, 5.0, 7.0, 9.0, 11.0, 13.0, 15.5];
        let b = [2.0, 2.5, 6.0, 6.5, 10.0, 10.5, 14.0, 14.5];
        let ab = wilcoxon_signed_rank(&a, &b).unwrap();
        let ba = wilcoxon_signed_rank(&b, &a).unwrap();
        assert!((ab.p_value - ba.p_value).abs() < 1e-12);
        assert!((ab.z + ba.z).abs() < 1e-12);
    }
}
