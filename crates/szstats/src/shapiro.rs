//! The Shapiro–Wilk test for normality (Royston's AS R94 algorithm).
//!
//! This is the test the paper applies to every benchmark's 30 runs in
//! Table 1 and §6 to decide whether execution times are drawn from a
//! Gaussian distribution.

use crate::dist::Normal;
use crate::error::check_finite;
use crate::StatError;

/// Result of the Shapiro–Wilk normality test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShapiroWilk {
    /// The W statistic, in `(0, 1]`; values near 1 are consistent with
    /// normality.
    pub w: f64,
    /// P-value for the null hypothesis that the sample is normal.
    pub p_value: f64,
}

/// Polynomial evaluation: `c[0] + c[1] x + c[2] x^2 + ...`.
fn poly(c: &[f64], x: f64) -> f64 {
    c.iter().rev().fold(0.0, |acc, &ci| acc * x + ci)
}

/// Runs the Shapiro–Wilk test for normality.
///
/// Implements Royston (1995), Applied Statistics algorithm AS R94,
/// matching R's `shapiro.test`. Valid for `3 <= n <= 5000`.
///
/// # Errors
///
/// - [`StatError::TooFewSamples`] for `n < 3`;
/// - [`StatError::TooManySamples`] for `n > 5000` (the p-value
///   approximation is not calibrated beyond that);
/// - [`StatError::ZeroVariance`] if all observations are equal;
/// - [`StatError::NonFinite`] for NaN or infinite observations.
///
/// # Examples
///
/// ```
/// use sz_stats::shapiro_wilk;
///
/// // Uniformly spaced data is close enough to normal for n = 10 that
/// // the test cannot reject.
/// let data: Vec<f64> = (1..=10).map(f64::from).collect();
/// let r = shapiro_wilk(&data)?;
/// assert!(r.w > 0.9);
/// # Ok::<(), sz_stats::StatError>(())
/// ```
pub fn shapiro_wilk(data: &[f64]) -> Result<ShapiroWilk, StatError> {
    let n = data.len();
    if n < 3 {
        return Err(StatError::TooFewSamples { needed: 3, got: n });
    }
    if n > 5000 {
        return Err(StatError::TooManySamples { max: 5000, got: n });
    }
    check_finite(data)?;

    let mut x = data.to_vec();
    x.sort_by(|a, b| a.partial_cmp(b).expect("finite data"));
    let range = x[n - 1] - x[0];
    if range <= 0.0 {
        return Err(StatError::ZeroVariance);
    }

    let an = n as f64;
    let nn2 = n / 2;
    // `a[k]` holds the coefficient for the (n-k)-th order statistic,
    // positive after normalization; the full coefficient vector is
    // antisymmetric.
    let mut a = vec![0.0f64; nn2];

    if n == 3 {
        a[0] = std::f64::consts::FRAC_1_SQRT_2;
    } else {
        const C1: [f64; 6] = [
            0.0, 0.221_157, -0.147_981, -2.071_190, 4.434_685, -2.706_056,
        ];
        const C2: [f64; 6] = [
            0.0, 0.042_981, -0.293_762, -1.752_461, 5.682_633, -3.582_633,
        ];
        let an25 = an + 0.25;
        let mut summ2 = 0.0;
        for (k, ak) in a.iter_mut().enumerate() {
            *ak = Normal::quantile(((k + 1) as f64 - 0.375) / an25); // negative half
            summ2 += *ak * *ak;
        }
        summ2 *= 2.0;
        let ssumm2 = summ2.sqrt();
        let rsn = 1.0 / an.sqrt();
        let a1 = poly(&C1, rsn) - a[0] / ssumm2;

        let (i1, fac) = if n > 5 {
            let a2 = -a[1] / ssumm2 + poly(&C2, rsn);
            let fac = ((summ2 - 2.0 * a[0] * a[0] - 2.0 * a[1] * a[1])
                / (1.0 - 2.0 * a1 * a1 - 2.0 * a2 * a2))
                .sqrt();
            a[1] = a2;
            (2usize, fac)
        } else {
            let fac = ((summ2 - 2.0 * a[0] * a[0]) / (1.0 - 2.0 * a1 * a1)).sqrt();
            (1usize, fac)
        };
        a[0] = a1;
        for ak in a.iter_mut().skip(i1) {
            *ak /= -fac; // flips sign: stored values become positive
        }
    }

    // Full antisymmetric coefficient for the i-th order statistic
    // (0-based): negative in the lower half, positive in the upper.
    let coeff = |i: usize| -> f64 {
        let j = n - 1 - i;
        use std::cmp::Ordering::*;
        match i.cmp(&j) {
            Less => -a[i],
            Greater => a[j],
            Equal => 0.0,
        }
    };

    // W as the squared correlation between data and coefficients,
    // computed on range-scaled data for numerical robustness (as in
    // R's swilk.c).
    let sa = (0..n).map(coeff).sum::<f64>() / an;
    let sx = x.iter().map(|v| v / range).sum::<f64>() / an;
    let (mut ssa, mut ssx, mut sax) = (0.0, 0.0, 0.0);
    for (i, xi) in x.iter().enumerate() {
        let asa = coeff(i) - sa;
        let xsx = xi / range - sx;
        ssa += asa * asa;
        ssx += xsx * xsx;
        sax += asa * xsx;
    }
    let ssassx = (ssa * ssx).sqrt();
    // w1 = 1 - W, formed to avoid cancellation when W is near 1.
    let w1 = (ssassx - sax) * (ssassx + sax) / (ssa * ssx);
    let w = 1.0 - w1;

    // Significance level.
    let p_value = if n == 3 {
        let pi6 = 1.909_859_317_102_744; // 6 / pi
        let stqr = std::f64::consts::FRAC_PI_3; // asin(sqrt(3/4))
        (pi6 * (w.sqrt().asin() - stqr)).clamp(0.0, 1.0)
    } else {
        const C3: [f64; 4] = [0.544, -0.399_78, 0.025_054, -6.714e-4];
        const C4: [f64; 4] = [1.382_2, -0.778_57, 0.062_767, -0.002_032_2];
        const C5: [f64; 4] = [-1.586_1, -0.310_82, -0.083_751, 0.003_891_5];
        const C6: [f64; 3] = [-0.480_3, -0.082_676, 0.003_030_2];
        const G: [f64; 2] = [-2.273, 0.459];
        let y = w1.ln();
        let (m, s, y) = if n <= 11 {
            let gamma = poly(&G, an);
            if y >= gamma {
                // W so small that the transform degenerates.
                return Ok(ShapiroWilk { w, p_value: 1e-99 });
            }
            (poly(&C3, an), poly(&C4, an).exp(), -(gamma - y).ln())
        } else {
            let ln_n = an.ln();
            (poly(&C5, ln_n), poly(&C6, ln_n).exp(), y)
        };
        Normal::sf((y - m) / s).clamp(0.0, 1.0)
    };

    Ok(ShapiroWilk { w, p_value })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Normal as N;

    /// Data that are *exactly* normal order-statistic medians should
    /// score W very close to 1.
    #[test]
    fn perfect_normal_scores_high() {
        for n in [10usize, 30, 100] {
            let data: Vec<f64> = (1..=n)
                .map(|i| N::quantile((i as f64 - 0.375) / (n as f64 + 0.25)))
                .collect();
            let r = shapiro_wilk(&data).unwrap();
            assert!(r.w > 0.99, "n={n}: W = {}", r.w);
            assert!(r.p_value > 0.5, "n={n}: p = {}", r.p_value);
        }
    }

    #[test]
    fn heavy_skew_is_rejected() {
        // Exponential-looking data, n = 30: decisively non-normal.
        let data: Vec<f64> = (1..=30)
            .map(|i| -(1.0 - (i as f64 - 0.5) / 30.0).ln())
            .collect();
        let r = shapiro_wilk(&data).unwrap();
        assert!(r.p_value < 0.01, "p = {}", r.p_value);
    }

    #[test]
    fn bimodal_is_rejected() {
        // Two well-separated clusters of 15 each.
        let mut data: Vec<f64> = (0..15).map(|i| i as f64 * 0.01).collect();
        data.extend((0..15).map(|i| 100.0 + i as f64 * 0.01));
        let r = shapiro_wilk(&data).unwrap();
        assert!(r.p_value < 0.001, "p = {}", r.p_value);
    }

    #[test]
    fn translation_and_scale_invariant() {
        let data: Vec<f64> = vec![
            2.1, 3.4, 1.9, 2.8, 3.3, 3.1, 2.9, 2.2, 2.5, 2.7, 3.6, 2.0, 2.4, 3.0, 2.6,
        ];
        let base = shapiro_wilk(&data).unwrap();
        let moved: Vec<f64> = data.iter().map(|v| 1000.0 + 7.5 * v).collect();
        let shifted = shapiro_wilk(&moved).unwrap();
        assert!((base.w - shifted.w).abs() < 1e-9);
        assert!((base.p_value - shifted.p_value).abs() < 1e-9);
    }

    #[test]
    fn outlier_lowers_w() {
        let mut data: Vec<f64> = (1..=29)
            .map(|i| N::quantile((i as f64 - 0.375) / 29.25))
            .collect();
        let clean = shapiro_wilk(&data).unwrap();
        data.push(25.0); // gross outlier
        let dirty = shapiro_wilk(&data).unwrap();
        assert!(dirty.w < clean.w);
        assert!(dirty.p_value < 1e-6, "p = {}", dirty.p_value);
    }

    #[test]
    fn small_n_paths() {
        // n = 3 exact path.
        let r = shapiro_wilk(&[1.0, 2.0, 3.0]).unwrap();
        assert!(r.w > 0.99 && r.p_value > 0.9, "{r:?}");
        // n in 4..=11 uses the small-sample transform.
        let r = shapiro_wilk(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]).unwrap();
        assert!(r.p_value > 0.5, "{r:?}");
        // n = 5 exercises the n <= 5 normalization branch.
        let r = shapiro_wilk(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert!(r.w > 0.95, "{r:?}");
    }

    #[test]
    fn error_cases() {
        assert!(matches!(
            shapiro_wilk(&[1.0, 2.0]),
            Err(StatError::TooFewSamples { .. })
        ));
        assert_eq!(shapiro_wilk(&[5.0; 10]), Err(StatError::ZeroVariance));
        assert_eq!(
            shapiro_wilk(&[1.0, 2.0, f64::NAN]),
            Err(StatError::NonFinite)
        );
        let big = vec![0.0; 5001];
        assert!(
            matches!(big.as_slice(), _s if matches!(shapiro_wilk(&big), Err(StatError::TooManySamples { .. })))
        );
    }

    #[test]
    fn w_is_in_unit_interval() {
        // A grab bag of shapes.
        let cases: Vec<Vec<f64>> = vec![
            (0..50).map(|i| (i as f64).sqrt()).collect(),
            (0..20).map(|i| ((i * i) % 17) as f64).collect(),
            vec![1.0, 1.0, 1.0, 1.0, 2.0],
        ];
        for data in cases {
            let r = shapiro_wilk(&data).unwrap();
            assert!(r.w > 0.0 && r.w <= 1.0 + 1e-12, "W = {}", r.w);
            assert!((0.0..=1.0).contains(&r.p_value), "p = {}", r.p_value);
        }
    }
}
