//! The STABILIZER runtime: a [`LayoutEngine`] tying together code,
//! stack, and heap randomization with the re-randomization timer.
//!
//! Simulated address map (all regions disjoint):
//!
//! | Region | Base | Contents |
//! |---|---|---|
//! | text | `0x0040_0000` | original function entries (trap sites) |
//! | globals | `0x0200_0000` | program globals + FP-constant globals |
//! | low code heap | `0x0800_0000` | relocated copies, 32-bit reachable |
//! | pad tables | `0x7A00_0000` | stack-randomization tables |
//! | stack | grows down from `0x7FFF_FFFF_F000` | frames + pads |
//! | high code heap | `0x2_0000_0000` | far copies (64-bit jumps) |
//! | data heap | `0x40_0000_0000` | the program's heap |

use sz_ir::{FuncId, GlobalId, Program};
use sz_machine::{MachineConfig, MemorySystem, PerfCounters};
use sz_rng::{Marsaglia, Rng, SplitMix64};
use sz_vm::{FrameView, LayoutEngine};

use crate::code::{CodeRandomizer, CodeStats};
use crate::costs;
use crate::stack::StackRandomizer;
use crate::{Config, StabilizerHeap, TransformInfo};

/// Text segment base for unrandomized placement.
const TEXT_BASE: u64 = 0x40_0000;
/// Globals segment base.
const GLOBALS_BASE: u64 = 0x200_0000;
/// Stack top.
const STACK_TOP: u64 = 0x7FFF_FFFF_F000;

/// Runtime activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Re-randomization rounds completed.
    pub rerandomizations: u64,
    /// Code statistics (relocations, GC activity).
    pub code: CodeStats,
    /// Pad-table refills.
    pub stack_refills: u64,
    /// Heap operations `(mallocs, frees)`.
    pub heap_ops: (u64, u64),
}

/// The STABILIZER layout engine (§3).
///
/// Create one per run with a distinct seed; identical seeds reproduce
/// identical layouts and therefore identical simulated times.
#[derive(Debug)]
pub struct Stabilizer {
    config: Config,
    info: TransformInfo,
    interval_cycles: u64,

    // Per-run state, (re)built in `prepare`.
    code: Option<CodeRandomizer>,
    stack_rand: Option<StackRandomizer>,
    stack_rng: Marsaglia,
    heap: Option<StabilizerHeap>,
    originals: Vec<u64>,
    global_bases: Vec<u64>,
    function_count: u64,
    next_rerand: u64,
    init_charged: bool,
    rerandomizations: u64,
    period_marks: Vec<PerfCounters>,
}

impl Stabilizer {
    /// Builds the engine.
    ///
    /// `machine` supplies the clock used to convert the configured
    /// re-randomization interval into cycles; `info` comes from
    /// [`crate::prepare_program`] and identifies the non-relocatable
    /// conversion helpers.
    pub fn new(config: Config, machine: &MachineConfig, info: &TransformInfo) -> Self {
        let interval_cycles = machine.cycles_of(config.interval).max(1);
        Stabilizer {
            config,
            info: info.clone(),
            interval_cycles,
            code: None,
            stack_rand: None,
            stack_rng: Marsaglia::seeded(0),
            heap: None,
            originals: Vec::new(),
            global_bases: Vec::new(),
            function_count: 0,
            next_rerand: 0,
            init_charged: false,
            rerandomizations: 0,
            period_marks: Vec::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Runtime statistics for the current/most recent run.
    pub fn stats(&self) -> Stats {
        Stats {
            rerandomizations: self.rerandomizations,
            code: self
                .code
                .as_ref()
                .map(CodeRandomizer::stats)
                .unwrap_or_default(),
            stack_refills: self
                .stack_rand
                .as_ref()
                .map(StackRandomizer::refills)
                .unwrap_or(0),
            heap_ops: self
                .heap
                .as_ref()
                .map(StabilizerHeap::op_counts)
                .unwrap_or((0, 0)),
        }
    }

    fn heap_mut(&mut self) -> &mut StabilizerHeap {
        self.heap.as_mut().expect("prepare() ran before execution")
    }
}

impl LayoutEngine for Stabilizer {
    fn prepare(&mut self, program: &Program) {
        // Derive independent streams from the seed so enabling one
        // randomization never perturbs another's choices.
        let mut seeder = SplitMix64::new(self.config.seed);
        let code_rng = Marsaglia::seeded(seeder.next_u64());
        let heap_rng = Marsaglia::seeded(seeder.next_u64());
        self.stack_rng = Marsaglia::seeded(seeder.next_u64());

        self.originals.clear();
        let mut pc = TEXT_BASE;
        for f in &program.functions {
            self.originals.push(pc);
            pc = (pc + f.code_size() + 15) & !15;
        }
        self.global_bases.clear();
        let mut g = GLOBALS_BASE;
        for global in &program.globals {
            self.global_bases.push(g);
            g = (g + global.size + 15) & !15;
        }

        self.code = self
            .config
            .code
            .then(|| CodeRandomizer::new(program, &self.info, self.config.shuffle_n, code_rng));
        self.stack_rand = self
            .config
            .stack
            .then(|| StackRandomizer::new(program, &mut self.stack_rng));
        self.heap = Some(StabilizerHeap::new(
            self.config.heap,
            self.config.base_allocator,
            self.config.shuffle_n,
            heap_rng,
        ));
        self.function_count = program.functions.len() as u64;
        self.next_rerand = self.interval_cycles;
        self.init_charged = false;
        self.rerandomizations = 0;
        self.period_marks.clear();
    }

    fn enter_function(&mut self, func: FuncId, mem: &mut MemorySystem) -> u64 {
        match &mut self.code {
            Some(code) => code.enter(func, mem),
            None => self.originals[func.0 as usize],
        }
    }

    fn stack_pad(&mut self, func: FuncId, mem: &mut MemorySystem) -> u64 {
        match &mut self.stack_rand {
            Some(s) => s.pad(func, mem),
            None => 0,
        }
    }

    fn global_base(&self, g: GlobalId) -> u64 {
        self.global_bases[g.0 as usize]
    }

    fn stack_base(&self) -> u64 {
        STACK_TOP
    }

    fn malloc(&mut self, size: u64, mem: &mut MemorySystem) -> Option<u64> {
        self.heap_mut().malloc(size, mem)
    }

    fn free(&mut self, addr: u64, mem: &mut MemorySystem) -> bool {
        self.heap_mut().free(addr, mem)
    }

    fn tick(&mut self, now_cycles: u64, stack: &[FrameView], mem: &mut MemorySystem) {
        if !self.init_charged {
            // The runtime's own main: register functions, plant traps,
            // run deferred constructors (§3.3).
            mem.charge(
                costs::INIT_BASE_CYCLES + self.function_count * costs::INIT_PER_FUNCTION_CYCLES,
            );
            self.init_charged = true;
        }
        if !self.config.rerandomize || now_cycles < self.next_rerand {
            return;
        }
        // Timer expired: re-randomization happens at the next function
        // entry — which is exactly now, since the VM ticks at entries.
        if let Some(code) = &mut self.code {
            code.rerandomize(stack, mem);
        }
        if let Some(s) = &mut self.stack_rand {
            s.refill(&mut self.stack_rng, mem);
        }
        self.rerandomizations += 1;
        // Re-arm from the elapsed interval boundary, not from `now`:
        // ticks only happen at function entries, so arming from `now`
        // adds each entry's lateness to the schedule and the effective
        // period drifts above the configured interval without bound.
        // Boundaries that fell entirely inside the gap are skipped so a
        // long straight-line stretch is one re-randomization, not a
        // burst.
        let missed = (now_cycles - self.next_rerand) / self.interval_cycles;
        self.next_rerand += (missed + 1) * self.interval_cycles;
        // The period that just ended carries the relocation/refill
        // work that closed it: snapshot after charging it.
        self.period_marks.push(*mem.counters());
    }

    fn name(&self) -> &'static str {
        "stabilizer"
    }

    fn period_marks(&self) -> &[PerfCounters] {
        &self.period_marks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prepare_program;
    use sz_ir::{AluOp, Operand, ProgramBuilder};
    use sz_machine::SimTime;
    use sz_vm::{RunLimits, Vm};

    /// A call-heavy program with heap and float traffic, large enough
    /// that layout matters.
    fn workload() -> sz_ir::Program {
        let mut p = ProgramBuilder::new("w");
        let g = p.global("table", 4096);
        let mut ids = Vec::new();
        for i in 0..6 {
            let mut f = p.function(format!("f{i}"), 1);
            let x = f.param(0);
            for _ in 0..3 {
                f.nop(40);
            }
            let v = f.load_global(g, x);
            let w = f.alu(AluOp::Add, v, 1);
            f.store_global(g, x, w);
            f.ret(Some(w.into()));
            ids.push(p.add_function(f));
        }
        let mut main = p.function("main", 0);
        let s_i = main.slot();
        main.store_slot(s_i, 0);
        let header = main.new_block();
        let body = main.new_block();
        let exit = main.new_block();
        main.jump(header);
        main.switch_to(header);
        let i = main.load_slot(s_i);
        let c = main.alu(AluOp::CmpLt, i, 200);
        main.branch(c, body, exit);
        main.switch_to(body);
        let i2 = main.load_slot(s_i);
        let off = main.alu(AluOp::And, i2, 511);
        let buf = main.malloc(64);
        for id in &ids {
            main.call_void(*id, vec![Operand::Reg(off)]);
        }
        main.free(buf);
        let half = main.fp_const(0.5);
        let fi = main.int_to_fp(i2);
        let prod = main.alu(AluOp::FMul, fi, half);
        let _ = main.fp_to_int(prod);
        let ni = main.alu(AluOp::Add, i2, 1);
        main.store_slot(s_i, ni);
        main.jump(header);
        main.switch_to(exit);
        let out = main.load_slot(s_i);
        main.ret(Some(out.into()));
        let entry = p.add_function(main);
        p.finish(entry).unwrap()
    }

    fn run_with(config: Config, seed: u64) -> (sz_vm::RunReport, Stats) {
        let machine = MachineConfig::tiny();
        let (prepared, info) = prepare_program(&workload());
        let mut engine = Stabilizer::new(config.with_seed(seed), &machine, &info);
        let report = Vm::new(&prepared)
            .run(&mut engine, machine, RunLimits::default())
            .expect("run succeeds");
        (report, engine.stats())
    }

    /// An interval short enough that a tiny run re-randomizes often.
    fn fast_interval() -> SimTime {
        SimTime::from_nanos(6_000.0) // ~19k cycles at 3.2 GHz
    }

    #[test]
    fn behaviour_matches_unrandomized_execution() {
        let (prepared, _) = prepare_program(&workload());
        let mut simple = sz_vm::SimpleLayout::new();
        let expected = Vm::new(&prepared)
            .run(&mut simple, MachineConfig::tiny(), RunLimits::default())
            .unwrap()
            .return_value;
        let (report, _) = run_with(Config::default().with_interval(fast_interval()), 42);
        assert_eq!(
            report.return_value, expected,
            "randomization must not change results"
        );
        assert_eq!(report.return_value, Some(200));
    }

    #[test]
    fn rerandomization_fires_on_schedule() {
        let (_, stats) = run_with(Config::default().with_interval(fast_interval()), 1);
        assert!(
            stats.rerandomizations >= 3,
            "expected several rounds, got {}",
            stats.rerandomizations
        );
        assert_eq!(stats.stack_refills, stats.rerandomizations);
        assert!(
            stats.code.relocations > stats.rerandomizations,
            "functions re-trap each round"
        );
    }

    #[test]
    fn one_time_mode_never_rerandomizes() {
        let (_, stats) = run_with(Config::one_time(), 1);
        assert_eq!(stats.rerandomizations, 0);
        assert!(
            stats.code.relocations > 0,
            "but initial randomization still happens"
        );
    }

    #[test]
    fn different_seeds_different_times() {
        let times: Vec<u64> = (0..8)
            .map(|s| {
                run_with(Config::default().with_interval(fast_interval()), s)
                    .0
                    .cycles
            })
            .collect();
        let distinct: std::collections::HashSet<u64> = times.iter().copied().collect();
        assert!(distinct.len() >= 6, "layout must drive timing: {times:?}");
    }

    #[test]
    fn same_seed_bit_identical() {
        let a = run_with(Config::default().with_interval(fast_interval()), 123).0;
        let b = run_with(Config::default().with_interval(fast_interval()), 123).0;
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.counters, b.counters);
    }

    #[test]
    fn randomizations_toggle_independently() {
        let (_, code_only) = run_with(
            Config {
                stack: false,
                heap: false,
                ..Config::default()
            }
            .with_interval(fast_interval()),
            5,
        );
        assert!(code_only.code.relocations > 0);
        assert_eq!(code_only.stack_refills, 0);

        let (_, heap_only) = run_with(
            Config {
                code: false,
                stack: false,
                ..Config::default()
            }
            .with_interval(fast_interval()),
            5,
        );
        assert_eq!(heap_only.code.relocations, 0);
        assert!(heap_only.heap_ops.0 > 0);
    }

    #[test]
    fn disabled_code_randomization_uses_text_addresses() {
        let machine = MachineConfig::tiny();
        let (prepared, info) = prepare_program(&workload());
        let mut engine = Stabilizer::new(
            Config {
                code: false,
                ..Config::default()
            }
            .with_seed(1),
            &machine,
            &info,
        );
        engine.prepare(&prepared);
        let mut mem = MemorySystem::new(machine);
        let base = engine.enter_function(FuncId(0), &mut mem);
        assert_eq!(base, TEXT_BASE);
    }

    #[test]
    fn timer_rearms_from_the_elapsed_boundary_not_the_tick_site() {
        // Ticks only happen at function entries. With sparse entries
        // the old re-arm (`next = now + interval`) added each tick's
        // lateness to the schedule, so the effective period drifted
        // without bound. The fixed re-arm schedules from interval
        // boundaries: a tick landing anywhere inside period k arms the
        // timer for boundary k+1.
        let machine = MachineConfig::tiny();
        let (prepared, info) = prepare_program(&workload());
        let mut engine = Stabilizer::new(Config::default().with_seed(3), &machine, &info);
        engine.prepare(&prepared);
        let mut mem = MemorySystem::new(machine);
        let i = engine.interval_cycles;

        // A long straight-line stretch covers boundaries 1..=10, then
        // the first entry happens mid-period at 10.5 intervals: one
        // round fires (missed boundaries collapse, no burst) and the
        // timer arms for boundary 11.
        engine.tick(10 * i + i / 2, &[], &mut mem);
        assert_eq!(engine.rerandomizations, 1);
        assert_eq!(engine.next_rerand, 11 * i);

        // An entry just after boundary 11 must fire. The old re-arm
        // had scheduled 11.5 intervals and would sit this one out.
        engine.tick(11 * i + 1, &[], &mut mem);
        assert_eq!(engine.rerandomizations, 2);
        assert_eq!(engine.next_rerand, 12 * i);

        // Entries inside the current period stay quiet.
        engine.tick(11 * i + i / 4, &[], &mut mem);
        assert_eq!(engine.rerandomizations, 2);
    }

    #[test]
    fn longer_intervals_amortize_rerandomization_cost() {
        // The paper's 500 ms interval amortizes relocation work to
        // nothing; this run is thousands of times shorter, so instead
        // we check the *monotonicity*: a 16x longer interval must cost
        // fewer cycles (averaged over seeds to wash out layout luck).
        let (prepared, info) = prepare_program(&workload());
        let machine = MachineConfig::tiny();
        let avg = |interval: SimTime| -> u64 {
            let mut total = 0;
            for s in 0..6 {
                let mut engine = Stabilizer::new(
                    Config::default().with_interval(interval).with_seed(s),
                    &machine,
                    &info,
                );
                total += Vm::new(&prepared)
                    .run(&mut engine, machine, RunLimits::default())
                    .unwrap()
                    .cycles;
            }
            total / 6
        };
        let frantic = avg(fast_interval());
        let calm = avg(SimTime::from_nanos(320_000.0));
        assert!(
            calm < frantic,
            "amortization failed: calm = {calm}, frantic = {frantic}"
        );
    }
}
