//! The compile-time half of STABILIZER (§3.1, §3.3): the equivalent of
//! its LLVM pass.
//!
//! Three rewrites, all of which the paper performs so that code can be
//! relocated safely:
//!
//! 1. **Floating-point constants become globals.** Code generation
//!    would otherwise embed them as PC-relative constant-pool loads
//!    that break when the function moves; as globals they are reached
//!    through the relocation table.
//! 2. **Int↔float conversions become calls** to per-module helper
//!    functions (`fptosi` etc. generate implicit constant-pool
//!    references STABILIZER cannot rewrite). These helpers are the only
//!    code STABILIZER cannot relocate.
//! 3. **`main` is renamed**: the runtime's own entry point initializes
//!    code randomization before any user code runs.

use std::collections::HashMap;

use sz_ir::{
    Block, FuncId, Function, Global, GlobalId, GlobalInit, Instr, Operand, Program, Reg, Terminator,
};

/// What [`prepare_program`] did — consumed by the [`crate::Stabilizer`]
/// runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransformInfo {
    /// The int→float and float→int helpers (non-relocatable, §3.3).
    pub helpers: Vec<FuncId>,
    /// Globals added for floating-point constants.
    pub fp_globals: Vec<GlobalId>,
    /// The runtime's entry wrapper (the renamed-`main` mechanism).
    pub entry_wrapper: FuncId,
    /// The original entry function.
    pub original_entry: FuncId,
}

impl TransformInfo {
    /// Whether `func` must never be relocated.
    pub fn is_non_relocatable(&self, func: FuncId) -> bool {
        self.helpers.contains(&func)
    }
}

/// Applies STABILIZER's program transformation and returns the
/// transformed program plus a description of what changed.
///
/// The result is a valid program whose observable behaviour is
/// identical; only its code size, call structure, and constant
/// placement differ — exactly the footprint of the paper's pass.
pub fn prepare_program(program: &Program) -> (Program, TransformInfo) {
    let mut out = program.clone();

    // Helper functions appended at the end: ids are known up front.
    let n = out.functions.len() as u32;
    let sitofp = FuncId(n);
    let fptosi = FuncId(n + 1);
    let entry_wrapper = FuncId(n + 2);

    let mut fp_globals: Vec<GlobalId> = Vec::new();
    let mut fp_map: HashMap<u64, GlobalId> = HashMap::new();

    for function in &mut out.functions {
        for block in &mut function.blocks {
            for instr in &mut block.instrs {
                match *instr {
                    // Rewrite 1: non-zero FP constants -> globals.
                    Instr::FpConst { dst, bits } if bits != 0 => {
                        let gid = *fp_map.entry(bits).or_insert_with(|| {
                            let gid = GlobalId(out.globals.len() as u32);
                            out.globals.push(Global {
                                name: format!("__fp_const_{:x}", bits),
                                size: 8,
                                init: GlobalInit::F64Bits(bits),
                            });
                            fp_globals.push(gid);
                            gid
                        });
                        *instr = Instr::LoadGlobal {
                            dst,
                            global: gid,
                            offset: Operand::Imm(0),
                        };
                    }
                    // Rewrite 2: conversions -> helper calls.
                    Instr::IntToFp { dst, src } => {
                        *instr = Instr::Call {
                            func: sitofp,
                            args: vec![src],
                            ret: Some(dst),
                        };
                    }
                    Instr::FpToInt { dst, src } => {
                        *instr = Instr::Call {
                            func: fptosi,
                            args: vec![src],
                            ret: Some(dst),
                        };
                    }
                    _ => {}
                }
            }
        }
    }

    // The conversion helpers themselves (kept out of the rewrite loop,
    // so they may legitimately contain the raw conversion ops).
    out.functions
        .push(conversion_helper("__stabilizer_sitofp", true));
    out.functions
        .push(conversion_helper("__stabilizer_fptosi", false));

    // Rewrite 3: the runtime's main wraps the program's.
    let original_entry = out.entry;
    out.functions.push(Function {
        name: "__stabilizer_main".into(),
        params: 0,
        num_regs: 1,
        num_slots: 0,
        blocks: vec![Block {
            // The padding models the runtime's startup work footprint;
            // its cycle cost is charged by the engine at prepare time.
            instrs: vec![
                Instr::Nop { bytes: 64 },
                Instr::Call {
                    func: original_entry,
                    args: vec![],
                    ret: Some(Reg(0)),
                },
            ],
            term: Terminator::Ret {
                value: Some(Operand::Reg(Reg(0))),
            },
        }],
    });
    out.entry = entry_wrapper;

    let info = TransformInfo {
        helpers: vec![sitofp, fptosi],
        fp_globals,
        entry_wrapper,
        original_entry,
    };
    debug_assert_eq!(out.validate(), Ok(()));
    (out, info)
}

fn conversion_helper(name: &str, to_fp: bool) -> Function {
    let body = if to_fp {
        Instr::IntToFp {
            dst: Reg(1),
            src: Operand::Reg(Reg(0)),
        }
    } else {
        Instr::FpToInt {
            dst: Reg(1),
            src: Operand::Reg(Reg(0)),
        }
    };
    Function {
        name: name.into(),
        params: 1,
        num_regs: 2,
        num_slots: 0,
        blocks: vec![Block {
            instrs: vec![body],
            term: Terminator::Ret {
                value: Some(Operand::Reg(Reg(1))),
            },
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sz_ir::{AluOp, ProgramBuilder};
    use sz_machine::MachineConfig;
    use sz_vm::{RunLimits, SimpleLayout, Vm};

    fn float_program() -> Program {
        let mut p = ProgramBuilder::new("fp");
        let mut f = p.function("main", 0);
        let pi = f.fp_const(3.25);
        let two = f.int_to_fp(2);
        let v = f.alu(AluOp::FMul, pi, two);
        let out = f.fp_to_int(v); // 6.5 -> 6
        f.ret(Some(out.into()));
        let main = p.add_function(f);
        p.finish(main).unwrap()
    }

    fn run(prog: &Program) -> Option<u64> {
        let mut e = SimpleLayout::new();
        Vm::new(prog)
            .run(&mut e, MachineConfig::tiny(), RunLimits::default())
            .unwrap()
            .return_value
    }

    #[test]
    fn behaviour_is_preserved() {
        let prog = float_program();
        let (prepared, _) = prepare_program(&prog);
        assert_eq!(run(&prog), run(&prepared));
        assert_eq!(run(&prepared), Some(6));
    }

    #[test]
    fn fp_constants_become_globals() {
        let prog = float_program();
        let (prepared, info) = prepare_program(&prog);
        assert_eq!(info.fp_globals.len(), 1, "one non-zero constant");
        let g = &prepared.globals[info.fp_globals[0].0 as usize];
        assert_eq!(g.init, GlobalInit::F64Bits(3.25f64.to_bits()));
        // No FpConst remains outside the helpers.
        for (i, f) in prepared.functions.iter().enumerate() {
            if info.helpers.contains(&FuncId(i as u32)) {
                continue;
            }
            for b in &f.blocks {
                for instr in &b.instrs {
                    assert!(
                        !matches!(
                            instr,
                            Instr::FpConst { .. } | Instr::IntToFp { .. } | Instr::FpToInt { .. }
                        ),
                        "unrewritten {instr:?} in {}",
                        f.name
                    );
                }
            }
        }
    }

    #[test]
    fn zero_constants_are_left_alone() {
        let mut p = ProgramBuilder::new("z");
        let mut f = p.function("main", 0);
        let z = f.fp_const(0.0);
        f.ret(Some(z.into()));
        let main = p.add_function(f);
        let prog = p.finish(main).unwrap();
        let (_, info) = prepare_program(&prog);
        assert!(
            info.fp_globals.is_empty(),
            "paper: only non-zero constants move"
        );
    }

    #[test]
    fn duplicate_constants_share_a_global() {
        let mut p = ProgramBuilder::new("dup");
        let mut f = p.function("main", 0);
        let a = f.fp_const(1.5);
        let b = f.fp_const(1.5);
        let v = f.alu(AluOp::FAdd, a, b);
        let out = f.fp_to_int(v);
        f.ret(Some(out.into()));
        let main = p.add_function(f);
        let prog = p.finish(main).unwrap();
        let (prepared, info) = prepare_program(&prog);
        assert_eq!(info.fp_globals.len(), 1);
        assert_eq!(run(&prepared), Some(3));
    }

    #[test]
    fn entry_is_wrapped() {
        let prog = float_program();
        let (prepared, info) = prepare_program(&prog);
        assert_eq!(prepared.entry, info.entry_wrapper);
        assert_ne!(prepared.entry, info.original_entry);
        assert_eq!(
            prepared.functions[info.entry_wrapper.0 as usize].name,
            "__stabilizer_main"
        );
    }

    #[test]
    fn helpers_are_marked_non_relocatable() {
        let (_, info) = prepare_program(&float_program());
        for h in &info.helpers {
            assert!(info.is_non_relocatable(*h));
        }
        assert!(!info.is_non_relocatable(info.original_entry));
    }

    #[test]
    fn transformed_program_validates() {
        let (prepared, _) = prepare_program(&float_program());
        assert_eq!(prepared.validate(), Ok(()));
    }
}
