//! Cycle costs of STABILIZER's runtime mechanisms.
//!
//! These model the work the real runtime does on the paper's test
//! machine. They matter mostly for fidelity of the overhead breakdown
//! (Figure 6); steady-state overhead is dominated by the *locality*
//! effects (cache/TLB pressure) that the memory model charges
//! organically, exactly as §5.2 reports.

/// SIGTRAP delivery plus handler entry/exit for an on-demand
/// relocation (§3.3 "when a trapped function is called").
///
/// Scaling note: a real trap costs on the order of 10⁴ cycles, but it
/// amortizes over the paper's 500 ms (1.6 × 10⁹ cycle) interval. Our
/// simulated runs use millisecond-scale intervals, so per-relocation
/// costs here are scaled down by a comparable factor to keep the
/// *amortized overhead ratio* — the quantity Figure 6 measures —
/// faithful. (See DESIGN.md, substitution notes.)
pub const TRAP_CYCLES: u64 = 200;

/// Copying the function body: one cycle per this many bytes.
pub const COPY_BYTES_PER_CYCLE: u64 = 16;

/// Building one relocation-table entry (resolve + write).
pub const TABLE_ENTRY_CYCLES: u64 = 2;

/// Re-randomization bookkeeping per live function (planting the trap).
pub const RETRAP_CYCLES: u64 = 12;

/// Stack-walk cost per frame during the code GC (§3.3).
pub const GC_FRAME_CYCLES: u64 = 30;

/// Examining (and possibly freeing) one pile entry during GC.
pub const GC_PILE_CYCLES: u64 = 20;

/// Extra per-call cost of the simulated 64-bit jump used when a
/// function had to be relocated beyond a 32-bit displacement
/// (push target + ret, §3.5).
pub const FAR_CALL_CYCLES: u64 = 6;

/// Shuffling-layer work per malloc/free beyond the base allocator:
/// one PRNG draw plus the array swap (§3.2).
pub const SHUFFLE_OP_CYCLES: u64 = 8;

/// Per-call logic of stack randomization: load pad byte, scale,
/// adjust stack pointer (§3.4).
pub const STACK_PAD_CYCLES: u64 = 2;

/// Runtime initialization charged once at startup (registering
/// functions, trapping them, deferred constructors; §3.3).
pub const INIT_BASE_CYCLES: u64 = 5_000;

/// Additional startup cost per program function.
pub const INIT_PER_FUNCTION_CYCLES: u64 = 50;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relocation_amortizes_against_default_interval() {
        // Sanity: relocating a whole 500-function program costs well
        // under 1% of a 500 ms interval at 3.2 GHz.
        let relocation =
            500 * (TRAP_CYCLES + 4096 / COPY_BYTES_PER_CYCLE + 32 * TABLE_ENTRY_CYCLES);
        let interval_cycles = (0.5 * 3.2e9) as u64;
        assert!(relocation * 100 < interval_cycles);
    }
}
