//! **STABILIZER**: dynamic layout re-randomization for statistically
//! sound performance evaluation (Curtsinger & Berger, ASPLOS 2013).
//!
//! Modern hardware makes execution time a function of memory layout:
//! caches, TLBs, and branch predictors are all indexed by addresses, so
//! the placement of code, stack frames, and heap objects — decided by
//! incidental factors like link order — systematically biases every
//! measurement. A single binary is *one sample* from the space of
//! layouts, no matter how many times you run it.
//!
//! STABILIZER removes that bias by making every run (and, with
//! re-randomization, every slice of every run) an independent sample of
//! the layout space:
//!
//! - **Code** is randomized per function: every function starts trapped
//!   and is relocated to a random spot in a shuffled code heap on first
//!   call, with a relocation table placed after the body; a timer
//!   periodically re-traps everything, and a stack-walking collector
//!   frees old copies (§3.3, [`code::CodeRandomizer`]).
//! - **The stack** gets up to a page of random padding per call, driven
//!   by per-function 256-entry pad tables that are refilled at every
//!   re-randomization (§3.4, [`stack::StackRandomizer`]).
//! - **The heap** is a shuffling layer over a deterministic base
//!   allocator (§3.2, re-exported from `sz-heap`).
//!
//! Re-randomization makes total execution time a sum over many
//! independent random layouts, so the Central Limit Theorem drives it
//! to a Gaussian (§4) — unlocking parametric statistics (t-tests,
//! ANOVA) for performance evaluation.
//!
//! The [`Stabilizer`] layout engine plugs into the `sz-vm` interpreter;
//! [`prepare_program`] is the compile-time half (the LLVM pass in the
//! paper): it rewrites floating-point constants into globals and
//! int↔float conversions into calls to per-module helpers, and wraps
//! `main` with the runtime's initialization (§3.1, §3.3).
//!
//! # Examples
//!
//! ```
//! use stabilizer::{prepare_program, Config, Stabilizer};
//! use sz_ir::{AluOp, ProgramBuilder};
//! use sz_machine::MachineConfig;
//! use sz_vm::{RunLimits, Vm};
//!
//! let mut p = ProgramBuilder::new("demo");
//! let mut f = p.function("main", 0);
//! let x = f.alu(AluOp::Add, 40, 2);
//! f.ret(Some(x.into()));
//! let main = p.add_function(f);
//! let program = p.finish(main)?;
//!
//! let machine = MachineConfig::core_i3_550();
//! let (prepared, info) = prepare_program(&program);
//! let mut engine = Stabilizer::new(Config::default().with_seed(1), &machine, &info);
//! let report = Vm::new(&prepared).run(&mut engine, machine, RunLimits::default())?;
//! assert_eq!(report.return_value, Some(42));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod code;
pub mod costs;
pub mod related;
pub mod stack;

mod heap;
mod runtime;
mod transform;

pub use heap::{BaseAllocator, StabilizerHeap};
pub use runtime::{Stabilizer, Stats};
pub use transform::{prepare_program, TransformInfo};

use sz_machine::SimTime;

/// Which randomizations are enabled and how they are tuned.
///
/// All three randomizations can be toggled independently (§2.5), which
/// is how layout optimizations are evaluated: to test a stack
/// optimization, run with only code and heap randomization enabled.
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    /// Randomize code placement per function (§3.3).
    pub code: bool,
    /// Randomize stack placement per call (§3.4).
    pub stack: bool,
    /// Randomize heap placement with the shuffling layer (§3.2).
    pub heap: bool,
    /// Re-randomize periodically during execution; `false` gives the
    /// "one-time randomization" configuration of Table 1.
    pub rerandomize: bool,
    /// Re-randomization period in simulated wall-clock time
    /// (500 ms by default, §3.3).
    pub interval: SimTime,
    /// Shuffling-layer size `N` (§3.2 settles on 256).
    pub shuffle_n: usize,
    /// Base allocator beneath the shuffling layer.
    pub base_allocator: BaseAllocator,
    /// Seed for all layout randomness; runs with equal seeds are
    /// bit-identical.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            code: true,
            stack: true,
            heap: true,
            rerandomize: true,
            interval: SimTime::from_millis(500.0),
            shuffle_n: 256,
            base_allocator: BaseAllocator::Segregated,
            seed: 0x5EED,
        }
    }
}

impl Config {
    /// The Figure-6 `code` configuration: only code randomization.
    pub fn code_only() -> Self {
        Config {
            stack: false,
            heap: false,
            ..Config::default()
        }
    }

    /// The Figure-6 `code.stack` configuration.
    pub fn code_stack() -> Self {
        Config {
            heap: false,
            ..Config::default()
        }
    }

    /// One-time randomization (no re-randomization), the Table-1
    /// comparison configuration.
    pub fn one_time() -> Self {
        Config {
            rerandomize: false,
            ..Config::default()
        }
    }

    /// Returns the config with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the config with a different re-randomization interval.
    pub fn with_interval(mut self, interval: SimTime) -> Self {
        self.interval = interval;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = Config::default();
        assert!(c.code && c.stack && c.heap && c.rerandomize);
        assert_eq!(c.interval.as_millis(), 500.0);
        assert_eq!(c.shuffle_n, 256);
    }

    #[test]
    fn presets() {
        let c = Config::code_only();
        assert!(c.code && !c.stack && !c.heap);
        let cs = Config::code_stack();
        assert!(cs.code && cs.stack && !cs.heap);
        let ot = Config::one_time();
        assert!(!ot.rerandomize && ot.code && ot.stack && ot.heap);
    }

    #[test]
    fn with_helpers_chain() {
        let c = Config::default()
            .with_seed(99)
            .with_interval(SimTime::from_millis(1.0));
        assert_eq!(c.seed, 99);
        assert_eq!(c.interval.as_millis(), 1.0);
    }
}
