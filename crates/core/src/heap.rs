//! The randomized data heap: the shuffling layer over a configurable
//! base allocator (§3.2).

use sz_heap::{
    Allocator, DieHardAllocator, Region, SegregatedAllocator, ShuffleLayer, TlsfAllocator,
};
use sz_machine::MemorySystem;
use sz_rng::Marsaglia;

use crate::costs;

/// Data heap region (disjoint from the text segment, the low and high
/// code heaps, and the pad-table region — see the address map in
/// `runtime.rs`).
const DATA_HEAP_BASE: u64 = 0x40_0000_0000;
const DATA_HEAP_SIZE: u64 = 1 << 36;

/// Base allocator choices beneath the shuffling layer (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaseAllocator {
    /// Power-of-two size-segregated (the paper's default).
    Segregated,
    /// Two-level segregated fits (the paper's optional base).
    Tlsf,
    /// DieHard itself (the original substrate; high overhead).
    DieHard,
}

#[derive(Debug)]
enum HeapImpl {
    Shuffled(ShuffleLayer<SegregatedAllocator, Marsaglia>),
    ShuffledTlsf(ShuffleLayer<TlsfAllocator, Marsaglia>),
    /// DieHard is already fully randomized; no shuffle layer needed.
    DieHard(DieHardAllocator),
    /// Heap randomization disabled: the deterministic base alone.
    Plain(SegregatedAllocator),
}

/// The data heap STABILIZER gives the program.
#[derive(Debug)]
pub struct StabilizerHeap {
    inner: HeapImpl,
    mallocs: u64,
    frees: u64,
}

impl StabilizerHeap {
    /// Builds the heap. With `randomize = false` the shuffling layer is
    /// bypassed entirely (the heap-randomization-off configurations of
    /// Figure 6).
    pub fn new(randomize: bool, base: BaseAllocator, shuffle_n: usize, rng: Marsaglia) -> Self {
        let region = Region::new(DATA_HEAP_BASE, DATA_HEAP_SIZE);
        let inner = if !randomize {
            HeapImpl::Plain(SegregatedAllocator::new(region))
        } else {
            match base {
                BaseAllocator::Segregated => HeapImpl::Shuffled(ShuffleLayer::new(
                    SegregatedAllocator::new(region),
                    shuffle_n,
                    rng,
                )),
                BaseAllocator::Tlsf => HeapImpl::ShuffledTlsf(ShuffleLayer::new(
                    TlsfAllocator::new(region),
                    shuffle_n,
                    rng,
                )),
                BaseAllocator::DieHard => HeapImpl::DieHard(DieHardAllocator::new(region, rng)),
            }
        };
        StabilizerHeap {
            inner,
            mallocs: 0,
            frees: 0,
        }
    }

    /// Whether the shuffling layer (or DieHard) is active.
    pub fn is_randomized(&self) -> bool {
        !matches!(self.inner, HeapImpl::Plain(_))
    }

    /// Allocates, charging the layer's own work to `mem`.
    pub fn malloc(&mut self, size: u64, mem: &mut MemorySystem) -> Option<u64> {
        self.mallocs += 1;
        if self.is_randomized() {
            mem.charge(costs::SHUFFLE_OP_CYCLES);
        }
        match &mut self.inner {
            HeapImpl::Shuffled(h) => h.malloc(size),
            HeapImpl::ShuffledTlsf(h) => h.malloc(size),
            HeapImpl::DieHard(h) => h.malloc(size),
            HeapImpl::Plain(h) => h.malloc(size),
        }
    }

    /// Frees, charging the layer's own work to `mem`. Returns `false`
    /// — with the heap untouched — when `addr` is not a live
    /// allocation, so the VM can report a structured error for wild
    /// guest frees instead of aborting the experiment process.
    pub fn free(&mut self, addr: u64, mem: &mut MemorySystem) -> bool {
        self.frees += 1;
        if self.is_randomized() {
            mem.charge(costs::SHUFFLE_OP_CYCLES);
        }
        match &mut self.inner {
            HeapImpl::Shuffled(h) => h.try_free(addr),
            HeapImpl::ShuffledTlsf(h) => h.try_free(addr),
            HeapImpl::DieHard(h) => h.try_free(addr),
            HeapImpl::Plain(h) => h.try_free(addr),
        }
    }

    /// `(mallocs, frees)` performed so far.
    pub fn op_counts(&self) -> (u64, u64) {
        (self.mallocs, self.frees)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sz_machine::MachineConfig;

    fn mem() -> MemorySystem {
        MemorySystem::new(MachineConfig::tiny())
    }

    fn addresses(randomize: bool, base: BaseAllocator, seed: u64, n: usize) -> Vec<u64> {
        let mut h = StabilizerHeap::new(randomize, base, 256, Marsaglia::seeded(seed));
        let mut m = mem();
        let mut out = Vec::new();
        for _ in 0..n {
            let p = h.malloc(64, &mut m).unwrap();
            out.push(p);
            h.free(p, &mut m);
        }
        out
    }

    #[test]
    fn plain_heap_is_deterministic_and_reuses() {
        let a = addresses(false, BaseAllocator::Segregated, 1, 50);
        assert!(
            a.windows(2).all(|w| w[0] == w[1]),
            "LIFO reuse: one address forever"
        );
    }

    #[test]
    fn randomized_heaps_spread_addresses() {
        for base in [
            BaseAllocator::Segregated,
            BaseAllocator::Tlsf,
            BaseAllocator::DieHard,
        ] {
            let a = addresses(true, base, 1, 100);
            let distinct: std::collections::HashSet<u64> = a.iter().copied().collect();
            assert!(
                distinct.len() > 30,
                "{base:?}: only {} distinct",
                distinct.len()
            );
        }
    }

    #[test]
    fn shuffle_work_is_charged() {
        let mut h = StabilizerHeap::new(true, BaseAllocator::Segregated, 16, Marsaglia::seeded(2));
        let mut m = mem();
        let before = m.counters().cycles;
        let p = h.malloc(64, &mut m).unwrap();
        h.free(p, &mut m);
        assert!(m.counters().cycles - before >= 2 * costs::SHUFFLE_OP_CYCLES);
        assert_eq!(h.op_counts(), (1, 1));
    }

    #[test]
    fn same_seed_same_sequence() {
        let a = addresses(true, BaseAllocator::Segregated, 7, 50);
        let b = addresses(true, BaseAllocator::Segregated, 7, 50);
        assert_eq!(a, b);
    }
}
