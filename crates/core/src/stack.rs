//! Stack randomization: per-function pad tables (§3.4, Figure 4).
//!
//! Each function owns a 256-byte pad table and a one-byte index. On
//! every call, the next byte is read, the index incremented (wrapping),
//! and the stack moved down by `byte × 16` (the required x86-64
//! alignment) — up to 4080 bytes, "up to a page". The runtime refills
//! every table with fresh random bytes at each re-randomization, so
//! between refills a function cycles through 256 pads, and the complete
//! stack placement is the composition of the pads of every function on
//! the call stack.

use sz_ir::{FuncId, Program};
use sz_machine::MemorySystem;
use sz_rng::Rng;

use crate::costs;

/// Entries per pad table (one byte each, §3.4).
pub const PAD_TABLE_SIZE: usize = 256;
/// Stack alignment each pad byte is scaled by.
pub const PAD_SCALE: u64 = 16;

/// Where the runtime keeps the pad tables (its own data segment, above
/// the low code heap).
const TABLE_REGION: u64 = 0x7A00_0000;

/// The stack randomizer: pad tables, indices, and their simulated
/// addresses (the table *reads* on every call are real cache traffic —
/// the paper blames exactly this for gobmk/gcc/perlbench overhead,
/// §5.2).
#[derive(Debug, Clone)]
pub struct StackRandomizer {
    tables: Vec<[u8; PAD_TABLE_SIZE]>,
    indices: Vec<u8>,
    table_base: u64,
    refills: u64,
}

impl StackRandomizer {
    /// Creates tables for every function in `program`, filled from
    /// `rng`.
    pub fn new(program: &Program, rng: &mut dyn Rng) -> Self {
        let n = program.functions.len();
        let mut s = StackRandomizer {
            tables: vec![[0u8; PAD_TABLE_SIZE]; n],
            indices: vec![0u8; n],
            table_base: TABLE_REGION,
            refills: 0,
        };
        s.fill(rng);
        s
    }

    fn fill(&mut self, rng: &mut dyn Rng) {
        for table in &mut self.tables {
            for b in table.iter_mut() {
                *b = (rng.next_u32() & 0xFF) as u8;
            }
        }
    }

    /// The simulated address of `func`'s pad table.
    pub fn table_addr(&self, func: FuncId) -> u64 {
        self.table_base + u64::from(func.0) * PAD_TABLE_SIZE as u64
    }

    /// Produces the pad for one call of `func`: loads the next table
    /// byte (through the cache), advances the wrapping index, scales.
    pub fn pad(&mut self, func: FuncId, mem: &mut MemorySystem) -> u64 {
        let idx = func.0 as usize;
        let i = self.indices[idx];
        // The table load is the instrumented function-entry code.
        mem.load(self.table_addr(func) + u64::from(i));
        mem.charge(costs::STACK_PAD_CYCLES);
        self.indices[idx] = i.wrapping_add(1);
        u64::from(self.tables[idx][usize::from(i)]) * PAD_SCALE
    }

    /// Refills every table with fresh random bytes (the runtime does
    /// this during each re-randomization, §3.4).
    pub fn refill(&mut self, rng: &mut dyn Rng, mem: &mut MemorySystem) {
        self.fill(rng);
        self.refills += 1;
        // The runtime's writes touch every line of every table.
        for f in 0..self.tables.len() {
            let base = self.table_base + (f as u64) * PAD_TABLE_SIZE as u64;
            for line in (0..PAD_TABLE_SIZE as u64).step_by(64) {
                mem.store(base + line);
            }
        }
    }

    /// Number of refills performed.
    pub fn refills(&self) -> u64 {
        self.refills
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sz_ir::ProgramBuilder;
    use sz_machine::MachineConfig;
    use sz_rng::Marsaglia;

    fn program(n_funcs: usize) -> Program {
        let mut p = ProgramBuilder::new("t");
        let mut last = None;
        for i in 0..n_funcs {
            let mut f = p.function(format!("f{i}"), 0);
            f.ret(None);
            last = Some(p.add_function(f));
        }
        p.finish(last.unwrap()).unwrap()
    }

    #[test]
    fn pads_are_scaled_and_bounded() {
        let prog = program(2);
        let mut rng = Marsaglia::seeded(1);
        let mut s = StackRandomizer::new(&prog, &mut rng);
        let mut mem = MemorySystem::new(MachineConfig::tiny());
        for _ in 0..1000 {
            let pad = s.pad(FuncId(0), &mut mem);
            assert_eq!(pad % PAD_SCALE, 0, "x86-64 alignment");
            assert!(pad <= 255 * PAD_SCALE, "at most (just under) a page");
        }
    }

    #[test]
    fn index_wraps_and_reuses_pads() {
        // §3.4: "The stack pad index may overflow, wrapping back around
        // to the first entry" — pads repeat with period 256 between
        // refills.
        let prog = program(1);
        let mut rng = Marsaglia::seeded(2);
        let mut s = StackRandomizer::new(&prog, &mut rng);
        let mut mem = MemorySystem::new(MachineConfig::tiny());
        let first: Vec<u64> = (0..256).map(|_| s.pad(FuncId(0), &mut mem)).collect();
        let second: Vec<u64> = (0..256).map(|_| s.pad(FuncId(0), &mut mem)).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn refill_changes_the_pads() {
        let prog = program(1);
        let mut rng = Marsaglia::seeded(3);
        let mut s = StackRandomizer::new(&prog, &mut rng);
        let mut mem = MemorySystem::new(MachineConfig::tiny());
        let before: Vec<u64> = (0..256).map(|_| s.pad(FuncId(0), &mut mem)).collect();
        s.refill(&mut rng, &mut mem);
        let after: Vec<u64> = (0..256).map(|_| s.pad(FuncId(0), &mut mem)).collect();
        assert_ne!(before, after);
        assert_eq!(s.refills(), 1);
    }

    #[test]
    fn functions_have_distinct_tables() {
        let prog = program(3);
        let mut rng = Marsaglia::seeded(4);
        let s = StackRandomizer::new(&prog, &mut rng);
        assert_ne!(s.table_addr(FuncId(0)), s.table_addr(FuncId(1)));
        assert_eq!(
            s.table_addr(FuncId(1)) - s.table_addr(FuncId(0)),
            PAD_TABLE_SIZE as u64
        );
    }

    #[test]
    fn pad_distribution_covers_the_range() {
        let prog = program(1);
        let mut rng = Marsaglia::seeded(5);
        let mut s = StackRandomizer::new(&prog, &mut rng);
        let mut mem = MemorySystem::new(MachineConfig::tiny());
        let pads: Vec<u64> = (0..256).map(|_| s.pad(FuncId(0), &mut mem)).collect();
        let distinct: std::collections::HashSet<u64> = pads.iter().copied().collect();
        assert!(
            distinct.len() > 100,
            "pads must be diverse, got {}",
            distinct.len()
        );
        assert!(
            pads.iter().any(|&p| p > 2048),
            "upper half of the range is reachable"
        );
    }

    #[test]
    fn table_loads_reach_the_cache() {
        let prog = program(1);
        let mut rng = Marsaglia::seeded(6);
        let mut s = StackRandomizer::new(&prog, &mut rng);
        let mut mem = MemorySystem::new(MachineConfig::tiny());
        s.pad(FuncId(0), &mut mem);
        assert!(
            mem.counters().l1d_misses >= 1,
            "first table read is a cold miss"
        );
        s.pad(FuncId(0), &mut mem);
        assert_eq!(
            mem.counters().l1d_misses,
            1,
            "subsequent reads hit the line"
        );
    }
}
