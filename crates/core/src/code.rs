//! Code randomization: trap → relocate → re-randomize → collect
//! (§3.3, Figure 3).

use std::collections::HashSet;

use sz_heap::{Allocator, Region, SegregatedAllocator, ShuffleLayer};
use sz_ir::{FuncId, Instr, Program};
use sz_machine::MemorySystem;
use sz_rng::Marsaglia;
use sz_vm::FrameView;

use crate::costs;
use crate::TransformInfo;

/// Where the linker would have put the text segment (trap sites live
/// here; relocated copies must stay within a 32-bit displacement).
const ORIGINAL_BASE: u64 = 0x40_0000;
/// The low code heap: reachable with 32-bit jumps from the originals.
const LOW_CODE_BASE: u64 = 0x800_0000;
const LOW_CODE_SIZE: u64 = 0x7000_0000;
/// High memory: only used when low memory is exhausted; calls pay the
/// simulated 64-bit jump (§3.5).
const HIGH_CODE_BASE: u64 = 0x2_0000_0000;
const HIGH_CODE_SIZE: u64 = 1 << 36;

/// Per-function relocation state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CopyState {
    /// The function's entry is a trap; the next call relocates it.
    Trapped,
    /// A live randomized copy exists.
    Live {
        /// Address of the copy.
        addr: u64,
        /// Whether the copy lives in high memory (far-call penalty).
        far: bool,
    },
}

/// Counters describing the randomizer's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CodeStats {
    /// On-demand relocations performed (traps taken).
    pub relocations: u64,
    /// Re-randomization rounds.
    pub rerandomizations: u64,
    /// Old copies freed by the garbage collector.
    pub copies_freed: u64,
    /// Copies that survived a GC because a frame still used them.
    pub copies_kept: u64,
    /// Calls that paid the far-jump penalty.
    pub far_calls: u64,
}

/// The code randomizer: owns the shuffled code heap, the per-function
/// relocation state, and the pile of old copies awaiting collection.
#[derive(Debug)]
pub struct CodeRandomizer {
    state: Vec<CopyState>,
    /// Body size plus relocation-table size, per function.
    alloc_sizes: Vec<u64>,
    /// Relocation-table entry count, per function.
    table_entries: Vec<u64>,
    /// The linker's (trap-site) address, per function.
    originals: Vec<u64>,
    non_relocatable: HashSet<u32>,
    low: ShuffleLayer<SegregatedAllocator, Marsaglia>,
    high: SegregatedAllocator,
    /// Old copies not yet proven dead: `(address, far)`.
    pile: Vec<(u64, bool)>,
    stats: CodeStats,
}

impl CodeRandomizer {
    /// Builds the randomizer for `program`.
    ///
    /// `shuffle_n` is the shuffle-layer parameter for the code heap
    /// (the paper uses the same shuffled-heap machinery for "both heap
    /// objects and functions", §3.2).
    pub fn new(program: &Program, info: &TransformInfo, shuffle_n: usize, rng: Marsaglia) -> Self {
        let mut originals = Vec::with_capacity(program.functions.len());
        let mut pc = ORIGINAL_BASE;
        for f in &program.functions {
            originals.push(pc);
            pc = (pc + f.code_size() + 15) & !15;
        }

        let mut alloc_sizes = Vec::with_capacity(program.functions.len());
        let mut table_entries = Vec::with_capacity(program.functions.len());
        for f in &program.functions {
            let entries = relocation_entries(f);
            table_entries.push(entries);
            // The relocation table sits immediately after the function
            // body (§3.3), 8 bytes per entry.
            alloc_sizes.push(f.code_size() + entries * 8);
        }

        CodeRandomizer {
            state: vec![CopyState::Trapped; program.functions.len()],
            alloc_sizes,
            table_entries,
            originals,
            non_relocatable: info.helpers.iter().map(|f| f.0).collect(),
            low: ShuffleLayer::new(
                SegregatedAllocator::new(Region::new(LOW_CODE_BASE, LOW_CODE_SIZE)),
                shuffle_n,
                rng,
            ),
            high: SegregatedAllocator::new(Region::new(HIGH_CODE_BASE, HIGH_CODE_SIZE)),
            pile: Vec::new(),
            stats: CodeStats::default(),
        }
    }

    /// Activity counters.
    pub fn stats(&self) -> CodeStats {
        self.stats
    }

    /// The original (trap-site) address of `func`.
    pub fn original(&self, func: FuncId) -> u64 {
        self.originals[func.0 as usize]
    }

    /// Resolves a call to `func`, relocating on demand and charging the
    /// runtime work to `mem`. Returns the code base to execute from.
    pub fn enter(&mut self, func: FuncId, mem: &mut MemorySystem) -> u64 {
        let idx = func.0 as usize;
        if self.non_relocatable.contains(&func.0) {
            return self.originals[idx];
        }
        match self.state[idx] {
            CopyState::Live { addr, far } => {
                if far {
                    self.stats.far_calls += 1;
                    mem.charge(costs::FAR_CALL_CYCLES);
                }
                addr
            }
            CopyState::Trapped => {
                // SIGTRAP, then the three-stage relocation (Figure 3b):
                // copy the body, build the adjacent table, patch the
                // original entry with a forwarding jump.
                mem.charge(costs::TRAP_CYCLES);
                let size = self.alloc_sizes[idx];
                let (addr, far) = match self.low.malloc(size) {
                    Some(a) => (a, false),
                    None => {
                        let a = self
                            .high
                            .malloc(size)
                            .expect("high code region is effectively unbounded");
                        (a, true)
                    }
                };
                mem.charge(size / costs::COPY_BYTES_PER_CYCLE);
                mem.charge(self.table_entries[idx] * costs::TABLE_ENTRY_CYCLES);
                // Patching the trap site is a real store.
                mem.store(self.originals[idx]);
                self.state[idx] = CopyState::Live { addr, far };
                self.stats.relocations += 1;
                if far {
                    self.stats.far_calls += 1;
                    mem.charge(costs::FAR_CALL_CYCLES);
                }
                addr
            }
        }
    }

    /// Re-randomizes: traps every live function (Figure 3c) and runs
    /// the stack-walking collector over the pile (Figure 3d).
    pub fn rerandomize(&mut self, stack: &[FrameView], mem: &mut MemorySystem) {
        self.stats.rerandomizations += 1;
        // Plant traps: every live copy moves to the pile.
        for state in &mut self.state {
            if let CopyState::Live { addr, far } = *state {
                mem.charge(costs::RETRAP_CYCLES);
                // Writing the int3 at the function's current entry.
                mem.store(addr);
                self.pile.push((addr, far));
                *state = CopyState::Trapped;
            }
        }
        // Mark: addresses with a return address (frame) pointing at them.
        mem.charge(stack.len() as u64 * costs::GC_FRAME_CYCLES);
        let marked: HashSet<u64> = stack.iter().map(|f| f.code_base).collect();
        // Sweep the pile.
        let mut kept = Vec::new();
        for (addr, far) in std::mem::take(&mut self.pile) {
            mem.charge(costs::GC_PILE_CYCLES);
            if marked.contains(&addr) {
                self.stats.copies_kept += 1;
                kept.push((addr, far));
            } else {
                self.stats.copies_freed += 1;
                if far {
                    self.high.free(addr);
                } else {
                    self.low.free(addr);
                }
            }
        }
        self.pile = kept;
    }

    /// Number of old copies awaiting collection.
    pub fn pile_len(&self) -> usize {
        self.pile.len()
    }
}

/// Relocation-table entries a function needs: one per distinct callee
/// plus one per distinct global it references (§3.3, Figure 3b).
fn relocation_entries(f: &sz_ir::Function) -> u64 {
    let mut callees = HashSet::new();
    let mut globals = HashSet::new();
    for b in &f.blocks {
        for i in &b.instrs {
            match i {
                Instr::Call { func, .. } => {
                    callees.insert(func.0);
                }
                Instr::LoadGlobal { global, .. } | Instr::StoreGlobal { global, .. } => {
                    globals.insert(global.0);
                }
                _ => {}
            }
        }
    }
    (callees.len() + globals.len()) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prepare_program;
    use sz_ir::{AluOp, ProgramBuilder};
    use sz_machine::MachineConfig;

    fn setup() -> (sz_ir::Program, TransformInfo) {
        let mut p = ProgramBuilder::new("t");
        let g = p.global("data", 64);
        let mut leaf = p.function("leaf", 0);
        let v = leaf.load_global(g, 0);
        leaf.ret(Some(v.into()));
        let leaf_id = p.add_function(leaf);
        let mut f = p.function("main", 0);
        let c = f.fp_const(2.5);
        let i = f.fp_to_int(c);
        let r = f.call(leaf_id, vec![]);
        let out = f.alu(AluOp::Add, i, r);
        f.ret(Some(out.into()));
        let main = p.add_function(f);
        let prog = p.finish(main).unwrap();
        prepare_program(&prog)
    }

    fn randomizer(prog: &sz_ir::Program, info: &TransformInfo, seed: u64) -> CodeRandomizer {
        CodeRandomizer::new(prog, info, 64, Marsaglia::seeded(seed))
    }

    #[test]
    fn first_call_relocates_second_reuses() {
        let (prog, info) = setup();
        let mut cr = randomizer(&prog, &info, 1);
        let mut mem = MemorySystem::new(MachineConfig::tiny());
        let f = FuncId(0);
        let a = cr.enter(f, &mut mem);
        let b = cr.enter(f, &mut mem);
        assert_eq!(a, b, "second call sees the live copy");
        assert_eq!(cr.stats().relocations, 1);
        assert!(a >= LOW_CODE_BASE, "copy lives in the code heap");
        assert_ne!(a, cr.original(f));
    }

    #[test]
    fn helpers_never_move() {
        let (prog, info) = setup();
        let mut cr = randomizer(&prog, &info, 1);
        let mut mem = MemorySystem::new(MachineConfig::tiny());
        for &h in &info.helpers {
            let a = cr.enter(h, &mut mem);
            assert_eq!(a, cr.original(h), "conversion helpers are non-relocatable");
        }
        assert_eq!(cr.stats().relocations, 0);
    }

    #[test]
    fn rerandomization_moves_functions() {
        let (prog, info) = setup();
        let mut cr = randomizer(&prog, &info, 2);
        let mut mem = MemorySystem::new(MachineConfig::tiny());
        let f = FuncId(0);
        let a = cr.enter(f, &mut mem);
        cr.rerandomize(&[], &mut mem);
        let b = cr.enter(f, &mut mem);
        assert_ne!(a, b, "each randomization period gets a fresh location");
        assert_eq!(cr.stats().rerandomizations, 1);
        assert_eq!(cr.stats().relocations, 2);
    }

    #[test]
    fn gc_frees_unreferenced_copies_only() {
        let (prog, info) = setup();
        let mut cr = randomizer(&prog, &info, 3);
        let mut mem = MemorySystem::new(MachineConfig::tiny());
        let f0 = FuncId(0);
        let f1 = info.original_entry;
        let a0 = cr.enter(f0, &mut mem);
        let a1 = cr.enter(f1, &mut mem);
        // f1's frame is still on the stack during the re-randomization.
        let stack = [FrameView {
            func: f1,
            code_base: a1,
        }];
        cr.rerandomize(&stack, &mut mem);
        assert_eq!(cr.stats().copies_freed, 1, "f0's copy was collectable");
        assert_eq!(
            cr.stats().copies_kept,
            1,
            "f1's copy is pinned by the stack"
        );
        assert_eq!(cr.pile_len(), 1);
        let _ = a0;
        // Once f1 is off the stack, the next GC frees it.
        cr.rerandomize(&[], &mut mem);
        assert_eq!(cr.stats().copies_freed, 2);
        assert_eq!(cr.pile_len(), 0);
    }

    #[test]
    fn different_seeds_place_differently() {
        let (prog, info) = setup();
        let mut mem = MemorySystem::new(MachineConfig::tiny());
        let a = randomizer(&prog, &info, 10).enter(FuncId(0), &mut mem);
        let b = randomizer(&prog, &info, 11).enter(FuncId(0), &mut mem);
        assert_ne!(a, b);
    }

    #[test]
    fn relocation_entry_counting() {
        let (prog, _) = setup();
        // main (after transform) calls: leaf + fptosi helper; references
        // the fp-const global -> 3 entries. main is the second original
        // function (index 1); the transform appends helpers after it.
        let main = &prog.functions[1];
        assert_eq!(main.name, "main");
        assert_eq!(relocation_entries(main), 3);
    }

    #[test]
    fn trap_costs_are_charged() {
        let (prog, info) = setup();
        let mut cr = randomizer(&prog, &info, 4);
        let mut mem = MemorySystem::new(MachineConfig::tiny());
        let before = mem.counters().cycles;
        cr.enter(FuncId(0), &mut mem);
        let after = mem.counters().cycles;
        assert!(after - before >= costs::TRAP_CYCLES);
    }
}
