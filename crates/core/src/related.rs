//! The paper's **Table 2**: prior layout-randomization systems and
//! which randomizations they support.
//!
//! Not an experiment — a typed rendition of the related-work feature
//! matrix (§7), kept here so the comparison the paper makes is
//! machine-checkable: STABILIZER is the only row with fine-grained
//! randomization of *all three* segments plus dynamic re-randomization.

/// Degree of support for one randomization axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Support {
    /// Not provided.
    No,
    /// Provided in restricted form (the asterisks in Table 2).
    Partial,
    /// Fully provided.
    Yes,
}

impl Support {
    /// Whether any support exists.
    pub fn any(self) -> bool {
        !matches!(self, Support::No)
    }
}

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RandomizationSystem {
    /// System name as the paper lists it.
    pub name: &'static str,
    /// Coarse (whole-segment) code randomization.
    pub base_code: Support,
    /// Coarse stack randomization.
    pub base_stack: Support,
    /// Coarse heap randomization.
    pub base_heap: Support,
    /// Fine-grained (per-function / per-frame / per-object) code
    /// randomization.
    pub fine_code: Support,
    /// Fine-grained stack randomization.
    pub fine_stack: Support,
    /// Fine-grained heap randomization.
    pub fine_heap: Support,
    /// Requires recompilation.
    pub needs_recompilation: bool,
    /// Re-randomizes layout *during* execution.
    pub dynamic_rerandomization: bool,
}

/// The full matrix from Table 2 of the paper.
pub fn table2() -> Vec<RandomizationSystem> {
    use Support::{No, Partial, Yes};
    vec![
        RandomizationSystem {
            name: "ASLR / PaX",
            base_code: Yes,
            base_stack: Yes,
            base_heap: Yes,
            fine_code: No,
            fine_stack: No,
            fine_heap: No,
            needs_recompilation: false,
            dynamic_rerandomization: false,
        },
        RandomizationSystem {
            name: "Transparent Runtime Randomization",
            base_code: Yes,
            base_stack: Yes,
            base_heap: Yes,
            fine_code: No,
            fine_stack: No,
            fine_heap: No,
            needs_recompilation: false,
            dynamic_rerandomization: false,
        },
        RandomizationSystem {
            name: "Address Space Layout Permutation",
            base_code: Yes,
            base_stack: Yes,
            base_heap: Yes,
            fine_code: Partial,
            fine_stack: No,
            fine_heap: No,
            needs_recompilation: false,
            dynamic_rerandomization: false,
        },
        RandomizationSystem {
            name: "Address Obfuscation",
            base_code: Yes,
            base_stack: Yes,
            base_heap: Yes,
            fine_code: Partial,
            fine_stack: Partial,
            fine_heap: Partial,
            needs_recompilation: false,
            dynamic_rerandomization: false,
        },
        RandomizationSystem {
            name: "Dynamic Offset Randomization",
            base_code: No,
            base_stack: Yes,
            base_heap: No,
            fine_code: Partial,
            fine_stack: No,
            fine_heap: No,
            needs_recompilation: true,
            dynamic_rerandomization: false,
        },
        RandomizationSystem {
            name: "Bhatkar, Sekar, and DuVarney",
            base_code: Yes,
            base_stack: Yes,
            base_heap: Yes,
            fine_code: Partial,
            fine_stack: Partial,
            fine_heap: No,
            needs_recompilation: true,
            dynamic_rerandomization: false,
        },
        RandomizationSystem {
            name: "DieHard",
            base_code: No,
            base_stack: No,
            base_heap: Yes,
            fine_code: No,
            fine_stack: No,
            fine_heap: Yes,
            needs_recompilation: false,
            dynamic_rerandomization: false,
        },
        RandomizationSystem {
            name: "STABILIZER",
            base_code: Yes,
            base_stack: Yes,
            base_heap: Yes,
            fine_code: Yes,
            fine_stack: Yes,
            fine_heap: Yes,
            needs_recompilation: true,
            dynamic_rerandomization: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stabilizer_is_the_unique_full_row() {
        let rows = table2();
        let full: Vec<&RandomizationSystem> = rows
            .iter()
            .filter(|r| {
                r.fine_code == Support::Yes
                    && r.fine_stack == Support::Yes
                    && r.fine_heap == Support::Yes
                    && r.dynamic_rerandomization
            })
            .collect();
        assert_eq!(full.len(), 1);
        assert_eq!(full[0].name, "STABILIZER");
    }

    #[test]
    fn diehard_randomizes_only_the_heap() {
        let rows = table2();
        let dh = rows.iter().find(|r| r.name == "DieHard").unwrap();
        assert_eq!(dh.fine_heap, Support::Yes);
        assert!(!dh.base_code.any() && !dh.base_stack.any());
    }

    #[test]
    fn no_prior_system_rerandomizes_dynamically() {
        // §7: "These systems do not re-randomize programs during
        // execution."
        for r in table2() {
            if r.name != "STABILIZER" {
                assert!(!r.dynamic_rerandomization, "{}", r.name);
            }
        }
    }

    #[test]
    fn matrix_matches_our_implementation() {
        // The claims in the STABILIZER row must be true of this crate:
        // all three randomizations exist and toggle independently, and
        // re-randomization is implemented.
        let cfg = crate::Config::default();
        assert!(cfg.code && cfg.stack && cfg.heap && cfg.rerandomize);
        let co = crate::Config::code_only();
        assert!(co.code && !co.stack && !co.heap);
    }
}
