//! Bit-stream container and extraction helpers.

/// A packed bit stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bits {
    words: Vec<u64>,
    len: usize,
}

impl Bits {
    /// Builds a stream of `n` bits from a predicate on the index.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut b = Bits {
            words: vec![0; n.div_ceil(64)],
            len: n,
        };
        for i in 0..n {
            if f(i) {
                b.words[i / 64] |= 1 << (i % 64);
            }
        }
        b
    }

    /// Builds a stream from a bool slice.
    pub fn from_bools(bools: &[bool]) -> Self {
        Self::from_fn(bools.len(), |i| bools[i])
    }

    /// The paper's extraction protocol (§3.2): take the cache index
    /// bits — `lo..=hi`, bits 6–17 on the test machine — of each
    /// address and concatenate them, low bit first.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `hi > 63`.
    pub fn from_address_index_bits(addresses: &[u64], lo: u32, hi: u32) -> Self {
        assert!(lo <= hi && hi < 64, "bad bit range {lo}..={hi}");
        let per = (hi - lo + 1) as usize;
        Self::from_fn(addresses.len() * per, |i| {
            let addr = addresses[i / per];
            let bit = lo + (i % per) as u32;
            (addr >> bit) & 1 == 1
        })
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The `i`-th bit.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range");
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Count of one bits.
    pub fn count_ones(&self) -> usize {
        // The final word may contain padding zeros only, so a plain
        // popcount is exact.
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates bits as ±1 (1 for a one bit, -1 for a zero bit).
    pub fn signs(&self) -> impl Iterator<Item = i64> + '_ {
        (0..self.len).map(move |i| if self.get(i) { 1 } else { -1 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let pattern = [true, false, true, true, false];
        let b = Bits::from_bools(&pattern);
        assert_eq!(b.len(), 5);
        for (i, &p) in pattern.iter().enumerate() {
            assert_eq!(b.get(i), p);
        }
        assert_eq!(b.count_ones(), 3);
    }

    #[test]
    fn address_index_extraction() {
        // One address, bits 6..=8 of 0b111000000 = bits (1,1,1)?
        // 0x1C0 = 0b1_1100_0000: bit6=1, bit7=1, bit8=1.
        let b = Bits::from_address_index_bits(&[0x1C0], 6, 8);
        assert_eq!(b.len(), 3);
        assert!(b.get(0) && b.get(1) && b.get(2));
        // Bits outside the range are ignored.
        let b = Bits::from_address_index_bits(&[0xFFFF_FFFF_FFFF_0000], 6, 8);
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn paper_bit_range_width() {
        // Bits 6-17 give 12 bits per address.
        let b = Bits::from_address_index_bits(&[0, 0, 0], 6, 17);
        assert_eq!(b.len(), 36);
    }

    #[test]
    fn signs_sum_matches_counts() {
        let b = Bits::from_fn(100, |i| i % 3 == 0);
        let ones = b.count_ones() as i64;
        let sum: i64 = b.signs().sum();
        assert_eq!(sum, ones - (100 - ones));
    }
}
