//! The NIST SP 800-22 statistical tests used by the paper (§3.2).
//!
//! STABILIZER justifies its shuffled heap by running seven NIST tests
//! over the *index bits* (bits 6–17) of the addresses each allocator
//! returns: Frequency, BlockFrequency, CumulativeSums, Runs,
//! LongestRun, FFT, and Rank. `lrand48` and DieHard pass the first six
//! and fail only Rank; the shuffled heap with `N = 256` matches them.
//!
//! This crate implements those seven tests from the SP 800-22
//! specification, plus the bit-stream plumbing ([`Bits`], including
//! [`Bits::from_address_index_bits`] for the paper's exact protocol).
//!
//! # Examples
//!
//! ```
//! use sz_nist::{run_suite, Bits};
//! use sz_rng::{Marsaglia, Rng};
//!
//! let mut rng = Marsaglia::seeded(7);
//! let bits = Bits::from_fn(1 << 16, |_| rng.next_u32() & 1 == 1);
//! for result in run_suite(&bits) {
//!     assert!(result.p_value >= 0.0 && result.p_value <= 1.0);
//! }
//! ```

mod bits;
mod fft;
mod rank;
mod tests_impl;

pub use bits::Bits;
pub use fft::fft_magnitudes;
pub use rank::binary_rank_32;
pub use tests_impl::{
    block_frequency, cumulative_sums, fft_spectral, frequency, longest_run, rank_test, runs,
};

/// Pass threshold used in the paper's discussion ("> 95% confidence").
pub const ALPHA: f64 = 0.05;

/// One NIST test outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct NistResult {
    /// Test name as the paper lists it.
    pub name: &'static str,
    /// P-value (uniform on [0,1] for truly random input).
    pub p_value: f64,
    /// Whether the stream passes at [`ALPHA`].
    pub pass: bool,
}

impl NistResult {
    fn new(name: &'static str, p_value: f64) -> Self {
        NistResult {
            name,
            p_value,
            pass: p_value >= ALPHA,
        }
    }
}

/// Runs the paper's seven tests over a bit stream.
///
/// # Panics
///
/// Panics if the stream is shorter than 1024 bits (the Rank test's
/// single-matrix minimum).
pub fn run_suite(bits: &Bits) -> Vec<NistResult> {
    assert!(
        bits.len() >= 1024,
        "need at least 1024 bits, got {}",
        bits.len()
    );
    vec![
        NistResult::new("Frequency", frequency(bits)),
        NistResult::new("BlockFrequency", block_frequency(bits, 128)),
        NistResult::new("CumulativeSums", cumulative_sums(bits)),
        NistResult::new("Runs", runs(bits)),
        NistResult::new("LongestRun", longest_run(bits)),
        NistResult::new("FFT", fft_spectral(bits)),
        NistResult::new("Rank", rank_test(bits)),
    ]
}

#[cfg(test)]
mod suite_tests {
    use super::*;
    use sz_rng::{Marsaglia, Rng, SplitMix64};

    fn random_bits(n: usize, seed: u64) -> Bits {
        let mut rng = SplitMix64::new(seed);
        Bits::from_fn(n, |_| rng.next_u64() & 1 == 1)
    }

    #[test]
    fn good_generator_passes_everything() {
        let bits = random_bits(1 << 17, 42);
        let results = run_suite(&bits);
        for r in &results {
            assert!(r.pass, "{} failed with p = {}", r.name, r.p_value);
        }
        assert_eq!(results.len(), 7);
    }

    #[test]
    fn marsaglia_passes_like_the_paper_says() {
        // §3.2: STABILIZER's own PRNG must be sound.
        let mut rng = Marsaglia::seeded(3);
        let bits = Bits::from_fn(1 << 17, |_| rng.next_u32() & 0x8000 != 0);
        for r in run_suite(&bits) {
            assert!(r.pass, "{} failed with p = {}", r.name, r.p_value);
        }
    }

    #[test]
    fn constant_stream_fails_frequency() {
        let bits = Bits::from_fn(1 << 14, |_| true);
        let results = run_suite(&bits);
        let freq = results.iter().find(|r| r.name == "Frequency").unwrap();
        assert!(!freq.pass);
        assert!(freq.p_value < 1e-10);
    }

    #[test]
    fn alternating_stream_fails_runs() {
        // 0101...: perfectly balanced (Frequency passes) but has the
        // maximum possible number of runs.
        let bits = Bits::from_fn(1 << 14, |i| i % 2 == 0);
        let results = run_suite(&bits);
        assert!(results.iter().find(|r| r.name == "Frequency").unwrap().pass);
        assert!(!results.iter().find(|r| r.name == "Runs").unwrap().pass);
        assert!(
            !results.iter().find(|r| r.name == "FFT").unwrap().pass,
            "periodic signal lights up the spectrum"
        );
    }

    #[test]
    fn p_values_are_roughly_uniform_for_random_input() {
        // Over many seeds, the Frequency p-value should spread across
        // [0,1]: not clustered at 0 or 1.
        let mut below_half = 0;
        for seed in 0..40 {
            let bits = random_bits(1 << 12, 1000 + seed);
            if frequency(&bits) < 0.5 {
                below_half += 1;
            }
        }
        assert!(
            (10..=30).contains(&below_half),
            "got {below_half}/40 below 0.5"
        );
    }
}
