//! The seven SP 800-22 tests §3.2 applies to heap addresses.

use sz_stats::dist::Normal;
use sz_stats::special::{erfc, gamma_q};

use crate::{binary_rank_32, fft_magnitudes, Bits};

/// Frequency (monobit) test: is the ±1 sum plausibly zero?
pub fn frequency(bits: &Bits) -> f64 {
    let n = bits.len() as f64;
    let s: i64 = bits.signs().sum();
    erfc((s.abs() as f64 / n.sqrt()) / std::f64::consts::SQRT_2)
}

/// Block-frequency test with `m`-bit blocks.
///
/// # Panics
///
/// Panics if the stream yields no complete block.
pub fn block_frequency(bits: &Bits, m: usize) -> f64 {
    let n_blocks = bits.len() / m;
    assert!(n_blocks > 0, "stream shorter than one block");
    let mut chi2 = 0.0;
    for b in 0..n_blocks {
        let ones = (0..m).filter(|&i| bits.get(b * m + i)).count();
        let pi = ones as f64 / m as f64;
        chi2 += (pi - 0.5) * (pi - 0.5);
    }
    chi2 *= 4.0 * m as f64;
    gamma_q(n_blocks as f64 / 2.0, chi2 / 2.0)
}

/// Cumulative-sums (forward) test: the maximum excursion of the ±1
/// random walk.
pub fn cumulative_sums(bits: &Bits) -> f64 {
    let n = bits.len() as f64;
    let mut sum = 0i64;
    let mut z = 0i64;
    for s in bits.signs() {
        sum += s;
        z = z.max(sum.abs());
    }
    if z == 0 {
        // A constant alternating pattern can have zero max excursion
        // only for trivial streams; excursion 0 means sum never left 0,
        // which is itself wildly non-random for long streams, but the
        // formula needs z >= 1.
        return 0.0;
    }
    let z = z as f64;
    let sqrt_n = n.sqrt();
    let mut p = 1.0;
    let k_lo = ((-n / z + 1.0) / 4.0).ceil() as i64;
    let k_hi = ((n / z - 1.0) / 4.0).floor() as i64;
    for k in k_lo..=k_hi {
        let k = k as f64;
        p -= Normal::cdf((4.0 * k + 1.0) * z / sqrt_n) - Normal::cdf((4.0 * k - 1.0) * z / sqrt_n);
    }
    let k_lo = ((-n / z - 3.0) / 4.0).ceil() as i64;
    let k_hi = ((n / z - 1.0) / 4.0).floor() as i64;
    for k in k_lo..=k_hi {
        let k = k as f64;
        p += Normal::cdf((4.0 * k + 3.0) * z / sqrt_n) - Normal::cdf((4.0 * k + 1.0) * z / sqrt_n);
    }
    p.clamp(0.0, 1.0)
}

/// Runs test: the number of maximal same-bit runs.
pub fn runs(bits: &Bits) -> f64 {
    let n = bits.len() as f64;
    let pi = bits.count_ones() as f64 / n;
    // Prerequisite from the spec: the frequency test must be passable.
    if (pi - 0.5).abs() >= 2.0 / n.sqrt() {
        return 0.0;
    }
    let mut v = 1u64;
    for i in 1..bits.len() {
        if bits.get(i) != bits.get(i - 1) {
            v += 1;
        }
    }
    let num = (v as f64 - 2.0 * n * pi * (1.0 - pi)).abs();
    let den = 2.0 * (2.0 * n).sqrt() * pi * (1.0 - pi);
    erfc(num / den)
}

/// Longest-run-of-ones test (M = 128 variant for n ≥ 6272 uses M = 512
/// per the spec; both variants are provided automatically).
///
/// # Panics
///
/// Panics for streams shorter than 128 bits.
pub fn longest_run(bits: &Bits) -> f64 {
    let n = bits.len();
    assert!(n >= 128, "longest-run test needs at least 128 bits");
    // Spec tables: (M, K, v_min, category probabilities).
    let (m, v_min, pi): (usize, u32, &[f64]) = if n < 6272 {
        (8, 1, &[0.2148, 0.3672, 0.2305, 0.1875])
    } else if n < 750_000 {
        (128, 4, &[0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124])
    } else {
        (
            10_000,
            10,
            &[0.0882, 0.2092, 0.2483, 0.1933, 0.1208, 0.0675, 0.0727],
        )
    };
    let k = pi.len() - 1;
    let n_blocks = n / m;
    let mut v = vec![0u64; pi.len()];
    for b in 0..n_blocks {
        let mut longest = 0u32;
        let mut run = 0u32;
        for i in 0..m {
            if bits.get(b * m + i) {
                run += 1;
                longest = longest.max(run);
            } else {
                run = 0;
            }
        }
        let cat = longest.saturating_sub(v_min).min(k as u32) as usize;
        v[cat] += 1;
    }
    let nb = n_blocks as f64;
    let chi2: f64 = v
        .iter()
        .zip(pi)
        .map(|(&obs, &p)| {
            let e = nb * p;
            (obs as f64 - e) * (obs as f64 - e) / e
        })
        .sum();
    gamma_q(k as f64 / 2.0, chi2 / 2.0)
}

/// Discrete-Fourier-transform (spectral) test.
pub fn fft_spectral(bits: &Bits) -> f64 {
    let signal: Vec<f64> = bits.signs().map(|s| s as f64).collect();
    let mags = fft_magnitudes(&signal);
    let n = (mags.len() * 2) as f64; // power-of-two length actually used
    let threshold = ((1.0 / 0.05f64).ln() * n).sqrt();
    let n0 = 0.95 * n / 2.0;
    let n1 = mags.iter().filter(|&&m| m < threshold).count() as f64;
    let d = (n1 - n0) / (n * 0.95 * 0.05 / 4.0).sqrt();
    erfc(d.abs() / std::f64::consts::SQRT_2)
}

/// Binary-matrix-rank test with 32×32 matrices.
///
/// This is the test `lrand48` fails in the paper: linear congruential
/// generators produce bit matrices with excess linear dependence.
pub fn rank_test(bits: &Bits) -> f64 {
    let per_matrix = 32 * 32;
    let n_matrices = bits.len() / per_matrix;
    assert!(n_matrices > 0, "need at least 1024 bits");
    // Asymptotic category probabilities for rank 32, 31, <=30.
    const P_FULL: f64 = 0.288_8;
    const P_MINUS1: f64 = 0.577_6;
    const P_REST: f64 = 0.133_6;
    let (mut f_full, mut f_minus1, mut f_rest) = (0u64, 0u64, 0u64);
    for mi in 0..n_matrices {
        let mut rows = [0u32; 32];
        for (r, row) in rows.iter_mut().enumerate() {
            for c in 0..32 {
                if bits.get(mi * per_matrix + r * 32 + c) {
                    *row |= 1 << c;
                }
            }
        }
        match binary_rank_32(&rows) {
            32 => f_full += 1,
            31 => f_minus1 += 1,
            _ => f_rest += 1,
        }
    }
    let n = n_matrices as f64;
    let chi2 = (f_full as f64 - P_FULL * n).powi(2) / (P_FULL * n)
        + (f_minus1 as f64 - P_MINUS1 * n).powi(2) / (P_MINUS1 * n)
        + (f_rest as f64 - P_REST * n).powi(2) / (P_REST * n);
    gamma_q(1.0, chi2 / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sz_rng::{Rng, SplitMix64};

    fn random_bits(n: usize, seed: u64) -> Bits {
        let mut rng = SplitMix64::new(seed);
        Bits::from_fn(n, |_| rng.next_u64() & 1 == 1)
    }

    #[test]
    fn frequency_spec_example() {
        // SP 800-22 §2.1.8 example: 1011010101 -> p = 0.527089.
        let bits = Bits::from_bools(&[
            true, false, true, true, false, true, false, true, false, true,
        ]);
        assert!((frequency(&bits) - 0.527_089).abs() < 1e-5);
    }

    #[test]
    fn runs_spec_example() {
        // SP 800-22 §2.3.8 example: 1001101011 -> p = 0.147232.
        let bits = Bits::from_bools(&[
            true, false, false, true, true, false, true, false, true, true,
        ]);
        assert!((runs(&bits) - 0.147_232).abs() < 1e-5);
    }

    #[test]
    fn block_frequency_spec_example() {
        // SP 800-22 §2.2.8 example: 0110011010, M = 3 -> p = 0.801252.
        let bits = Bits::from_bools(&[
            false, true, true, false, false, true, true, false, true, false,
        ]);
        assert!((block_frequency(&bits, 3) - 0.801_252).abs() < 1e-5);
    }

    #[test]
    fn cusum_spec_example() {
        // SP 800-22 §2.13.8 example: 1011010111 -> forward p = 0.4116588.
        let bits = Bits::from_bools(&[
            true, false, true, true, false, true, false, true, true, true,
        ]);
        assert!((cumulative_sums(&bits) - 0.411_658_8).abs() < 1e-5);
    }

    #[test]
    fn biased_stream_fails_frequency_tests() {
        let mut rng = SplitMix64::new(1);
        // 60% ones.
        let bits = Bits::from_fn(1 << 14, |_| rng.next_f64() < 0.6);
        assert!(frequency(&bits) < 1e-6);
        assert!(block_frequency(&bits, 128) < 1e-6);
        assert!(cumulative_sums(&bits) < 1e-6);
    }

    #[test]
    fn structured_matrices_fail_rank() {
        // Period-64 stream: every matrix row pair repeats -> rank ~ 2.
        let bits = Bits::from_fn(1 << 14, |i| (i / 2) % 2 == 0);
        assert!(rank_test(&bits) < 1e-10);
    }

    #[test]
    fn random_stream_passes_each_test() {
        let bits = random_bits(1 << 16, 99);
        assert!(frequency(&bits) > 0.01);
        assert!(block_frequency(&bits, 128) > 0.01);
        assert!(cumulative_sums(&bits) > 0.01);
        assert!(runs(&bits) > 0.01);
        assert!(longest_run(&bits) > 0.01);
        assert!(fft_spectral(&bits) > 0.01);
        assert!(rank_test(&bits) > 0.01);
    }

    #[test]
    fn longest_run_flags_clumped_streams() {
        // Random except every 128-block carries a 40-bit run of ones.
        let mut rng = SplitMix64::new(5);
        let bits = Bits::from_fn(1 << 14, |i| {
            if i % 128 < 40 {
                true
            } else {
                rng.next_u64() & 1 == 1
            }
        });
        assert!(longest_run(&bits) < 1e-6);
    }
}
