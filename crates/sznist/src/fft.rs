//! Radix-2 complex FFT for the spectral test.

/// Computes the magnitudes of the first `n/2` DFT coefficients of a
/// real ±1 signal, where `n` is the largest power of two not exceeding
/// `signal.len()` (excess samples are ignored, as the spectral test
/// tolerates truncation).
///
/// # Panics
///
/// Panics if fewer than 2 samples are supplied.
pub fn fft_magnitudes(signal: &[f64]) -> Vec<f64> {
    assert!(signal.len() >= 2, "need at least 2 samples");
    let n = if signal.len().is_power_of_two() {
        signal.len()
    } else {
        1 << (usize::BITS - 1 - signal.len().leading_zeros())
    };
    let mut re: Vec<f64> = signal[..n].to_vec();
    let mut im = vec![0.0f64; n];
    fft_in_place(&mut re, &mut im);
    (0..n / 2)
        .map(|k| (re[k] * re[k] + im[k] * im[k]).sqrt())
        .collect()
}

/// Iterative in-place radix-2 Cooley–Tukey FFT.
fn fft_in_place(re: &mut [f64], im: &mut [f64]) {
    let n = re.len();
    debug_assert!(n.is_power_of_two());
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let (mut cr, mut ci) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let (ur, ui) = (re[i + k], im[i + k]);
                let (vr, vi) = (
                    re[i + k + len / 2] * cr - im[i + k + len / 2] * ci,
                    re[i + k + len / 2] * ci + im[i + k + len / 2] * cr,
                );
                re[i + k] = ur + vr;
                im[i + k] = ui + vi;
                re[i + k + len / 2] = ur - vr;
                im[i + k + len / 2] = ui - vi;
                let ncr = cr * wr - ci * wi;
                ci = cr * wi + ci * wr;
                cr = ncr;
            }
            i += len;
        }
        len <<= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_signal_concentrates_at_zero() {
        let mags = fft_magnitudes(&[1.0; 64]);
        assert!((mags[0] - 64.0).abs() < 1e-9);
        for &m in &mags[1..] {
            assert!(m < 1e-9, "non-DC energy {m}");
        }
    }

    #[test]
    fn single_tone_peaks_at_its_frequency() {
        let n = 128;
        let f = 16;
        let signal: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * f as f64 * i as f64 / n as f64).cos())
            .collect();
        let mags = fft_magnitudes(&signal);
        let peak = mags
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, f);
        assert!((mags[f] - n as f64 / 2.0).abs() < 1e-6);
    }

    #[test]
    fn parseval_energy_is_conserved() {
        // sum |x|^2 = (1/n) sum |X|^2 ; with ±1 inputs sum |x|^2 = n.
        let signal: Vec<f64> = (0..256)
            .map(|i| if (i * 7) % 13 < 6 { 1.0 } else { -1.0 })
            .collect();
        let n = 256.0;
        let mut re = signal.clone();
        let mut im = vec![0.0; 256];
        super::fft_in_place(&mut re, &mut im);
        let spectrum_energy: f64 = re.iter().zip(&im).map(|(r, i)| r * r + i * i).sum();
        assert!((spectrum_energy / n - n).abs() < 1e-6);
    }

    #[test]
    fn truncates_to_power_of_two() {
        let mags = fft_magnitudes(&vec![1.0; 100]);
        assert_eq!(mags.len(), 32, "100 -> 64 samples -> 32 magnitudes");
    }
}
