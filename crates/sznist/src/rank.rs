//! Binary matrix rank over GF(2), for the Rank test.

/// Rank of a 32×32 binary matrix given as 32 row bitmasks.
pub fn binary_rank_32(rows: &[u32; 32]) -> u32 {
    let mut m = *rows;
    let mut rank = 0u32;
    let mut row = 0usize;
    for col in 0..32u32 {
        // Find a pivot at or below `row` with a one in `col`.
        let Some(pivot) = (row..32).find(|&r| m[r] >> col & 1 == 1) else {
            continue;
        };
        m.swap(row, pivot);
        for r in 0..32 {
            if r != row && (m[r] >> col) & 1 == 1 {
                m[r] ^= m[row];
            }
        }
        rank += 1;
        row += 1;
        if row == 32 {
            break;
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_has_full_rank() {
        let mut rows = [0u32; 32];
        for (i, r) in rows.iter_mut().enumerate() {
            *r = 1 << i;
        }
        assert_eq!(binary_rank_32(&rows), 32);
    }

    #[test]
    fn zero_matrix_has_rank_zero() {
        assert_eq!(binary_rank_32(&[0; 32]), 0);
    }

    #[test]
    fn duplicate_rows_reduce_rank() {
        let mut rows = [0u32; 32];
        for (i, r) in rows.iter_mut().enumerate() {
            *r = 1 << i;
        }
        rows[31] = rows[0]; // duplicate
        assert_eq!(binary_rank_32(&rows), 31);
    }

    #[test]
    fn xor_dependent_row_reduces_rank() {
        let mut rows = [0u32; 32];
        for (i, r) in rows.iter_mut().enumerate().take(31) {
            *r = 1 << i;
        }
        rows[31] = rows[0] ^ rows[1] ^ rows[2];
        assert_eq!(binary_rank_32(&rows), 31);
    }

    #[test]
    fn all_ones_matrix_has_rank_one() {
        assert_eq!(binary_rank_32(&[u32::MAX; 32]), 1);
    }
}
