//! The unsound baseline: deterministic linking with incidental layout
//! knobs.
//!
//! The paper's motivation (§1) is that conventional evaluation fixes
//! one layout per binary, and that incidental factors pick that layout:
//! *link order* moves every function, and *environment variable size*
//! shifts the base of the stack (Mytkowicz et al. measured up to 300%
//! swings; the authors measured 57% from link order alone). This crate
//! is that world: a linker that places functions in link order, a
//! deterministic LIFO heap, and an environment block that offsets the
//! stack — every knob measurable, none randomized at runtime.
//!
//! # Examples
//!
//! ```
//! use sz_link::{LinkOrder, LinkedLayout};
//! use sz_vm::LayoutEngine;
//!
//! // The default layout a compiler/linker would produce:
//! let default = LinkedLayout::builder().build();
//! // The same program "recompiled" with a different object-file order:
//! let permuted = LinkedLayout::builder()
//!     .link_order(LinkOrder::Shuffled { seed: 7 })
//!     .build();
//! assert_eq!(default.name(), "linked");
//! # let _ = permuted;
//! ```

use sz_heap::{Allocator, Region, SegregatedAllocator};
use sz_ir::{FuncId, GlobalId, Program};
use sz_machine::MemorySystem;
use sz_rng::{fisher_yates, Rng, SplitMix64};
use sz_vm::LayoutEngine;

/// Text segment base (where the linker places the first function).
const CODE_BASE: u64 = 0x40_0000;
/// Data segment base.
const GLOBAL_BASE: u64 = 0x60_0000;
/// Heap region handed to the base allocator.
const HEAP_BASE: u64 = 0x100_0000;
const HEAP_SIZE: u64 = 1 << 34;
/// Top of the stack before the environment block is subtracted.
const STACK_TOP: u64 = 0x7FFF_FFFF_F000;

/// How the linker orders functions in the text segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkOrder {
    /// Program order (`FuncId` order) — the "default build".
    Default,
    /// A seeded random permutation — "the same objects, linked in a
    /// different order", the §5 baseline configuration.
    Shuffled {
        /// Permutation seed.
        seed: u64,
    },
    /// An explicit permutation of function indices.
    Explicit(Vec<u32>),
}

/// Builder for [`LinkedLayout`].
#[derive(Debug, Clone)]
pub struct LinkedLayoutBuilder {
    order: LinkOrder,
    env_bytes: u64,
    function_alignment: u64,
}

impl LinkedLayoutBuilder {
    /// Chooses the link order (default: program order).
    pub fn link_order(mut self, order: LinkOrder) -> Self {
        self.order = order;
        self
    }

    /// Sets the size of the environment block, which shifts the stack
    /// base down — the Mytkowicz et al. effect (§1, §7).
    pub fn env_bytes(mut self, bytes: u64) -> Self {
        self.env_bytes = bytes;
        self
    }

    /// Function alignment in the text segment (default 16).
    ///
    /// # Panics
    ///
    /// Panics unless `align` is a power of two.
    pub fn function_alignment(mut self, align: u64) -> Self {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        self.function_alignment = align;
        self
    }

    /// Builds the engine.
    pub fn build(self) -> LinkedLayout {
        LinkedLayout {
            order: self.order,
            env_bytes: self.env_bytes,
            function_alignment: self.function_alignment,
            code_bases: Vec::new(),
            global_bases: Vec::new(),
            heap: SegregatedAllocator::new(Region::new(HEAP_BASE, HEAP_SIZE)),
        }
    }
}

/// The conventional-toolchain layout engine.
///
/// Deterministic given its configuration: two runs of the same binary
/// see identical addresses everywhere, which is precisely why a single
/// binary is "just one sample from the space of program layouts".
#[derive(Debug, Clone)]
pub struct LinkedLayout {
    order: LinkOrder,
    env_bytes: u64,
    function_alignment: u64,
    code_bases: Vec<u64>,
    global_bases: Vec<u64>,
    heap: SegregatedAllocator,
}

impl LinkedLayout {
    /// Starts a builder with default-order linking and an empty
    /// environment.
    pub fn builder() -> LinkedLayoutBuilder {
        LinkedLayoutBuilder {
            order: LinkOrder::Default,
            env_bytes: 0,
            function_alignment: 16,
        }
    }

    /// The code placement produced for the last prepared program
    /// (function id -> base address).
    pub fn code_bases(&self) -> &[u64] {
        &self.code_bases
    }

    fn permutation(&self, n: usize) -> Vec<u32> {
        match &self.order {
            LinkOrder::Default => (0..n as u32).collect(),
            LinkOrder::Shuffled { seed } => {
                let mut perm: Vec<u32> = (0..n as u32).collect();
                let mut rng = SplitMix64::new(*seed);
                // Skip one draw so seed 0 does not produce the identity
                // on tiny inputs.
                rng.next_u64();
                fisher_yates(&mut perm, &mut rng);
                perm
            }
            LinkOrder::Explicit(p) => {
                assert_eq!(p.len(), n, "explicit link order must cover every function");
                p.clone()
            }
        }
    }
}

impl LayoutEngine for LinkedLayout {
    fn prepare(&mut self, program: &Program) {
        let n = program.functions.len();
        let perm = self.permutation(n);
        self.code_bases = vec![0; n];
        let mut pc = CODE_BASE;
        for &fi in &perm {
            let f = &program.functions[fi as usize];
            self.code_bases[fi as usize] = pc;
            let a = self.function_alignment;
            pc = (pc + f.code_size() + a - 1) & !(a - 1);
        }
        self.global_bases.clear();
        let mut g = GLOBAL_BASE;
        for global in &program.globals {
            self.global_bases.push(g);
            g = (g + global.size + 15) & !15;
        }
        self.heap = SegregatedAllocator::new(Region::new(HEAP_BASE, HEAP_SIZE));
    }

    fn enter_function(&mut self, func: FuncId, _mem: &mut MemorySystem) -> u64 {
        self.code_bases[func.0 as usize]
    }

    fn stack_pad(&mut self, _func: FuncId, _mem: &mut MemorySystem) -> u64 {
        0
    }

    fn global_base(&self, g: GlobalId) -> u64 {
        self.global_bases[g.0 as usize]
    }

    fn stack_base(&self) -> u64 {
        // The environment block sits at the top of the stack region;
        // growing it pushes every frame down by the same amount.
        STACK_TOP - ((self.env_bytes + 15) & !15)
    }

    fn malloc(&mut self, size: u64, _mem: &mut MemorySystem) -> Option<u64> {
        self.heap.malloc(size)
    }

    fn free(&mut self, addr: u64, _mem: &mut MemorySystem) -> bool {
        self.heap.try_free(addr)
    }

    fn tick(&mut self, _now: u64, _stack: &[sz_vm::FrameView], _mem: &mut MemorySystem) {}

    fn name(&self) -> &'static str {
        "linked"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sz_ir::{AluOp, ProgramBuilder};
    use sz_machine::MachineConfig;
    use sz_vm::{RunLimits, Vm};

    fn program_with_functions(n: usize) -> Program {
        let mut p = ProgramBuilder::new("t");
        let mut ids = Vec::new();
        for i in 0..n {
            let mut f = p.function(format!("f{i}"), 0);
            // Bulk up each function (~200 bytes) so together they
            // overflow the tiny L1I and placement decides the conflicts.
            for _ in 0..4 {
                f.nop(50);
            }
            let v = f.alu(AluOp::Add, i as i64, 1);
            f.ret(Some(v.into()));
            ids.push(p.add_function(f));
        }
        // main: 50 iterations calling every function, so the i-cache
        // sees heavy reuse and conflict misses depend on layout.
        let mut main = p.function("main", 0);
        let s_i = main.slot();
        main.store_slot(s_i, 0);
        let header = main.new_block();
        let body = main.new_block();
        let exit = main.new_block();
        main.jump(header);
        main.switch_to(header);
        let i = main.load_slot(s_i);
        let c = main.alu(AluOp::CmpLt, i, 50);
        main.branch(c, body, exit);
        main.switch_to(body);
        for id in &ids {
            main.call_void(*id, vec![]);
        }
        let i = main.load_slot(s_i);
        let ni = main.alu(AluOp::Add, i, 1);
        main.store_slot(s_i, ni);
        main.jump(header);
        main.switch_to(exit);
        main.ret(None);
        let entry = p.add_function(main);
        p.finish(entry).unwrap()
    }

    #[test]
    fn default_order_is_sequential() {
        let prog = program_with_functions(4);
        let mut e = LinkedLayout::builder().build();
        e.prepare(&prog);
        let bases = e.code_bases().to_vec();
        for w in bases.windows(2) {
            assert!(w[1] > w[0], "default link order preserves program order");
        }
    }

    #[test]
    fn shuffled_orders_differ_and_are_deterministic() {
        let prog = program_with_functions(8);
        let place = |order: LinkOrder| {
            let mut e = LinkedLayout::builder().link_order(order).build();
            e.prepare(&prog);
            e.code_bases().to_vec()
        };
        let a = place(LinkOrder::Shuffled { seed: 1 });
        let a2 = place(LinkOrder::Shuffled { seed: 1 });
        let b = place(LinkOrder::Shuffled { seed: 2 });
        assert_eq!(a, a2, "same seed, same layout");
        assert_ne!(a, b, "different seed, different layout");
    }

    #[test]
    fn functions_never_overlap_in_any_order() {
        let prog = program_with_functions(10);
        for seed in 0..20 {
            let mut e = LinkedLayout::builder()
                .link_order(LinkOrder::Shuffled { seed })
                .build();
            e.prepare(&prog);
            let mut spans: Vec<(u64, u64)> = e
                .code_bases()
                .iter()
                .zip(&prog.functions)
                .map(|(&b, f)| (b, b + f.code_size()))
                .collect();
            spans.sort();
            for w in spans.windows(2) {
                assert!(w[0].1 <= w[1].0, "overlap in seed {seed}");
            }
        }
    }

    #[test]
    fn env_bytes_shift_the_stack() {
        let no_env = LinkedLayout::builder().build();
        let env = LinkedLayout::builder().env_bytes(4096).build();
        assert_eq!(no_env.stack_base() - env.stack_base(), 4096);
    }

    #[test]
    fn link_order_changes_execution_time() {
        // End-to-end bias demonstration in miniature: same program,
        // different link order, different cycle count.
        let prog = program_with_functions(12);
        let vm = Vm::new(&prog);
        let cycles = |seed: u64| {
            let mut e = LinkedLayout::builder()
                .link_order(LinkOrder::Shuffled { seed })
                .build();
            vm.run(&mut e, MachineConfig::tiny(), RunLimits::default())
                .unwrap()
                .cycles
        };
        let times: Vec<u64> = (0..10).map(cycles).collect();
        let distinct: std::collections::HashSet<u64> = times.iter().copied().collect();
        assert!(
            distinct.len() > 1,
            "link order must affect timing: {times:?}"
        );
    }

    #[test]
    fn identical_specs_give_identical_runs() {
        let prog = program_with_functions(5);
        let vm = Vm::new(&prog);
        let run = || {
            let mut e = LinkedLayout::builder()
                .link_order(LinkOrder::Shuffled { seed: 3 })
                .env_bytes(512)
                .build();
            vm.run(&mut e, MachineConfig::tiny(), RunLimits::default())
                .unwrap()
        };
        assert_eq!(
            run().cycles,
            run().cycles,
            "one binary = one layout = one time"
        );
    }

    #[test]
    #[should_panic(expected = "explicit link order must cover")]
    fn explicit_order_must_be_complete() {
        let prog = program_with_functions(3);
        let mut e = LinkedLayout::builder()
            .link_order(LinkOrder::Explicit(vec![0, 1]))
            .build();
        e.prepare(&prog);
    }
}
