//! End-to-end tests against a live `sz-serve` instance on an
//! ephemeral port: cache-hit bit-identity, backpressure, cancellation,
//! the adaptive-stopping golden run, and a 64-client burst.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use sz_harness::Json;
use sz_serve::scheduler::SchedulerConfig;
use sz_serve::{FederationConfig, Server, ServerConfig};

fn start(workers: usize, queue_capacity: usize) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        scheduler: SchedulerConfig {
            workers,
            queue_capacity,
            exec_threads: 2,
            cache_budget: 32 << 20,
        },
        loops: 2,
        federation: FederationConfig::default(),
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("resolved addr");
    let handle = std::thread::spawn(move || server.serve().expect("serve"));
    (addr, handle)
}

/// One request over a fresh connection; returns every response line
/// (trace records included) up to and including the terminal line.
fn request(addr: SocketAddr, line: &str) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("read timeout");
    let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
    writeln!(writer, "{line}").expect("send");
    writer.flush().expect("flush");
    let mut lines = Vec::new();
    for response in BufReader::new(stream).lines() {
        let response = response.expect("receive");
        let value = Json::parse(&response).expect("responses are well-formed JSON");
        let ty = value.get("type").and_then(Json::as_str).expect("typed");
        let terminal = !matches!(ty, "run" | "summary");
        lines.push(response);
        if terminal {
            return lines;
        }
    }
    panic!("connection closed before a terminal line");
}

fn terminal(lines: &[String]) -> Json {
    Json::parse(lines.last().expect("at least one line")).expect("well-formed")
}

fn shutdown(addr: SocketAddr, handle: std::thread::JoinHandle<()>) {
    let lines = request(addr, r#"{"type":"shutdown"}"#);
    assert_eq!(
        terminal(&lines).get("type").unwrap().as_str(),
        Some("shutdown")
    );
    handle.join().expect("server exits cleanly");
}

#[test]
fn second_identical_run_is_a_bit_identical_cache_hit() {
    let (addr, handle) = start(2, 8);
    let run =
        r#"{"type":"run","experiment":"table1","benchmarks":["bzip2"],"runs":4,"trace":true}"#;

    let first = request(addr, run);
    let first_terminal = terminal(&first);
    assert_eq!(
        first_terminal.get("cached").unwrap().as_bool(),
        Some(false),
        "cold run must miss"
    );
    assert!(
        first.len() > 1,
        "traced responses stream run records before the result"
    );

    let second = request(addr, run);
    let second_terminal = terminal(&second);
    assert_eq!(
        second_terminal.get("cached").unwrap().as_bool(),
        Some(true),
        "identical request must hit"
    );
    // Bit-identity: every streamed trace line — full sample vectors
    // and per-period counter snapshots — matches the cold run's bytes.
    assert_eq!(
        &first[..first.len() - 1],
        &second[..second.len() - 1],
        "cached trace must be byte-identical to the cold run"
    );
    assert_eq!(
        first_terminal.get("summary").unwrap(),
        second_terminal.get("summary").unwrap()
    );

    let stats = terminal(&request(addr, r#"{"type":"stats"}"#));
    let cache = stats.get("cache").expect("stats carry cache counters");
    assert_eq!(cache.get("hits").unwrap().as_u64(), Some(1));
    assert_eq!(cache.get("insertions").unwrap().as_u64(), Some(1));
    shutdown(addr, handle);
}

#[test]
fn full_queue_rejects_with_retry_after() {
    let (addr, handle) = start(1, 1);
    // Occupy the single worker and the single queue slot with slow
    // sleeps submitted without waiting.
    let sleep = r#"{"type":"run","experiment":"selftest-sleep","sleep_ms":1500,"wait":false}"#;
    assert_eq!(
        terminal(&request(addr, sleep))
            .get("type")
            .unwrap()
            .as_str(),
        Some("accepted")
    );
    // Let the worker dequeue the first job so the next occupies the queue.
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(
        terminal(&request(addr, sleep))
            .get("type")
            .unwrap()
            .as_str(),
        Some("accepted")
    );
    let rejected = terminal(&request(addr, sleep));
    assert_eq!(rejected.get("type").unwrap().as_str(), Some("rejected"));
    let retry = rejected.get("retry_after_ms").unwrap().as_u64().unwrap();
    assert!(retry >= 25, "retry hint should be meaningful, got {retry}");
    shutdown(addr, handle);
}

#[test]
fn queued_jobs_cancel_and_report_status() {
    let (addr, handle) = start(1, 4);
    let sleep = r#"{"type":"run","experiment":"selftest-sleep","sleep_ms":3000,"wait":false}"#;
    let running = terminal(&request(addr, sleep))
        .get("job")
        .unwrap()
        .as_u64()
        .unwrap();
    std::thread::sleep(Duration::from_millis(100));
    let queued = terminal(&request(addr, sleep))
        .get("job")
        .unwrap()
        .as_u64()
        .unwrap();

    let status = terminal(&request(
        addr,
        &format!(r#"{{"type":"status","job":{queued}}}"#),
    ));
    assert_eq!(status.get("state").unwrap().as_str(), Some("queued"));

    let cancelled = terminal(&request(
        addr,
        &format!(r#"{{"type":"cancel","job":{queued}}}"#),
    ));
    assert_eq!(cancelled.get("ok").unwrap().as_bool(), Some(true));
    let status = terminal(&request(
        addr,
        &format!(r#"{{"type":"status","job":{queued}}}"#),
    ));
    assert_eq!(status.get("state").unwrap().as_str(), Some("failed"));
    assert_eq!(status.get("reason").unwrap().as_str(), Some("cancelled"));

    // The running job is flagged best-effort and settles promptly —
    // the sleep checks its cancellation flag every few milliseconds.
    let cancelled = terminal(&request(
        addr,
        &format!(r#"{{"type":"cancel","job":{running}}}"#),
    ));
    assert_eq!(cancelled.get("ok").unwrap().as_bool(), Some(true));
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let status = terminal(&request(
            addr,
            &format!(r#"{{"type":"status","job":{running}}}"#),
        ));
        if status.get("state").unwrap().as_str() == Some("failed") {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "running job did not honor its cancellation flag"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    shutdown(addr, handle);
}

/// The adaptive-stopping golden run: gobmk O1 -> O2, fixed seed. The
/// stop point is pinned — any drift means the sampling stream, the
/// stopping rule, or the statistics changed.
#[test]
fn adaptive_stopping_matches_fixed_verdict_with_fewer_samples() {
    let (addr, handle) = start(1, 4);
    let fixed = terminal(&request(
        addr,
        r#"{"type":"run","experiment":"evaluate","benchmarks":["gobmk"],"runs":30}"#,
    ));
    assert_eq!(fixed.get("type").unwrap().as_str(), Some("result"));
    let fixed_summary = fixed.get("summary").unwrap();
    assert_eq!(fixed_summary.get("mode").unwrap().as_str(), Some("fixed"));
    assert_eq!(fixed.get("samples_used").unwrap().as_u64(), Some(60));
    let fixed_practical = fixed_summary
        .get("practical")
        .expect("fixed mode must report a practical verdict");
    let fixed_verdict = fixed_practical.get("verdict").unwrap().as_str().unwrap();

    let adaptive = terminal(&request(
        addr,
        r#"{"type":"run","experiment":"evaluate","benchmarks":["gobmk"],"runs":30,"adaptive":{"half_width":0.05,"batch":5,"min_runs":5,"max_runs":30}}"#,
    ));
    let summary = adaptive.get("summary").unwrap();
    assert_eq!(summary.get("mode").unwrap().as_str(), Some("adaptive"));
    assert_eq!(summary.get("stopped_early").unwrap().as_bool(), Some(true));

    // Same accept/reject verdict as the fixed 30-run protocol...
    assert_eq!(
        summary.get("significant").unwrap().as_bool(),
        fixed_summary.get("significant").unwrap().as_bool(),
        "adaptive and fixed protocols must agree on the verdict"
    );
    // ...from strictly fewer samples, with the savings reported.
    let used = adaptive.get("samples_used").unwrap().as_u64().unwrap();
    let saved = adaptive.get("samples_saved").unwrap().as_u64().unwrap();
    assert!(used < 60, "adaptive must stop early, used {used}");
    assert_eq!(used + saved, 60, "savings are measured against fixed-30");

    // Golden stop point for seed 0x5EED0000: the first batch where the
    // stopping rule can fire. Samples are a bit-identical prefix of
    // the fixed stream, so this is stable across machines and thread
    // counts.
    assert_eq!(summary.get("samples_per_arm").unwrap().as_u64(), Some(5));

    // The practical verdict ships full audit metadata and matches the
    // fixed protocol's call (gobmk O1 -> O2 is a clear, large win).
    let practical = summary
        .get("practical")
        .expect("adaptive mode must report a practical verdict");
    assert_eq!(
        practical.get("verdict").unwrap().as_str(),
        Some(fixed_verdict),
        "adaptive and fixed must agree on the practical verdict"
    );
    assert_eq!(fixed_verdict, "robustly-faster");
    for key in ["effect_ratio", "effect_lo", "effect_hi", "band"] {
        assert!(
            practical.get(key).unwrap().as_f64().unwrap().is_finite(),
            "{key} must be a finite number"
        );
    }
    assert_eq!(practical.get("n_a").unwrap().as_u64(), Some(5));
    shutdown(addr, handle);
}

#[test]
fn server_survives_a_64_client_concurrent_burst() {
    let (addr, handle) = start(2, 64);
    let clients: Vec<_> = (0..64)
        .map(|i| {
            std::thread::spawn(move || {
                // Mix cacheable work (all clients share one nist key)
                // with uncacheable sleeps so the queue sees pressure.
                let line = if i % 2 == 0 {
                    r#"{"type":"run","experiment":"nist"}"#.to_string()
                } else {
                    r#"{"type":"run","experiment":"selftest-sleep","sleep_ms":5}"#.to_string()
                };
                let lines = request(addr, &line);
                terminal(&lines)
            })
        })
        .collect();
    let mut results = 0;
    let mut rejections = 0;
    for client in clients {
        let response = client.join().expect("client thread survives");
        match response.get("type").unwrap().as_str().unwrap() {
            "result" => results += 1,
            "rejected" => rejections += 1,
            other => panic!("unexpected terminal line type {other:?}"),
        }
    }
    assert_eq!(results + rejections, 64);
    assert!(results > 0, "the burst must make forward progress");
    // The server is still healthy: stats respond and shutdown drains.
    let stats = terminal(&request(addr, r#"{"type":"stats"}"#));
    assert_eq!(stats.get("type").unwrap().as_str(), Some("stats"));
    shutdown(addr, handle);
}

/// Regression: the thread-per-connection front end joined every
/// handler thread on shutdown, so a connected client that never sent
/// a byte parked its handler in a blocking `read` and hung `serve()`
/// indefinitely. The event loop closes idle connections on stop.
#[test]
fn shutdown_with_a_silent_connected_client_completes_within_the_deadline() {
    let (addr, handle) = start(1, 4);
    // Clients that connect and then go silent — no request, no EOF.
    let silent: Vec<TcpStream> = (0..4)
        .map(|_| TcpStream::connect(addr).expect("connect"))
        .collect();
    std::thread::sleep(Duration::from_millis(100));

    let started = std::time::Instant::now();
    let lines = request(addr, r#"{"type":"shutdown"}"#);
    assert_eq!(
        terminal(&lines).get("type").unwrap().as_str(),
        Some("shutdown")
    );
    handle.join().expect("server exits cleanly");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "shutdown must not wait on silent clients (took {:?})",
        started.elapsed()
    );
    drop(silent);
}

/// Satellite: connection and write failures are counted, not dropped.
/// An over-long request line is a `conn_error`; the old front end had
/// no visible counter for either failure class.
#[test]
fn stats_count_connection_errors() {
    let (addr, handle) = start(1, 4);
    let baseline = terminal(&request(addr, r#"{"type":"stats"}"#));
    assert_eq!(baseline.get("conn_errors").unwrap().as_u64(), Some(0));
    assert_eq!(baseline.get("write_errors").unwrap().as_u64(), Some(0));

    // A 1 MiB+ line without a newline overflows the read buffer; the
    // server closes the connection and counts the error.
    let stream = TcpStream::connect(addr).expect("connect");
    let huge = vec![b'x'; (1 << 20) + 4096];
    let _ = (&stream).write_all(&huge);
    let mut closed = String::new();
    assert_eq!(
        BufReader::new(&stream).read_line(&mut closed).unwrap_or(0),
        0,
        "oversized lines close the connection without a reply"
    );
    drop(stream);

    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let stats = terminal(&request(addr, r#"{"type":"stats"}"#));
        if stats.get("conn_errors").unwrap().as_u64() == Some(1) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "conn_errors never incremented"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    shutdown(addr, handle);
}
