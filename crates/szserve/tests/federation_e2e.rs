//! End-to-end federation tests: a coordinator fanning a run out to
//! two live node processes (in-process servers on ephemeral ports),
//! byte-identical shard merges against a single-node reference,
//! ring-forwarded lookups, and fallback when peers are dead.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

use sz_harness::Json;
use sz_serve::scheduler::SchedulerConfig;
use sz_serve::{FederationConfig, Role, Server, ServerConfig};

fn start(role: Role, peers: Vec<String>) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        scheduler: SchedulerConfig {
            workers: 2,
            queue_capacity: 8,
            exec_threads: 2,
            cache_budget: 32 << 20,
        },
        loops: 2,
        federation: FederationConfig {
            role,
            peers,
            couriers: 4,
        },
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("resolved addr");
    let handle = std::thread::spawn(move || server.serve().expect("serve"));
    (addr, handle)
}

/// One request over a fresh connection; returns every response line
/// up to and including the terminal line.
fn request(addr: SocketAddr, line: &str) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("read timeout");
    let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
    writeln!(writer, "{line}").expect("send");
    writer.flush().expect("flush");
    let mut lines = Vec::new();
    for response in BufReader::new(stream).lines() {
        let response = response.expect("receive");
        let value = Json::parse(&response).expect("responses are well-formed JSON");
        let ty = value.get("type").and_then(Json::as_str).expect("typed");
        let terminal = !matches!(ty, "run" | "summary");
        lines.push(response);
        if terminal {
            return lines;
        }
    }
    panic!("connection closed before a terminal line");
}

fn terminal(lines: &[String]) -> Json {
    Json::parse(lines.last().expect("at least one line")).expect("well-formed")
}

fn shutdown(addr: SocketAddr, handle: std::thread::JoinHandle<()>) {
    let lines = request(addr, r#"{"type":"shutdown"}"#);
    assert_eq!(
        terminal(&lines).get("type").unwrap().as_str(),
        Some("shutdown")
    );
    handle.join().expect("server exits cleanly");
}

fn federation_counter(addr: SocketAddr, field: &str) -> u64 {
    let stats = terminal(&request(addr, r#"{"type":"stats"}"#));
    stats
        .get("federation")
        .expect("stats carry a federation object")
        .get(field)
        .unwrap_or_else(|| panic!("federation stats carry {field}"))
        .as_u64()
        .expect("counter")
}

/// An address that accepts nothing: bind, harvest the port, drop the
/// listener.
fn dead_addr() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    drop(listener);
    addr
}

const EVALUATE: &str =
    r#"{"type":"run","experiment":"evaluate","benchmarks":["bzip2"],"runs":4,"trace":true}"#;

#[test]
fn coordinator_merged_shard_run_is_byte_identical_to_a_single_node_run() {
    let (single, single_handle) = start(Role::Single, Vec::new());
    let (node_a, a_handle) = start(Role::Node, Vec::new());
    let (node_b, b_handle) = start(Role::Node, Vec::new());
    let (coord, coord_handle) = start(
        Role::Coordinator,
        vec![node_a.to_string(), node_b.to_string()],
    );

    let reference = request(single, EVALUATE);
    let merged = request(coord, EVALUATE);

    // Every streamed trace record — full sample vectors, run by run —
    // must match the single-node transcript byte for byte.
    assert_eq!(
        &reference[..reference.len() - 1],
        &merged[..merged.len() - 1],
        "coordinator-merged trace must be byte-identical to single-node"
    );
    let ref_terminal = terminal(&reference);
    let merged_terminal = terminal(&merged);
    assert_eq!(
        ref_terminal.get("summary").unwrap(),
        merged_terminal.get("summary").unwrap(),
        "merged verdict summary must match single-node"
    );
    assert_eq!(
        merged_terminal.get("cached").unwrap().as_bool(),
        Some(false)
    );
    assert_eq!(federation_counter(coord, "shard_fanouts"), 1);
    assert_eq!(federation_counter(coord, "shard_failovers"), 0);

    // The merged result was cached on the coordinator: a repeat is a
    // local hit with the same bytes, no second fan-out.
    let repeat = request(coord, EVALUATE);
    assert_eq!(
        terminal(&repeat).get("cached").unwrap().as_bool(),
        Some(true)
    );
    assert_eq!(
        &reference[..reference.len() - 1],
        &repeat[..repeat.len() - 1]
    );
    assert_eq!(federation_counter(coord, "shard_fanouts"), 1);

    shutdown(coord, coord_handle);
    shutdown(node_a, a_handle);
    shutdown(node_b, b_handle);
    shutdown(single, single_handle);
}

#[test]
fn coordinator_forwards_non_shardable_runs_to_the_ring_owner() {
    let (node_a, a_handle) = start(Role::Node, Vec::new());
    let (node_b, b_handle) = start(Role::Node, Vec::new());
    let (coord, coord_handle) = start(
        Role::Coordinator,
        vec![node_a.to_string(), node_b.to_string()],
    );

    // table1 is cacheable but not an evaluate, so it forwards whole to
    // whichever peer owns the key.
    let run = r#"{"type":"run","experiment":"table1","benchmarks":["bzip2"],"runs":2}"#;
    let first = request(coord, run);
    assert_eq!(
        terminal(&first).get("type").unwrap().as_str(),
        Some("result")
    );
    assert_eq!(federation_counter(coord, "forwarded"), 1);
    assert_eq!(federation_counter(coord, "forward_fallbacks"), 0);

    // Exactly one of the two nodes computed and cached it.
    let insertions: u64 = [node_a, node_b]
        .iter()
        .map(|&addr| {
            terminal(&request(addr, r#"{"type":"stats"}"#))
                .get("cache")
                .and_then(|c| c.get("insertions"))
                .and_then(|v| v.as_u64())
                .expect("cache stats")
        })
        .sum();
    assert_eq!(insertions, 1, "the ring owner alone caches the result");

    // The repeat forwards to the same owner and hits its cache.
    let second = request(coord, run);
    assert_eq!(
        terminal(&second).get("cached").unwrap().as_bool(),
        Some(true),
        "second forward must hit the owner's cache"
    );

    shutdown(coord, coord_handle);
    shutdown(node_a, a_handle);
    shutdown(node_b, b_handle);
}

#[test]
fn dead_peers_fall_back_to_local_execution() {
    let (coord, coord_handle) = start(Role::Coordinator, vec![dead_addr(), dead_addr()]);

    // Forwarding path: the owner is unreachable, so the coordinator
    // runs the request itself and still answers correctly.
    let run = r#"{"type":"run","experiment":"table1","benchmarks":["bzip2"],"runs":2}"#;
    let lines = request(coord, run);
    assert_eq!(
        terminal(&lines).get("type").unwrap().as_str(),
        Some("result")
    );
    assert_eq!(federation_counter(coord, "forward_fallbacks"), 1);

    // Sharding path: every shard fails, so the evaluate fails over to
    // a whole local run — the reply is still a complete result.
    let evaluated = request(coord, EVALUATE);
    let evaluated_terminal = terminal(&evaluated);
    assert_eq!(
        evaluated_terminal.get("type").unwrap().as_str(),
        Some("result")
    );
    assert!(
        evaluated_terminal.get("summary").is_some(),
        "failed-over evaluate still carries its verdict summary"
    );
    assert!(federation_counter(coord, "shard_failovers") >= 1);

    shutdown(coord, coord_handle);
}
