//! Property tests for the federation's consistent-hash ring: order
//! independence, bounded churn under node removal, and a differential
//! check of `Ring::lookup` against a naive linear-scan reference over
//! the cache-key corpus the server e2e tests exercise.

use sz_serve::cache::{cache_key, fnv1a_128};
use sz_serve::proto::{AdaptiveParams, Experiment, ShardRange};
use sz_serve::ring::{key_position, placement, Ring};
use sz_serve::RunRequest;

fn fleet(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("10.0.0.{i}:7457")).collect()
}

/// A deterministic corpus of key material: hashes of small counters,
/// the same distribution the ring unit tests use.
fn keys(n: u32) -> impl Iterator<Item = u128> {
    (0..n).map(|i| fnv1a_128(&i.to_le_bytes()))
}

#[test]
fn assignment_is_stable_under_peer_list_reordering() {
    let names = fleet(6);
    let baseline = Ring::new(&names);

    let mut reversed = names.clone();
    reversed.reverse();
    let mut rotated = names.clone();
    rotated.rotate_left(2);
    // Interleave front/back halves for a third distinct order.
    let interleaved: Vec<String> = names[..3]
        .iter()
        .zip(&names[3..])
        .flat_map(|(a, b)| [b.clone(), a.clone()])
        .collect();

    for (label, order) in [
        ("reversed", reversed),
        ("rotated", rotated),
        ("interleaved", interleaved),
    ] {
        let ring = Ring::new(&order);
        for key in keys(4096) {
            assert_eq!(
                baseline.lookup(key),
                ring.lookup(key),
                "{label}: key {key:#034x} must not remap when only the \
                 configuration order changes"
            );
        }
    }
}

#[test]
fn removing_one_node_remaps_only_its_keys() {
    let names = fleet(5);
    let full = Ring::new(&names);

    for removed in &names {
        let rest: Vec<String> = names.iter().filter(|n| *n != removed).cloned().collect();
        let reduced = Ring::new(&rest);
        let mut moved = 0u32;
        for key in keys(8192) {
            let before = full.lookup(key).expect("non-empty ring");
            let after = reduced.lookup(key).expect("non-empty ring");
            if before == removed {
                moved += 1;
                assert_ne!(after, removed, "removed node cannot own keys");
            } else {
                assert_eq!(
                    before, after,
                    "key {key:#034x} was not on {removed} and must not move \
                     when {removed} leaves"
                );
            }
        }
        // The removed node owned a real share of the keyspace, so the
        // churn bound is non-vacuous.
        assert!(moved > 0, "{removed} owned no keys out of 8192");
    }
}

/// Linear-scan reference: every `(placement, name)` pair, first pair
/// at or clockwise after the key's position, wrapping to the global
/// minimum; ties break by name, exactly as `Ring::with_vnodes` sorts.
fn naive_owner(names: &[String], vnodes: usize, key: u128) -> &str {
    let mut points: Vec<(u128, &str)> = names
        .iter()
        .flat_map(|n| (0..vnodes).map(move |v| (placement(n, v), n.as_str())))
        .collect();
    points.sort();
    let position = key_position(key);
    points
        .iter()
        .find(|&&(p, _)| p >= position)
        .or_else(|| points.first())
        .expect("at least one point")
        .1
}

/// The run requests the server e2e suite issues, rebuilt here so the
/// differential corpus is exactly the cache keys a live federation
/// would route.
fn e2e_cache_key_corpus() -> Vec<RunRequest> {
    let mut corpus = Vec::new();

    let mut table1 = RunRequest::quick(Experiment::from_name("table1").expect("table1"));
    table1.benchmarks = Some(vec!["bzip2".to_string()]);
    table1.runs = 4;
    table1.trace = true;
    corpus.push(table1.clone());
    table1.runs = 2;
    corpus.push(table1);

    let mut sleep = RunRequest::quick(Experiment::from_name("selftest-sleep").expect("sleep"));
    sleep.sleep_ms = 1500;
    sleep.wait = false;
    corpus.push(sleep);

    let mut evaluate = RunRequest::quick(Experiment::Evaluate);
    evaluate.benchmarks = Some(vec!["bzip2".to_string()]);
    evaluate.runs = 4;
    corpus.push(evaluate.clone());

    let mut adaptive = evaluate.clone();
    adaptive.adaptive = Some(AdaptiveParams::default());
    corpus.push(adaptive);

    for (start, count) in [(0, 2), (2, 2)] {
        let mut shard = evaluate.clone();
        shard.shard = Some(ShardRange { start, count });
        corpus.push(shard);
    }

    corpus
}

#[test]
fn lookup_matches_naive_reference_on_the_e2e_cache_key_corpus() {
    let corpus = e2e_cache_key_corpus();
    assert!(corpus.len() >= 6, "corpus covers the e2e request shapes");
    for fleet_size in [1usize, 2, 3, 5] {
        let names = fleet(fleet_size);
        for vnodes in [1usize, 7, 64] {
            let ring = Ring::with_vnodes(&names, vnodes);
            for spec in &corpus {
                let key = cache_key(spec).hash;
                assert_eq!(
                    ring.lookup(key),
                    Some(naive_owner(&names, vnodes, key)),
                    "fleet={fleet_size} vnodes={vnodes} key={key:#034x}"
                );
            }
        }
    }
}
