//! Federation: scaling one sz-serve out to several.
//!
//! Every process speaks the same wire protocol; federation is purely
//! a routing layer in front of the local scheduler. Three roles:
//!
//! - **single** — the default standalone server; peers are ignored;
//! - **node** — a worker in someone else's federation: it serves
//!   `run_shard` requests and owns a slice of the consistent-hash
//!   cache keyspace, but never routes;
//! - **coordinator** — routes client work across a static peer list:
//!
//!   1. *Cache sharding.* A cacheable blocking `run` is routed to the
//!      peer that owns its FNV-1a-128 cache key on the [`Ring`]
//!      (after a local-cache probe, so merged results and repeats
//!      stay local). The peer's response lines are relayed verbatim.
//!      A dead peer degrades to local execution — correctness never
//!      depends on a peer being up — and counts a `forward_fallback`.
//!   2. *Run sharding.* A fixed-protocol `evaluate` is split with
//!      [`plan_shards`] into contiguous `run_shard` windows, one per
//!      peer, executed in parallel. Because run `i` of the stream
//!      always draws `seed_base + i`
//!      (`sz_harness::runner::stabilized_reports_range`), each shard
//!      is a bit-identical slice of the single-node record stream;
//!      [`merge_shard_results`] reassembles the full transcript and
//!      recomputes the summary through the *same* statistics code the
//!      single-node path uses, so the merged bytes are identical to a
//!      run that never left one machine. Any shard failure falls back
//!      to a full local run.
//!
//! Peer I/O blocks, so it never runs on an event-loop thread: the
//! coordinator hands each routed request to a small courier pool and
//! answers the client later through [`Completions`].

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use sz_harness::{Json, TraceSink};

use crate::cache::cache_key;
use crate::event_loop::{Completions, ConnToken};
use crate::exec::{evaluate_summary, evaluate_verdict_fields, fixed_outcome, JobOutput};
use crate::proto::{
    plan_shards, validate_shard_plan, Experiment, RunRequest, ShardRange, ShardResult,
};
use crate::ring::Ring;
use crate::scheduler::Scheduler;
use crate::server::{render_output, run_blocking};

/// Cap on one peer read or write. Generous — per-job `deadline_ms` is
/// the intended bound — but it guarantees a wedged peer cannot pin a
/// courier forever.
const PEER_IO_TIMEOUT: Duration = Duration::from_secs(600);

/// What this process is in the federation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Standalone server; any configured peers are ignored.
    Single,
    /// Worker: serves shards and its keyspace slice, never routes.
    Node,
    /// Router: shards cache lookups and run windows across peers.
    Coordinator,
}

impl Role {
    /// The `--role` flag spelling.
    pub fn name(self) -> &'static str {
        match self {
            Role::Single => "single",
            Role::Node => "node",
            Role::Coordinator => "coordinator",
        }
    }

    /// Parses a `--role` flag value.
    pub fn from_name(name: &str) -> Option<Role> {
        Some(match name {
            "single" => Role::Single,
            "node" => Role::Node,
            "coordinator" => Role::Coordinator,
            _ => return None,
        })
    }
}

/// Federation wiring for one server process.
#[derive(Debug, Clone)]
pub struct FederationConfig {
    /// This process's role.
    pub role: Role,
    /// Peer `host:port` addresses (workers, from the coordinator's
    /// point of view). Ignored unless the role is `coordinator`.
    pub peers: Vec<String>,
    /// Courier threads for blocking peer I/O.
    pub couriers: usize,
}

impl Default for FederationConfig {
    fn default() -> Self {
        FederationConfig {
            role: Role::Single,
            peers: Vec::new(),
            couriers: 4,
        }
    }
}

/// Routing counters, surfaced through the `stats` request.
#[derive(Debug, Default)]
pub struct FedStats {
    /// Requests routed to their ring-owner peer.
    pub forwarded: AtomicU64,
    /// Forwards that failed and ran locally instead.
    pub forward_fallbacks: AtomicU64,
    /// Evaluate requests fanned out as shard windows.
    pub shard_fanouts: AtomicU64,
    /// Fan-outs that failed and re-ran fully locally.
    pub shard_failovers: AtomicU64,
    /// Individual shards answered from a worker's cache.
    pub shard_cache_hits: AtomicU64,
}

fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

/// How the federation layer wants a `run` request handled.
pub enum Routed {
    /// Not ours: execute on the local scheduler.
    Local,
    /// Answered synchronously (coordinator-local cache hit).
    Reply(Vec<u8>),
    /// A courier owns the reply; it arrives via [`Completions`].
    Pending,
}

/// A coordinator's routing state: the ring, the peer list, and the
/// courier pool that does the blocking legwork.
pub struct Federation {
    role: Role,
    peers: Arc<Vec<String>>,
    ring: Ring,
    stats: Arc<FedStats>,
    couriers: Couriers,
}

impl Federation {
    /// Builds the routing state (and ring) for `config`.
    pub fn new(config: &FederationConfig) -> Federation {
        Federation {
            role: config.role,
            ring: Ring::new(&config.peers),
            peers: Arc::new(config.peers.clone()),
            stats: Arc::new(FedStats::default()),
            couriers: Couriers::new(config.couriers),
        }
    }

    /// The shared routing counters.
    pub fn stats(&self) -> Arc<FedStats> {
        Arc::clone(&self.stats)
    }

    /// Routing counters as a wire object (nested under `federation`
    /// in `stats` responses).
    pub fn stats_json(&self) -> Json {
        Json::obj([
            ("role", self.role.name().into()),
            ("peers", self.peers.len().into()),
            (
                "forwarded",
                self.stats.forwarded.load(Ordering::Relaxed).into(),
            ),
            (
                "forward_fallbacks",
                self.stats.forward_fallbacks.load(Ordering::Relaxed).into(),
            ),
            (
                "shard_fanouts",
                self.stats.shard_fanouts.load(Ordering::Relaxed).into(),
            ),
            (
                "shard_failovers",
                self.stats.shard_failovers.load(Ordering::Relaxed).into(),
            ),
            (
                "shard_cache_hits",
                self.stats.shard_cache_hits.load(Ordering::Relaxed).into(),
            ),
        ])
    }

    /// Decides where a `run` goes. Anything that must block (peer
    /// I/O, waiting on a local fallback) is moved to a courier; the
    /// event-loop thread only ever probes the local cache.
    pub fn route_run(
        &self,
        spec: &RunRequest,
        scheduler: &Arc<Scheduler>,
        completions: &Completions,
        token: ConnToken,
    ) -> Routed {
        if self.role != Role::Coordinator || self.ring.is_empty() {
            return Routed::Local;
        }
        // Non-blocking submissions poll a *local* job id; shards mean
        // this coordinator is itself being used as a worker.
        if !spec.wait || spec.shard.is_some() || !spec.experiment.cacheable() {
            return Routed::Local;
        }

        let key = cache_key(spec);
        if let Some(hit) = scheduler.cache_lookup(&key) {
            return Routed::Reply(render_output(
                spec.experiment.name(),
                &hit,
                true,
                None,
                spec.trace,
            ));
        }

        let shardable =
            spec.experiment == Experiment::Evaluate && spec.adaptive.is_none() && spec.runs >= 2;
        let spec = spec.clone();
        let scheduler = Arc::clone(scheduler);
        let completions = completions.clone();
        let stats = Arc::clone(&self.stats);
        let peers = Arc::clone(&self.peers);
        if shardable {
            bump(&stats.shard_fanouts);
            self.couriers.submit(Box::new(move || {
                let bytes = shard_fan_out(&spec, &peers, &scheduler, &stats);
                completions.send(token, bytes, false);
            }));
        } else {
            let owner = self
                .ring
                .lookup(key.hash)
                .expect("non-empty ring")
                .to_string();
            bump(&stats.forwarded);
            self.couriers.submit(Box::new(move || {
                let bytes = match forward_raw(&owner, &spec) {
                    Ok(bytes) => bytes,
                    Err(_) => {
                        // The owner is unreachable: run it here. The
                        // result is correct either way; only cache
                        // locality degrades.
                        bump(&stats.forward_fallbacks);
                        run_blocking(&spec, &scheduler)
                    }
                };
                completions.send(token, bytes, false);
            }));
        }
        Routed::Pending
    }
}

/// Splits the evaluate across the peers, collects `shard_result`
/// lines, and merges them; any failure re-runs the whole request on
/// the local scheduler.
fn shard_fan_out(
    spec: &RunRequest,
    peers: &[String],
    scheduler: &Arc<Scheduler>,
    stats: &Arc<FedStats>,
) -> Vec<u8> {
    let plan = plan_shards(spec.runs, peers.len());
    let results: Vec<Result<ShardResult, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = plan
            .iter()
            .zip(peers)
            .map(|(&shard, peer)| {
                let mut shard_spec = spec.clone();
                shard_spec.shard = Some(shard);
                shard_spec.trace = false;
                shard_spec.wait = true;
                scope.spawn(move || peer_shard(peer, &shard_spec))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("shard thread panicked".into()))
            })
            .collect()
    });

    let mut shards = Vec::with_capacity(results.len());
    for result in results {
        match result {
            Ok(shard) => {
                if shard.cached {
                    bump(&stats.shard_cache_hits);
                }
                shards.push(shard);
            }
            Err(_) => {
                bump(&stats.shard_failovers);
                return run_blocking(spec, scheduler);
            }
        }
    }
    match merge_shard_results(spec, &shards) {
        Ok(output) => {
            let output = Arc::new(output);
            scheduler.cache_insert(&cache_key(spec), Arc::clone(&output));
            render_output(spec.experiment.name(), &output, false, None, spec.trace)
        }
        Err(_) => {
            bump(&stats.shard_failovers);
            run_blocking(spec, scheduler)
        }
    }
}

/// Sends one `run_shard` to `peer` and reads its `shard_result`.
fn peer_shard(peer: &str, shard_spec: &RunRequest) -> Result<ShardResult, String> {
    let line = crate::proto::Request::Run(shard_spec.clone())
        .to_json()
        .to_string();
    let reply = peer_request(peer, &line)?;
    ShardResult::parse(&reply)
}

/// Forwards the request to its ring owner and relays every response
/// line verbatim (trace records included) through the terminal line.
fn forward_raw(peer: &str, spec: &RunRequest) -> Result<Vec<u8>, String> {
    let line = crate::proto::Request::Run(spec.clone())
        .to_json()
        .to_string();
    let stream = peer_connect(peer, &line)?;
    let mut reader = BufReader::new(stream);
    let mut bytes = Vec::new();
    loop {
        let mut response = String::new();
        let n = reader
            .read_line(&mut response)
            .map_err(|e| format!("peer {peer}: {e}"))?;
        if n == 0 {
            return Err(format!("peer {peer}: closed before a terminal line"));
        }
        bytes.extend_from_slice(response.as_bytes());
        let ty = Json::parse(&response)
            .ok()
            .and_then(|v| v.get("type").and_then(Json::as_str).map(str::to_string))
            .unwrap_or_default();
        if matches!(ty.as_str(), "result" | "rejected" | "error" | "accepted") {
            return Ok(bytes);
        }
    }
}

/// One request line in, one reply line out.
fn peer_request(peer: &str, line: &str) -> Result<String, String> {
    let stream = peer_connect(peer, line)?;
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    let n = reader
        .read_line(&mut reply)
        .map_err(|e| format!("peer {peer}: {e}"))?;
    if n == 0 {
        return Err(format!("peer {peer}: closed without replying"));
    }
    Ok(reply)
}

fn peer_connect(peer: &str, line: &str) -> Result<TcpStream, String> {
    let mut stream = TcpStream::connect(peer).map_err(|e| format!("peer {peer}: {e}"))?;
    let _ = stream.set_read_timeout(Some(PEER_IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(PEER_IO_TIMEOUT));
    stream
        .write_all(format!("{line}\n").as_bytes())
        .map_err(|e| format!("peer {peer}: {e}"))?;
    Ok(stream)
}

/// Builds the `shard_result` wire value for a completed `run_shard`
/// job: the trace splits at the `before_len` byte offset the executor
/// recorded, and the sample arrays come back out of the summary's
/// `to_bits` arrays.
///
/// # Errors
///
/// A summary that is not a shard summary (wrong experiment, missing
/// fields, or an offset outside the trace).
pub fn shard_result_from_output(output: &JobOutput, cached: bool) -> Result<ShardResult, String> {
    let s = &output.summary;
    let field_u64 = |name: &str| {
        s.get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("shard summary is missing \"{name}\""))
    };
    let benchmark = s
        .get("benchmark")
        .and_then(Json::as_str)
        .ok_or("shard summary is missing \"benchmark\"")?
        .to_string();
    let samples = |name: &str| -> Result<Vec<f64>, String> {
        s.get(name)
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("shard summary is missing \"{name}\""))?
            .iter()
            .map(|j| match j {
                Json::U64(bits) => Ok(f64::from_bits(*bits)),
                _ => Err(format!("\"{name}\" entries must be u64 sample bits")),
            })
            .collect()
    };
    let before_len = field_u64("before_len")? as usize;
    if before_len > output.trace.len() {
        return Err("shard summary \"before_len\" exceeds the trace".to_string());
    }
    Ok(ShardResult {
        shard: ShardRange {
            start: field_u64("shard_start")? as usize,
            count: field_u64("shard_count")? as usize,
        },
        benchmark,
        cached,
        before_trace: output.trace[..before_len].to_string(),
        after_trace: output.trace[before_len..].to_string(),
        before: samples("before_bits")?,
        after: samples("after_bits")?,
    })
}

/// Reassembles shard results into the output a single-node run of
/// `spec` would have produced, byte for byte: `before`-arm records in
/// shard order, then `after`-arm records, then the `verdict` summary
/// record recomputed from the concatenated samples through the same
/// statistics path ([`fixed_outcome`]) the local executor uses.
///
/// # Errors
///
/// Shards that do not tile `0..spec.runs` exactly, or that disagree
/// on the benchmark.
pub fn merge_shard_results(spec: &RunRequest, shards: &[ShardResult]) -> Result<JobOutput, String> {
    let mut ordered: Vec<&ShardResult> = shards.iter().collect();
    ordered.sort_by_key(|r| r.shard.start);
    let plan: Vec<ShardRange> = ordered.iter().map(|r| r.shard).collect();
    validate_shard_plan(&plan, spec.runs)?;
    let benchmark = ordered[0].benchmark.clone();
    if ordered.iter().any(|r| r.benchmark != benchmark) {
        return Err("shards disagree on the benchmark".to_string());
    }

    let mut before_s = Vec::with_capacity(spec.runs);
    let mut after_s = Vec::with_capacity(spec.runs);
    let mut trace = String::new();
    for shard in &ordered {
        before_s.extend_from_slice(&shard.before);
        trace.push_str(&shard.before_trace);
    }
    for shard in &ordered {
        after_s.extend_from_slice(&shard.after);
        trace.push_str(&shard.after_trace);
    }

    let outcome = fixed_outcome(before_s, after_s, spec.runs);
    let (sink, buffer) = TraceSink::in_memory();
    sink.summary_record("evaluate", evaluate_verdict_fields(&benchmark, &outcome));
    sink.flush();
    trace.push_str(&buffer.contents());

    let summary = evaluate_summary(
        &benchmark,
        &spec.before_opt,
        &spec.after_opt,
        &outcome,
        false,
    );
    Ok(JobOutput {
        trace,
        summary,
        samples_used: 2 * spec.runs as u64,
        samples_saved: 0,
    })
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A minimal fixed-size thread pool for blocking peer I/O. Queued
/// jobs drain in FIFO order; dropping the pool finishes what was
/// queued and joins the threads.
struct Couriers {
    tx: Option<mpsc::Sender<Job>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Couriers {
    fn new(count: usize) -> Couriers {
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..count.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || loop {
                    let job = {
                        let guard = rx.lock().expect("courier queue");
                        guard.recv()
                    };
                    match job {
                        Ok(job) => job(),
                        Err(_) => return,
                    }
                })
            })
            .collect();
        Couriers {
            tx: Some(tx),
            handles,
        }
    }

    fn submit(&self, job: Job) {
        if let Some(tx) = &self.tx {
            // A send can only fail if every courier died; run inline
            // rather than dropping the client's reply.
            if let Err(mpsc::SendError(job)) = tx.send(job) {
                job();
            }
        }
    }
}

impl Drop for Couriers {
    fn drop(&mut self) {
        self.tx = None;
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn role_names_round_trip() {
        for role in [Role::Single, Role::Node, Role::Coordinator] {
            assert_eq!(Role::from_name(role.name()), Some(role));
        }
        assert_eq!(Role::from_name("primary"), None);
    }

    fn evaluate_spec(runs: usize) -> RunRequest {
        let mut spec = RunRequest::quick(Experiment::Evaluate);
        spec.benchmarks = Some(vec!["gobmk".into()]);
        spec.runs = runs;
        spec
    }

    fn run(spec: &RunRequest) -> JobOutput {
        let cancel = AtomicBool::new(false);
        execute(spec, 1, &cancel, None).expect("job succeeds")
    }

    /// The tentpole's correctness claim at unit scope: executing the
    /// shards separately and merging reproduces the single-node
    /// output byte for byte.
    #[test]
    fn merged_shards_are_byte_identical_to_a_single_node_run() {
        let spec = evaluate_spec(5);
        let whole = run(&spec);

        let shards: Vec<ShardResult> = plan_shards(spec.runs, 2)
            .into_iter()
            .map(|shard| {
                let mut shard_spec = spec.clone();
                shard_spec.shard = Some(shard);
                shard_result_from_output(&run(&shard_spec), false).expect("shard summary")
            })
            .collect();
        assert_eq!(shards.len(), 2);
        let merged = merge_shard_results(&spec, &shards).expect("merge");
        assert_eq!(merged.trace, whole.trace, "trace bytes must match");
        assert_eq!(merged.summary, whole.summary);
        assert_eq!(merged.samples_used, whole.samples_used);
    }

    /// Merge order is by shard start, not arrival order.
    #[test]
    fn merge_sorts_shards_and_rejects_bad_tilings() {
        let spec = evaluate_spec(4);
        let whole = run(&spec);
        let mut shards: Vec<ShardResult> = plan_shards(spec.runs, 2)
            .into_iter()
            .map(|shard| {
                let mut shard_spec = spec.clone();
                shard_spec.shard = Some(shard);
                shard_result_from_output(&run(&shard_spec), false).expect("shard summary")
            })
            .collect();
        shards.reverse();
        let merged = merge_shard_results(&spec, &shards).expect("merge");
        assert_eq!(merged.trace, whole.trace);

        let err = merge_shard_results(&spec, &shards[1..]).expect_err("incomplete tiling");
        assert!(err.contains("covers"), "{err:?}");
    }

    #[test]
    fn shard_result_split_respects_before_len() {
        let spec = {
            let mut s = evaluate_spec(4);
            s.shard = Some(ShardRange { start: 1, count: 2 });
            s
        };
        let output = run(&spec);
        let shard = shard_result_from_output(&output, true).expect("shard summary");
        assert!(shard.cached);
        assert_eq!(shard.shard, ShardRange { start: 1, count: 2 });
        assert_eq!(
            format!("{}{}", shard.before_trace, shard.after_trace),
            output.trace
        );
        assert!(shard.before_trace.lines().count() >= 2);
        assert_eq!(shard.before.len(), 2);
        assert_eq!(shard.after.len(), 2);
    }
}
