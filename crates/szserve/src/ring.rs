//! Consistent hashing over the federation's peer list.
//!
//! Every cacheable request already has a 128-bit content address (the
//! FNV-1a hash the [`crate::cache`] module computes), and every node
//! computes bit-identical results, so *which* node owns a key is pure
//! policy: any stable assignment works, and consistent hashing keeps
//! the assignment stable when the fleet changes. Each peer is placed
//! on the ring at [`VNODES`] pseudo-random points (hashes of
//! `"{peer}\x1f{index}"`), and a key belongs to the peer owning the
//! first point clockwise from the key's own hash.
//!
//! Two properties the tests pin:
//!
//! - **order independence** — placement depends only on peer *names*,
//!   so reordering the configured peer list never remaps a key;
//! - **bounded churn** — removing one peer remaps only the keys that
//!   peer owned; every other key keeps its node.

use crate::cache::fnv1a_128;

/// Virtual nodes per peer. 64 points per peer keeps the expected load
/// imbalance across a small fleet within a few percent while the ring
/// stays tiny (a few KB per peer).
pub const VNODES: usize = 64;

/// An immutable consistent-hash ring over a set of node names.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(position, node index)`, sorted by position.
    points: Vec<(u128, u32)>,
    nodes: Vec<String>,
}

impl Ring {
    /// Builds a ring with [`VNODES`] virtual nodes per entry.
    /// Duplicate names are ignored after their first occurrence.
    pub fn new(nodes: &[String]) -> Ring {
        Ring::with_vnodes(nodes, VNODES)
    }

    /// [`Ring::new`] with an explicit virtual-node count (the property
    /// tests sweep it).
    pub fn with_vnodes(nodes: &[String], vnodes: usize) -> Ring {
        let mut uniq: Vec<String> = Vec::new();
        for n in nodes {
            if !uniq.iter().any(|u| u == n) {
                uniq.push(n.clone());
            }
        }
        let mut points = Vec::with_capacity(uniq.len() * vnodes);
        for (i, node) in uniq.iter().enumerate() {
            for v in 0..vnodes {
                points.push((placement(node, v), i as u32));
            }
        }
        // Positions alone decide the order; ties (astronomically rare
        // for 128-bit hashes) break by node name so the mapping never
        // depends on configuration order.
        points.sort_by(|a, b| {
            a.0.cmp(&b.0)
                .then_with(|| uniq[a.1 as usize].cmp(&uniq[b.1 as usize]))
        });
        Ring {
            points,
            nodes: uniq,
        }
    }

    /// Number of distinct nodes on the ring.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the ring has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node names, in first-seen configuration order.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// The node owning `key`: the first ring point at or clockwise
    /// after the key's position (wrapping). `None` on an empty ring.
    pub fn lookup(&self, key: u128) -> Option<&str> {
        if self.points.is_empty() {
            return None;
        }
        let position = key_position(key);
        let idx = self.points.partition_point(|&(p, _)| p < position);
        let (_, node) = self.points[if idx == self.points.len() { 0 } else { idx }];
        Some(&self.nodes[node as usize])
    }
}

/// A peer's `v`-th ring position. The unit separator keeps
/// `("ab", 1)` and `("a", "b1")`-style collisions impossible. Public
/// so the property tests can rebuild the circle with a naive scan.
pub fn placement(node: &str, v: usize) -> u128 {
    scramble(fnv1a_128(format!("{node}\u{1f}{v}").as_bytes()))
}

/// A key's position on the circle — what [`Ring::lookup`] compares
/// placements against.
pub fn key_position(key: u128) -> u128 {
    scramble(key)
}

/// Finalizes a hash into a ring position. FNV-1a's upper bits barely
/// avalanche on short inputs — two peers' vnode placements share long
/// hex prefixes and would occupy disjoint arcs, collapsing the ring
/// onto one node — so both placements and keys go through a
/// splitmix-style mix before they are compared as circle positions.
/// (The cache keeps the raw FNV hash: content addressing only needs
/// equality, not uniformity.)
fn scramble(x: u128) -> u128 {
    fn splitmix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let lo = splitmix(x as u64 ^ (x >> 64) as u64);
    let hi = splitmix((x >> 64) as u64 ^ lo);
    (u128::from(hi) << 64) | u128::from(lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 7000 + i)).collect()
    }

    #[test]
    fn lookup_wraps_and_covers_every_node() {
        let ring = Ring::new(&names(4));
        assert_eq!(ring.len(), 4);
        let mut seen = std::collections::HashSet::new();
        for i in 0..4096u32 {
            let key = fnv1a_128(&i.to_le_bytes());
            seen.insert(ring.lookup(key).unwrap().to_string());
        }
        assert_eq!(seen.len(), 4, "4096 keys must touch all 4 nodes");
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let ring = Ring::new(&[]);
        assert!(ring.is_empty());
        assert_eq!(ring.lookup(42), None);
    }

    #[test]
    fn duplicate_names_collapse() {
        let mut dup = names(3);
        dup.push(dup[0].clone());
        let ring = Ring::new(&dup);
        assert_eq!(ring.len(), 3);
    }

    #[test]
    fn load_is_roughly_balanced() {
        let ring = Ring::new(&names(4));
        let mut counts = std::collections::HashMap::new();
        let total = 16_384u32;
        for i in 0..total {
            let key = fnv1a_128(&i.to_le_bytes());
            *counts
                .entry(ring.lookup(key).unwrap().to_string())
                .or_insert(0u32) += 1;
        }
        for (node, count) in counts {
            let share = f64::from(count) / f64::from(total);
            assert!(
                (0.10..0.45).contains(&share),
                "{node} owns {share:.3} of the keyspace"
            );
        }
    }
}
