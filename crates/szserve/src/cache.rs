//! The content-addressed result cache.
//!
//! Experiment runs in this workspace are *deterministic*: for a given
//! (experiment, options, seed range, engine config, workload scale)
//! the sample vectors and per-period snapshots are bit-identical on
//! every machine and for every worker-thread count (pinned by
//! `tests/determinism.rs`). That turns caching from a heuristic into
//! an identity: a hit returns the exact bytes a cold run would
//! produce.
//!
//! ## Key canonicalization rules
//!
//! The key is a 128-bit FNV-1a hash of a canonical description string
//! built from, in order:
//!
//! 1. the experiment's wire name;
//! 2. the benchmark filter — `all`, or the requested names joined
//!    with `,` in request order (the suite itself is alphabetical, so
//!    distinct orders are distinct requests by design);
//! 3. the workload scale's wire name;
//! 4. `runs`, `seed_base`, and the re-randomization interval as the
//!    raw bits of its `f64` nanosecond value;
//! 5. the full machine configuration (`Debug` form of
//!    [`sz_machine::MachineConfig`] — every cache/TLB geometry, cost,
//!    and clock field);
//! 6. the layout-engine configuration (`Debug` form of
//!    [`stabilizer::Config`] with the per-run seed zeroed — the real
//!    seeds derive from `seed_base`, which is already in the key);
//! 7. for `evaluate`: the before/after optimization levels and the
//!    adaptive parameters (half-width bits, confidence bits, batch,
//!    min/max runs) or `fixed`.
//!
//! Excluded on purpose: `threads` (results are thread-invariant),
//! `trace` (tracing selects what is *streamed*, not what is
//! computed), `wait`, and `deadline_ms` (scheduling hints). The full
//! canonical string is stored alongside each entry and compared on
//! lookup, so a 128-bit hash collision degrades to a miss, never to a
//! wrong result.

use std::collections::HashMap;
use std::sync::Arc;

use sz_harness::Json;

use crate::exec::JobOutput;
use crate::proto::{scale_wire_name, Experiment, RunRequest};

/// A content-address: the hash used for lookup plus the canonical
/// string it was derived from (kept to rule out collisions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheKey {
    /// 128-bit FNV-1a of the canonical string.
    pub hash: u128,
    /// The canonical description the hash commits to.
    pub canonical: String,
    /// Whether this key addresses a federation shard (a `run_shard`
    /// window) rather than a full run — counted separately in stats.
    pub shard: bool,
}

impl CacheKey {
    /// The key as 32 lowercase hex digits (the wire representation).
    pub fn hex(&self) -> String {
        format!("{:032x}", self.hash)
    }
}

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013B;

/// 128-bit FNV-1a — the same hash the cache keys use. Public because
/// the federation's consistent-hash ring places peers and routes keys
/// with it ([`crate::ring`]).
pub fn fnv1a_128(bytes: &[u8]) -> u128 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u128::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Builds the content-address of a run request (see the module docs
/// for the canonicalization rules).
pub fn cache_key(spec: &RunRequest) -> CacheKey {
    let machine = sz_machine::MachineConfig::core_i3_550();
    let engine = stabilizer::Config::default().with_seed(0);
    let interval_bits = sz_machine::SimTime::from_millis(spec.interval_ms)
        .as_nanos()
        .to_bits();
    let benchmarks = match &spec.benchmarks {
        None => "all".to_string(),
        Some(names) => names.join(","),
    };
    let mode = match (&spec.experiment, &spec.adaptive) {
        (Experiment::Evaluate, Some(a)) => format!(
            "{}->{};adaptive{{hw={:016x},conf={:016x},batch={},min={},max={}}}",
            spec.before_opt,
            spec.after_opt,
            a.half_width.to_bits(),
            a.confidence.to_bits(),
            a.batch,
            a.min_runs,
            a.max_runs,
        ),
        (Experiment::Evaluate, None) => {
            format!("{}->{};fixed", spec.before_opt, spec.after_opt)
        }
        _ => "-".to_string(),
    };
    let mut canonical = format!(
        "experiment={};benchmarks={};scale={};runs={};seed_base={:#018x};interval_ns_bits={:016x};machine={:?};engine={:?};mode={}",
        spec.experiment.name(),
        benchmarks,
        scale_wire_name(spec.scale),
        spec.runs,
        spec.seed_base,
        interval_bits,
        machine,
        engine,
        mode,
    );
    // A shard is a distinct cacheable artifact: the same options with
    // a different window produce different (sub-)transcripts. Full
    // runs keep their exact pre-federation canonical form.
    if let Some(shard) = &spec.shard {
        canonical.push_str(&format!(";shard={}+{}", shard.start, shard.count));
    }
    CacheKey {
        hash: fnv1a_128(canonical.as_bytes()),
        canonical,
        shard: spec.shard.is_some(),
    }
}

struct Entry {
    canonical: String,
    value: Arc<JobOutput>,
    bytes: usize,
    last_used: u64,
}

/// Monotonic counters surfaced via the `stats` request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned a cached result.
    pub hits: u64,
    /// Lookups that found nothing (or a hash collision).
    pub misses: u64,
    /// Entries stored.
    pub insertions: u64,
    /// Entries displaced by the LRU byte budget.
    pub evictions: u64,
    /// Results too large to ever fit the budget, never stored.
    pub oversize_rejections: u64,
    /// Subset of `hits` that addressed federation shards.
    pub shard_hits: u64,
    /// Subset of `insertions` that stored federation shards.
    pub shard_insertions: u64,
    /// Live entries.
    pub entries: usize,
    /// Bytes currently held.
    pub bytes: usize,
    /// Configured byte budget.
    pub budget_bytes: usize,
}

/// An LRU result cache with a byte budget.
pub struct ResultCache {
    budget: usize,
    used: usize,
    clock: u64,
    map: HashMap<u128, Entry>,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
    oversize_rejections: u64,
    shard_hits: u64,
    shard_insertions: u64,
}

impl ResultCache {
    /// Creates a cache bounded to `budget` bytes of stored results.
    pub fn new(budget: usize) -> ResultCache {
        ResultCache {
            budget,
            used: 0,
            clock: 0,
            map: HashMap::new(),
            hits: 0,
            misses: 0,
            insertions: 0,
            evictions: 0,
            oversize_rejections: 0,
            shard_hits: 0,
            shard_insertions: 0,
        }
    }

    /// Looks up a key, bumping its recency on a hit. A hash match
    /// whose canonical string differs (a collision) counts as a miss.
    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<JobOutput>> {
        self.clock += 1;
        match self.map.get_mut(&key.hash) {
            Some(entry) if entry.canonical == key.canonical => {
                entry.last_used = self.clock;
                self.hits += 1;
                if key.shard {
                    self.shard_hits += 1;
                }
                Some(Arc::clone(&entry.value))
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a result, evicting least-recently-used entries until the
    /// byte budget holds. A result larger than the whole budget is
    /// rejected (and counted) rather than flushing the cache for a
    /// value that still cannot fit.
    pub fn insert(&mut self, key: &CacheKey, value: Arc<JobOutput>) {
        let bytes = value.byte_size() + key.canonical.len();
        if bytes > self.budget {
            self.oversize_rejections += 1;
            return;
        }
        self.clock += 1;
        if let Some(old) = self.map.remove(&key.hash) {
            self.used -= old.bytes;
        }
        while self.used + bytes > self.budget {
            let oldest = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(&h, _)| h)
                .expect("used > 0 implies a resident entry");
            let evicted = self.map.remove(&oldest).expect("key just observed");
            self.used -= evicted.bytes;
            self.evictions += 1;
        }
        self.used += bytes;
        self.insertions += 1;
        if key.shard {
            self.shard_insertions += 1;
        }
        self.map.insert(
            key.hash,
            Entry {
                canonical: key.canonical.clone(),
                value,
                bytes,
                last_used: self.clock,
            },
        );
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            insertions: self.insertions,
            evictions: self.evictions,
            oversize_rejections: self.oversize_rejections,
            shard_hits: self.shard_hits,
            shard_insertions: self.shard_insertions,
            entries: self.map.len(),
            bytes: self.used,
            budget_bytes: self.budget,
        }
    }

    /// Counters as a wire object for the `stats` response.
    pub fn stats_json(&self) -> Json {
        let s = self.stats();
        Json::obj([
            ("hits", s.hits.into()),
            ("misses", s.misses.into()),
            ("insertions", s.insertions.into()),
            ("evictions", s.evictions.into()),
            ("oversize_rejections", s.oversize_rejections.into()),
            ("shard_hits", s.shard_hits.into()),
            ("shard_insertions", s.shard_insertions.into()),
            ("entries", s.entries.into()),
            ("bytes", s.bytes.into()),
            ("budget_bytes", s.budget_bytes.into()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::AdaptiveParams;

    fn output(tag: &str, payload: usize) -> Arc<JobOutput> {
        Arc::new(JobOutput {
            trace: "x".repeat(payload),
            summary: Json::obj([("tag", tag.into())]),
            samples_used: 1,
            samples_saved: 0,
        })
    }

    #[test]
    fn key_ignores_scheduling_hints_but_not_options() {
        let base = RunRequest::quick(Experiment::Fig7);
        let mut hinted = base.clone();
        hinted.threads = Some(13);
        hinted.trace = true;
        hinted.wait = false;
        hinted.deadline_ms = Some(99);
        assert_eq!(cache_key(&base), cache_key(&hinted));

        for (label, tweak) in [
            ("runs", {
                let mut r = base.clone();
                r.runs = 7;
                r
            }),
            ("seed", {
                let mut r = base.clone();
                r.seed_base = 1;
                r
            }),
            ("scale", {
                let mut r = base.clone();
                r.scale = sz_workloads::Scale::Small;
                r
            }),
            ("benchmarks", {
                let mut r = base.clone();
                r.benchmarks = Some(vec!["mcf".into()]);
                r
            }),
            ("interval", {
                let mut r = base.clone();
                r.interval_ms = 0.004;
                r
            }),
            ("experiment", {
                let mut r = base.clone();
                r.experiment = Experiment::Table1;
                r
            }),
        ] {
            assert_ne!(cache_key(&base), cache_key(&tweak), "{label} must key");
        }
    }

    #[test]
    fn evaluate_mode_enters_the_key() {
        let fixed = RunRequest::quick(Experiment::Evaluate);
        let mut adaptive = fixed.clone();
        adaptive.adaptive = Some(AdaptiveParams::default());
        let mut tighter = adaptive.clone();
        tighter.adaptive.as_mut().unwrap().half_width = 0.01;
        let mut other_levels = fixed.clone();
        other_levels.after_opt = "O3".to_string();
        let keys = [
            cache_key(&fixed),
            cache_key(&adaptive),
            cache_key(&tighter),
            cache_key(&other_levels),
        ];
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j], "modes {i} and {j} collide");
            }
        }
    }

    #[test]
    fn shard_windows_key_separately_and_count_separately() {
        let full = RunRequest::quick(Experiment::Evaluate);
        let mut shard = full.clone();
        shard.shard = Some(crate::proto::ShardRange { start: 0, count: 3 });
        let mut other_window = full.clone();
        other_window.shard = Some(crate::proto::ShardRange { start: 3, count: 3 });

        let k_full = cache_key(&full);
        let k_shard = cache_key(&shard);
        let k_other = cache_key(&other_window);
        assert!(!k_full.shard);
        assert!(k_shard.shard && k_other.shard);
        assert_ne!(k_full, k_shard, "a window is not the full run");
        assert_ne!(k_shard, k_other, "distinct windows are distinct");
        assert!(k_shard.canonical.ends_with(";shard=0+3"));

        let mut cache = ResultCache::new(1 << 20);
        cache.insert(&k_shard, output("s", 64));
        cache.insert(&k_full, output("f", 64));
        assert!(cache.get(&k_shard).is_some());
        assert!(cache.get(&k_full).is_some());
        let s = cache.stats();
        assert_eq!((s.insertions, s.shard_insertions), (2, 1));
        assert_eq!((s.hits, s.shard_hits), (2, 1));
    }

    #[test]
    fn hit_returns_the_same_arc_and_counts() {
        let mut cache = ResultCache::new(1 << 20);
        let key = cache_key(&RunRequest::quick(Experiment::Table1));
        assert!(cache.get(&key).is_none());
        let value = output("a", 100);
        cache.insert(&key, Arc::clone(&value));
        let hit = cache.get(&key).expect("inserted");
        assert!(Arc::ptr_eq(&hit, &value), "hits share the stored bytes");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
        assert_eq!(s.entries, 1);
    }

    #[test]
    fn lru_eviction_respects_the_byte_budget_and_recency() {
        let mut reqs = Vec::new();
        for i in 0..3 {
            let mut r = RunRequest::quick(Experiment::Table1);
            r.seed_base = i;
            reqs.push(cache_key(&r));
        }
        // Seeds print fixed-width, so every entry costs the same; a
        // budget of 3.5 entries holds three but not four.
        let entry_cost = output("v", 700).byte_size() + reqs[0].canonical.len();
        let mut cache = ResultCache::new(3 * entry_cost + entry_cost / 2);
        for key in &reqs {
            cache.insert(key, output("v", 700));
        }
        assert_eq!(cache.stats().entries, 3);
        // Touch the oldest so the *middle* entry is now least recent.
        assert!(cache.get(&reqs[0]).is_some());
        let mut r = RunRequest::quick(Experiment::Table1);
        r.seed_base = 99;
        let newcomer = cache_key(&r);
        cache.insert(&newcomer, output("v", 700));
        assert!(cache.get(&reqs[1]).is_none(), "LRU entry was evicted");
        assert!(cache.get(&reqs[0]).is_some());
        assert!(cache.get(&reqs[2]).is_some());
        assert!(cache.get(&newcomer).is_some());
        let s = cache.stats();
        assert!(s.evictions >= 1);
        assert!(s.bytes <= s.budget_bytes);
    }

    #[test]
    fn oversize_results_are_rejected_not_thrashed() {
        let mut cache = ResultCache::new(500);
        let key = cache_key(&RunRequest::quick(Experiment::Table1));
        cache.insert(&key, output("big", 10_000));
        assert!(cache.get(&key).is_none());
        let s = cache.stats();
        assert_eq!(s.oversize_rejections, 1);
        assert_eq!(s.entries, 0);
    }

    #[test]
    fn reinsert_replaces_in_place() {
        let mut cache = ResultCache::new(10_000);
        let key = cache_key(&RunRequest::quick(Experiment::Table1));
        cache.insert(&key, output("one", 1_000));
        cache.insert(&key, output("two", 2_000));
        let s = cache.stats();
        assert_eq!(s.entries, 1);
        assert!(s.bytes < 4_000, "old bytes were released: {}", s.bytes);
        let hit = cache.get(&key).unwrap();
        assert_eq!(hit.trace.len(), 2_000);
    }
}
