//! The experiment service daemon (`sz-serve`) and its client library.
//!
//! Every paper artifact in this repository began life as a one-shot
//! `sz-bench` binary that recomputes its figures from scratch. This
//! crate turns the same experiment engine into a long-lived service:
//!
//! - [`proto`] — a line-delimited JSON wire protocol over TCP, parsed
//!   and encoded with [`sz_harness::report::Json`] (no new
//!   dependencies);
//! - [`scheduler`] — a bounded job queue over worker threads, with
//!   per-job deadlines, cancellation, and reject-with-retry-after
//!   backpressure so a flood of clients degrades gracefully;
//! - [`cache`] — a deterministic content-addressed result cache: runs
//!   are bit-identical for any thread count (pinned by
//!   `tests/determinism.rs`), so a hit can return the exact sample
//!   vectors and period snapshots of a prior computation;
//! - [`adaptive`] — adaptive sequential sampling: batches of
//!   re-randomized runs that stop early once the confidence interval
//!   on the effect size is narrower than a requested half-width
//!   (Kalibera & Jones' protocol), reporting samples saved vs the
//!   fixed 30-run paper methodology;
//! - [`server`] — the TCP daemon tying it together, plus the `szctl`
//!   client binary.
//!
//! # Example
//!
//! ```no_run
//! use sz_serve::server::{Server, ServerConfig};
//!
//! let server = Server::bind(ServerConfig::default()).unwrap();
//! println!("listening on {}", server.local_addr().unwrap());
//! server.serve(); // blocks until a shutdown request
//! ```

pub mod adaptive;
pub mod cache;
pub mod exec;
pub mod proto;
pub mod scheduler;
pub mod server;

pub use cache::{CacheKey, ResultCache};
pub use exec::JobOutput;
pub use proto::{AdaptiveParams, Experiment, Request, RunRequest, DEFAULT_ADDR};
pub use server::{Server, ServerConfig};
