//! The experiment service daemon (`sz-serve`) and its client library.
//!
//! Every paper artifact in this repository began life as a one-shot
//! `sz-bench` binary that recomputes its figures from scratch. This
//! crate turns the same experiment engine into a long-lived service:
//!
//! - [`proto`] — a line-delimited JSON wire protocol over TCP, parsed
//!   and encoded with [`sz_harness::report::Json`] (no new
//!   dependencies);
//! - [`scheduler`] — a bounded job queue over worker threads, with
//!   per-job deadlines, cancellation, and reject-with-retry-after
//!   backpressure so a flood of clients degrades gracefully;
//! - [`cache`] — a deterministic content-addressed result cache: runs
//!   are bit-identical for any thread count (pinned by
//!   `tests/determinism.rs`), so a hit can return the exact sample
//!   vectors and period snapshots of a prior computation;
//! - [`adaptive`] — adaptive sequential sampling: batches of
//!   re-randomized runs that stop early once the confidence interval
//!   on the effect size is narrower than a requested half-width
//!   (Kalibera & Jones' protocol), reporting samples saved vs the
//!   fixed 30-run paper methodology;
//! - [`event_loop`] — a hand-rolled readiness event loop over
//!   `poll(2)` (local `extern "C"`, still no new dependencies): a few
//!   threads multiplex tens of thousands of mostly-idle connections
//!   as nonblocking per-connection state machines, with a self-pipe
//!   for cross-thread wakeups instead of sleep-polling;
//! - [`ring`] — a consistent-hash ring over FNV-1a-128 cache keys for
//!   sharding the result cache across federated peers;
//! - [`federation`] — the `node` / `coordinator` roles: a coordinator
//!   routes cache lookups to ring owners and splits a run request
//!   into contiguous shard windows across workers, merging the JSONL
//!   streams back into a byte-identical single-node transcript;
//! - [`loadgen`] — a poll-driven open-loop load generator (the
//!   `loadgen` binary) that drives N concurrent clients and reports
//!   an HDR-style latency histogram;
//! - [`server`] — the TCP daemon tying it together, plus the `szctl`
//!   client binary.
//!
//! # Example
//!
//! ```no_run
//! use sz_serve::server::{Server, ServerConfig};
//!
//! let server = Server::bind(ServerConfig::default()).unwrap();
//! println!("listening on {}", server.local_addr().unwrap());
//! server.serve(); // blocks until a shutdown request
//! ```

pub mod adaptive;
pub mod cache;
pub mod event_loop;
pub mod exec;
pub mod federation;
pub mod loadgen;
pub mod proto;
pub mod ring;
pub mod scheduler;
pub mod server;

pub use cache::{CacheKey, ResultCache};
pub use exec::JobOutput;
pub use federation::{FederationConfig, Role};
pub use proto::{AdaptiveParams, Experiment, Request, RunRequest, ShardRange, DEFAULT_ADDR};
pub use ring::Ring;
pub use server::{Server, ServerConfig};
