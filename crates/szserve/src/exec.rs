//! Request execution: one [`RunRequest`] in, one [`JobOutput`] out.
//!
//! Every experiment is executed through the same `run_traced` entry
//! points the `sz-bench` binaries use, with an in-memory
//! [`TraceSink`] capturing the per-run records. The captured JSONL is
//! the unit of caching: it embeds the full sample vectors and
//! per-period counter snapshots, so replaying it from the cache is
//! observationally identical to a cold run.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use sz_harness::experiments::{anova, bias, fig5, fig6, fig7, nist, table1};
use sz_harness::runner::{stabilized_reports, stabilized_reports_range, ExperimentOptions};
use sz_harness::{Json, TraceSink};
use sz_machine::{MachineConfig, SimTime};
use sz_opt::{optimize, OptLevel};
use sz_stats::{mean, welch_t_test, ALPHA};
use sz_vm::RunReport;

use crate::adaptive::{adaptive_evaluate, outcome_json, AdaptiveOutcome};
use crate::proto::{Experiment, RunRequest, ShardRange};

/// Why a job did not produce a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The job's cancellation flag was set.
    Cancelled,
    /// The job's deadline passed before it could finish.
    Deadline,
    /// The request was executable in principle but failed.
    Failed(String),
}

impl ExecError {
    /// Wire string for `status` / `result` lines.
    pub fn reason(&self) -> String {
        match self {
            ExecError::Cancelled => "cancelled".to_string(),
            ExecError::Deadline => "deadline exceeded".to_string(),
            ExecError::Failed(msg) => msg.clone(),
        }
    }
}

/// A job's cancellation flag and deadline, checked together at every
/// interruption point.
#[derive(Clone, Copy)]
pub struct JobCtl<'a> {
    /// Set by `cancel` requests and scheduler shutdown.
    pub cancel: &'a AtomicBool,
    /// Absolute cutoff, fixed when the worker dequeues the job.
    pub deadline: Option<Instant>,
}

impl JobCtl<'_> {
    /// Fails fast when the job was cancelled or its deadline passed.
    ///
    /// # Errors
    ///
    /// [`ExecError::Cancelled`] / [`ExecError::Deadline`].
    pub fn checkpoint(&self) -> Result<(), ExecError> {
        if self.cancel.load(Ordering::SeqCst) {
            return Err(ExecError::Cancelled);
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(ExecError::Deadline);
        }
        Ok(())
    }
}

/// The product of one executed job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutput {
    /// Captured JSONL trace: every `run` record (sample + period
    /// snapshots) plus the experiment's `summary` records.
    pub trace: String,
    /// Experiment-level result fields for the `result` line.
    pub summary: Json,
    /// Benchmark executions performed.
    pub samples_used: u64,
    /// Executions avoided by adaptive stopping (0 elsewhere).
    pub samples_saved: u64,
}

impl JobOutput {
    /// Approximate resident size, for the cache's byte budget.
    pub fn byte_size(&self) -> usize {
        self.trace.len() + self.summary.to_string().len() + 64
    }
}

/// Builds the harness options for a request. `threads` is the
/// server-side worker count (already resolved from the request hint).
pub fn options(spec: &RunRequest, threads: usize) -> ExperimentOptions {
    ExperimentOptions {
        scale: spec.scale,
        runs: spec.runs,
        machine: MachineConfig::core_i3_550(),
        interval: SimTime::from_millis(spec.interval_ms),
        seed_base: spec.seed_base,
        threads,
        benchmarks: spec.benchmarks.clone(),
    }
}

fn opt_level(name: &str) -> Result<OptLevel, ExecError> {
    Ok(match name {
        "O0" => OptLevel::O0,
        "O1" => OptLevel::O1,
        "O2" => OptLevel::O2,
        "O3" => OptLevel::O3,
        other => return Err(ExecError::Failed(format!("unknown opt level {other:?}"))),
    })
}

/// Executes one request to completion on the calling thread.
///
/// Cancellation and deadlines are honored at the boundaries the
/// execution layer controls: before starting, between an `evaluate`
/// job's sampling batches, between a `bias` job's benchmarks, and in
/// 5 ms slices of `selftest-sleep`. A monolithic experiment call
/// (`table1`, `fig6`, …) that is already running completes and is
/// then discarded if it was cancelled meanwhile.
///
/// # Errors
///
/// [`ExecError`] on cancellation, deadline expiry, or a request that
/// names no usable benchmarks.
pub fn execute(
    spec: &RunRequest,
    threads: usize,
    cancel: &AtomicBool,
    deadline: Option<Instant>,
) -> Result<JobOutput, ExecError> {
    let ctl = JobCtl { cancel, deadline };
    ctl.checkpoint()?;
    let opts = options(spec, threads);
    let (sink, buffer) = TraceSink::in_memory();
    let suite_len = opts.selected_suite().len();
    if suite_len == 0
        && !matches!(
            spec.experiment,
            Experiment::Nist | Experiment::SelftestSleep
        )
    {
        return Err(ExecError::Failed(
            "benchmark filter matched nothing".to_string(),
        ));
    }

    let runs = spec.runs as u64;
    let (summary, samples_used, samples_saved) = match spec.experiment {
        Experiment::Table1 => {
            let rows = table1::run_traced(&opts, Some(&sink));
            let s = table1::summarize(&rows);
            (
                Json::obj([
                    ("benchmarks", s.total.into()),
                    ("non_normal_one_time", s.non_normal_one_time.into()),
                    ("non_normal_rerandomized", s.non_normal_rerandomized.into()),
                    ("variance_changed", s.variance_changed.into()),
                ]),
                2 * runs * rows.len() as u64,
                0,
            )
        }
        Experiment::Fig5 => {
            let rows = table1::run_traced(&opts, Some(&sink));
            let panels = fig5::from_table1_traced(&rows, Some(&sink));
            (
                Json::obj([("panels", panels.len().into())]),
                2 * runs * rows.len() as u64,
                0,
            )
        }
        Experiment::Fig6 => {
            let result = fig6::run_traced(&opts, Some(&sink));
            (
                Json::obj([
                    ("benchmarks", result.rows.len().into()),
                    ("median_full_overhead", result.median_full_overhead.into()),
                ]),
                // One randomized-link baseline plus three stabilized
                // configurations per benchmark.
                4 * runs * result.rows.len() as u64,
                0,
            )
        }
        Experiment::Fig7 => {
            let rows = fig7::run_traced(&opts, Some(&sink));
            let s = fig7::summarize(&rows);
            (
                Json::obj([
                    ("benchmarks", s.total.into()),
                    ("significant_o2", s.significant_o2.into()),
                    ("significant_o3", s.significant_o3.into()),
                    ("regressions_o2", s.regressions_o2.into()),
                    ("regressions_o3", s.regressions_o3.into()),
                ]),
                3 * runs * rows.len() as u64,
                0,
            )
        }
        Experiment::Anova => {
            let rows = fig7::run_traced(&opts, Some(&sink));
            let result = anova::run_traced(&rows, Some(&sink))
                .map_err(|e| ExecError::Failed(format!("anova needs >= 2 benchmarks: {e}")))?;
            (
                Json::obj([
                    ("benchmarks", rows.len().into()),
                    ("o2_vs_o1_p", result.o2_vs_o1.p_value.into()),
                    ("o3_vs_o2_p", result.o3_vs_o2.p_value.into()),
                ]),
                3 * runs * rows.len() as u64,
                0,
            )
        }
        Experiment::Nist => {
            let draws = match spec.scale {
                sz_workloads::Scale::Tiny => 2_048,
                sz_workloads::Scale::Small => 8_192,
                sz_workloads::Scale::Full => 65_536,
            };
            let rows = nist::run_traced(draws, &[2, 16, 64, 256], Some(&sink));
            let sources = Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("source", r.source.as_str().into()),
                            ("passes", r.passes().into()),
                            ("tests", r.results.len().into()),
                        ])
                    })
                    .collect(),
            );
            (
                Json::obj([("draws", draws.into()), ("sources", sources)]),
                draws as u64,
                0,
            )
        }
        Experiment::Bias => {
            let mut sweeps = Vec::new();
            let n = spec.runs.max(4);
            for bench_spec in opts.selected_suite() {
                ctl.checkpoint()?;
                let link = bias::link_order_sweep_traced(&opts, bench_spec.name, n, Some(&sink));
                let env = bias::env_size_sweep_traced(&opts, bench_spec.name, n, Some(&sink));
                sweeps.push(Json::obj([
                    ("benchmark", bench_spec.name.into()),
                    ("link_order_swing", link.swing.into()),
                    ("env_size_swing", env.swing.into()),
                ]));
            }
            let used = 2 * n as u64 * suite_len as u64;
            (Json::obj([("sweeps", Json::Arr(sweeps))]), used, 0)
        }
        Experiment::Evaluate => {
            if let Some(shard) = spec.shard {
                return execute_shard(spec, &opts, &ctl, &sink, &buffer, shard);
            }
            return evaluate(spec, &opts, &ctl, &sink, &buffer);
        }
        Experiment::SelftestSleep => {
            let start = Instant::now();
            while (start.elapsed().as_millis() as u64) < spec.sleep_ms {
                ctl.checkpoint()?;
                std::thread::sleep(std::time::Duration::from_millis(
                    5.min(spec.sleep_ms - start.elapsed().as_millis() as u64)
                        .max(1),
                ));
            }
            sink.summary_record("selftest-sleep", vec![("slept_ms", spec.sleep_ms.into())]);
            (Json::obj([("slept_ms", spec.sleep_ms.into())]), 0, 0)
        }
    };
    // A monolithic experiment that was cancelled while running still
    // completed; honor the cancellation by discarding its result.
    ctl.checkpoint()?;
    sink.flush();
    Ok(JobOutput {
        trace: buffer.contents(),
        summary,
        samples_used,
        samples_saved,
    })
}

/// The single benchmark an `evaluate` (or `run_shard`) targets, plus
/// its before/after optimized programs.
fn evaluate_programs(
    spec: &RunRequest,
    opts: &ExperimentOptions,
) -> Result<(&'static str, sz_ir::Program, sz_ir::Program), ExecError> {
    let suite = opts.selected_suite();
    let bench_spec = suite
        .first()
        .ok_or_else(|| ExecError::Failed("evaluate needs a benchmark".to_string()))?;
    if suite.len() > 1 {
        return Err(ExecError::Failed(
            "evaluate takes exactly one benchmark".to_string(),
        ));
    }
    let base = bench_spec.program(opts.scale);
    let before = optimize(&base, opt_level(&spec.before_opt)?);
    let after = optimize(&base, opt_level(&spec.after_opt)?);
    Ok((bench_spec.name, before, after))
}

fn evaluate(
    spec: &RunRequest,
    opts: &ExperimentOptions,
    ctl: &JobCtl<'_>,
    sink: &TraceSink,
    buffer: &sz_harness::TraceBuffer,
) -> Result<JobOutput, ExecError> {
    let (benchmark, before, after) = evaluate_programs(spec, opts)?;

    let (outcome, adaptive) = match &spec.adaptive {
        Some(params) => (
            adaptive_evaluate(&before, &after, opts, params, benchmark, ctl, Some(sink))?,
            true,
        ),
        None => (
            fixed_evaluate(&before, &after, opts, benchmark, ctl, sink)?,
            false,
        ),
    };

    let summary = evaluate_summary(
        benchmark,
        &spec.before_opt,
        &spec.after_opt,
        &outcome,
        adaptive,
    );
    sink.summary_record("evaluate", evaluate_verdict_fields(benchmark, &outcome));
    sink.flush();
    Ok(JobOutput {
        trace: buffer.contents(),
        summary,
        samples_used: 2 * outcome.samples_per_arm as u64,
        samples_saved: if adaptive {
            outcome.samples_saved() as u64
        } else {
            0
        },
    })
}

/// The `result` line's summary object for an evaluate outcome. Public
/// so the federation coordinator can rebuild the exact object from
/// merged shard samples.
pub fn evaluate_summary(
    benchmark: &str,
    before_opt: &str,
    after_opt: &str,
    outcome: &AdaptiveOutcome,
    adaptive: bool,
) -> Json {
    let mut summary_fields = vec![
        ("benchmark".to_string(), Json::from(benchmark)),
        ("before".to_string(), before_opt.into()),
        ("after".to_string(), after_opt.into()),
    ];
    if let Json::Obj(fields) = outcome_json(outcome, adaptive) {
        summary_fields.extend(fields);
    }
    Json::Obj(summary_fields)
}

/// The fields of the trailing `verdict` summary trace record. Public
/// for the same reason as [`evaluate_summary`]: the coordinator's
/// merged transcript must end with a byte-identical record.
pub fn evaluate_verdict_fields<'a>(
    benchmark: &'a str,
    outcome: &AdaptiveOutcome,
) -> Vec<(&'a str, Json)> {
    vec![
        ("benchmark", benchmark.into()),
        ("event", "verdict".into()),
        ("significant", outcome.significant.into()),
        ("p_value", outcome.p_value.into()),
        ("speedup", outcome.speedup.into()),
        ("samples_per_arm", outcome.samples_per_arm.into()),
        (
            "practical",
            outcome
                .verdict
                .as_ref()
                .map_or("no-verdict", |r| r.verdict.as_str())
                .into(),
        ),
    ]
}

/// Derives the fixed-protocol outcome from complete sample arms.
/// Shared by the in-process path and the coordinator's shard merge:
/// both feed the same numbers through the same statistics, so the
/// resulting summaries are bit-identical.
pub fn fixed_outcome(before_s: Vec<f64>, after_s: Vec<f64>, runs: usize) -> AdaptiveOutcome {
    let p_value = welch_t_test(&before_s, &after_s).map_or(1.0, |t| t.p_value);
    let rel = sz_stats::diff_ci(&after_s, &before_s, 0.95)
        .map(|ci| ci.relative_margin(mean(&before_s)))
        .unwrap_or(f64::INFINITY);
    let verdict = sz_stats::judge(&before_s, &after_s, &sz_stats::VerdictConfig::default()).ok();
    AdaptiveOutcome {
        samples_per_arm: runs,
        max_runs: runs,
        stopped_early: false,
        relative_half_width: rel,
        p_value,
        significant: p_value < ALPHA,
        speedup: mean(&before_s) / mean(&after_s),
        verdict,
        before: before_s,
        after: after_s,
    }
}

fn fixed_evaluate(
    before: &sz_ir::Program,
    after: &sz_ir::Program,
    opts: &ExperimentOptions,
    benchmark: &str,
    ctl: &JobCtl<'_>,
    sink: &TraceSink,
) -> Result<AdaptiveOutcome, ExecError> {
    let mut arms: Vec<Vec<f64>> = Vec::new();
    for (program, variant) in [(before, "before"), (after, "after")] {
        ctl.checkpoint()?;
        let reports = stabilized_reports(program, opts, stabilizer::Config::default(), opts.runs);
        sink.run_records("evaluate", benchmark, variant, &reports);
        arms.push(reports.iter().map(RunReport::seconds).collect());
    }
    let after_s = arms.pop().expect("two arms");
    let before_s = arms.pop().expect("two arms");
    Ok(fixed_outcome(before_s, after_s, opts.runs))
}

/// Executes one `run_shard`: the window `shard` of a fixed-protocol
/// evaluate. Run `i` of the stream always draws `seed_base + i`, so
/// the records this produces are byte-identical to the corresponding
/// slice of a full single-node run's transcript.
///
/// The trace holds the `before` arm's records followed by the
/// `after` arm's; `summary` carries the byte offset of the split
/// (`before_len`) plus the raw sample bits, which is everything the
/// front end needs to build the `shard_result` wire line.
fn execute_shard(
    spec: &RunRequest,
    opts: &ExperimentOptions,
    ctl: &JobCtl<'_>,
    sink: &TraceSink,
    buffer: &sz_harness::TraceBuffer,
    shard: ShardRange,
) -> Result<JobOutput, ExecError> {
    if spec.adaptive.is_some() {
        return Err(ExecError::Failed(
            "run_shard cannot be adaptive".to_string(),
        ));
    }
    if shard.count == 0 || shard.start + shard.count > spec.runs {
        return Err(ExecError::Failed(format!(
            "bad shard range {}+{} for runs={}",
            shard.start, shard.count, spec.runs
        )));
    }
    let (benchmark, before, after) = evaluate_programs(spec, opts)?;

    let mut before_len = 0usize;
    let mut arms: Vec<Vec<f64>> = Vec::new();
    for (program, variant) in [(&before, "before"), (&after, "after")] {
        ctl.checkpoint()?;
        let reports = stabilized_reports_range(
            program,
            opts,
            stabilizer::Config::default(),
            shard.start,
            shard.count,
        );
        for (i, report) in reports.iter().enumerate() {
            sink.run_record("evaluate", benchmark, variant, shard.start + i, report);
        }
        arms.push(reports.iter().map(RunReport::seconds).collect());
        if variant == "before" {
            sink.flush();
            before_len = buffer.contents().len();
        }
    }
    let after_s = arms.pop().expect("two arms");
    let before_s = arms.pop().expect("two arms");
    let bits = |samples: &[f64]| Json::Arr(samples.iter().map(|s| s.to_bits().into()).collect());
    let summary = Json::obj([
        ("benchmark", benchmark.into()),
        ("shard_start", shard.start.into()),
        ("shard_count", shard.count.into()),
        ("before_len", before_len.into()),
        ("before_bits", bits(&before_s)),
        ("after_bits", bits(&after_s)),
    ]);
    ctl.checkpoint()?;
    sink.flush();
    Ok(JobOutput {
        trace: buffer.contents(),
        summary,
        samples_used: 2 * shard.count as u64,
        samples_saved: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::cache_key;

    fn run(spec: &RunRequest) -> JobOutput {
        let cancel = AtomicBool::new(false);
        execute(spec, 2, &cancel, None).expect("job succeeds")
    }

    fn quick(experiment: Experiment) -> RunRequest {
        let mut spec = RunRequest::quick(experiment);
        spec.benchmarks = Some(vec!["bzip2".into()]);
        spec.runs = 4;
        spec
    }

    #[test]
    fn table1_produces_run_records_and_a_summary() {
        let out = run(&quick(Experiment::Table1));
        assert!(out.trace.contains(r#""type":"run""#));
        assert!(out.trace.contains(r#""variant":"rerandomized""#));
        assert_eq!(out.summary.get("benchmarks").unwrap().as_u64(), Some(1));
        assert_eq!(out.samples_used, 8);
    }

    #[test]
    fn execution_is_deterministic_and_thread_invariant() {
        let spec = quick(Experiment::Table1);
        let cancel = AtomicBool::new(false);
        let a = execute(&spec, 1, &cancel, None).unwrap();
        let b = execute(&spec, 4, &cancel, None).unwrap();
        assert_eq!(a.trace, b.trace, "threads must not change the bytes");
        assert_eq!(a.summary, b.summary);
        // This equality is what makes cache hits exact, and the key
        // deliberately omits the thread count.
        assert_eq!(cache_key(&spec), cache_key(&spec));
    }

    #[test]
    fn empty_benchmark_filter_is_an_error() {
        let mut spec = quick(Experiment::Fig7);
        spec.benchmarks = Some(vec!["no-such-benchmark".into()]);
        let cancel = AtomicBool::new(false);
        let err = execute(&spec, 2, &cancel, None).unwrap_err();
        assert!(matches!(err, ExecError::Failed(_)));
    }

    #[test]
    fn evaluate_fixed_mode_reports_a_verdict() {
        let mut spec = quick(Experiment::Evaluate);
        spec.benchmarks = Some(vec!["gobmk".into()]);
        spec.runs = 6;
        let out = run(&spec);
        assert_eq!(out.summary.get("mode").unwrap().as_str(), Some("fixed"));
        assert!(out.summary.get("p_value").unwrap().as_f64().is_some());
        let practical = out.summary.get("practical").expect("practical verdict");
        assert!(practical.get("verdict").unwrap().as_str().is_some());
        assert!(practical.get("effect_lo").unwrap().as_f64().is_some());
        assert!(out.trace.contains(r#""practical":"#));
        assert_eq!(out.samples_used, 12);
        assert_eq!(out.samples_saved, 0);
        assert!(out.trace.contains(r#""variant":"before""#));
        assert!(out.trace.contains(r#""variant":"after""#));
    }

    #[test]
    fn selftest_sleep_is_cancellable() {
        let mut spec = RunRequest::quick(Experiment::SelftestSleep);
        spec.sleep_ms = 10_000;
        let cancel = AtomicBool::new(true);
        let err = execute(&spec, 1, &cancel, None).unwrap_err();
        assert_eq!(err, ExecError::Cancelled);
    }
}
