//! The TCP front end: line-delimited JSON requests in, line-delimited
//! JSON records out.
//!
//! Each accepted connection is handled on its own thread; each request
//! line produces one or more response lines. Traced `run` responses
//! stream the job's captured records (`type: "run"` / `"summary"`) —
//! byte-identical to an `sz-bench --trace` file — followed by exactly
//! one terminal line whose `type` is `result`, `accepted`, `rejected`,
//! or `error`. Clients read until they see a terminal line.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sz_harness::Json;

use crate::exec::JobOutput;
use crate::proto::{Request, RunRequest, DEFAULT_ADDR};
use crate::scheduler::{JobState, Scheduler, SchedulerConfig, SubmitOutcome};

/// How long a `wait: true` request may block before the connection
/// gives up and degrades to an `accepted` line. Generous on purpose:
/// per-job deadlines (`deadline_ms`) are the intended bound.
const WAIT_CAP: Duration = Duration::from_secs(600);

/// Server sizing and bind address.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:7457` (port 0 for ephemeral).
    pub addr: String,
    /// Scheduler sizing.
    pub scheduler: SchedulerConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: DEFAULT_ADDR.to_string(),
            scheduler: SchedulerConfig::default(),
        }
    }
}

/// A bound experiment server, not yet serving.
pub struct Server {
    listener: TcpListener,
    scheduler: Arc<Scheduler>,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Binds the listener and starts the scheduler's workers.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            scheduler: Arc::new(Scheduler::new(config.scheduler)),
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (resolves ephemeral ports).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that makes `serve` return from another thread.
    pub fn stop_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Accepts connections until a `shutdown` request (or the stop
    /// handle) fires, then drains the scheduler and returns.
    ///
    /// # Errors
    ///
    /// Propagates unexpected accept failures.
    pub fn serve(&self) -> std::io::Result<()> {
        let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.stop.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let scheduler = Arc::clone(&self.scheduler);
                    let stop = Arc::clone(&self.stop);
                    connections.push(std::thread::spawn(move || {
                        handle_connection(stream, &scheduler, &stop);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
            connections.retain(|handle| !handle.is_finished());
        }
        for handle in connections {
            let _ = handle.join();
        }
        self.scheduler.shutdown();
        Ok(())
    }
}

fn handle_connection(stream: TcpStream, scheduler: &Scheduler, stop: &AtomicBool) {
    let Ok(peer_reader) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(peer_reader);
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else {
            return;
        };
        if line.trim().is_empty() {
            continue;
        }
        let done = match Request::parse(&line) {
            Ok(request) => respond(request, scheduler, stop, &mut writer),
            Err(message) => {
                write_line(
                    &mut writer,
                    &Json::obj([("type", "error".into()), ("message", message.into())]),
                );
                false
            }
        };
        if writer.flush().is_err() || done {
            return;
        }
    }
}

/// Handles one request; returns true when the connection should close.
fn respond(
    request: Request,
    scheduler: &Scheduler,
    stop: &AtomicBool,
    writer: &mut impl Write,
) -> bool {
    match request {
        Request::Run(spec) => {
            respond_run(spec, scheduler, writer);
            false
        }
        Request::Status { job } => {
            let line = match scheduler.status(job) {
                None => Json::obj([
                    ("type", "status".into()),
                    ("job", job.into()),
                    ("state", "unknown".into()),
                ]),
                Some(state) => {
                    let mut fields = vec![
                        ("type".to_string(), Json::from("status")),
                        ("job".to_string(), job.into()),
                        ("state".to_string(), state.name().into()),
                    ];
                    if let JobState::Failed(err) = &state {
                        fields.push(("reason".to_string(), err.reason().into()));
                    }
                    Json::Obj(fields)
                }
            };
            write_line(writer, &line);
            false
        }
        Request::Cancel { job } => {
            let ok = scheduler.cancel(job);
            write_line(
                writer,
                &Json::obj([
                    ("type", "cancelled".into()),
                    ("job", job.into()),
                    ("ok", ok.into()),
                ]),
            );
            false
        }
        Request::Stats => {
            let mut fields = vec![("type".to_string(), Json::from("stats"))];
            if let Json::Obj(stats) = scheduler.stats_json() {
                fields.extend(stats);
            }
            write_line(writer, &Json::Obj(fields));
            false
        }
        Request::Shutdown => {
            write_line(writer, &Json::obj([("type", "shutdown".into())]));
            stop.store(true, Ordering::SeqCst);
            true
        }
    }
}

fn respond_run(spec: RunRequest, scheduler: &Scheduler, writer: &mut impl Write) {
    let wants_trace = spec.trace;
    let wait = spec.wait;
    let experiment = spec.experiment.name();
    match scheduler.submit(spec) {
        SubmitOutcome::Cached(output) => {
            emit_output(writer, experiment, &output, true, None, wants_trace);
        }
        SubmitOutcome::Rejected { retry_after_ms } => {
            write_line(
                writer,
                &Json::obj([
                    ("type", "rejected".into()),
                    ("retry_after_ms", retry_after_ms.into()),
                ]),
            );
        }
        SubmitOutcome::Accepted(id) => {
            if !wait {
                write_line(
                    writer,
                    &Json::obj([("type", "accepted".into()), ("job", id.into())]),
                );
                return;
            }
            match scheduler.wait(id, WAIT_CAP) {
                Some(JobState::Done(output)) => {
                    emit_output(writer, experiment, &output, false, Some(id), wants_trace);
                }
                Some(JobState::Failed(err)) => {
                    write_line(
                        writer,
                        &Json::obj([
                            ("type", "error".into()),
                            ("job", id.into()),
                            ("message", err.reason().into()),
                        ]),
                    );
                }
                _ => {
                    write_line(
                        writer,
                        &Json::obj([("type", "accepted".into()), ("job", id.into())]),
                    );
                }
            }
        }
    }
}

fn emit_output(
    writer: &mut impl Write,
    experiment: &str,
    output: &JobOutput,
    cached: bool,
    job: Option<u64>,
    wants_trace: bool,
) {
    if wants_trace {
        // The captured trace is already line-delimited JSON; relay it
        // byte-for-byte so cached and fresh responses are identical.
        let _ = writer.write_all(output.trace.as_bytes());
    }
    let mut fields = vec![
        ("type".to_string(), Json::from("result")),
        ("experiment".to_string(), experiment.into()),
        ("cached".to_string(), cached.into()),
        ("samples_used".to_string(), output.samples_used.into()),
        ("samples_saved".to_string(), output.samples_saved.into()),
        ("summary".to_string(), output.summary.clone()),
    ];
    if let Some(id) = job {
        fields.insert(1, ("job".to_string(), id.into()));
    }
    write_line(writer, &Json::Obj(fields));
}

fn write_line(writer: &mut impl Write, value: &Json) {
    let _ = writeln!(writer, "{value}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spawn_server() -> (SocketAddr, std::thread::JoinHandle<()>) {
        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            scheduler: SchedulerConfig {
                workers: 1,
                queue_capacity: 4,
                exec_threads: 1,
                cache_budget: 4 << 20,
            },
        })
        .expect("bind ephemeral");
        let addr = server.local_addr().expect("local addr");
        let handle = std::thread::spawn(move || server.serve().expect("serve"));
        (addr, handle)
    }

    fn roundtrip(addr: SocketAddr, lines: &[String]) -> Vec<Json> {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
        let mut reader = BufReader::new(stream);
        let mut responses = Vec::new();
        for line in lines {
            writeln!(writer, "{line}").expect("send");
            writer.flush().expect("flush");
            loop {
                let mut response = String::new();
                if reader.read_line(&mut response).expect("recv") == 0 {
                    return responses;
                }
                let value = Json::parse(&response).expect("well-formed response");
                let ty = value.get("type").and_then(Json::as_str).unwrap_or("");
                let terminal = matches!(
                    ty,
                    "result"
                        | "accepted"
                        | "rejected"
                        | "error"
                        | "status"
                        | "cancelled"
                        | "stats"
                        | "shutdown"
                );
                responses.push(value);
                if terminal {
                    break;
                }
            }
        }
        responses
    }

    #[test]
    fn malformed_lines_get_an_error_response() {
        let (addr, handle) = spawn_server();
        let responses = roundtrip(
            addr,
            &[
                "this is not json".to_string(),
                r#"{"type":"shutdown"}"#.to_string(),
            ],
        );
        assert_eq!(responses[0].get("type").unwrap().as_str(), Some("error"));
        assert_eq!(responses[1].get("type").unwrap().as_str(), Some("shutdown"));
        handle.join().expect("server exits cleanly");
    }

    #[test]
    fn stats_and_status_respond_on_a_fresh_server() {
        let (addr, handle) = spawn_server();
        let responses = roundtrip(
            addr,
            &[
                r#"{"type":"stats"}"#.to_string(),
                r#"{"type":"status","job":42}"#.to_string(),
                r#"{"type":"shutdown"}"#.to_string(),
            ],
        );
        assert_eq!(responses[0].get("type").unwrap().as_str(), Some("stats"));
        assert_eq!(responses[0].get("queue_depth").unwrap().as_u64(), Some(0));
        assert_eq!(responses[1].get("state").unwrap().as_str(), Some("unknown"));
        handle.join().expect("server exits cleanly");
    }
}
