//! The TCP front end: line-delimited JSON requests in, line-delimited
//! JSON records out.
//!
//! Connections are multiplexed by the [`event_loop`] pool — a few
//! threads holding every client — rather than one thread per
//! connection. Each request line produces one or more response lines.
//! Traced `run` responses stream the job's captured records (`type:
//! "run"` / `"summary"`) — byte-identical to an `sz-bench --trace`
//! file — followed by exactly one terminal line whose `type` is
//! `result`, `accepted`, `rejected`, or `error`. Clients read until
//! they see a terminal line.
//!
//! A blocking `run` no longer parks a thread: the connection's reply
//! is registered as a *pending wait* and the scheduler's settle
//! notifier pushes the result through [`Completions`] when the job
//! finishes. An event-loop thread therefore never blocks on a job —
//! it only parses, submits, and moves on to the next ready socket.
//!
//! With a [`FederationConfig`] naming peers, the same front end also
//! serves the `coordinator` / `node` roles (see [`crate::federation`]).
//!
//! [`event_loop`]: crate::event_loop

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use sz_harness::Json;
use sz_sentinel::{Sentinel, SentinelConfig};

use crate::event_loop::{Completions, ConnHandler, ConnToken, EventLoops, LineOutcome, NetStats};
use crate::exec::JobOutput;
use crate::federation::{shard_result_from_output, Federation, FederationConfig, Routed};
use crate::proto::{Request, RunRequest, DEFAULT_ADDR};
use crate::scheduler::{JobState, Scheduler, SchedulerConfig, SubmitOutcome};

/// How long a `wait: true` request may stay pending before the server
/// degrades it to an `accepted` line (the job keeps running; the
/// client can poll). Generous on purpose: per-job deadlines
/// (`deadline_ms`) are the intended bound.
pub(crate) const WAIT_CAP: Duration = Duration::from_secs(600);

/// Server sizing and bind address.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:7457` (port 0 for ephemeral).
    pub addr: String,
    /// Scheduler sizing.
    pub scheduler: SchedulerConfig,
    /// Event-loop threads multiplexing the connections.
    pub loops: usize,
    /// Federation role and peer list.
    pub federation: FederationConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: DEFAULT_ADDR.to_string(),
            scheduler: SchedulerConfig::default(),
            loops: 2,
            federation: FederationConfig::default(),
        }
    }
}

/// A bound experiment server, not yet serving.
pub struct Server {
    listener: TcpListener,
    scheduler: Arc<Scheduler>,
    stop: Arc<AtomicBool>,
    loops: EventLoops,
    handler: Arc<ServeHandler>,
}

impl Server {
    /// Binds the listener, starts the scheduler's workers, and wires
    /// the settle notifier to the event loops.
    ///
    /// # Errors
    ///
    /// Propagates the bind or self-pipe failure.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let stop = Arc::new(AtomicBool::new(false));
        let loops = EventLoops::new(config.loops, Arc::clone(&stop))?;
        let scheduler = Arc::new(Scheduler::new(config.scheduler));
        let handler = Arc::new(ServeHandler {
            scheduler: Arc::clone(&scheduler),
            completions: loops.completions(),
            net: loops.net_stats(),
            federation: Federation::new(&config.federation),
            waits: Mutex::new(HashMap::new()),
            watch: Mutex::new(WatchState {
                sentinel: Sentinel::new(SentinelConfig::default()),
                watchers: Vec::new(),
                alerts_emitted: 0,
            }),
            stop: Arc::clone(&stop),
        });
        // The notifier holds a Weak so a dropped server tears down
        // cleanly: scheduler -> notifier -> handler -> scheduler would
        // otherwise be a strong cycle.
        let weak = Arc::downgrade(&handler);
        scheduler.set_notifier(Arc::new(move |id| {
            if let Some(handler) = weak.upgrade() {
                handler.try_complete(id);
                handler.feed_sentinel(id);
            }
        }));
        Ok(Server {
            listener,
            scheduler,
            stop,
            loops,
            handler,
        })
    }

    /// The bound address (resolves ephemeral ports).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that makes `serve` return from another thread (within
    /// one poll timeout, without waiting on idle clients).
    pub fn stop_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Runs the event loops until a `shutdown` request (or the stop
    /// handle) fires, then drains the scheduler and returns. Every
    /// open connection — idle ones included — is flushed best-effort
    /// and closed on the way out.
    ///
    /// # Errors
    ///
    /// Propagates listener setup failures; per-connection I/O errors
    /// are counted in the stats, never returned.
    pub fn serve(&self) -> std::io::Result<()> {
        let handler: Arc<dyn ConnHandler> = Arc::clone(&self.handler) as Arc<dyn ConnHandler>;
        self.loops.run(&self.listener, &handler)?;
        self.scheduler.shutdown();
        Ok(())
    }
}

/// A connection whose `run` reply is waiting on a scheduler job.
struct Waiter {
    token: ConnToken,
    experiment: &'static str,
    wants_trace: bool,
    /// Reply with a `shard_result` line instead of a `result` line.
    shard: bool,
    /// When to degrade to an `accepted` line ([`WAIT_CAP`]).
    deadline: Instant,
}

/// The per-request brain the event loops call into. Never blocks:
/// long work lives on scheduler workers or federation couriers, and
/// replies come back through [`Completions`].
struct ServeHandler {
    scheduler: Arc<Scheduler>,
    completions: Completions,
    net: Arc<NetStats>,
    federation: Federation,
    waits: Mutex<HashMap<u64, Waiter>>,
    watch: Mutex<WatchState>,
    stop: Arc<AtomicBool>,
}

/// The regression sentinel riding on the job stream, plus its
/// subscribers. The event loop has no connection-close hook, so the
/// watcher list is append-only: [`Completions::send`] to a closed
/// token is a silent no-op and tokens are never reused, which makes
/// stale entries harmless (they cost one dropped send per alert).
struct WatchState {
    sentinel: Sentinel,
    watchers: Vec<ConnToken>,
    alerts_emitted: u64,
}

impl ServeHandler {
    fn respond_run(&self, token: ConnToken, spec: RunRequest) -> LineOutcome {
        match self
            .federation
            .route_run(&spec, &self.scheduler, &self.completions, token)
        {
            Routed::Reply(bytes) => return LineOutcome::Reply(bytes),
            Routed::Pending => return LineOutcome::Pending,
            Routed::Local => {}
        }

        let shard = spec.shard.is_some();
        // Shard replies embed their trace chunks in the shard_result
        // line; streaming records as well would duplicate them.
        let wants_trace = spec.trace && !shard;
        let wait = spec.wait;
        let experiment = spec.experiment.name();
        match self.scheduler.submit(spec) {
            SubmitOutcome::Cached(output) => LineOutcome::Reply(if shard {
                render_shard_reply(&output, true)
            } else {
                render_output(experiment, &output, true, None, wants_trace)
            }),
            SubmitOutcome::Rejected { retry_after_ms } => {
                LineOutcome::Reply(render_rejected(retry_after_ms))
            }
            SubmitOutcome::Accepted(id) => {
                if !wait {
                    return LineOutcome::Reply(render_accepted(id));
                }
                self.waits.lock().expect("wait registry").insert(
                    id,
                    Waiter {
                        token,
                        experiment,
                        wants_trace,
                        shard,
                        deadline: Instant::now() + WAIT_CAP,
                    },
                );
                // The job may have settled before the waiter was
                // registered (the notifier fires on the worker
                // thread); re-check so the reply cannot be lost.
                if self
                    .scheduler
                    .status(id)
                    .is_some_and(|s| matches!(s, JobState::Done(_) | JobState::Failed(_)))
                {
                    self.try_complete(id);
                }
                LineOutcome::Pending
            }
        }
    }

    /// Completes the pending wait for `id`, if any. Called from the
    /// scheduler's settle notifier and from the register-time
    /// re-check; the registry lock makes the removal idempotent.
    fn try_complete(&self, id: u64) {
        let (waiter, state) = {
            let mut waits = self.waits.lock().expect("wait registry");
            if !waits.contains_key(&id) {
                return;
            }
            match self.scheduler.status(id) {
                Some(state @ (JobState::Done(_) | JobState::Failed(_))) => {
                    (waits.remove(&id).expect("checked above"), state)
                }
                _ => return,
            }
        };
        let bytes = match state {
            JobState::Done(output) => {
                if waiter.shard {
                    render_shard_reply(&output, false)
                } else {
                    render_output(
                        waiter.experiment,
                        &output,
                        false,
                        Some(id),
                        waiter.wants_trace,
                    )
                }
            }
            JobState::Failed(err) => render_error(Some(id), &err.reason()),
            _ => unreachable!("settled above"),
        };
        self.completions.send(waiter.token, bytes, false);
    }

    /// Feeds a settled job's captured trace through the sentinel and
    /// pushes any resulting alert lines to every watcher. Called from
    /// the settle notifier, which fires exactly once per settle —
    /// cache hits answer without settling, so no result is ever
    /// ingested twice.
    fn feed_sentinel(&self, id: u64) {
        let Some(JobState::Done(output)) = self.scheduler.status(id) else {
            return;
        };
        if output.trace.is_empty() {
            return;
        }
        let mut bytes = Vec::new();
        let mut state = self.watch.lock().expect("watch state");
        for line in output.trace.lines() {
            // Server-captured traces are machine-written; a line the
            // sentinel rejects (e.g. an embedded non-run payload) is
            // skipped rather than poisoning the feed.
            let Ok(alerts) = state.sentinel.ingest_line(line) else {
                continue;
            };
            for alert in alerts {
                state.alerts_emitted += 1;
                bytes.extend_from_slice(&render_line(&alert));
            }
        }
        if bytes.is_empty() {
            return;
        }
        let watchers = state.watchers.clone();
        drop(state);
        for token in watchers {
            self.completions.send(token, bytes.clone(), false);
        }
    }

    fn respond_watch(&self, token: ConnToken) -> LineOutcome {
        let mut state = self.watch.lock().expect("watch state");
        state.watchers.push(token);
        let ack = Json::obj([
            ("type", "watch_ack".into()),
            ("watchers", state.watchers.len().into()),
            ("runs_seen", state.sentinel.runs_seen().into()),
            ("alerts_emitted", state.alerts_emitted.into()),
        ]);
        LineOutcome::Reply(render_line(&ack))
    }

    fn respond_stats(&self) -> Vec<u8> {
        let mut fields = vec![("type".to_string(), Json::from("stats"))];
        if let Json::Obj(stats) = self.scheduler.stats_json() {
            fields.extend(stats);
        }
        {
            let watch = self.watch.lock().expect("watch state");
            fields.push(("watchers".to_string(), watch.watchers.len().into()));
            fields.push((
                "sentinel_runs".to_string(),
                watch.sentinel.runs_seen().into(),
            ));
            fields.push(("sentinel_alerts".to_string(), watch.alerts_emitted.into()));
        }
        // Connection-level failures used to vanish: a try_clone error
        // dropped the connection silently and final-flush errors were
        // ignored. Now they are counted and visible.
        for (name, counter) in [
            ("connections_accepted", &self.net.accepted),
            ("connections_open", &self.net.open),
            ("conn_errors", &self.net.conn_errors),
            ("write_errors", &self.net.write_errors),
        ] {
            fields.push((name.to_string(), counter.load(Ordering::Relaxed).into()));
        }
        fields.push(("federation".to_string(), self.federation.stats_json()));
        render_line(&Json::Obj(fields))
    }
}

impl ConnHandler for ServeHandler {
    fn on_line(&self, token: ConnToken, line: &str) -> LineOutcome {
        let request = match Request::parse(line) {
            Ok(request) => request,
            Err(message) => {
                return LineOutcome::Reply(render_line(&Json::obj([
                    ("type", "error".into()),
                    ("message", message.into()),
                ])));
            }
        };
        match request {
            Request::Run(spec) => self.respond_run(token, spec),
            Request::Status { job } => {
                let line = match self.scheduler.status(job) {
                    None => Json::obj([
                        ("type", "status".into()),
                        ("job", job.into()),
                        ("state", "unknown".into()),
                    ]),
                    Some(state) => {
                        let mut fields = vec![
                            ("type".to_string(), Json::from("status")),
                            ("job".to_string(), job.into()),
                            ("state".to_string(), state.name().into()),
                        ];
                        if let JobState::Failed(err) = &state {
                            fields.push(("reason".to_string(), err.reason().into()));
                        }
                        Json::Obj(fields)
                    }
                };
                LineOutcome::Reply(render_line(&line))
            }
            Request::Cancel { job } => {
                let ok = self.scheduler.cancel(job);
                LineOutcome::Reply(render_line(&Json::obj([
                    ("type", "cancelled".into()),
                    ("job", job.into()),
                    ("ok", ok.into()),
                ])))
            }
            Request::Stats => LineOutcome::Reply(self.respond_stats()),
            Request::Watch => self.respond_watch(token),
            Request::Shutdown => {
                self.stop.store(true, Ordering::SeqCst);
                self.completions.wake_all();
                LineOutcome::ReplyAndClose(render_line(&Json::obj([("type", "shutdown".into())])))
            }
        }
    }

    /// Sweeps pending waits past [`WAIT_CAP`], degrading each to an
    /// `accepted` line so the connection is never wedged forever.
    fn tick(&self) {
        let now = Instant::now();
        let expired: Vec<(u64, ConnToken)> = {
            let mut waits = self.waits.lock().expect("wait registry");
            let ids: Vec<u64> = waits
                .iter()
                .filter(|(_, w)| w.deadline <= now)
                .map(|(&id, _)| id)
                .collect();
            ids.into_iter()
                .map(|id| {
                    let waiter = waits.remove(&id).expect("listed above");
                    (id, waiter.token)
                })
                .collect()
        };
        for (id, token) in expired {
            self.completions.send(token, render_accepted(id), false);
        }
    }
}

pub(crate) fn render_line(value: &Json) -> Vec<u8> {
    format!("{value}\n").into_bytes()
}

pub(crate) fn render_accepted(id: u64) -> Vec<u8> {
    render_line(&Json::obj([
        ("type", "accepted".into()),
        ("job", id.into()),
    ]))
}

pub(crate) fn render_rejected(retry_after_ms: u64) -> Vec<u8> {
    render_line(&Json::obj([
        ("type", "rejected".into()),
        ("retry_after_ms", retry_after_ms.into()),
    ]))
}

pub(crate) fn render_error(job: Option<u64>, message: &str) -> Vec<u8> {
    let mut fields = vec![("type".to_string(), Json::from("error"))];
    if let Some(id) = job {
        fields.push(("job".to_string(), id.into()));
    }
    fields.push(("message".to_string(), message.into()));
    render_line(&Json::Obj(fields))
}

/// The bytes of a completed `run` reply: optional trace records (the
/// captured JSONL is relayed byte-for-byte, so cached and fresh
/// responses are identical) followed by the terminal `result` line.
pub(crate) fn render_output(
    experiment: &str,
    output: &JobOutput,
    cached: bool,
    job: Option<u64>,
    wants_trace: bool,
) -> Vec<u8> {
    let mut bytes = Vec::new();
    if wants_trace {
        bytes.extend_from_slice(output.trace.as_bytes());
    }
    let mut fields = vec![
        ("type".to_string(), Json::from("result")),
        ("experiment".to_string(), experiment.into()),
        ("cached".to_string(), cached.into()),
        ("samples_used".to_string(), output.samples_used.into()),
        ("samples_saved".to_string(), output.samples_saved.into()),
        ("summary".to_string(), output.summary.clone()),
    ];
    if let Some(id) = job {
        fields.insert(1, ("job".to_string(), id.into()));
    }
    bytes.extend_from_slice(&render_line(&Json::Obj(fields)));
    bytes
}

/// The bytes of a `run_shard` reply: one `shard_result` line.
pub(crate) fn render_shard_reply(output: &JobOutput, cached: bool) -> Vec<u8> {
    match shard_result_from_output(output, cached) {
        Ok(shard) => render_line(&shard.to_json()),
        Err(message) => render_error(None, &message),
    }
}

/// Executes a `run` to completion on the calling thread — the
/// federation couriers' local-fallback path, where blocking is fine.
pub(crate) fn run_blocking(spec: &RunRequest, scheduler: &Arc<Scheduler>) -> Vec<u8> {
    let wants_trace = spec.trace;
    let experiment = spec.experiment.name();
    match scheduler.submit(spec.clone()) {
        SubmitOutcome::Cached(output) => {
            render_output(experiment, &output, true, None, wants_trace)
        }
        SubmitOutcome::Rejected { retry_after_ms } => render_rejected(retry_after_ms),
        SubmitOutcome::Accepted(id) => match scheduler.wait(id, WAIT_CAP) {
            Some(JobState::Done(output)) => {
                render_output(experiment, &output, false, Some(id), wants_trace)
            }
            Some(JobState::Failed(err)) => render_error(Some(id), &err.reason()),
            _ => render_accepted(id),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, BufWriter, Write};
    use std::net::TcpStream;

    fn spawn_server() -> (SocketAddr, std::thread::JoinHandle<()>) {
        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            scheduler: SchedulerConfig {
                workers: 1,
                queue_capacity: 4,
                exec_threads: 1,
                cache_budget: 4 << 20,
            },
            loops: 2,
            federation: FederationConfig::default(),
        })
        .expect("bind ephemeral");
        let addr = server.local_addr().expect("local addr");
        let handle = std::thread::spawn(move || server.serve().expect("serve"));
        (addr, handle)
    }

    fn roundtrip(addr: SocketAddr, lines: &[String]) -> Vec<Json> {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
        let mut reader = BufReader::new(stream);
        let mut responses = Vec::new();
        for line in lines {
            writeln!(writer, "{line}").expect("send");
            writer.flush().expect("flush");
            loop {
                let mut response = String::new();
                if reader.read_line(&mut response).expect("recv") == 0 {
                    return responses;
                }
                let value = Json::parse(&response).expect("well-formed response");
                let ty = value.get("type").and_then(Json::as_str).unwrap_or("");
                let terminal = matches!(
                    ty,
                    "result"
                        | "accepted"
                        | "rejected"
                        | "error"
                        | "status"
                        | "cancelled"
                        | "stats"
                        | "shutdown"
                        | "shard_result"
                );
                responses.push(value);
                if terminal {
                    break;
                }
            }
        }
        responses
    }

    #[test]
    fn malformed_lines_get_an_error_response() {
        let (addr, handle) = spawn_server();
        let responses = roundtrip(
            addr,
            &[
                "this is not json".to_string(),
                r#"{"type":"shutdown"}"#.to_string(),
            ],
        );
        assert_eq!(responses[0].get("type").unwrap().as_str(), Some("error"));
        assert_eq!(responses[1].get("type").unwrap().as_str(), Some("shutdown"));
        handle.join().expect("server exits cleanly");
    }

    #[test]
    fn stats_and_status_respond_on_a_fresh_server() {
        let (addr, handle) = spawn_server();
        let responses = roundtrip(
            addr,
            &[
                r#"{"type":"stats"}"#.to_string(),
                r#"{"type":"status","job":42}"#.to_string(),
                r#"{"type":"shutdown"}"#.to_string(),
            ],
        );
        assert_eq!(responses[0].get("type").unwrap().as_str(), Some("stats"));
        assert_eq!(responses[0].get("queue_depth").unwrap().as_u64(), Some(0));
        // Satellite: connection-error counters are first-class stats.
        assert_eq!(responses[0].get("conn_errors").unwrap().as_u64(), Some(0));
        assert_eq!(responses[0].get("write_errors").unwrap().as_u64(), Some(0));
        let federation = responses[0].get("federation").expect("federation stats");
        assert_eq!(federation.get("role").unwrap().as_str(), Some("single"));
        assert_eq!(responses[1].get("state").unwrap().as_str(), Some("unknown"));
        handle.join().expect("server exits cleanly");
    }

    #[test]
    fn watch_acks_and_stats_count_watchers() {
        let (addr, handle) = spawn_server();
        // A dedicated watch connection: one request, one ack line,
        // then the socket only ever receives pushed alerts.
        let stream = TcpStream::connect(addr).expect("connect");
        let mut writer = BufWriter::new(stream.try_clone().expect("clone"));
        let mut reader = BufReader::new(stream);
        writeln!(writer, r#"{{"type":"watch"}}"#).expect("send");
        writer.flush().expect("flush");
        let mut ack = String::new();
        reader.read_line(&mut ack).expect("recv ack");
        let ack = Json::parse(&ack).expect("well-formed ack");
        assert_eq!(ack.get("type").unwrap().as_str(), Some("watch_ack"));
        assert_eq!(ack.get("watchers").unwrap().as_u64(), Some(1));
        assert_eq!(ack.get("alerts_emitted").unwrap().as_u64(), Some(0));

        // The sentinel sees completed jobs even with no trace flag on
        // the request, and stats reflect both watcher and feed counts.
        let responses = roundtrip(
            addr,
            &[
                r#"{"type":"run","experiment":"selftest-sleep","sleep_ms":1}"#.to_string(),
                r#"{"type":"stats"}"#.to_string(),
                r#"{"type":"shutdown"}"#.to_string(),
            ],
        );
        assert_eq!(responses[0].get("type").unwrap().as_str(), Some("result"));
        let stats = &responses[1];
        assert_eq!(stats.get("watchers").unwrap().as_u64(), Some(1));
        assert!(stats.get("sentinel_runs").is_some());
        assert_eq!(stats.get("sentinel_alerts").unwrap().as_u64(), Some(0));
        handle.join().expect("server exits cleanly");
    }

    #[test]
    fn run_shard_replies_with_a_shard_result_line() {
        let (addr, handle) = spawn_server();
        let responses = roundtrip(
            addr,
            &[
                r#"{"type":"run_shard","experiment":"evaluate","benchmarks":["gobmk"],"runs":4,"shard_start":1,"shard_count":2}"#
                    .to_string(),
                r#"{"type":"shutdown"}"#.to_string(),
            ],
        );
        let shard = &responses[0];
        assert_eq!(shard.get("type").unwrap().as_str(), Some("shard_result"));
        assert_eq!(shard.get("shard_start").unwrap().as_u64(), Some(1));
        assert_eq!(shard.get("shard_count").unwrap().as_u64(), Some(2));
        assert_eq!(shard.get("before_bits").unwrap().as_arr().unwrap().len(), 2);
        handle.join().expect("server exits cleanly");
    }
}
