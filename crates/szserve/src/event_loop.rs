//! A hand-rolled, std-only readiness event loop over `poll(2)`.
//!
//! The PR-5 front end spent one OS thread per connection and woke
//! every 10 ms to check the stop flag. That shape cannot hold tens of
//! thousands of mostly-idle clients: each costs a stack, and shutdown
//! must wait for whichever blocking `read` happens to return last. An
//! idle client that never sent a line could park its handler thread
//! forever and hang `serve()` in `join()`.
//!
//! This module replaces that with a small fixed pool of event-loop
//! threads, each multiplexing its share of connections through
//! `poll(2)` (declared locally via `extern "C"` — libc is already
//! linked by std, so no new crates):
//!
//! - the listener is nonblocking and owned by loop 0; accepted
//!   connections are distributed round-robin to the other loops
//!   through an inbox + self-pipe wakeup;
//! - each connection is a tiny state machine: a line-buffered read
//!   buffer and a backpressure-aware write buffer that registers
//!   `POLLOUT` only while bytes are pending;
//! - cross-thread signals (new connections, async reply completions,
//!   shutdown) arrive via a **self-pipe**: the sender enqueues, then
//!   writes one byte to the loop's pipe only if no wakeup is already
//!   pending, so wakeups coalesce and the pipe can never fill;
//! - on stop, every loop attempts one final flush of each connection
//!   and closes it — including idle ones that never sent a byte — so
//!   shutdown completes without waiting on silent clients.
//!
//! Replies that cannot be produced synchronously (a `run` with
//! `wait: true` that queued a job, or a request forwarded to a
//! federation peer) return [`LineOutcome::Pending`]; the connection
//! defers any further input lines until the owner pushes the reply
//! through [`Completions::send`], preserving the one-reply-per-line
//! ordering of the old thread-per-connection front end.

use std::collections::{HashMap, VecDeque};
use std::fs::File;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, FromRawFd};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Local declarations of the two libc entry points the loop needs.
/// std already links libc; declaring them here avoids a crate
/// dependency while staying on the stable ABI.
pub mod ffi {
    /// `struct pollfd` from `<poll.h>` (identical layout on every
    /// platform this repo targets).
    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct PollFd {
        /// File descriptor to poll (negative entries are ignored).
        pub fd: i32,
        /// Requested events.
        pub events: i16,
        /// Returned events.
        pub revents: i16,
    }

    /// Data may be read without blocking.
    pub const POLLIN: i16 = 0x001;
    /// Data may be written without blocking.
    pub const POLLOUT: i16 = 0x004;
    /// Error condition (always polled implicitly).
    pub const POLLERR: i16 = 0x008;
    /// Peer hung up (always polled implicitly).
    pub const POLLHUP: i16 = 0x010;
    /// Invalid descriptor.
    pub const POLLNVAL: i16 = 0x020;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
        fn pipe(fds: *mut i32) -> i32;
    }

    /// Safe wrapper over `poll(2)`: waits up to `timeout_ms` for an
    /// event on any entry, returning the ready count (or -1, in which
    /// case `std::io::Error::last_os_error()` holds the cause).
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> i32 {
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // correctly laid-out pollfd structs, and nfds matches its
        // length.
        unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) }
    }

    /// Safe wrapper over `pipe(2)`: returns `(read_fd, write_fd)`.
    pub fn make_pipe() -> std::io::Result<(i32, i32)> {
        let mut fds = [0i32; 2];
        // SAFETY: `fds` is a valid 2-element out buffer.
        if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok((fds[0], fds[1]))
    }
}

/// The largest request line a connection may send (1 MiB). Longer
/// lines close the connection and count a `conn_error` — nothing in
/// the protocol comes close to this.
const MAX_LINE: usize = 1 << 20;

/// Upper bound on one poll cycle, bounding how stale the periodic
/// [`ConnHandler::tick`] sweep (wait deadlines) can get. Loops under
/// load never sleep this long — readiness and self-pipe wakeups cut
/// the wait short.
const POLL_TIMEOUT_MS: i32 = 100;

/// A connection's identity: which loop owns it and a per-loop id that
/// is never reused, so a completion for a connection that already
/// went away is silently dropped instead of reaching a newcomer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConnToken {
    /// Index of the owning event loop.
    pub loop_idx: u32,
    /// Monotonic per-loop connection id.
    pub conn_id: u64,
}

/// What the handler wants done with one request line.
pub enum LineOutcome {
    /// Append these bytes to the write buffer and keep reading.
    Reply(Vec<u8>),
    /// Reply, then close once the write buffer drains.
    ReplyAndClose(Vec<u8>),
    /// The reply arrives later via [`Completions::send`]; defer any
    /// further lines from this connection until it does.
    Pending,
}

/// The server-side brain the loop calls into. Implementations must be
/// cheap and non-blocking: anything slow belongs on a worker or
/// courier thread, completing via [`Completions`].
pub trait ConnHandler: Send + Sync {
    /// Handles one complete input line (without its trailing newline).
    fn on_line(&self, token: ConnToken, line: &str) -> LineOutcome;

    /// Called periodically from loop 0 (at most every
    /// [`POLL_TIMEOUT_MS`]) for deadline sweeps.
    fn tick(&self) {}
}

/// Connection-level counters, shared by all loops and surfaced
/// through the `stats` request.
#[derive(Debug, Default)]
pub struct NetStats {
    /// Connections accepted since start.
    pub accepted: AtomicU64,
    /// Currently open connections.
    pub open: AtomicU64,
    /// Read-side failures: accept errors, read errors, oversized
    /// lines (the old front end dropped these silently).
    pub conn_errors: AtomicU64,
    /// Write-side failures: send errors and failed final flushes (the
    /// old front end ignored these).
    pub write_errors: AtomicU64,
}

impl NetStats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// A reply produced outside the loop thread.
struct Completion {
    token: ConnToken,
    bytes: Vec<u8>,
    close: bool,
}

/// Work pushed to a loop from other threads.
#[derive(Default)]
struct Inbox {
    conns: Vec<TcpStream>,
    completions: Vec<Completion>,
}

/// The coalescing wakeup channel: enqueue into the inbox, then write
/// one byte to the pipe *only* when no wakeup is already pending.
/// The loop reads the byte, clears the flag, and only then drains the
/// inbox — so a send racing the drain either lands before the drain
/// or leaves a fresh wakeup byte behind. The pipe can never fill.
struct SelfPipe {
    reader: File,
    writer: File,
    pending: AtomicBool,
}

impl SelfPipe {
    fn new() -> io::Result<SelfPipe> {
        let (r, w) = ffi::make_pipe()?;
        // SAFETY: both fds were just created by pipe(2) and are owned
        // exclusively by these Files.
        let (reader, writer) = unsafe { (File::from_raw_fd(r), File::from_raw_fd(w)) };
        Ok(SelfPipe {
            reader,
            writer,
            pending: AtomicBool::new(false),
        })
    }

    fn wake(&self) {
        if !self.pending.swap(true, Ordering::SeqCst) {
            let _ = (&self.writer).write(&[1u8]);
        }
    }

    fn drain(&self) {
        let mut buf = [0u8; 8];
        let _ = (&self.reader).read(&mut buf);
        self.pending.store(false, Ordering::SeqCst);
    }
}

/// One loop's cross-thread surface.
struct LoopCore {
    pipe: SelfPipe,
    inbox: Mutex<Inbox>,
}

impl LoopCore {
    fn push_conn(&self, stream: TcpStream) {
        self.inbox.lock().expect("loop inbox").conns.push(stream);
        self.pipe.wake();
    }

    fn push_completion(&self, completion: Completion) {
        self.inbox
            .lock()
            .expect("loop inbox")
            .completions
            .push(completion);
        self.pipe.wake();
    }
}

/// A cloneable handle for delivering asynchronous replies into the
/// loops. Safe to call from any thread.
#[derive(Clone)]
pub struct Completions {
    cores: Vec<Arc<LoopCore>>,
}

impl Completions {
    /// Delivers `bytes` as the pending reply of `token`'s connection,
    /// optionally closing it after the flush. Dropped silently if the
    /// connection is already gone.
    pub fn send(&self, token: ConnToken, bytes: Vec<u8>, close: bool) {
        if let Some(core) = self.cores.get(token.loop_idx as usize) {
            core.push_completion(Completion {
                token,
                bytes,
                close,
            });
        }
    }

    /// Wakes every loop (used after setting the stop flag and by the
    /// scheduler's settle notifier).
    pub fn wake_all(&self) {
        for core in &self.cores {
            core.pipe.wake();
        }
    }
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    wpos: usize,
    /// Close once the write buffer drains.
    closing: bool,
    /// A [`LineOutcome::Pending`] reply is outstanding; buffer any
    /// further complete lines in `deferred` to preserve ordering.
    inflight: bool,
    deferred: VecDeque<String>,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            closing: false,
            inflight: false,
            deferred: VecDeque::new(),
        }
    }

    fn wants_write(&self) -> bool {
        self.wpos < self.wbuf.len()
    }
}

/// Why a connection left the loop.
enum Gone {
    /// Orderly: EOF with nothing left to flush, or close-after-reply.
    Clean,
    /// A read failed or a line overflowed [`MAX_LINE`].
    ReadError,
    /// A write failed (including the final flush).
    WriteError,
}

/// The event-loop pool: `loops` threads sharing one listener.
pub struct EventLoops {
    cores: Vec<Arc<LoopCore>>,
    stats: Arc<NetStats>,
    stop: Arc<AtomicBool>,
}

impl EventLoops {
    /// Creates `loops` (at least 1) loop cores. Threads start in
    /// [`EventLoops::run`].
    ///
    /// # Errors
    ///
    /// Propagates self-pipe creation failure.
    pub fn new(loops: usize, stop: Arc<AtomicBool>) -> io::Result<EventLoops> {
        let cores = (0..loops.max(1))
            .map(|_| {
                Ok(Arc::new(LoopCore {
                    pipe: SelfPipe::new()?,
                    inbox: Mutex::new(Inbox::default()),
                }))
            })
            .collect::<io::Result<Vec<_>>>()?;
        Ok(EventLoops {
            cores,
            stats: Arc::new(NetStats::default()),
            stop,
        })
    }

    /// The completion-delivery handle.
    pub fn completions(&self) -> Completions {
        Completions {
            cores: self.cores.clone(),
        }
    }

    /// The shared connection counters.
    pub fn net_stats(&self) -> Arc<NetStats> {
        Arc::clone(&self.stats)
    }

    /// Runs the loops until the stop flag fires: loop 0 (the calling
    /// thread) owns the listener; the rest run on scoped threads.
    /// Every connection — idle ones included — is flushed
    /// best-effort and closed on the way out.
    ///
    /// # Errors
    ///
    /// Propagates setting the listener nonblocking. Per-connection
    /// I/O errors are counted, never returned.
    pub fn run(&self, listener: &TcpListener, handler: &Arc<dyn ConnHandler>) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        std::thread::scope(|scope| {
            for (idx, core) in self.cores.iter().enumerate().skip(1) {
                let handler = Arc::clone(handler);
                let stats = Arc::clone(&self.stats);
                let stop = Arc::clone(&self.stop);
                let core = Arc::clone(core);
                scope.spawn(move || {
                    run_loop(idx as u32, &core, None, &[], &handler, &stats, &stop);
                });
            }
            run_loop(
                0,
                &self.cores[0],
                Some(listener),
                &self.cores,
                handler,
                &self.stats,
                &self.stop,
            );
        });
        Ok(())
    }
}

#[allow(clippy::too_many_arguments)]
fn run_loop(
    loop_idx: u32,
    core: &Arc<LoopCore>,
    listener: Option<&TcpListener>,
    all_cores: &[Arc<LoopCore>],
    handler: &Arc<dyn ConnHandler>,
    stats: &Arc<NetStats>,
    stop: &Arc<AtomicBool>,
) {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_id: u64 = 1;
    let mut accepted_total: u64 = 0;
    // Scratch vectors rebuilt each cycle; `slots[i]` names the conn
    // polled at `fds[base + i]`.
    let mut fds: Vec<ffi::PollFd> = Vec::new();
    let mut slots: Vec<u64> = Vec::new();

    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }

        fds.clear();
        slots.clear();
        fds.push(ffi::PollFd {
            fd: core.pipe.reader.as_raw_fd(),
            events: ffi::POLLIN,
            revents: 0,
        });
        if let Some(l) = listener {
            fds.push(ffi::PollFd {
                fd: l.as_raw_fd(),
                events: ffi::POLLIN,
                revents: 0,
            });
        }
        let base = fds.len();
        for (&id, conn) in &conns {
            let mut events = ffi::POLLIN;
            if conn.wants_write() {
                events |= ffi::POLLOUT;
            }
            fds.push(ffi::PollFd {
                fd: conn.stream.as_raw_fd(),
                events,
                revents: 0,
            });
            slots.push(id);
        }

        let n = ffi::poll_fds(&mut fds, POLL_TIMEOUT_MS);
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                // Should not happen with valid fds; count and back
                // off rather than spinning.
                NetStats::bump(&stats.conn_errors);
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            continue;
        }

        if stop.load(Ordering::SeqCst) {
            break;
        }

        // 1. Self-pipe: drain the byte first, then the inbox, so a
        //    racing sender either lands in this drain or leaves a
        //    fresh wakeup byte for the next cycle.
        if fds[0].revents != 0 {
            core.pipe.drain();
        }
        let inbox = {
            let mut guard = core.inbox.lock().expect("loop inbox");
            std::mem::take(&mut *guard)
        };
        for stream in inbox.conns {
            let id = next_id;
            next_id += 1;
            conns.insert(id, Conn::new(stream));
        }
        for completion in inbox.completions {
            deliver(&mut conns, completion, loop_idx, handler, stats);
        }

        // 2. Listener: accept everything that is ready, spreading
        //    connections round-robin across the loops.
        if let Some(l) = listener {
            loop {
                match l.accept() {
                    Ok((stream, _)) => {
                        accepted_total += 1;
                        NetStats::bump(&stats.accepted);
                        stats.open.fetch_add(1, Ordering::Relaxed);
                        let _ = stream.set_nodelay(true);
                        if stream.set_nonblocking(true).is_err() {
                            NetStats::bump(&stats.conn_errors);
                            stats.open.fetch_sub(1, Ordering::Relaxed);
                            continue;
                        }
                        let target = (accepted_total % all_cores.len() as u64) as usize;
                        if target == 0 {
                            let id = next_id;
                            next_id += 1;
                            conns.insert(id, Conn::new(stream));
                        } else {
                            all_cores[target].push_conn(stream);
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        // Transient accept failure (e.g. fd
                        // exhaustion): count it and let the next
                        // cycle retry.
                        NetStats::bump(&stats.conn_errors);
                        break;
                    }
                }
            }
        }

        // 3. Ready connections.
        for (slot, &id) in slots.iter().enumerate() {
            let revents = fds[base + slot].revents;
            if revents == 0 {
                continue;
            }
            let Some(conn) = conns.get_mut(&id) else {
                continue;
            };
            let token = ConnToken {
                loop_idx,
                conn_id: id,
            };
            let mut gone: Option<Gone> = None;
            if revents & (ffi::POLLERR | ffi::POLLNVAL) != 0 {
                gone = Some(Gone::ReadError);
            }
            if gone.is_none() && revents & (ffi::POLLIN | ffi::POLLHUP) != 0 {
                gone = read_ready(conn, token, handler);
            }
            if gone.is_none() && conn.wants_write() {
                gone = flush(conn);
            }
            if gone.is_none() && conn.closing && !conn.wants_write() {
                gone = Some(Gone::Clean);
            }
            if let Some(reason) = gone {
                retire(stats, reason);
                conns.remove(&id);
            }
        }

        if loop_idx == 0 {
            handler.tick();
        }
    }

    // Stop: flush what we can, then close everything — including
    // idle connections that never sent a byte. This is the shutdown
    // guarantee the old thread-per-connection front end lacked.
    for (_, mut conn) in conns.drain() {
        if conn.wants_write() {
            let _ = conn.stream.set_nonblocking(false);
            let _ = conn
                .stream
                .set_write_timeout(Some(std::time::Duration::from_millis(500)));
            if conn.stream.write_all(&conn.wbuf[conn.wpos..]).is_err() {
                NetStats::bump(&stats.write_errors);
            }
        }
        stats.open.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Applies an asynchronous reply to its connection, then replays any
/// lines that arrived while the reply was pending.
fn deliver(
    conns: &mut HashMap<u64, Conn>,
    completion: Completion,
    loop_idx: u32,
    handler: &Arc<dyn ConnHandler>,
    stats: &Arc<NetStats>,
) {
    let id = completion.token.conn_id;
    let Some(conn) = conns.get_mut(&id) else {
        return; // Connection closed while the reply was in flight.
    };
    conn.inflight = false;
    conn.wbuf.extend_from_slice(&completion.bytes);
    if completion.close {
        conn.closing = true;
        conn.deferred.clear();
    }
    let token = ConnToken {
        loop_idx,
        conn_id: id,
    };
    let mut gone = None;
    while gone.is_none() && !conn.inflight && !conn.closing {
        let Some(line) = conn.deferred.pop_front() else {
            break;
        };
        gone = dispatch_line(conn, token, &line, handler);
    }
    if gone.is_none() {
        gone = flush(conn);
    }
    if gone.is_none() && conn.closing && !conn.wants_write() {
        gone = Some(Gone::Clean);
    }
    if let Some(reason) = gone {
        retire(stats, reason);
        conns.remove(&id);
    }
}

fn retire(stats: &Arc<NetStats>, reason: Gone) {
    match reason {
        Gone::Clean => {}
        Gone::ReadError => NetStats::bump(&stats.conn_errors),
        Gone::WriteError => NetStats::bump(&stats.write_errors),
    }
    stats.open.fetch_sub(1, Ordering::Relaxed);
}

/// Reads everything available, splits complete lines, and hands them
/// to the handler (or the deferred queue while a reply is pending).
fn read_ready(conn: &mut Conn, token: ConnToken, handler: &Arc<dyn ConnHandler>) -> Option<Gone> {
    let mut chunk = [0u8; 4096];
    let mut saw_eof = false;
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                saw_eof = true;
                break;
            }
            Ok(n) => {
                if conn.rbuf.len() + n > MAX_LINE {
                    return Some(Gone::ReadError);
                }
                conn.rbuf.extend_from_slice(&chunk[..n]);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Some(Gone::ReadError),
        }
    }

    while let Some(pos) = conn.rbuf.iter().position(|&b| b == b'\n') {
        let raw: Vec<u8> = conn.rbuf.drain(..=pos).collect();
        let Ok(mut line) = String::from_utf8(raw) else {
            return Some(Gone::ReadError);
        };
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        if line.trim().is_empty() {
            continue;
        }
        if conn.inflight {
            conn.deferred.push_back(line);
            continue;
        }
        if conn.closing {
            break;
        }
        if let Some(gone) = dispatch_line(conn, token, &line, handler) {
            return Some(gone);
        }
    }

    if saw_eof {
        if conn.inflight || conn.wants_write() {
            // Half-close: the client is done talking but still owed a
            // reply; finish the flush, then drop.
            conn.closing = true;
        } else {
            return Some(Gone::Clean);
        }
    }
    None
}

fn dispatch_line(
    conn: &mut Conn,
    token: ConnToken,
    line: &str,
    handler: &Arc<dyn ConnHandler>,
) -> Option<Gone> {
    match handler.on_line(token, line) {
        LineOutcome::Reply(bytes) => {
            conn.wbuf.extend_from_slice(&bytes);
            None
        }
        LineOutcome::ReplyAndClose(bytes) => {
            conn.wbuf.extend_from_slice(&bytes);
            conn.closing = true;
            conn.deferred.clear();
            None
        }
        LineOutcome::Pending => {
            conn.inflight = true;
            None
        }
    }
}

/// Writes as much of the buffered output as the socket accepts.
fn flush(conn: &mut Conn) -> Option<Gone> {
    while conn.wants_write() {
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => return Some(Gone::WriteError),
            Ok(n) => conn.wpos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return Some(Gone::WriteError),
        }
    }
    if conn.wpos == conn.wbuf.len() {
        conn.wbuf.clear();
        conn.wpos = 0;
    } else if conn.wpos > (64 << 10) {
        // Reclaim flushed bytes without waiting for full drain.
        conn.wbuf.drain(..conn.wpos);
        conn.wpos = 0;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::net::TcpStream;

    /// Echoes each line back; `close` closes after replying; `later`
    /// answers asynchronously from another thread.
    struct Echo {
        completions: Mutex<Option<Completions>>,
    }

    impl ConnHandler for Echo {
        fn on_line(&self, token: ConnToken, line: &str) -> LineOutcome {
            match line {
                "close" => LineOutcome::ReplyAndClose(b"bye\n".to_vec()),
                "later" => {
                    let completions = self
                        .completions
                        .lock()
                        .expect("completions")
                        .clone()
                        .expect("wired");
                    std::thread::spawn(move || {
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        completions.send(token, b"deferred\n".to_vec(), false);
                    });
                    LineOutcome::Pending
                }
                other => LineOutcome::Reply(format!("echo {other}\n").into_bytes()),
            }
        }
    }

    struct Harness {
        addr: std::net::SocketAddr,
        stop: Arc<AtomicBool>,
        completions: Completions,
        stats: Arc<NetStats>,
        thread: Option<std::thread::JoinHandle<()>>,
    }

    impl Harness {
        fn start(loops: usize) -> Harness {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            let addr = listener.local_addr().expect("addr");
            let stop = Arc::new(AtomicBool::new(false));
            let pool = EventLoops::new(loops, Arc::clone(&stop)).expect("loops");
            let completions = pool.completions();
            let stats = pool.net_stats();
            let handler: Arc<dyn ConnHandler> = Arc::new(Echo {
                completions: Mutex::new(Some(completions.clone())),
            });
            let thread = std::thread::spawn(move || {
                pool.run(&listener, &handler).expect("run");
            });
            Harness {
                addr,
                stop,
                completions,
                stats,
                thread: Some(thread),
            }
        }

        fn stop(mut self) {
            self.stop.store(true, Ordering::SeqCst);
            self.completions.wake_all();
            self.thread
                .take()
                .expect("running")
                .join()
                .expect("loops exit");
        }
    }

    fn ask(stream: &TcpStream, reader: &mut impl BufRead, line: &str) -> String {
        let mut writer = stream;
        writeln!(writer, "{line}").expect("send");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("recv");
        reply.trim_end().to_string()
    }

    #[test]
    fn echoes_lines_across_multiple_loops() {
        let h = Harness::start(2);
        for i in 0..6 {
            let stream = TcpStream::connect(h.addr).expect("connect");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            assert_eq!(
                ask(&stream, &mut reader, &format!("m{i}")),
                format!("echo m{i}")
            );
        }
        h.stop();
    }

    #[test]
    fn pending_replies_preserve_order_with_deferred_lines() {
        let h = Harness::start(1);
        let stream = TcpStream::connect(h.addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        // Send the async request plus two more lines before any reply
        // comes back; replies must arrive in request order.
        let mut writer = &stream;
        writeln!(writer, "later").expect("send");
        writeln!(writer, "a").expect("send");
        writeln!(writer, "b").expect("send");
        let mut got = Vec::new();
        for _ in 0..3 {
            let mut line = String::new();
            reader.read_line(&mut line).expect("recv");
            got.push(line.trim_end().to_string());
        }
        assert_eq!(got, vec!["deferred", "echo a", "echo b"]);
        h.stop();
    }

    #[test]
    fn reply_and_close_drains_then_closes() {
        let h = Harness::start(1);
        let stream = TcpStream::connect(h.addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        assert_eq!(ask(&stream, &mut reader, "close"), "bye");
        let mut rest = String::new();
        assert_eq!(reader.read_line(&mut rest).expect("eof"), 0);
        h.stop();
    }

    #[test]
    fn stop_closes_idle_connections_promptly() {
        let h = Harness::start(2);
        // Connect clients that never send anything.
        let idle: Vec<TcpStream> = (0..8)
            .map(|_| TcpStream::connect(h.addr).expect("connect"))
            .collect();
        // Let the loops pick them up.
        std::thread::sleep(std::time::Duration::from_millis(50));
        let started = std::time::Instant::now();
        h.stop();
        assert!(
            started.elapsed() < std::time::Duration::from_secs(2),
            "stop must not wait on silent clients"
        );
        drop(idle);
    }

    #[test]
    fn oversized_lines_count_a_conn_error() {
        let h = Harness::start(1);
        let stream = TcpStream::connect(h.addr).expect("connect");
        let huge = vec![b'x'; MAX_LINE + 4096];
        let _ = (&stream).write_all(&huge);
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        // The server closes without replying.
        assert_eq!(reader.read_line(&mut line).unwrap_or(0), 0);
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(h.stats.conn_errors.load(Ordering::Relaxed) >= 1);
        h.stop();
    }
}
