//! An open-loop load generator for the event-loop front end.
//!
//! One thread drives N concurrent clients through the same `poll(2)`
//! readiness machinery the server uses ([`crate::event_loop::ffi`]).
//! Each client alternates a cache-hit `run` request with a `stats`
//! request, measuring the wall time from enqueueing the request to
//! receiving its terminal reply line. Latencies land in an HDR-style
//! log-linear histogram: exact microsecond buckets below 64 µs, then
//! 32 sub-buckets per power of two — constant ~3% relative error at
//! any magnitude, constant memory.
//!
//! Requests run in `waves`: every client issues its quota, the wave's
//! p99 is recorded, and the next wave starts on the same connections.
//! Per-wave p99s are the *samples* the benchmark gate judges
//! (`samples_p99_us` in `BENCH_sim.json`), so a latency regression is
//! assessed with the same robust statistics as every other gate.
//!
//! The cache-hit run is primed once before the waves begin, so the
//! steady state exercises the front end and the cache path — not the
//! simulator. This is deliberately a front-end scalability gate: tens
//! of thousands of mostly-idle connections, bounded tail latency.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use sz_harness::{Json, RingBuffer};

use crate::event_loop::ffi;

/// The cacheable request every client hammers (tiny, one benchmark).
pub const HIT_REQUEST: &str =
    r#"{"type":"run","experiment":"table1","benchmarks":["bzip2"],"runs":2}"#;
/// The metadata request interleaved with the cache hits.
const STATS_REQUEST: &str = r#"{"type":"stats"}"#;

/// Load-generator sizing.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server to connect to (`host:port`).
    pub addr: String,
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests per client per wave.
    pub requests_per_client: usize,
    /// Waves (each contributes one p99 sample).
    pub waves: usize,
    /// Abort if a single wave exceeds this.
    pub wave_timeout: Duration,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: crate::proto::DEFAULT_ADDR.to_string(),
            clients: 128,
            requests_per_client: 4,
            waves: 5,
            wave_timeout: Duration::from_secs(120),
        }
    }
}

/// HDR-style log-linear latency histogram over microseconds: exact
/// buckets for `0..64`, then 32 linear sub-buckets per octave.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    max: u64,
}

/// Exact one-microsecond buckets below this value.
const LINEAR_CUTOFF: u64 = 64;
/// Sub-buckets per octave above the cutoff.
const SUB_BUCKETS: u64 = 32;

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram covering the full `u64` microsecond range.
    pub fn new() -> Histogram {
        // Octaves 6..=63, 32 sub-buckets each, after the linear run.
        let buckets = LINEAR_CUTOFF as usize + (64 - 6) * SUB_BUCKETS as usize;
        Histogram {
            buckets: vec![0; buckets],
            count: 0,
            max: 0,
        }
    }

    fn index(us: u64) -> usize {
        if us < LINEAR_CUTOFF {
            return us as usize;
        }
        let octave = 63 - us.leading_zeros() as u64; // >= 6
        let sub = (us >> (octave - 5)) & (SUB_BUCKETS - 1);
        (LINEAR_CUTOFF + (octave - 6) * SUB_BUCKETS + sub) as usize
    }

    /// The lower bound of bucket `idx` (what quantiles report).
    fn bucket_value(idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < LINEAR_CUTOFF {
            return idx;
        }
        let octave = 6 + (idx - LINEAR_CUTOFF) / SUB_BUCKETS;
        let sub = (idx - LINEAR_CUTOFF) % SUB_BUCKETS;
        (1u64 << octave) + (sub << (octave - 5))
    }

    /// Records one latency.
    pub fn record(&mut self, us: u64) {
        self.buckets[Self::index(us)] += 1;
        self.count += 1;
        self.max = self.max.max(us);
    }

    /// Recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The exact largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile (0..=1) in microseconds, with the histogram's
    /// ~3% bucket resolution. Zero when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_value(idx);
            }
        }
        self.max
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
    }
}

/// What a load-generation session measured.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Concurrent connections driven.
    pub clients: usize,
    /// Replies received across all waves.
    pub requests: u64,
    /// Connections lost to I/O errors.
    pub errors: u64,
    /// Total wall time across the waves.
    pub elapsed_ms: f64,
    /// Median request latency (µs).
    pub p50_us: u64,
    /// 90th-percentile latency (µs).
    pub p90_us: u64,
    /// 99th-percentile latency (µs), all waves pooled.
    pub p99_us: u64,
    /// Largest observed latency (µs).
    pub max_us: u64,
    /// One p99 per wave — the gate's per-sample array.
    pub samples_p99_us: Vec<u64>,
    /// Replies per second across the session.
    pub throughput_rps: f64,
}

impl LoadgenReport {
    /// The `loadgen` object embedded in `BENCH_sim.json`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("clients", self.clients.into()),
            ("requests", self.requests.into()),
            ("errors", self.errors.into()),
            ("elapsed_ms", self.elapsed_ms.into()),
            ("p50_us", self.p50_us.into()),
            ("p90_us", self.p90_us.into()),
            ("p99_us", self.p99_us.into()),
            ("max_us", self.max_us.into()),
            (
                "samples_p99_us",
                Json::Arr(self.samples_p99_us.iter().map(|&v| v.into()).collect()),
            ),
            ("throughput_rps", self.throughput_rps.into()),
        ])
    }
}

/// One driven connection's state machine.
struct Client {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    wpos: usize,
    sent_at: Option<Instant>,
    /// Requests still to issue this wave (not counting the in-flight
    /// one).
    remaining: usize,
    /// Lifetime request counter — drives the run/stats alternation.
    sequence: u64,
    dead: bool,
}

impl Client {
    fn enqueue_next(&mut self, now: Instant) {
        let line = if self.sequence.is_multiple_of(2) {
            HIT_REQUEST
        } else {
            STATS_REQUEST
        };
        self.sequence += 1;
        self.wbuf.extend_from_slice(line.as_bytes());
        self.wbuf.push(b'\n');
        self.sent_at = Some(now);
    }

    fn wants_write(&self) -> bool {
        self.wpos < self.wbuf.len()
    }

    fn idle(&self) -> bool {
        self.dead || (self.remaining == 0 && self.sent_at.is_none() && !self.wants_write())
    }
}

/// Primes the server's result cache so the waves measure the cache
/// path, then returns.
///
/// # Errors
///
/// Connection or protocol failures against `addr`.
pub fn prime_cache(addr: &str) -> io::Result<()> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = &stream;
    writeln!(writer, "{HIT_REQUEST}")?;
    let mut reader = BufReader::new(&stream);
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "server closed during cache priming",
        ));
    }
    if !line.contains("\"type\":\"result\"") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("cache priming got {}", line.trim_end()),
        ));
    }
    Ok(())
}

/// Connects `config.clients` clients and drives the waves.
///
/// # Errors
///
/// Failing to connect the fleet or to prime the cache; a wave
/// exceeding `wave_timeout`. Individual connection failures mid-wave
/// are counted in `errors`, not returned.
pub fn run_loadgen(config: &LoadgenConfig) -> io::Result<LoadgenReport> {
    prime_cache(&config.addr)?;

    let mut clients = Vec::with_capacity(config.clients);
    for _ in 0..config.clients {
        let stream = TcpStream::connect(&config.addr)?;
        stream.set_nodelay(true).ok();
        stream.set_nonblocking(true)?;
        clients.push(Client {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            sent_at: None,
            remaining: 0,
            sequence: 0,
            dead: false,
        });
    }

    let mut pooled = Histogram::new();
    // Bounded per-wave p99 store: the shared harness ring keeps the
    // most recent waves if a caller ever asks for more waves than the
    // gate's sample budget needs.
    let mut samples_p99_us = RingBuffer::new(config.waves.max(1));
    let mut errors = 0u64;
    let started = Instant::now();

    for _ in 0..config.waves.max(1) {
        let mut wave = Histogram::new();
        let wave_started = Instant::now();
        let now = Instant::now();
        for client in clients.iter_mut().filter(|c| !c.dead) {
            client.remaining = config.requests_per_client.max(1) - 1;
            client.enqueue_next(now);
        }

        let mut fds: Vec<ffi::PollFd> = Vec::new();
        let mut slots: Vec<usize> = Vec::new();
        while !clients.iter().all(Client::idle) {
            if wave_started.elapsed() > config.wave_timeout {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "loadgen wave timed out",
                ));
            }
            fds.clear();
            slots.clear();
            for (idx, client) in clients.iter().enumerate() {
                if client.idle() {
                    continue;
                }
                let mut events = ffi::POLLIN;
                if client.wants_write() {
                    events |= ffi::POLLOUT;
                }
                fds.push(ffi::PollFd {
                    fd: std::os::unix::io::AsRawFd::as_raw_fd(&client.stream),
                    events,
                    revents: 0,
                });
                slots.push(idx);
            }
            let n = ffi::poll_fds(&mut fds, 100);
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(err);
            }
            for (slot, &idx) in slots.iter().enumerate() {
                if fds[slot].revents == 0 {
                    continue;
                }
                let client = &mut clients[idx];
                if !pump(client, &mut wave) {
                    client.dead = true;
                    errors += 1;
                }
            }
        }
        samples_p99_us.push(wave.quantile(0.99));
        pooled.merge(&wave);
    }

    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
    Ok(LoadgenReport {
        clients: config.clients,
        requests: pooled.count(),
        errors,
        elapsed_ms,
        p50_us: pooled.quantile(0.50),
        p90_us: pooled.quantile(0.90),
        p99_us: pooled.quantile(0.99),
        max_us: pooled.max(),
        samples_p99_us: samples_p99_us.to_vec(),
        throughput_rps: pooled.count() as f64 / (elapsed_ms / 1e3).max(1e-9),
    })
}

/// Advances one client's I/O; false means the connection failed.
fn pump(client: &mut Client, wave: &mut Histogram) -> bool {
    while client.wants_write() {
        match client.stream.write(&client.wbuf[client.wpos..]) {
            Ok(0) => return false,
            Ok(n) => client.wpos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    if client.wpos == client.wbuf.len() {
        client.wbuf.clear();
        client.wpos = 0;
    }

    let mut chunk = [0u8; 4096];
    loop {
        match client.stream.read(&mut chunk) {
            Ok(0) => return client.sent_at.is_none() && client.remaining == 0,
            Ok(n) => client.rbuf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    while let Some(pos) = client.rbuf.iter().position(|&b| b == b'\n') {
        client.rbuf.drain(..=pos);
        // Every loadgen request gets exactly one reply line
        // (trace is never requested), so a newline is a terminal.
        if let Some(sent) = client.sent_at.take() {
            wave.record(sent.elapsed().as_micros() as u64);
            if client.remaining > 0 {
                client.remaining -= 1;
                client.enqueue_next(Instant::now());
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_monotonic_and_exact_below_cutoff() {
        for us in 0..LINEAR_CUTOFF {
            assert_eq!(Histogram::bucket_value(Histogram::index(us)), us);
        }
        let mut last = 0;
        for us in [64u64, 65, 100, 1_000, 10_000, 1_000_000, u64::MAX / 2] {
            let idx = Histogram::index(us);
            let lo = Histogram::bucket_value(idx);
            assert!(lo <= us, "bucket lower bound {lo} > {us}");
            // Log-linear: the bucket is within ~1/32 of the value.
            assert!((us - lo) as f64 <= us as f64 / 16.0, "{us} -> {lo}");
            assert!(idx >= last, "indices must be monotone");
            last = idx;
        }
    }

    #[test]
    fn quantiles_track_recorded_values() {
        let mut h = Histogram::new();
        for us in 1..=1000u64 {
            h.record(us);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000);
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        assert!((450..=550).contains(&p50), "p50 {p50}");
        assert!((950..=1000).contains(&p99), "p99 {p99}");
        assert!(h.quantile(1.0) >= p99);
        assert_eq!(Histogram::new().quantile(0.99), 0);
    }

    #[test]
    fn merge_pools_counts_and_max() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(5_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 5_000);
    }

    #[test]
    fn report_json_has_the_gate_fields() {
        let report = LoadgenReport {
            clients: 8,
            requests: 64,
            errors: 0,
            elapsed_ms: 12.5,
            p50_us: 100,
            p90_us: 200,
            p99_us: 300,
            max_us: 400,
            samples_p99_us: vec![290, 300, 310],
            throughput_rps: 5120.0,
        };
        let json = report.to_json();
        assert_eq!(json.get("p99_us").unwrap().as_u64(), Some(300));
        assert_eq!(
            json.get("samples_p99_us").unwrap().as_arr().unwrap().len(),
            3
        );
    }
}
