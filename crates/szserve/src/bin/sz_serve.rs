//! `sz-serve` — the experiment service daemon.
//!
//! ```text
//! sz-serve [--addr HOST:PORT] [--workers N] [--queue N]
//!          [--threads N] [--cache-mb N]
//! ```
//!
//! Binds, prints `sz-serve listening on <addr>` (with the resolved
//! port, so `--addr 127.0.0.1:0` is scriptable), then serves until a
//! `shutdown` request arrives.

use std::process::ExitCode;

use sz_serve::{Server, ServerConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: sz-serve [--addr HOST:PORT] [--workers N] [--queue N] \
         [--threads N] [--cache-mb N]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let Some(value) = args.next() else {
            return usage();
        };
        match flag.as_str() {
            "--addr" => config.addr = value,
            "--workers" => match value.parse() {
                Ok(n) if n > 0 => config.scheduler.workers = n,
                _ => return usage(),
            },
            "--queue" => match value.parse() {
                Ok(n) => config.scheduler.queue_capacity = n,
                Err(_) => return usage(),
            },
            "--threads" => match value.parse() {
                Ok(n) if n > 0 => config.scheduler.exec_threads = n,
                _ => return usage(),
            },
            "--cache-mb" => match value.parse::<usize>() {
                Ok(n) => config.scheduler.cache_budget = n << 20,
                Err(_) => return usage(),
            },
            _ => return usage(),
        }
    }

    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("sz-serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => println!("sz-serve listening on {addr}"),
        Err(e) => {
            eprintln!("sz-serve: no local address: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = server.serve() {
        eprintln!("sz-serve: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
