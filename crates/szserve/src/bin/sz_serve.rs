//! `sz-serve` — the experiment service daemon.
//!
//! ```text
//! sz-serve [--addr HOST:PORT] [--workers N] [--queue N]
//!          [--threads N] [--cache-mb N] [--loops N]
//!          [--role single|node|coordinator] [--peers HOST:PORT,...]
//! ```
//!
//! Binds, prints `sz-serve listening on <addr>` (with the resolved
//! port, so `--addr 127.0.0.1:0` is scriptable), then serves until a
//! `shutdown` request arrives.
//!
//! `--role coordinator` shards cacheable runs and routes lookups
//! across `--peers` (falling back to `$SZ_SERVE_PEERS`); `--role node`
//! serves shard requests from a coordinator; the default `single`
//! ignores any peer list.

use std::process::ExitCode;

use sz_serve::proto::parse_peers;
use sz_serve::{Role, Server, ServerConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: sz-serve [--addr HOST:PORT] [--workers N] [--queue N] \
         [--threads N] [--cache-mb N] [--loops N] \
         [--role single|node|coordinator] [--peers HOST:PORT,...]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut config = ServerConfig::default();
    let mut peers_flag: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let Some(value) = args.next() else {
            return usage();
        };
        match flag.as_str() {
            "--addr" => config.addr = value,
            "--workers" => match value.parse() {
                Ok(n) if n > 0 => config.scheduler.workers = n,
                _ => return usage(),
            },
            "--queue" => match value.parse() {
                Ok(n) => config.scheduler.queue_capacity = n,
                Err(_) => return usage(),
            },
            "--threads" => match value.parse() {
                Ok(n) if n > 0 => config.scheduler.exec_threads = n,
                _ => return usage(),
            },
            "--cache-mb" => match value.parse::<usize>() {
                Ok(n) => config.scheduler.cache_budget = n << 20,
                Err(_) => return usage(),
            },
            "--loops" => match value.parse() {
                Ok(n) if n > 0 => config.loops = n,
                _ => return usage(),
            },
            "--role" => match Role::from_name(&value) {
                Some(role) => config.federation.role = role,
                None => return usage(),
            },
            "--peers" => peers_flag = Some(value),
            _ => return usage(),
        }
    }
    let peers_source = peers_flag.or_else(|| std::env::var("SZ_SERVE_PEERS").ok());
    if let Some(list) = peers_source {
        match parse_peers(&list) {
            Ok(peers) => config.federation.peers = peers,
            Err(e) => {
                eprintln!("sz-serve: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("sz-serve: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    match server.local_addr() {
        Ok(addr) => println!("sz-serve listening on {addr}"),
        Err(e) => {
            eprintln!("sz-serve: no local address: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = server.serve() {
        eprintln!("sz-serve: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
