//! `sz-loadgen` — concurrency load generator for `sz-serve`.
//!
//! ```text
//! sz-loadgen [--addr HOST:PORT] [--clients N] [--requests N]
//!            [--waves N] [--spawn] [--json]
//! ```
//!
//! Primes the server's result cache, then drives `--clients`
//! concurrent connections through `--waves` waves of alternating
//! cache-hit `run` and `stats` requests, recording request latency in
//! an HDR-style histogram. `--spawn` starts an in-process server on an
//! ephemeral port first (self-contained smoke); otherwise the target
//! must already be listening. `--json` prints the report as the
//! `loadgen` object consumed by `BENCH_sim.json`; the default is a
//! human-readable summary.
//!
//! Exit code 0 when every connection survived, 1 when any connection
//! died or the run failed outright.

use std::process::ExitCode;

use sz_serve::loadgen::{run_loadgen, LoadgenConfig};
use sz_serve::{Server, ServerConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: sz-loadgen [--addr HOST:PORT] [--clients N] [--requests N] \
         [--waves N] [--spawn] [--json]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut config = LoadgenConfig::default();
    let mut spawn = false;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--spawn" => spawn = true,
            "--json" => json = true,
            "--addr" => match args.next() {
                Some(addr) => config.addr = addr,
                None => return usage(),
            },
            "--clients" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => config.clients = n,
                _ => return usage(),
            },
            "--requests" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => config.requests_per_client = n,
                _ => return usage(),
            },
            "--waves" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => config.waves = n,
                _ => return usage(),
            },
            _ => return usage(),
        }
    }

    // --spawn: host the server in this process on an ephemeral port so
    // the binary is a one-command smoke test.
    let server_thread = if spawn {
        let server = match Server::bind(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            ..ServerConfig::default()
        }) {
            Ok(server) => server,
            Err(e) => {
                eprintln!("sz-loadgen: spawn failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let Ok(addr) = server.local_addr() else {
            eprintln!("sz-loadgen: spawned server has no address");
            return ExitCode::FAILURE;
        };
        config.addr = addr.to_string();
        Some(std::thread::spawn(move || server.serve()))
    } else {
        None
    };

    let result = run_loadgen(&config);

    if server_thread.is_some() {
        // A shutdown request stops the spawned server; ignore errors —
        // the process is exiting either way.
        use std::io::Write as _;
        if let Ok(mut stream) = std::net::TcpStream::connect(&config.addr) {
            let _ = writeln!(stream, r#"{{"type":"shutdown"}}"#);
        }
    }
    if let Some(handle) = server_thread {
        let _ = handle.join();
    }

    let report = match result {
        Ok(report) => report,
        Err(e) => {
            eprintln!("sz-loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };

    if json {
        println!("{}", report.to_json());
    } else {
        println!(
            "sz-loadgen: {} clients × {} waves → {} replies in {:.0} ms ({:.0} req/s)",
            report.clients,
            report.samples_p99_us.len(),
            report.requests,
            report.elapsed_ms,
            report.throughput_rps,
        );
        println!(
            "latency µs: p50 {}  p90 {}  p99 {}  max {}  errors {}",
            report.p50_us, report.p90_us, report.p99_us, report.max_us, report.errors
        );
    }
    if report.errors > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
