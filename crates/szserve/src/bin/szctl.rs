//! `szctl` — thin client for the `sz-serve` daemon.
//!
//! ```text
//! szctl [--addr HOST:PORT] run <experiment> [options]
//! szctl [--addr HOST:PORT] status <job>
//! szctl [--addr HOST:PORT] cancel <job>
//! szctl [--addr HOST:PORT] stats
//! szctl [--addr HOST:PORT] shutdown
//! ```
//!
//! `run` options: `--bench a,b`, `--scale tiny|small|full`,
//! `--runs N`, `--seed N|0xHEX`, `--interval MS`, `--threads N`,
//! `--trace`, `--no-wait`, `--deadline MS`, `--before Ox`,
//! `--after Ox`, `--adaptive`, `--half-width X`, `--confidence X`,
//! `--band X`, `--batch N`, `--min-runs N`, `--max-runs N`,
//! `--sleep-ms N`, `--json` (raw JSONL instead of tables).
//!
//! The address defaults to `$SZ_SERVE_ADDR`, then `127.0.0.1:7457`.
//! Streamed trace records are always relayed raw; the terminal line is
//! pretty-printed unless `--json` is set. Exit code 0 for `result` /
//! `accepted` / single-line responses, 1 for `error` / `rejected`.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::process::ExitCode;

use sz_harness::report::render_table;
use sz_harness::Json;
use sz_serve::{AdaptiveParams, Experiment, Request, RunRequest, DEFAULT_ADDR};

fn usage() -> ExitCode {
    eprintln!(
        "usage: szctl [--addr HOST:PORT] <run|status|cancel|stats|shutdown> ...\n\
         run <experiment> [--bench a,b] [--scale tiny|small|full] [--runs N]\n\
         \x20   [--seed N] [--interval MS] [--threads N] [--trace] [--no-wait]\n\
         \x20   [--deadline MS] [--before Ox] [--after Ox] [--adaptive]\n\
         \x20   [--half-width X] [--confidence X] [--band X] [--batch N]\n\
         \x20   [--min-runs N] [--max-runs N] [--sleep-ms N] [--json]"
    );
    ExitCode::from(2)
}

struct Cli {
    addr: String,
    json: bool,
    request: Request,
}

fn parse_u64(value: &str) -> Option<u64> {
    if let Some(hex) = value
        .strip_prefix("0x")
        .or_else(|| value.strip_prefix("0X"))
    {
        u64::from_str_radix(hex, 16).ok()
    } else {
        value.parse().ok()
    }
}

fn parse_cli() -> Option<Cli> {
    let mut addr = std::env::var("SZ_SERVE_ADDR").unwrap_or_else(|_| DEFAULT_ADDR.to_string());
    let mut json = false;
    let mut args = std::env::args().skip(1).peekable();
    while args.peek().is_some_and(|a| a == "--addr" || a == "--json") {
        match args.next().as_deref() {
            Some("--addr") => addr = args.next()?,
            Some("--json") => json = true,
            _ => return None,
        }
    }
    let command = args.next()?;
    let request = match command.as_str() {
        "stats" => Request::Stats,
        "shutdown" => Request::Shutdown,
        "status" => Request::Status {
            job: parse_u64(&args.next()?)?,
        },
        "cancel" => Request::Cancel {
            job: parse_u64(&args.next()?)?,
        },
        "run" => {
            let experiment = Experiment::from_name(&args.next()?)?;
            let mut run = RunRequest::quick(experiment);
            let mut adaptive = AdaptiveParams::default();
            let mut wants_adaptive = false;
            while let Some(flag) = args.next() {
                match flag.as_str() {
                    "--trace" => run.trace = true,
                    "--no-wait" => run.wait = false,
                    "--adaptive" => wants_adaptive = true,
                    "--json" => json = true,
                    "--bench" => {
                        run.benchmarks =
                            Some(args.next()?.split(',').map(str::to_string).collect());
                    }
                    "--scale" => {
                        let value = args.next()?;
                        // Route through the parser so scale implies
                        // its default interval, as on the wire.
                        let line = format!(
                            r#"{{"type":"run","experiment":"selftest-sleep","scale":"{value}"}}"#
                        );
                        let Ok(Request::Run(parsed)) = Request::parse(&line) else {
                            return None;
                        };
                        run.scale = parsed.scale;
                        run.interval_ms = parsed.interval_ms;
                    }
                    "--runs" => run.runs = parse_u64(&args.next()?)? as usize,
                    "--seed" => run.seed_base = parse_u64(&args.next()?)?,
                    "--interval" => run.interval_ms = args.next()?.parse().ok()?,
                    "--threads" => run.threads = Some(parse_u64(&args.next()?)? as usize),
                    "--deadline" => run.deadline_ms = Some(parse_u64(&args.next()?)?),
                    "--before" => run.before_opt = args.next()?,
                    "--after" => run.after_opt = args.next()?,
                    "--half-width" => adaptive.half_width = args.next()?.parse().ok()?,
                    "--confidence" => adaptive.confidence = args.next()?.parse().ok()?,
                    "--band" => adaptive.band = args.next()?.parse().ok()?,
                    "--batch" => adaptive.batch = parse_u64(&args.next()?)? as usize,
                    "--min-runs" => adaptive.min_runs = parse_u64(&args.next()?)? as usize,
                    "--max-runs" => adaptive.max_runs = parse_u64(&args.next()?)? as usize,
                    "--sleep-ms" => run.sleep_ms = parse_u64(&args.next()?)?,
                    _ => return None,
                }
            }
            if wants_adaptive {
                run.adaptive = Some(adaptive);
            }
            Request::Run(run)
        }
        _ => return None,
    };
    if args.next().is_some() {
        return None;
    }
    Some(Cli {
        addr,
        json,
        request,
    })
}

fn pretty_print(value: &Json) {
    let Json::Obj(fields) = value else {
        println!("{value}");
        return;
    };
    let rows: Vec<Vec<String>> = fields
        .iter()
        .filter(|(k, _)| k != "type")
        .map(|(k, v)| vec![k.clone(), v.to_string()])
        .collect();
    let ty = value.get("type").and_then(Json::as_str).unwrap_or("?");
    println!("[{ty}]");
    print!("{}", render_table(&["field", "value"], &rows));
}

fn main() -> ExitCode {
    let Some(cli) = parse_cli() else {
        return usage();
    };
    let stream = match TcpStream::connect(&cli.addr) {
        Ok(stream) => stream,
        Err(e) => {
            eprintln!("szctl: cannot connect to {}: {e}", cli.addr);
            return ExitCode::FAILURE;
        }
    };
    let Ok(read_half) = stream.try_clone() else {
        eprintln!("szctl: cannot clone stream");
        return ExitCode::FAILURE;
    };
    let mut writer = BufWriter::new(stream);
    if writeln!(writer, "{}", cli.request.to_json())
        .and_then(|()| writer.flush())
        .is_err()
    {
        eprintln!("szctl: send failed");
        return ExitCode::FAILURE;
    }

    let reader = BufReader::new(read_half);
    for line in reader.lines() {
        let Ok(line) = line else {
            eprintln!("szctl: connection lost");
            return ExitCode::FAILURE;
        };
        let Ok(value) = Json::parse(&line) else {
            eprintln!("szctl: malformed response: {line}");
            return ExitCode::FAILURE;
        };
        let ty = value.get("type").and_then(Json::as_str).unwrap_or("");
        match ty {
            // Streamed trace records: relay raw, keep reading.
            "run" | "summary" => println!("{line}"),
            "error" | "rejected" => {
                if cli.json {
                    println!("{line}");
                } else {
                    pretty_print(&value);
                }
                return ExitCode::FAILURE;
            }
            _ => {
                if cli.json {
                    println!("{line}");
                } else {
                    pretty_print(&value);
                }
                return ExitCode::SUCCESS;
            }
        }
    }
    eprintln!("szctl: server closed the connection without a terminal line");
    ExitCode::FAILURE
}
