//! `szctl` — thin client for the `sz-serve` daemon.
//!
//! ```text
//! szctl [--addr HOST:PORT] [--peers H:P,...] run <experiment> [options]
//! szctl [--addr HOST:PORT] status <job>
//! szctl [--addr HOST:PORT] cancel <job>
//! szctl [--addr HOST:PORT] [--peers H:P,...] stats
//! szctl [--addr HOST:PORT] [--peers H:P,...] watch
//! szctl [--addr HOST:PORT] [--peers H:P,...] shutdown
//! szctl [--addr HOST:PORT] loadgen [--clients N] [--requests N] [--waves N]
//! ```
//!
//! `run` options: `--bench a,b`, `--scale tiny|small|full`,
//! `--runs N`, `--seed N|0xHEX`, `--interval MS`, `--threads N`,
//! `--trace`, `--no-wait`, `--deadline MS`, `--before Ox`,
//! `--after Ox`, `--adaptive`, `--half-width X`, `--confidence X`,
//! `--band X`, `--batch N`, `--min-runs N`, `--max-runs N`,
//! `--sleep-ms N`, `--json` (raw JSONL instead of tables).
//!
//! The address defaults to `$SZ_SERVE_ADDR`, then `127.0.0.1:7457`.
//! `--peers` (default `$SZ_SERVE_PEERS`) fans `stats` and `shutdown`
//! out to every listed worker after the primary address — one command
//! inspects or stops a whole federation; a fanned-out `stats` also
//! prints one merged fleet summary (cache hit/miss totals, federation
//! counters, connection/write errors). `watch` subscribes to the
//! sentinel alert stream of the primary (and each `--peers` node) and
//! relays alert lines as JSONL until the server goes away. `loadgen`
//! drives concurrent cache-hit load against the primary address and
//! reports latency quantiles.
//!
//! Streamed trace records are always relayed raw; the terminal line is
//! pretty-printed unless `--json` is set. Exit code 0 for `result` /
//! `accepted` / single-line responses, 1 for `error` / `rejected`.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::process::ExitCode;

use sz_harness::report::render_table;
use sz_harness::Json;
use sz_serve::loadgen::{run_loadgen, LoadgenConfig};
use sz_serve::proto::parse_peers;
use sz_serve::{AdaptiveParams, Experiment, Request, RunRequest, DEFAULT_ADDR};

fn usage() -> ExitCode {
    eprintln!(
        "usage: szctl [--addr HOST:PORT] [--peers H:P,...] \
         <run|status|cancel|stats|watch|shutdown|loadgen> ...\n\
         run <experiment> [--bench a,b] [--scale tiny|small|full] [--runs N]\n\
         \x20   [--seed N] [--interval MS] [--threads N] [--trace] [--no-wait]\n\
         \x20   [--deadline MS] [--before Ox] [--after Ox] [--adaptive]\n\
         \x20   [--half-width X] [--confidence X] [--band X] [--batch N]\n\
         \x20   [--min-runs N] [--max-runs N] [--sleep-ms N] [--json]\n\
         loadgen [--clients N] [--requests N] [--waves N] [--json]"
    );
    ExitCode::from(2)
}

enum Command {
    Request(Request),
    Loadgen(LoadgenConfig),
    Watch,
}

struct Cli {
    addr: String,
    peers: Vec<String>,
    json: bool,
    command: Command,
}

fn parse_u64(value: &str) -> Option<u64> {
    if let Some(hex) = value
        .strip_prefix("0x")
        .or_else(|| value.strip_prefix("0X"))
    {
        u64::from_str_radix(hex, 16).ok()
    } else {
        value.parse().ok()
    }
}

fn parse_cli() -> Option<Cli> {
    let mut addr = std::env::var("SZ_SERVE_ADDR").unwrap_or_else(|_| DEFAULT_ADDR.to_string());
    let mut peers_source = std::env::var("SZ_SERVE_PEERS").ok();
    let mut json = false;
    let mut args = std::env::args().skip(1).peekable();
    while args
        .peek()
        .is_some_and(|a| a == "--addr" || a == "--json" || a == "--peers")
    {
        match args.next().as_deref() {
            Some("--addr") => addr = args.next()?,
            Some("--peers") => peers_source = Some(args.next()?),
            Some("--json") => json = true,
            _ => return None,
        }
    }
    let peers = match peers_source {
        Some(list) => match parse_peers(&list) {
            Ok(peers) => peers,
            Err(e) => {
                eprintln!("szctl: {e}");
                return None;
            }
        },
        None => Vec::new(),
    };
    let command = args.next()?;
    let command = match command.as_str() {
        "stats" => Command::Request(Request::Stats),
        "watch" => {
            // Watch output is raw JSONL either way; accept the flag
            // for symmetry with the other subcommands.
            for flag in args.by_ref() {
                match flag.as_str() {
                    "--json" => json = true,
                    _ => return None,
                }
            }
            Command::Watch
        }
        "shutdown" => Command::Request(Request::Shutdown),
        "status" => Command::Request(Request::Status {
            job: parse_u64(&args.next()?)?,
        }),
        "cancel" => Command::Request(Request::Cancel {
            job: parse_u64(&args.next()?)?,
        }),
        "loadgen" => {
            let mut config = LoadgenConfig {
                addr: addr.clone(),
                ..LoadgenConfig::default()
            };
            while let Some(flag) = args.next() {
                match flag.as_str() {
                    "--json" => json = true,
                    "--clients" => match args.next()?.parse() {
                        Ok(n) if n > 0 => config.clients = n,
                        _ => return None,
                    },
                    "--requests" => match args.next()?.parse() {
                        Ok(n) if n > 0 => config.requests_per_client = n,
                        _ => return None,
                    },
                    "--waves" => match args.next()?.parse() {
                        Ok(n) if n > 0 => config.waves = n,
                        _ => return None,
                    },
                    _ => return None,
                }
            }
            Command::Loadgen(config)
        }
        "run" => {
            let experiment = Experiment::from_name(&args.next()?)?;
            let mut run = RunRequest::quick(experiment);
            let mut adaptive = AdaptiveParams::default();
            let mut wants_adaptive = false;
            while let Some(flag) = args.next() {
                match flag.as_str() {
                    "--trace" => run.trace = true,
                    "--no-wait" => run.wait = false,
                    "--adaptive" => wants_adaptive = true,
                    "--json" => json = true,
                    "--bench" => {
                        run.benchmarks =
                            Some(args.next()?.split(',').map(str::to_string).collect());
                    }
                    "--scale" => {
                        let value = args.next()?;
                        // Route through the parser so scale implies
                        // its default interval, as on the wire.
                        let line = format!(
                            r#"{{"type":"run","experiment":"selftest-sleep","scale":"{value}"}}"#
                        );
                        let Ok(Request::Run(parsed)) = Request::parse(&line) else {
                            return None;
                        };
                        run.scale = parsed.scale;
                        run.interval_ms = parsed.interval_ms;
                    }
                    "--runs" => run.runs = parse_u64(&args.next()?)? as usize,
                    "--seed" => run.seed_base = parse_u64(&args.next()?)?,
                    "--interval" => run.interval_ms = args.next()?.parse().ok()?,
                    "--threads" => run.threads = Some(parse_u64(&args.next()?)? as usize),
                    "--deadline" => run.deadline_ms = Some(parse_u64(&args.next()?)?),
                    "--before" => run.before_opt = args.next()?,
                    "--after" => run.after_opt = args.next()?,
                    "--half-width" => adaptive.half_width = args.next()?.parse().ok()?,
                    "--confidence" => adaptive.confidence = args.next()?.parse().ok()?,
                    "--band" => adaptive.band = args.next()?.parse().ok()?,
                    "--batch" => adaptive.batch = parse_u64(&args.next()?)? as usize,
                    "--min-runs" => adaptive.min_runs = parse_u64(&args.next()?)? as usize,
                    "--max-runs" => adaptive.max_runs = parse_u64(&args.next()?)? as usize,
                    "--sleep-ms" => run.sleep_ms = parse_u64(&args.next()?)?,
                    _ => return None,
                }
            }
            if wants_adaptive {
                run.adaptive = Some(adaptive);
            }
            Command::Request(Request::Run(run))
        }
        _ => return None,
    };
    if args.next().is_some() {
        return None;
    }
    Some(Cli {
        addr,
        peers,
        json,
        command,
    })
}

fn pretty_print(value: &Json) {
    let Json::Obj(fields) = value else {
        println!("{value}");
        return;
    };
    let rows: Vec<Vec<String>> = fields
        .iter()
        .filter(|(k, _)| k != "type")
        .map(|(k, v)| vec![k.clone(), v.to_string()])
        .collect();
    let ty = value.get("type").and_then(Json::as_str).unwrap_or("?");
    println!("[{ty}]");
    print!("{}", render_table(&["field", "value"], &rows));
}

/// Sends `request` to `addr` and relays the reply stream; returns the
/// command's exit code plus the terminal response line (when one
/// arrived) so fan-out callers can merge across nodes.
fn issue(addr: &str, request: &Request, json: bool) -> (ExitCode, Option<Json>) {
    let stream = match TcpStream::connect(addr) {
        Ok(stream) => stream,
        Err(e) => {
            eprintln!("szctl: cannot connect to {addr}: {e}");
            return (ExitCode::FAILURE, None);
        }
    };
    let Ok(read_half) = stream.try_clone() else {
        eprintln!("szctl: cannot clone stream");
        return (ExitCode::FAILURE, None);
    };
    let mut writer = BufWriter::new(stream);
    if writeln!(writer, "{}", request.to_json())
        .and_then(|()| writer.flush())
        .is_err()
    {
        eprintln!("szctl: send failed");
        return (ExitCode::FAILURE, None);
    }

    let reader = BufReader::new(read_half);
    for line in reader.lines() {
        let Ok(line) = line else {
            eprintln!("szctl: connection lost");
            return (ExitCode::FAILURE, None);
        };
        let Ok(value) = Json::parse(&line) else {
            eprintln!("szctl: malformed response: {line}");
            return (ExitCode::FAILURE, None);
        };
        let ty = value.get("type").and_then(Json::as_str).unwrap_or("");
        match ty {
            // Streamed trace records: relay raw, keep reading.
            "run" | "summary" => println!("{line}"),
            "error" | "rejected" => {
                if json {
                    println!("{line}");
                } else {
                    pretty_print(&value);
                }
                return (ExitCode::FAILURE, Some(value));
            }
            _ => {
                if json {
                    println!("{line}");
                } else {
                    pretty_print(&value);
                }
                return (ExitCode::SUCCESS, Some(value));
            }
        }
    }
    eprintln!("szctl: server closed the connection without a terminal line");
    (ExitCode::FAILURE, None)
}

/// Tails the sentinel alert stream of every listed node, relaying
/// each pushed line as raw JSONL until the servers go away.
fn watch(addrs: &[String]) -> ExitCode {
    let handles: Vec<std::thread::JoinHandle<bool>> = addrs
        .iter()
        .map(|addr| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let stream = match TcpStream::connect(&addr) {
                    Ok(stream) => stream,
                    Err(e) => {
                        eprintln!("szctl: cannot connect to {addr}: {e}");
                        return false;
                    }
                };
                let Ok(read_half) = stream.try_clone() else {
                    eprintln!("szctl: cannot clone stream");
                    return false;
                };
                let mut writer = BufWriter::new(stream);
                if writeln!(writer, "{}", Request::Watch.to_json())
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    eprintln!("szctl: send failed to {addr}");
                    return false;
                }
                // The ack, then pushed alerts; println! locks stdout
                // per line, so fleet streams never interleave mid-line.
                for line in BufReader::new(read_half).lines() {
                    match line {
                        Ok(line) => println!("{line}"),
                        Err(_) => break,
                    }
                }
                // EOF means the server shut down — a clean end of watch.
                true
            })
        })
        .collect();
    let ok = handles
        .into_iter()
        .all(|handle| handle.join().unwrap_or(false));
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn sum_path(blobs: &[Json], path: &[&str]) -> u64 {
    blobs
        .iter()
        .map(|blob| {
            let mut node = blob;
            for key in path {
                match node.get(key) {
                    Some(next) => node = next,
                    None => return 0,
                }
            }
            node.as_u64().unwrap_or(0)
        })
        .sum()
}

/// One merged row across every node's `stats` blob: totals for the
/// cache, the federation counters, and connection-level errors.
fn fleet_summary(blobs: &[Json]) -> Json {
    Json::obj([
        ("type", "fleet_summary".into()),
        ("nodes", blobs.len().into()),
        ("cache_hits", sum_path(blobs, &["cache", "hits"]).into()),
        ("cache_misses", sum_path(blobs, &["cache", "misses"]).into()),
        (
            "shard_cache_hits",
            sum_path(blobs, &["federation", "shard_cache_hits"]).into(),
        ),
        (
            "forwarded",
            sum_path(blobs, &["federation", "forwarded"]).into(),
        ),
        (
            "forward_fallbacks",
            sum_path(blobs, &["federation", "forward_fallbacks"]).into(),
        ),
        (
            "shard_fanouts",
            sum_path(blobs, &["federation", "shard_fanouts"]).into(),
        ),
        (
            "shard_failovers",
            sum_path(blobs, &["federation", "shard_failovers"]).into(),
        ),
        ("conn_errors", sum_path(blobs, &["conn_errors"]).into()),
        ("write_errors", sum_path(blobs, &["write_errors"]).into()),
        (
            "sentinel_alerts",
            sum_path(blobs, &["sentinel_alerts"]).into(),
        ),
    ])
}

fn main() -> ExitCode {
    let Some(cli) = parse_cli() else {
        return usage();
    };
    let request = match cli.command {
        Command::Loadgen(config) => {
            let report = match run_loadgen(&config) {
                Ok(report) => report,
                Err(e) => {
                    eprintln!("szctl: loadgen: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if cli.json {
                println!("{}", report.to_json());
            } else {
                pretty_print(&Json::obj([
                    ("type", "loadgen".into()),
                    ("clients", report.clients.into()),
                    ("requests", report.requests.into()),
                    ("errors", report.errors.into()),
                    ("p50_us", report.p50_us.into()),
                    ("p99_us", report.p99_us.into()),
                    ("throughput_rps", report.throughput_rps.into()),
                ]));
            }
            return if report.errors == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
        Command::Watch => {
            let mut addrs = vec![cli.addr.clone()];
            addrs.extend(cli.peers.iter().cloned());
            return watch(&addrs);
        }
        Command::Request(request) => request,
    };

    // `stats` and `shutdown` fan out across the federation; everything
    // else targets the primary address only.
    let fan_out = matches!(request, Request::Stats | Request::Shutdown);
    let (mut worst, first) = issue(&cli.addr, &request, cli.json);
    let mut stats_blobs: Vec<Json> = Vec::new();
    let is_stats = |v: &Json| v.get("type").and_then(Json::as_str) == Some("stats");
    if let Some(value) = first {
        if is_stats(&value) {
            stats_blobs.push(value);
        }
    }
    if fan_out {
        for peer in &cli.peers {
            if !cli.json {
                println!("-- {peer}");
            }
            let (code, value) = issue(peer, &request, cli.json);
            if code != ExitCode::SUCCESS {
                worst = code;
            }
            if let Some(value) = value {
                if is_stats(&value) {
                    stats_blobs.push(value);
                }
            }
        }
        // One merged row for the whole fleet, so an operator polling
        // stats gets a single line of totals after the per-peer blobs.
        if matches!(request, Request::Stats) && !cli.peers.is_empty() {
            let summary = fleet_summary(&stats_blobs);
            if cli.json {
                println!("{summary}");
            } else {
                println!("-- fleet");
                pretty_print(&summary);
            }
        }
    }
    worst
}
