//! The wire protocol: one JSON object per line, in both directions.
//!
//! Requests and responses are plain [`Json`] values — the same
//! hand-rolled type the trace sinks emit — so the protocol needs no
//! new dependencies and every run record the server streams back is
//! byte-compatible with the JSONL traces `sz-bench` writes.
//!
//! ## Requests
//!
//! | `type` | fields |
//! |---|---|
//! | `run` | `experiment`, plus the options below |
//! | `run_shard` | a `run`, plus `shard_start` / `shard_count` |
//! | `status` | `job` |
//! | `cancel` | `job` |
//! | `stats` | — |
//! | `watch` | — |
//! | `shutdown` | — |
//!
//! `run_shard` is the federation's peer message: a coordinator splits
//! a fixed-protocol `evaluate` into contiguous run-index shards, each
//! worker executes its window through
//! `sz_harness::runner::stabilized_reports_range` (run `i` always
//! uses `seed_base + i`, so a window is a bit-identical slice of the
//! full run's stream), and answers with one `shard_result` line
//! carrying its trace chunks and raw sample bits.
//!
//! `run` options (all optional unless noted): `benchmarks` (array of
//! names; default all), `scale` (`tiny`/`small`/`full`), `runs`,
//! `seed_base`, `interval_ms`, `trace` (stream per-run records),
//! `wait` (default `true`; `false` returns an `accepted` line with a
//! job id to poll), `deadline_ms`, `before`/`after` (opt levels for
//! `evaluate`), `adaptive` (object: `half_width`, `confidence`,
//! `band`, `batch`, `min_runs`, `max_runs`), `sleep_ms`
//! (`selftest-sleep` only).
//!
//! ## Responses
//!
//! A `run` with `wait` answers with zero or more trace lines (`run` /
//! `summary` records, when `trace` is set) followed by exactly one
//! terminal line: `result`, `rejected` (backpressure, with
//! `retry_after_ms`), or `error`. Other requests answer with a single
//! line of their own type.

use sz_harness::Json;
use sz_workloads::Scale;

/// Default listen / connect address.
pub const DEFAULT_ADDR: &str = "127.0.0.1:7457";

/// The experiments the service can run: the seven paper artifacts,
/// the §2.4 change evaluation (fixed or adaptive), and a sleep used
/// by health checks and the test suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Experiment {
    /// Table 1 — normality / variance-homogeneity p-values.
    Table1,
    /// Figure 5 — QQ panels (derived from Table 1's samples).
    Fig5,
    /// Figure 6 — overhead vs randomized link order.
    Fig6,
    /// Figure 7 — optimization speedups with significance.
    Fig7,
    /// §6.1 — suite-wide ANOVA (derived from Figure 7's samples).
    Anova,
    /// §3.2 — NIST randomness of heap addresses.
    Nist,
    /// §1/§5 — link-order and environment measurement bias.
    Bias,
    /// §2.4 — does a change matter? Fixed-N or adaptive sampling.
    Evaluate,
    /// Sleeps `sleep_ms`, checking cancellation — never cached.
    SelftestSleep,
}

impl Experiment {
    /// Wire name.
    pub fn name(self) -> &'static str {
        match self {
            Experiment::Table1 => "table1",
            Experiment::Fig5 => "fig5",
            Experiment::Fig6 => "fig6",
            Experiment::Fig7 => "fig7",
            Experiment::Anova => "anova",
            Experiment::Nist => "nist",
            Experiment::Bias => "bias",
            Experiment::Evaluate => "evaluate",
            Experiment::SelftestSleep => "selftest-sleep",
        }
    }

    /// Parses a wire name.
    pub fn from_name(name: &str) -> Option<Experiment> {
        Some(match name {
            "table1" => Experiment::Table1,
            "fig5" => Experiment::Fig5,
            "fig6" => Experiment::Fig6,
            "fig7" => Experiment::Fig7,
            "anova" => Experiment::Anova,
            "nist" => Experiment::Nist,
            "bias" => Experiment::Bias,
            "evaluate" => Experiment::Evaluate,
            "selftest-sleep" => Experiment::SelftestSleep,
            _ => return None,
        })
    }

    /// Whether results of this experiment may be cached. Only the
    /// sleep is excluded: it exists to occupy a worker, not to
    /// produce a result worth keeping.
    pub fn cacheable(self) -> bool {
        !matches!(self, Experiment::SelftestSleep)
    }
}

/// Parameters of the adaptive sequential-sampling mode.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveParams {
    /// Stop once the confidence interval's half-width, relative to the
    /// baseline mean, drops to or below this value.
    pub half_width: f64,
    /// Confidence level of the interval (default 0.95).
    pub confidence: f64,
    /// Practical-equivalence band half-width for the verdict stopping
    /// rule: effects inside `[1/(1+band), 1+band]` are equivalent.
    pub band: f64,
    /// Samples drawn per arm per batch.
    pub batch: usize,
    /// Minimum samples per arm before the stopping rule may fire.
    pub min_runs: usize,
    /// Hard cap per arm — also the "fixed protocol" run count the
    /// savings are reported against (the paper uses 30).
    pub max_runs: usize,
}

impl Default for AdaptiveParams {
    fn default() -> Self {
        AdaptiveParams {
            half_width: 0.1,
            confidence: 0.95,
            band: 0.05,
            batch: 5,
            min_runs: 5,
            max_runs: 30,
        }
    }
}

/// A contiguous window of the fixed protocol's run-index stream:
/// runs `start .. start + count` out of the request's `runs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRange {
    /// First run index (0-based).
    pub start: usize,
    /// Number of runs in this shard (>= 1).
    pub count: usize,
}

/// Splits `total` runs into `workers` contiguous shards, front-loading
/// the remainder so shard sizes differ by at most one. Empty when
/// either input is zero.
pub fn plan_shards(total: usize, workers: usize) -> Vec<ShardRange> {
    if total == 0 || workers == 0 {
        return Vec::new();
    }
    let workers = workers.min(total);
    let base = total / workers;
    let extra = total % workers;
    let mut shards = Vec::with_capacity(workers);
    let mut start = 0;
    for i in 0..workers {
        let count = base + usize::from(i < extra);
        shards.push(ShardRange { start, count });
        start += count;
    }
    shards
}

/// Checks that `shards` tile `0..total` exactly: non-empty, starting
/// at 0, contiguous, non-overlapping, and fully covering.
///
/// # Errors
///
/// A human-readable description of the first violation.
pub fn validate_shard_plan(shards: &[ShardRange], total: usize) -> Result<(), String> {
    if shards.is_empty() {
        return Err("shard plan is empty".to_string());
    }
    let mut next = 0usize;
    for s in shards {
        if s.count == 0 {
            return Err(format!("shard {}+0 is empty", s.start));
        }
        if s.start < next {
            return Err(format!(
                "shard {}+{} overlaps the previous shard (next expected start {next})",
                s.start, s.count
            ));
        }
        if s.start > next {
            return Err(format!("shard plan has a gap before run {}", s.start));
        }
        next = s
            .start
            .checked_add(s.count)
            .ok_or_else(|| format!("bad shard range {}+{}", s.start, s.count))?;
    }
    if next != total {
        return Err(format!("shard plan covers {next} of {total} runs"));
    }
    Ok(())
}

/// Parses a comma-separated `host:port` peer list (the `--peers` flag
/// and `SZ_SERVE_PEERS` format).
///
/// # Errors
///
/// Empty entries, entries without a `:port`, non-numeric ports, and
/// duplicates are rejected with a message naming the offender.
pub fn parse_peers(list: &str) -> Result<Vec<String>, String> {
    let mut peers = Vec::new();
    for raw in list.split(',') {
        let peer = raw.trim();
        if peer.is_empty() {
            return Err(format!("malformed peer list {list:?}: empty entry"));
        }
        let Some((host, port)) = peer.rsplit_once(':') else {
            return Err(format!("malformed peer {peer:?}: missing :port"));
        };
        if host.is_empty() || port.parse::<u16>().is_err() {
            return Err(format!("malformed peer {peer:?}: want host:port"));
        }
        if peers.iter().any(|p| p == peer) {
            return Err(format!("duplicate peer {peer:?}"));
        }
        peers.push(peer.to_string());
    }
    Ok(peers)
}

/// One `run` request: which experiment, over which benchmarks, under
/// which options. `threads`, `trace`, `wait`, and `deadline_ms` are
/// execution hints and do **not** enter the cache key (results are
/// bit-identical regardless).
#[derive(Debug, Clone, PartialEq)]
pub struct RunRequest {
    /// The experiment to run.
    pub experiment: Experiment,
    /// Restrict to these benchmarks (None = the whole suite).
    pub benchmarks: Option<Vec<String>>,
    /// Workload scale.
    pub scale: Scale,
    /// Runs per configuration.
    pub runs: usize,
    /// Base seed; run `i` uses `seed_base + i`.
    pub seed_base: u64,
    /// Re-randomization interval in simulated milliseconds.
    pub interval_ms: f64,
    /// Worker threads for this job (None = server default).
    pub threads: Option<usize>,
    /// Stream per-run JSONL records back to the client.
    pub trace: bool,
    /// Block until the job completes (`false`: return a job id).
    pub wait: bool,
    /// Fail the job if it cannot finish within this many wall-clock
    /// milliseconds of submission.
    pub deadline_ms: Option<u64>,
    /// `evaluate` only: optimization level of the "before" program.
    pub before_opt: String,
    /// `evaluate` only: optimization level of the "after" program.
    pub after_opt: String,
    /// `evaluate` only: adaptive sequential sampling parameters
    /// (None = fixed `runs`-sample protocol).
    pub adaptive: Option<AdaptiveParams>,
    /// `selftest-sleep` only: how long to sleep.
    pub sleep_ms: u64,
    /// `run_shard` only: the contiguous run window to execute (None =
    /// an ordinary full run).
    pub shard: Option<ShardRange>,
}

impl RunRequest {
    /// A quick request for `experiment` with test-friendly defaults
    /// (Tiny scale, 6 runs).
    pub fn quick(experiment: Experiment) -> RunRequest {
        RunRequest {
            experiment,
            benchmarks: None,
            scale: Scale::Tiny,
            runs: 6,
            seed_base: 0x5EED_0000,
            interval_ms: 0.005,
            threads: None,
            trace: false,
            wait: true,
            deadline_ms: None,
            before_opt: "O1".to_string(),
            after_opt: "O2".to_string(),
            adaptive: None,
            sleep_ms: 25,
            shard: None,
        }
    }
}

/// A parsed client request.
///
/// `Run` dwarfs the other variants, but requests are parsed once per
/// line and consumed immediately — never stored in bulk — so boxing
/// the spec would buy nothing and cost an allocation per request.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run an experiment.
    Run(RunRequest),
    /// Poll a job's state.
    Status {
        /// Job id from an `accepted` line.
        job: u64,
    },
    /// Cancel a queued (always) or running (best-effort) job.
    Cancel {
        /// Job id from an `accepted` line.
        job: u64,
    },
    /// Server counters: cache, scheduler, adaptive savings.
    Stats,
    /// Subscribe this connection to the sentinel's alert stream: the
    /// server answers with one `watch_ack` line, then pushes `alert`
    /// lines as completed jobs trip the change-point detector. The
    /// connection should be dedicated to watching.
    Watch,
    /// Stop accepting connections, drain, and exit.
    Shutdown,
}

fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Full => "full",
    }
}

fn scale_from_name(name: &str) -> Option<Scale> {
    Some(match name {
        "tiny" => Scale::Tiny,
        "small" => Scale::Small,
        "full" => Scale::Full,
        _ => return None,
    })
}

/// Default re-randomization interval (simulated ms) for a scale —
/// matches `ExperimentOptions::{quick, paper}`.
fn default_interval_ms(scale: Scale) -> f64 {
    match scale {
        Scale::Tiny => 0.005,
        Scale::Small | Scale::Full => 0.05,
    }
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed JSON, an unknown
    /// `type` / `experiment` / `scale`, or ill-typed fields.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = Json::parse(line).map_err(|e| e.to_string())?;
        let kind = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or("request is missing a string \"type\" field")?;
        match kind {
            "run" => Ok(Request::Run(parse_run(&v)?)),
            "run_shard" => Ok(Request::Run(parse_run_shard(&v)?)),
            "status" => Ok(Request::Status { job: job_id(&v)? }),
            "cancel" => Ok(Request::Cancel { job: job_id(&v)? }),
            "stats" => Ok(Request::Stats),
            "watch" => Ok(Request::Watch),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown request type {other:?}")),
        }
    }

    /// Encodes the request as its wire object (inverse of
    /// [`Request::parse`]).
    pub fn to_json(&self) -> Json {
        match self {
            Request::Run(run) => run_to_json(run),
            Request::Status { job } => {
                Json::obj([("type", "status".into()), ("job", (*job).into())])
            }
            Request::Cancel { job } => {
                Json::obj([("type", "cancel".into()), ("job", (*job).into())])
            }
            Request::Stats => Json::obj([("type", "stats".into())]),
            Request::Watch => Json::obj([("type", "watch".into())]),
            Request::Shutdown => Json::obj([("type", "shutdown".into())]),
        }
    }
}

fn job_id(v: &Json) -> Result<u64, String> {
    v.get("job")
        .and_then(Json::as_u64)
        .ok_or_else(|| "missing integer \"job\" field".to_string())
}

fn parse_run(v: &Json) -> Result<RunRequest, String> {
    let name = v
        .get("experiment")
        .and_then(Json::as_str)
        .ok_or("run request is missing a string \"experiment\" field")?;
    let experiment =
        Experiment::from_name(name).ok_or_else(|| format!("unknown experiment {name:?}"))?;
    let mut req = RunRequest::quick(experiment);

    if let Some(b) = v.get("benchmarks") {
        let arr = b.as_arr().ok_or("\"benchmarks\" must be an array")?;
        let names: Result<Vec<String>, String> = arr
            .iter()
            .map(|j| {
                j.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "\"benchmarks\" entries must be strings".to_string())
            })
            .collect();
        req.benchmarks = Some(names?);
    }
    if let Some(s) = v.get("scale") {
        let name = s.as_str().ok_or("\"scale\" must be a string")?;
        req.scale = scale_from_name(name).ok_or_else(|| format!("unknown scale {name:?}"))?;
        req.interval_ms = default_interval_ms(req.scale);
    }
    if let Some(r) = v.get("runs") {
        req.runs = r.as_u64().ok_or("\"runs\" must be an integer")? as usize;
    }
    if req.runs == 0 {
        return Err("\"runs\" must be at least 1".to_string());
    }
    if let Some(s) = v.get("seed_base") {
        req.seed_base = s.as_u64().ok_or("\"seed_base\" must be an integer")?;
    }
    if let Some(i) = v.get("interval_ms") {
        let ms = i.as_f64().ok_or("\"interval_ms\" must be a number")?;
        if !(ms.is_finite() && ms > 0.0) {
            return Err("\"interval_ms\" must be a positive number".to_string());
        }
        req.interval_ms = ms;
    }
    if let Some(t) = v.get("threads") {
        req.threads = Some(t.as_u64().ok_or("\"threads\" must be an integer")? as usize);
    }
    if let Some(t) = v.get("trace") {
        req.trace = t.as_bool().ok_or("\"trace\" must be a bool")?;
    }
    if let Some(w) = v.get("wait") {
        req.wait = w.as_bool().ok_or("\"wait\" must be a bool")?;
    }
    if let Some(d) = v.get("deadline_ms") {
        req.deadline_ms = Some(d.as_u64().ok_or("\"deadline_ms\" must be an integer")?);
    }
    for (field, slot) in [
        ("before", &mut req.before_opt),
        ("after", &mut req.after_opt),
    ] {
        if let Some(o) = v.get(field) {
            let name = o.as_str().ok_or("opt levels must be strings")?;
            if !matches!(name, "O0" | "O1" | "O2" | "O3") {
                return Err(format!("unknown optimization level {name:?}"));
            }
            *slot = name.to_string();
        }
    }
    if let Some(a) = v.get("adaptive") {
        let mut params = AdaptiveParams {
            max_runs: req.runs.max(AdaptiveParams::default().min_runs),
            ..AdaptiveParams::default()
        };
        if let Some(h) = a.get("half_width") {
            params.half_width = h.as_f64().ok_or("\"half_width\" must be a number")?;
            if !(params.half_width.is_finite() && params.half_width > 0.0) {
                return Err("\"half_width\" must be a positive number".to_string());
            }
        }
        if let Some(c) = a.get("confidence") {
            params.confidence = c.as_f64().ok_or("\"confidence\" must be a number")?;
            if !(params.confidence > 0.0 && params.confidence < 1.0) {
                return Err("\"confidence\" must be in (0, 1)".to_string());
            }
        }
        if let Some(b) = a.get("band") {
            params.band = b.as_f64().ok_or("\"band\" must be a number")?;
            if !(params.band.is_finite() && params.band > 0.0) {
                return Err("\"band\" must be a positive number".to_string());
            }
        }
        if let Some(b) = a.get("batch") {
            params.batch = b.as_u64().ok_or("\"batch\" must be an integer")?.max(1) as usize;
        }
        if let Some(m) = a.get("min_runs") {
            params.min_runs = m.as_u64().ok_or("\"min_runs\" must be an integer")?.max(2) as usize;
        }
        if let Some(m) = a.get("max_runs") {
            params.max_runs = m.as_u64().ok_or("\"max_runs\" must be an integer")? as usize;
        }
        if params.max_runs < params.min_runs {
            return Err("\"max_runs\" must be >= \"min_runs\"".to_string());
        }
        req.adaptive = Some(params);
    }
    if let Some(s) = v.get("sleep_ms") {
        req.sleep_ms = s.as_u64().ok_or("\"sleep_ms\" must be an integer")?;
    }
    if req.adaptive.is_some() && req.experiment != Experiment::Evaluate {
        return Err("\"adaptive\" only applies to the evaluate experiment".to_string());
    }
    Ok(req)
}

fn parse_run_shard(v: &Json) -> Result<RunRequest, String> {
    let mut req = parse_run(v)?;
    if req.experiment != Experiment::Evaluate {
        return Err("run_shard only applies to the evaluate experiment".to_string());
    }
    if req.adaptive.is_some() {
        return Err("run_shard cannot be adaptive (shards are fixed-protocol windows)".to_string());
    }
    let start = v
        .get("shard_start")
        .and_then(Json::as_u64)
        .ok_or("run_shard is missing an integer \"shard_start\" field")? as usize;
    let count = v
        .get("shard_count")
        .and_then(Json::as_u64)
        .ok_or("run_shard is missing an integer \"shard_count\" field")? as usize;
    if count == 0 {
        return Err("bad shard range: \"shard_count\" must be at least 1".to_string());
    }
    if start.checked_add(count).is_none_or(|end| end > req.runs) {
        return Err(format!(
            "bad shard range: {start}+{count} exceeds runs={}",
            req.runs
        ));
    }
    req.shard = Some(ShardRange { start, count });
    Ok(req)
}

fn run_to_json(run: &RunRequest) -> Json {
    let kind = if run.shard.is_some() {
        "run_shard"
    } else {
        "run"
    };
    let mut fields: Vec<(String, Json)> = vec![
        ("type".to_string(), kind.into()),
        ("experiment".to_string(), run.experiment.name().into()),
        ("scale".to_string(), scale_name(run.scale).into()),
        ("runs".to_string(), run.runs.into()),
        ("seed_base".to_string(), run.seed_base.into()),
        ("interval_ms".to_string(), run.interval_ms.into()),
        ("trace".to_string(), run.trace.into()),
        ("wait".to_string(), run.wait.into()),
        ("before".to_string(), run.before_opt.as_str().into()),
        ("after".to_string(), run.after_opt.as_str().into()),
        ("sleep_ms".to_string(), run.sleep_ms.into()),
    ];
    if let Some(b) = &run.benchmarks {
        fields.push((
            "benchmarks".to_string(),
            Json::Arr(b.iter().map(|n| n.as_str().into()).collect()),
        ));
    }
    if let Some(t) = run.threads {
        fields.push(("threads".to_string(), t.into()));
    }
    if let Some(d) = run.deadline_ms {
        fields.push(("deadline_ms".to_string(), d.into()));
    }
    if let Some(a) = &run.adaptive {
        fields.push((
            "adaptive".to_string(),
            Json::obj([
                ("half_width", a.half_width.into()),
                ("confidence", a.confidence.into()),
                ("band", a.band.into()),
                ("batch", a.batch.into()),
                ("min_runs", a.min_runs.into()),
                ("max_runs", a.max_runs.into()),
            ]),
        ));
    }
    if let Some(shard) = &run.shard {
        fields.push(("shard_start".to_string(), shard.start.into()));
        fields.push(("shard_count".to_string(), shard.count.into()));
    }
    Json::Obj(fields)
}

/// Canonical scale name on the wire (re-exported for the cache key
/// and the client).
pub fn scale_wire_name(scale: Scale) -> &'static str {
    scale_name(scale)
}

/// A worker's answer to a `run_shard`: the shard's trace chunks
/// (JSONL, embedded as JSON strings) plus the raw sample values.
///
/// Samples travel as `f64::to_bits` integers — [`Json`] keeps `u64`
/// lossless end to end, so the coordinator reassembles *exactly* the
/// doubles the worker measured and the merged summary statistics are
/// bit-identical to a single-node run's.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardResult {
    /// Which window of the run stream this answers.
    pub shard: ShardRange,
    /// The single benchmark the evaluate ran.
    pub benchmark: String,
    /// Whether the worker served the shard from its cache.
    pub cached: bool,
    /// `run` records of the `before` arm, in run-index order.
    pub before_trace: String,
    /// `run` records of the `after` arm, in run-index order.
    pub after_trace: String,
    /// Per-run seconds of the `before` arm.
    pub before: Vec<f64>,
    /// Per-run seconds of the `after` arm.
    pub after: Vec<f64>,
}

fn bits_array(samples: &[f64]) -> Json {
    Json::Arr(samples.iter().map(|s| s.to_bits().into()).collect())
}

fn samples_from_bits(v: &Json, field: &str) -> Result<Vec<f64>, String> {
    let arr = v
        .get(field)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("shard_result is missing a \"{field}\" array"))?;
    arr.iter()
        .map(|j| match j {
            Json::U64(bits) => Ok(f64::from_bits(*bits)),
            _ => Err(format!("\"{field}\" entries must be u64 sample bits")),
        })
        .collect()
}

impl ShardResult {
    /// Encodes the wire line (`type: "shard_result"`).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("type", "shard_result".into()),
            ("shard_start", self.shard.start.into()),
            ("shard_count", self.shard.count.into()),
            ("benchmark", self.benchmark.as_str().into()),
            ("cached", self.cached.into()),
            ("before_trace", self.before_trace.as_str().into()),
            ("after_trace", self.after_trace.as_str().into()),
            ("before_bits", bits_array(&self.before)),
            ("after_bits", bits_array(&self.after)),
        ])
    }

    /// Decodes a wire line produced by [`ShardResult::to_json`].
    ///
    /// # Errors
    ///
    /// Names the missing or ill-typed field; a `count` that does not
    /// match the sample arrays is rejected.
    pub fn parse(line: &str) -> Result<ShardResult, String> {
        let v = Json::parse(line).map_err(|e| e.to_string())?;
        if v.get("type").and_then(Json::as_str) != Some("shard_result") {
            return Err("not a shard_result line".to_string());
        }
        let field_u64 = |name: &str| {
            v.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("shard_result is missing an integer \"{name}\" field"))
        };
        let field_str = |name: &str| {
            v.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("shard_result is missing a string \"{name}\" field"))
        };
        let shard = ShardRange {
            start: field_u64("shard_start")? as usize,
            count: field_u64("shard_count")? as usize,
        };
        let before = samples_from_bits(&v, "before_bits")?;
        let after = samples_from_bits(&v, "after_bits")?;
        if before.len() != shard.count || after.len() != shard.count {
            return Err(format!(
                "shard_result sample counts ({}, {}) do not match shard_count {}",
                before.len(),
                after.len(),
                shard.count
            ));
        }
        Ok(ShardResult {
            shard,
            benchmark: field_str("benchmark")?,
            cached: v.get("cached").and_then(Json::as_bool).unwrap_or(false),
            before_trace: field_str("before_trace")?,
            after_trace: field_str("after_trace")?,
            before,
            after,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_request_round_trips() {
        let mut run = RunRequest::quick(Experiment::Fig7);
        run.benchmarks = Some(vec!["bzip2".into(), "mcf".into()]);
        run.runs = 12;
        run.threads = Some(3);
        run.deadline_ms = Some(5_000);
        run.trace = true;
        run.adaptive = None;
        let line = Request::Run(run.clone()).to_json().to_string();
        let parsed = Request::parse(&line).unwrap();
        assert_eq!(parsed, Request::Run(run));
    }

    #[test]
    fn adaptive_round_trips() {
        let mut run = RunRequest::quick(Experiment::Evaluate);
        run.benchmarks = Some(vec!["gobmk".into()]);
        run.adaptive = Some(AdaptiveParams {
            half_width: 0.05,
            confidence: 0.9,
            band: 0.03,
            batch: 4,
            min_runs: 8,
            max_runs: 24,
        });
        let line = Request::Run(run.clone()).to_json().to_string();
        assert_eq!(Request::parse(&line).unwrap(), Request::Run(run));
    }

    #[test]
    fn simple_requests_round_trip() {
        for req in [
            Request::Status { job: 7 },
            Request::Cancel { job: 9 },
            Request::Stats,
            Request::Watch,
            Request::Shutdown,
        ] {
            let line = req.to_json().to_string();
            assert_eq!(Request::parse(&line).unwrap(), req);
        }
    }

    #[test]
    fn defaults_are_quick() {
        let parsed = Request::parse(r#"{"type":"run","experiment":"table1"}"#).unwrap();
        let Request::Run(run) = parsed else {
            panic!("expected run")
        };
        assert_eq!(run.scale, Scale::Tiny);
        assert_eq!(run.runs, 6);
        assert!(run.wait);
        assert!(!run.trace);
        assert!(run.benchmarks.is_none());
    }

    #[test]
    fn scale_implies_interval_unless_overridden() {
        let Request::Run(small) =
            Request::parse(r#"{"type":"run","experiment":"fig6","scale":"small"}"#).unwrap()
        else {
            panic!()
        };
        assert_eq!(small.interval_ms, 0.05);
        let Request::Run(explicit) = Request::parse(
            r#"{"type":"run","experiment":"fig6","scale":"small","interval_ms":0.02}"#,
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(explicit.interval_ms, 0.02);
    }

    /// Parse must fail AND say why: clients see these strings verbatim
    /// on `error` lines, so the message text is part of the protocol.
    fn expect_error(line: &str, needle: &str) {
        let err = Request::parse(line).expect_err(&format!("accepted {line:?}"));
        assert!(
            err.contains(needle),
            "error for {line:?} was {err:?}, expected it to mention {needle:?}"
        );
    }

    #[test]
    fn malformed_json_reports_the_parse_error() {
        expect_error("not json", "parse error at byte 0");
        expect_error("{\"type\":\"run\"", "parse error at byte");
        expect_error("{\"type\":\"run\"} trailing", "trailing");
        expect_error("", "parse error at byte");
    }

    #[test]
    fn unknown_request_kinds_are_named_in_the_error() {
        expect_error(r#"{"type":"warp"}"#, "unknown request type \"warp\"");
        // A non-string or absent type is a different failure than an
        // unknown one.
        expect_error(r#"{"type":7}"#, "missing a string \"type\"");
        expect_error(r#"{"experiment":"fig7"}"#, "missing a string \"type\"");
        expect_error(r#"[1,2,3]"#, "missing a string \"type\"");
    }

    #[test]
    fn missing_required_fields_are_reported() {
        expect_error(r#"{"type":"run"}"#, "missing a string \"experiment\"");
        expect_error(r#"{"type":"status"}"#, "missing integer \"job\"");
        expect_error(r#"{"type":"cancel"}"#, "missing integer \"job\"");
        expect_error(
            r#"{"type":"status","job":"seven"}"#,
            "missing integer \"job\"",
        );
    }

    #[test]
    fn ill_typed_run_fields_are_reported() {
        expect_error(
            r#"{"type":"run","experiment":"fig99"}"#,
            "unknown experiment \"fig99\"",
        );
        expect_error(
            r#"{"type":"run","experiment":"fig7","scale":"huge"}"#,
            "unknown scale \"huge\"",
        );
        expect_error(
            r#"{"type":"run","experiment":"fig7","scale":3}"#,
            "\"scale\" must be a string",
        );
        expect_error(
            r#"{"type":"run","experiment":"fig7","benchmarks":"bzip2"}"#,
            "\"benchmarks\" must be an array",
        );
        expect_error(
            r#"{"type":"run","experiment":"fig7","benchmarks":[1]}"#,
            "\"benchmarks\" entries must be strings",
        );
        expect_error(
            r#"{"type":"run","experiment":"fig7","runs":"many"}"#,
            "\"runs\" must be an integer",
        );
        expect_error(
            r#"{"type":"run","experiment":"fig7","runs":0}"#,
            "\"runs\" must be at least 1",
        );
        expect_error(
            r#"{"type":"run","experiment":"fig7","interval_ms":-1}"#,
            "\"interval_ms\" must be a positive number",
        );
        expect_error(
            r#"{"type":"run","experiment":"fig7","trace":"yes"}"#,
            "\"trace\" must be a bool",
        );
        expect_error(
            r#"{"type":"run","experiment":"evaluate","before":"O9"}"#,
            "unknown optimization level \"O9\"",
        );
    }

    #[test]
    fn adaptive_constraints_are_reported() {
        expect_error(
            r#"{"type":"run","experiment":"table1","adaptive":{}}"#,
            "only applies to the evaluate experiment",
        );
        expect_error(
            r#"{"type":"run","experiment":"evaluate","adaptive":{"half_width":0}}"#,
            "\"half_width\" must be a positive number",
        );
        expect_error(
            r#"{"type":"run","experiment":"evaluate","adaptive":{"confidence":1.5}}"#,
            "\"confidence\" must be in (0, 1)",
        );
        expect_error(
            r#"{"type":"run","experiment":"evaluate","adaptive":{"band":-0.1}}"#,
            "\"band\" must be a positive number",
        );
        expect_error(
            r#"{"type":"run","experiment":"evaluate","adaptive":{"min_runs":20,"max_runs":10}}"#,
            "\"max_runs\" must be >= \"min_runs\"",
        );
    }

    #[test]
    fn run_shard_round_trips() {
        let mut run = RunRequest::quick(Experiment::Evaluate);
        run.benchmarks = Some(vec!["gobmk".into()]);
        run.runs = 12;
        run.shard = Some(ShardRange { start: 4, count: 5 });
        let line = Request::Run(run.clone()).to_json().to_string();
        assert!(line.contains(r#""type":"run_shard""#));
        assert_eq!(Request::parse(&line).unwrap(), Request::Run(run));
    }

    #[test]
    fn shard_constraints_are_reported() {
        expect_error(
            r#"{"type":"run_shard","experiment":"table1","shard_start":0,"shard_count":2}"#,
            "run_shard only applies to the evaluate experiment",
        );
        expect_error(
            r#"{"type":"run_shard","experiment":"evaluate","adaptive":{},"shard_start":0,"shard_count":2}"#,
            "run_shard cannot be adaptive",
        );
        expect_error(
            r#"{"type":"run_shard","experiment":"evaluate","shard_count":2}"#,
            "missing an integer \"shard_start\"",
        );
        expect_error(
            r#"{"type":"run_shard","experiment":"evaluate","shard_start":0}"#,
            "missing an integer \"shard_count\"",
        );
        expect_error(
            r#"{"type":"run_shard","experiment":"evaluate","shard_start":0,"shard_count":0}"#,
            "\"shard_count\" must be at least 1",
        );
        expect_error(
            r#"{"type":"run_shard","experiment":"evaluate","runs":6,"shard_start":4,"shard_count":3}"#,
            "bad shard range: 4+3 exceeds runs=6",
        );
    }

    #[test]
    fn peer_lists_parse_and_reject_malformed_entries() {
        assert_eq!(
            parse_peers("127.0.0.1:7001, 127.0.0.1:7002").unwrap(),
            vec!["127.0.0.1:7001".to_string(), "127.0.0.1:7002".to_string()]
        );
        for (list, needle) in [
            ("", "empty entry"),
            ("a:1,,b:2", "empty entry"),
            ("localhost", "missing :port"),
            (":7001", "want host:port"),
            ("host:notaport", "want host:port"),
            ("host:99999", "want host:port"),
            ("a:1,a:1", "duplicate peer"),
        ] {
            let err = parse_peers(list).expect_err(list);
            assert!(err.contains(needle), "{list:?} -> {err:?}");
        }
    }

    #[test]
    fn shard_plans_tile_exactly() {
        let plan = plan_shards(10, 3);
        assert_eq!(
            plan,
            vec![
                ShardRange { start: 0, count: 4 },
                ShardRange { start: 4, count: 3 },
                ShardRange { start: 7, count: 3 },
            ]
        );
        validate_shard_plan(&plan, 10).unwrap();
        // More workers than runs degrades to one-run shards.
        assert_eq!(plan_shards(2, 5).len(), 2);
        validate_shard_plan(&plan_shards(2, 5), 2).unwrap();
        assert!(plan_shards(0, 3).is_empty());
        assert!(plan_shards(3, 0).is_empty());

        for (shards, total, needle) in [
            (vec![], 4, "empty"),
            (vec![ShardRange { start: 0, count: 0 }], 0, "is empty"),
            (
                vec![
                    ShardRange { start: 0, count: 3 },
                    ShardRange { start: 2, count: 2 },
                ],
                4,
                "overlaps",
            ),
            (
                vec![
                    ShardRange { start: 0, count: 1 },
                    ShardRange { start: 3, count: 1 },
                ],
                4,
                "gap",
            ),
            (vec![ShardRange { start: 1, count: 2 }], 3, "gap"),
            (vec![ShardRange { start: 0, count: 2 }], 4, "covers 2 of 4"),
        ] {
            let err = validate_shard_plan(&shards, total).expect_err("must reject");
            assert!(err.contains(needle), "{shards:?} -> {err:?}");
        }
    }

    #[test]
    fn shard_results_round_trip_bit_exactly() {
        let result = ShardResult {
            shard: ShardRange { start: 3, count: 2 },
            benchmark: "gobmk".to_string(),
            cached: true,
            before_trace: "{\"type\":\"run\",\"run\":3}\n{\"type\":\"run\",\"run\":4}\n"
                .to_string(),
            after_trace: "{\"type\":\"run\",\"run\":3}\n{\"type\":\"run\",\"run\":4}\n".to_string(),
            before: vec![1.0000000000000002, 0.1 + 0.2],
            after: vec![f64::MIN_POSITIVE, 1e300],
        };
        let line = result.to_json().to_string();
        let parsed = ShardResult::parse(&line).unwrap();
        assert_eq!(parsed, result);
        // The embedded trace chunk must survive with its newlines.
        assert_eq!(parsed.before_trace.lines().count(), 2);
    }

    #[test]
    fn malformed_shard_results_are_rejected() {
        for (line, needle) in [
            (r#"{"type":"result"}"#, "not a shard_result"),
            (
                r#"{"type":"shard_result","shard_count":1}"#,
                "missing an integer \"shard_start\"",
            ),
            (
                r#"{"type":"shard_result","shard_start":0,"shard_count":1,"benchmark":"x","before_trace":"","after_trace":"","before_bits":[0.5],"after_bits":[1]}"#,
                "u64 sample bits",
            ),
            (
                r#"{"type":"shard_result","shard_start":0,"shard_count":2,"benchmark":"x","before_trace":"","after_trace":"","before_bits":[1],"after_bits":[1]}"#,
                "do not match shard_count",
            ),
        ] {
            let err = ShardResult::parse(line).expect_err(line);
            assert!(err.contains(needle), "{line:?} -> {err:?}");
        }
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for bad in [
            "not json",
            r#"{"type":"warp"}"#,
            r#"{"type":"run"}"#,
            r#"{"type":"run","experiment":"fig99"}"#,
            r#"{"type":"run","experiment":"fig7","scale":"huge"}"#,
            r#"{"type":"run","experiment":"fig7","runs":0}"#,
            r#"{"type":"run","experiment":"table1","adaptive":{}}"#,
            r#"{"type":"run","experiment":"evaluate","before":"O9"}"#,
            r#"{"type":"status"}"#,
        ] {
            assert!(Request::parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
