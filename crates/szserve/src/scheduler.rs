//! Job scheduling: a bounded queue drained by worker threads, layered
//! on the same determinism contract as the rest of the harness.
//!
//! The scheduler owns the [`ResultCache`]: `submit` consults it before
//! queueing (cache hits never occupy a queue slot and are therefore
//! immune to backpressure), and workers insert successful results
//! after execution. When the queue is full, submission is rejected
//! with a `retry_after_ms` hint derived from a moving average of
//! recent job durations — the caller is told how long the backlog is
//! actually taking to drain, not a constant.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use sz_harness::Json;

use crate::cache::{cache_key, CacheKey, ResultCache};
use crate::exec::{execute, ExecError, JobOutput};
use crate::proto::RunRequest;

/// Called with a job id whenever that job settles (done, failed, or
/// cancelled), strictly outside the scheduler lock. The event-loop
/// front end registers one to wake pollers instead of blocking a
/// thread per waiter.
pub type SettleNotifier = Arc<dyn Fn(u64) + Send + Sync>;

/// How many finished job records `status` can still see.
const FINISHED_RETENTION: usize = 256;
/// Retry hint before any job has completed (nothing to average yet).
const DEFAULT_JOB_MS: f64 = 250.0;

/// Scheduler sizing.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Worker threads draining the queue (concurrent jobs).
    pub workers: usize,
    /// Jobs that may wait in the queue before rejection.
    pub queue_capacity: usize,
    /// Harness pool threads each job runs with (per-job parallelism).
    pub exec_threads: usize,
    /// Result-cache byte budget.
    pub cache_budget: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            workers: 2,
            queue_capacity: 32,
            exec_threads: 2,
            cache_budget: 64 << 20,
        }
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, PartialEq)]
pub enum JobState {
    /// Waiting in the queue.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished successfully.
    Done(Arc<JobOutput>),
    /// Cancelled, past deadline, or failed.
    Failed(ExecError),
}

impl JobState {
    /// Wire name for `status` lines.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "failed",
        }
    }

    fn settled(&self) -> bool {
        matches!(self, JobState::Done(_) | JobState::Failed(_))
    }
}

/// The scheduler's answer to a `run` submission.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitOutcome {
    /// Served from the cache without queueing.
    Cached(Arc<JobOutput>),
    /// Queued; the id can be used with `status` / `cancel` / `wait`.
    Accepted(u64),
    /// Queue full — try again after roughly this many milliseconds.
    Rejected { retry_after_ms: u64 },
}

struct JobRecord {
    spec: RunRequest,
    state: JobState,
    cancel: Arc<AtomicBool>,
}

struct Inner {
    queue: VecDeque<u64>,
    jobs: HashMap<u64, JobRecord>,
    finished: VecDeque<u64>,
    cache: ResultCache,
    running: usize,
    shutdown: bool,
    next_id: u64,
    avg_job_ms: f64,
    submitted: u64,
    completed: u64,
    failed: u64,
    cancelled: u64,
    rejected: u64,
    notifier: Option<SettleNotifier>,
}

impl Inner {
    fn retry_after_ms(&self, workers: usize) -> u64 {
        let pending = (self.queue.len() + self.running + 1) as f64;
        let avg = if self.avg_job_ms > 0.0 {
            self.avg_job_ms
        } else {
            DEFAULT_JOB_MS
        };
        (pending / workers.max(1) as f64 * avg).clamp(25.0, 60_000.0) as u64
    }

    fn settle(&mut self, id: u64, state: JobState) {
        if let Some(job) = self.jobs.get_mut(&id) {
            job.state = state;
            self.finished.push_back(id);
            while self.finished.len() > FINISHED_RETENTION {
                if let Some(old) = self.finished.pop_front() {
                    self.jobs.remove(&old);
                }
            }
        }
    }
}

/// Bounded-queue job scheduler with a content-addressed result cache.
pub struct Scheduler {
    shared: Arc<(Mutex<Inner>, Condvar)>,
    config: SchedulerConfig,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Scheduler {
    /// Starts `config.workers` worker threads.
    pub fn new(config: SchedulerConfig) -> Scheduler {
        let shared = Arc::new((
            Mutex::new(Inner {
                queue: VecDeque::new(),
                jobs: HashMap::new(),
                finished: VecDeque::new(),
                cache: ResultCache::new(config.cache_budget),
                running: 0,
                shutdown: false,
                next_id: 1,
                avg_job_ms: 0.0,
                submitted: 0,
                completed: 0,
                failed: 0,
                cancelled: 0,
                rejected: 0,
                notifier: None,
            }),
            Condvar::new(),
        ));
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let exec_threads = config.exec_threads;
                std::thread::spawn(move || worker_loop(&shared, exec_threads))
            })
            .collect();
        Scheduler {
            shared,
            config,
            workers: Mutex::new(workers),
        }
    }

    /// Registers the settle notifier (replacing any previous one).
    /// It fires for every future settle — completion, failure,
    /// cancellation, shutdown drain — outside the scheduler lock.
    pub fn set_notifier(&self, notifier: SettleNotifier) {
        let (lock, _) = &*self.shared;
        lock.lock().expect("scheduler lock").notifier = Some(notifier);
    }

    /// Looks up a cache entry by key (the federation coordinator's
    /// local-cache probe before routing to a peer).
    pub fn cache_lookup(&self, key: &CacheKey) -> Option<Arc<JobOutput>> {
        let (lock, _) = &*self.shared;
        lock.lock().expect("scheduler lock").cache.get(key)
    }

    /// Inserts a result under `key` (the coordinator storing a merged
    /// shard transcript so repeats are local hits).
    pub fn cache_insert(&self, key: &CacheKey, output: Arc<JobOutput>) {
        let (lock, _) = &*self.shared;
        lock.lock()
            .expect("scheduler lock")
            .cache
            .insert(key, output);
    }

    /// Submits a request: cache hit, queued job, or rejection.
    pub fn submit(&self, spec: RunRequest) -> SubmitOutcome {
        let (lock, cvar) = &*self.shared;
        let mut inner = lock.lock().expect("scheduler lock");
        inner.submitted += 1;
        if spec.experiment.cacheable() {
            let key = cache_key(&spec);
            if let Some(hit) = inner.cache.get(&key) {
                return SubmitOutcome::Cached(hit);
            }
        }
        if inner.queue.len() >= self.config.queue_capacity || inner.shutdown {
            inner.rejected += 1;
            let retry = inner.retry_after_ms(self.config.workers);
            return SubmitOutcome::Rejected {
                retry_after_ms: retry,
            };
        }
        let id = inner.next_id;
        inner.next_id += 1;
        inner.jobs.insert(
            id,
            JobRecord {
                spec,
                state: JobState::Queued,
                cancel: Arc::new(AtomicBool::new(false)),
            },
        );
        inner.queue.push_back(id);
        cvar.notify_one();
        SubmitOutcome::Accepted(id)
    }

    /// The job's current state, if it is still known.
    pub fn status(&self, id: u64) -> Option<JobState> {
        let (lock, _) = &*self.shared;
        let inner = lock.lock().expect("scheduler lock");
        inner.jobs.get(&id).map(|j| j.state.clone())
    }

    /// Cancels a job. Queued jobs are removed immediately; running
    /// jobs are flagged and stop at their next checkpoint (best
    /// effort — monolithic experiment calls finish first and are then
    /// discarded). Returns false for unknown or already-settled jobs.
    pub fn cancel(&self, id: u64) -> bool {
        let (lock, cvar) = &*self.shared;
        let mut inner = lock.lock().expect("scheduler lock");
        let state = match inner.jobs.get(&id) {
            None => return false,
            Some(job) => job.state.clone(),
        };
        match state {
            JobState::Queued => {
                inner.queue.retain(|&q| q != id);
                inner.cancelled += 1;
                inner.settle(id, JobState::Failed(ExecError::Cancelled));
                cvar.notify_all();
                let notifier = inner.notifier.clone();
                drop(inner);
                if let Some(notify) = notifier {
                    notify(id);
                }
                true
            }
            JobState::Running => {
                inner.jobs[&id].cancel.store(true, Ordering::SeqCst);
                true
            }
            _ => false,
        }
    }

    /// Blocks until the job settles or `timeout` passes. Returns the
    /// settled state, or `None` on timeout / unknown id.
    pub fn wait(&self, id: u64, timeout: Duration) -> Option<JobState> {
        let (lock, cvar) = &*self.shared;
        let deadline = Instant::now() + timeout;
        let mut inner = lock.lock().expect("scheduler lock");
        loop {
            match inner.jobs.get(&id) {
                None => return None,
                Some(job) if job.state.settled() => return Some(job.state.clone()),
                Some(_) => {}
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = cvar
                .wait_timeout(inner, deadline - now)
                .expect("scheduler lock");
            inner = guard;
        }
    }

    /// A point-in-time stats snapshot as a wire object.
    pub fn stats_json(&self) -> Json {
        let (lock, _) = &*self.shared;
        let inner = lock.lock().expect("scheduler lock");
        Json::obj([
            ("workers", self.config.workers.into()),
            ("queue_capacity", self.config.queue_capacity.into()),
            ("queue_depth", inner.queue.len().into()),
            ("running", inner.running.into()),
            ("submitted", inner.submitted.into()),
            ("completed", inner.completed.into()),
            ("failed", inner.failed.into()),
            ("cancelled", inner.cancelled.into()),
            ("rejected", inner.rejected.into()),
            ("avg_job_ms", inner.avg_job_ms.into()),
            ("cache", inner.cache.stats_json()),
        ])
    }

    /// Stops accepting work, cancels queued jobs, and joins workers.
    /// Running jobs get their cancellation flag set and are joined.
    pub fn shutdown(&self) {
        let (lock, cvar) = &*self.shared;
        let (drained, notifier) = {
            let mut inner = lock.lock().expect("scheduler lock");
            inner.shutdown = true;
            let mut drained = Vec::new();
            while let Some(id) = inner.queue.pop_front() {
                inner.cancelled += 1;
                inner.settle(id, JobState::Failed(ExecError::Cancelled));
                drained.push(id);
            }
            for job in inner.jobs.values() {
                if job.state == JobState::Running {
                    job.cancel.store(true, Ordering::SeqCst);
                }
            }
            cvar.notify_all();
            (drained, inner.notifier.clone())
        };
        if let Some(notify) = notifier {
            for id in drained {
                notify(id);
            }
        }
        let handles: Vec<_> = self
            .workers
            .lock()
            .expect("worker list")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Arc<(Mutex<Inner>, Condvar)>, exec_threads: usize) {
    let (lock, cvar) = &**shared;
    loop {
        let (id, spec, cancel) = {
            let mut inner = lock.lock().expect("scheduler lock");
            loop {
                if let Some(id) = inner.queue.pop_front() {
                    let job = inner.jobs.get_mut(&id).expect("queued job exists");
                    job.state = JobState::Running;
                    inner.running += 1;
                    break (
                        id,
                        inner.jobs[&id].spec.clone(),
                        Arc::clone(&inner.jobs[&id].cancel),
                    );
                }
                if inner.shutdown {
                    return;
                }
                inner = cvar.wait(inner).expect("scheduler lock");
            }
        };

        let threads = spec.threads.unwrap_or(exec_threads).max(1);
        let deadline = spec
            .deadline_ms
            .map(|ms| Instant::now() + Duration::from_millis(ms));
        let started = Instant::now();
        // A panicking job must not take its worker down with it — the
        // burst test hammers the server with 64 concurrent clients
        // and every worker has to survive arbitrary request payloads.
        let result = catch_unwind(AssertUnwindSafe(|| {
            execute(&spec, threads, &cancel, deadline)
        }))
        .unwrap_or_else(|panic| {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "job panicked".to_string());
            Err(ExecError::Failed(format!("panic: {msg}")))
        });
        let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;

        let notifier = {
            let mut inner = lock.lock().expect("scheduler lock");
            inner.running -= 1;
            inner.avg_job_ms = if inner.avg_job_ms == 0.0 {
                elapsed_ms
            } else {
                0.7 * inner.avg_job_ms + 0.3 * elapsed_ms
            };
            match result {
                Ok(output) => {
                    let output = Arc::new(output);
                    if spec.experiment.cacheable() {
                        inner.cache.insert(&cache_key(&spec), Arc::clone(&output));
                    }
                    inner.completed += 1;
                    inner.settle(id, JobState::Done(output));
                }
                Err(err) => {
                    if err == ExecError::Cancelled {
                        inner.cancelled += 1;
                    } else {
                        inner.failed += 1;
                    }
                    inner.settle(id, JobState::Failed(err));
                }
            }
            cvar.notify_all();
            inner.notifier.clone()
        };
        if let Some(notify) = notifier {
            notify(id);
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{Experiment, RunRequest};

    fn sched(workers: usize, queue: usize) -> Scheduler {
        Scheduler::new(SchedulerConfig {
            workers,
            queue_capacity: queue,
            exec_threads: 1,
            cache_budget: 4 << 20,
        })
    }

    fn sleep_spec(ms: u64) -> RunRequest {
        let mut spec = RunRequest::quick(Experiment::SelftestSleep);
        spec.sleep_ms = ms;
        spec
    }

    #[test]
    fn second_submission_is_a_cache_hit() {
        let s = sched(1, 8);
        let mut spec = RunRequest::quick(Experiment::Table1);
        spec.benchmarks = Some(vec!["bzip2".into()]);
        spec.runs = 3;
        let SubmitOutcome::Accepted(id) = s.submit(spec.clone()) else {
            panic!("first submission should queue");
        };
        let JobState::Done(first) = s.wait(id, Duration::from_secs(60)).unwrap() else {
            panic!("job should finish");
        };
        let SubmitOutcome::Cached(hit) = s.submit(spec) else {
            panic!("second submission should hit the cache");
        };
        assert!(Arc::ptr_eq(&first, &hit), "hit returns the stored arc");
        assert_eq!(first.trace, hit.trace);
    }

    #[test]
    fn full_queue_rejects_with_a_retry_hint() {
        let s = sched(1, 1);
        assert!(matches!(
            s.submit(sleep_spec(400)),
            SubmitOutcome::Accepted(_)
        ));
        // Give the worker a moment to start the first job, then fill
        // the single queue slot and overflow it.
        std::thread::sleep(Duration::from_millis(50));
        assert!(matches!(
            s.submit(sleep_spec(400)),
            SubmitOutcome::Accepted(_)
        ));
        let SubmitOutcome::Rejected { retry_after_ms } = s.submit(sleep_spec(400)) else {
            panic!("third submission should be rejected");
        };
        assert!(retry_after_ms >= 25);
        let stats = s.stats_json();
        assert_eq!(stats.get("rejected").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn queued_jobs_cancel_immediately_and_running_jobs_stop() {
        let s = sched(1, 4);
        let SubmitOutcome::Accepted(running) = s.submit(sleep_spec(5_000)) else {
            panic!("accepted");
        };
        let SubmitOutcome::Accepted(queued) = s.submit(sleep_spec(5_000)) else {
            panic!("accepted");
        };
        assert!(s.cancel(queued), "queued jobs are cancellable");
        assert_eq!(
            s.wait(queued, Duration::from_secs(5)).unwrap(),
            JobState::Failed(ExecError::Cancelled)
        );
        std::thread::sleep(Duration::from_millis(50));
        assert!(s.cancel(running), "running jobs are flagged");
        assert_eq!(
            s.wait(running, Duration::from_secs(5)).unwrap(),
            JobState::Failed(ExecError::Cancelled)
        );
    }

    #[test]
    fn deadline_expiry_fails_the_job() {
        let s = sched(1, 4);
        let mut spec = sleep_spec(5_000);
        spec.deadline_ms = Some(30);
        let SubmitOutcome::Accepted(id) = s.submit(spec) else {
            panic!("accepted");
        };
        assert_eq!(
            s.wait(id, Duration::from_secs(5)).unwrap(),
            JobState::Failed(ExecError::Deadline)
        );
    }

    #[test]
    fn shutdown_drains_the_queue_and_joins_workers() {
        let s = sched(1, 8);
        let SubmitOutcome::Accepted(_) = s.submit(sleep_spec(100)) else {
            panic!("accepted");
        };
        let SubmitOutcome::Accepted(queued) = s.submit(sleep_spec(100)) else {
            panic!("accepted");
        };
        s.shutdown();
        assert_eq!(
            s.status(queued).unwrap(),
            JobState::Failed(ExecError::Cancelled)
        );
        assert!(matches!(
            s.submit(sleep_spec(10)),
            SubmitOutcome::Rejected { .. }
        ));
    }
}
