//! Adaptive sequential sampling for change evaluation.
//!
//! The paper's protocol draws a fixed 30 re-randomized samples per
//! configuration. Kalibera & Jones ("Quantifying Performance Changes
//! with Effect Size Confidence Intervals") observe that most
//! comparisons settle long before that: once the confidence interval
//! on the effect size is narrow relative to the baseline, further
//! samples change nothing but the bill. This module implements that
//! stopping rule on top of STABILIZER's re-randomized sampling.
//!
//! Determinism is preserved exactly: batches are drawn through
//! [`sz_harness::runner::stabilized_reports_range`], so the samples
//! an adaptive run stops with are a bit-identical *prefix* of the
//! stream the fixed protocol would have produced. Stopping early
//! discards information; it never changes it.

use stabilizer::Config;
use sz_harness::runner::{stabilized_reports_range, ExperimentOptions};
use sz_harness::{verdict_json, Json, TraceSink};
use sz_ir::Program;
use sz_stats::{diff_ci, judge, mean, welch_t_test, VerdictConfig, VerdictReport, ALPHA};
use sz_vm::RunReport;

use crate::exec::{ExecError, JobCtl};
use crate::proto::AdaptiveParams;

/// The result of one adaptive (or fixed) change evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveOutcome {
    /// Samples actually drawn per arm.
    pub samples_per_arm: usize,
    /// The fixed-protocol cap the savings are measured against.
    pub max_runs: usize,
    /// Whether the stopping rule fired before the cap.
    pub stopped_early: bool,
    /// Final half-width of the effect CI relative to the baseline
    /// mean (infinity if the interval was not computable).
    pub relative_half_width: f64,
    /// Welch two-sided p-value on the final samples.
    pub p_value: f64,
    /// `p < 0.05` — the same accept/reject rule as the paper.
    pub significant: bool,
    /// `mean(before) / mean(after)`; > 1 means the change helped.
    pub speedup: f64,
    /// Practical-equivalence verdict on the final samples (None when
    /// the bootstrap was not computable, e.g. too few samples).
    pub verdict: Option<VerdictReport>,
    /// Final samples (seconds) of the baseline arm.
    pub before: Vec<f64>,
    /// Final samples (seconds) of the changed arm.
    pub after: Vec<f64>,
}

impl AdaptiveOutcome {
    /// Samples the adaptive run did not have to draw, across both
    /// arms, compared with running the fixed protocol to `max_runs`.
    pub fn samples_saved(&self) -> usize {
        2 * (self.max_runs - self.samples_per_arm)
    }
}

fn seconds(reports: &[RunReport]) -> impl Iterator<Item = f64> + '_ {
    reports.iter().map(RunReport::seconds)
}

/// Runs the adaptive evaluation of `after` vs `before`.
///
/// Batches of `params.batch` samples per arm are drawn until (once at
/// least `params.min_runs` samples exist) either the practical
/// verdict settles — the bootstrap ratio CI plus Welch CI decide
/// `RobustlyFaster`, `RobustlySlower`, or `Equivalent` at
/// `params.band` — or the Welch CI on `mean(after) - mean(before)`
/// has a half-width at or below `params.half_width` of the baseline
/// mean, or `params.max_runs` is hit. Each drawn run is traced as a
/// `run` record (variants `before` / `after`) and each stopping-rule
/// evaluation as a `summary` record, so a traced adaptive session is
/// fully replayable.
///
/// # Errors
///
/// [`ExecError::Cancelled`] / [`ExecError::Deadline`] when the job's
/// cancellation flag or deadline fires at a batch boundary.
pub fn adaptive_evaluate(
    before: &Program,
    after: &Program,
    opts: &ExperimentOptions,
    params: &AdaptiveParams,
    benchmark: &str,
    ctl: &JobCtl<'_>,
    trace: Option<&TraceSink>,
) -> Result<AdaptiveOutcome, ExecError> {
    let mut before_s: Vec<f64> = Vec::new();
    let mut after_s: Vec<f64> = Vec::new();
    let mut rel = f64::INFINITY;
    let mut stopped_early = false;
    let mut verdict: Option<VerdictReport> = None;
    let vcfg = VerdictConfig {
        band: params.band,
        confidence: params.confidence,
        ..VerdictConfig::default()
    };

    while before_s.len() < params.max_runs {
        ctl.checkpoint()?;
        let start = before_s.len();
        let batch = params.batch.min(params.max_runs - start);
        for (program, variant, sink_into) in [
            (before, "before", &mut before_s),
            (after, "after", &mut after_s),
        ] {
            let reports = stabilized_reports_range(program, opts, Config::default(), start, batch);
            if let Some(t) = trace {
                for (i, report) in reports.iter().enumerate() {
                    t.run_record("evaluate", benchmark, variant, start + i, report);
                }
            }
            sink_into.extend(seconds(&reports));
        }
        let n = before_s.len();
        if n >= params.min_runs {
            rel = diff_ci(&after_s, &before_s, params.confidence)
                .map(|ci| ci.relative_margin(mean(&before_s)))
                .unwrap_or(f64::INFINITY);
            verdict = judge(&before_s, &after_s, &vcfg).ok();
            if let Some(t) = trace {
                t.summary_record(
                    "evaluate",
                    vec![
                        ("benchmark", benchmark.into()),
                        ("event", "adaptive-batch".into()),
                        ("samples_per_arm", n.into()),
                        ("relative_half_width", rel.into()),
                        ("target_half_width", params.half_width.into()),
                        (
                            "verdict",
                            verdict
                                .as_ref()
                                .map_or("no-verdict", |r| r.verdict.as_str())
                                .into(),
                        ),
                    ],
                );
            }
            let decided = verdict.is_some_and(|r| r.verdict.is_decided());
            if decided || rel <= params.half_width {
                stopped_early = n < params.max_runs;
                break;
            }
        }
    }

    let p_value = welch_t_test(&before_s, &after_s).map_or(1.0, |t| t.p_value);
    Ok(AdaptiveOutcome {
        samples_per_arm: before_s.len(),
        max_runs: params.max_runs,
        stopped_early,
        relative_half_width: rel,
        p_value,
        significant: p_value < ALPHA,
        speedup: mean(&before_s) / mean(&after_s),
        verdict,
        before: before_s,
        after: after_s,
    })
}

/// The outcome's wire summary object. When a practical verdict was
/// computable, its full metadata is nested under `"practical"`.
pub fn outcome_json(outcome: &AdaptiveOutcome, adaptive: bool) -> Json {
    let mut fields: Vec<(String, Json)> = vec![
        (
            "mode".to_string(),
            if adaptive { "adaptive" } else { "fixed" }.into(),
        ),
        (
            "samples_per_arm".to_string(),
            outcome.samples_per_arm.into(),
        ),
        ("max_runs".to_string(), outcome.max_runs.into()),
        ("stopped_early".to_string(), outcome.stopped_early.into()),
        ("samples_saved".to_string(), outcome.samples_saved().into()),
        (
            "relative_half_width".to_string(),
            outcome.relative_half_width.into(),
        ),
        ("p_value".to_string(), outcome.p_value.into()),
        ("significant".to_string(), outcome.significant.into()),
        ("speedup".to_string(), outcome.speedup.into()),
    ];
    if let Some(r) = &outcome.verdict {
        fields.push(("practical".to_string(), verdict_json(r)));
    }
    Json::Obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use sz_opt::{optimize, OptLevel};
    use sz_workloads::Scale;

    fn opts() -> ExperimentOptions {
        ExperimentOptions::quick()
    }

    #[test]
    fn adaptive_samples_are_a_prefix_of_the_fixed_stream() {
        let base = sz_workloads::build("gobmk", Scale::Tiny).unwrap();
        let faster = optimize(&base, OptLevel::O2);
        let params = AdaptiveParams {
            half_width: 0.25,
            min_runs: 4,
            batch: 4,
            max_runs: 12,
            ..AdaptiveParams::default()
        };
        let cancel = AtomicBool::new(false);
        let ctl = JobCtl {
            cancel: &cancel,
            deadline: None,
        };
        let outcome =
            adaptive_evaluate(&base, &faster, &opts(), &params, "gobmk", &ctl, None).unwrap();
        let full = stabilized_reports_range(&base, &opts(), Config::default(), 0, 12);
        let prefix: Vec<u64> = full
            .iter()
            .take(outcome.samples_per_arm)
            .map(|r| r.seconds().to_bits())
            .collect();
        let got: Vec<u64> = outcome.before.iter().map(|s| s.to_bits()).collect();
        assert_eq!(
            got, prefix,
            "adaptive must draw the fixed protocol's prefix"
        );
    }

    #[test]
    fn cancellation_fires_at_batch_boundaries() {
        let base = sz_workloads::build("mcf", Scale::Tiny).unwrap();
        let cancel = AtomicBool::new(true);
        let ctl = JobCtl {
            cancel: &cancel,
            deadline: None,
        };
        let err = adaptive_evaluate(
            &base,
            &base,
            &opts(),
            &AdaptiveParams::default(),
            "mcf",
            &ctl,
            None,
        )
        .unwrap_err();
        assert_eq!(err, ExecError::Cancelled);
    }

    #[test]
    fn expired_deadline_fails_before_sampling() {
        let base = sz_workloads::build("mcf", Scale::Tiny).unwrap();
        let cancel = AtomicBool::new(false);
        let ctl = JobCtl {
            cancel: &cancel,
            deadline: Some(std::time::Instant::now()),
        };
        let err = adaptive_evaluate(
            &base,
            &base,
            &opts(),
            &AdaptiveParams::default(),
            "mcf",
            &ctl,
            None,
        )
        .unwrap_err();
        assert_eq!(err, ExecError::Deadline);
    }
}
