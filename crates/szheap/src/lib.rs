//! Simulated-address-space heap allocators.
//!
//! STABILIZER randomizes the heap by wrapping a deterministic *base
//! allocator* in a *shuffling layer* (§3.2, Figure 1). This crate
//! provides:
//!
//! - [`SegregatedAllocator`] — the power-of-two, size-segregated base
//!   allocator the paper uses by default;
//! - [`TlsfAllocator`] — the optional two-level segregated-fits base;
//! - [`DieHardAllocator`] — the bitmap-based randomized allocator
//!   STABILIZER was originally built on (and §3.2's randomness
//!   reference point);
//! - [`ShuffleLayer`] — the size-`N` Fisher–Yates shuffling layer.
//!
//! All allocators hand out addresses in a simulated virtual address
//! space ([`Region`]); no host memory is touched. The *addresses* are
//! the product — they feed the cache/TLB model in `sz-machine`.
//!
//! # Examples
//!
//! ```
//! use sz_heap::{Allocator, Region, SegregatedAllocator, ShuffleLayer};
//! use sz_rng::Marsaglia;
//!
//! let base = SegregatedAllocator::new(Region::new(0x1000_0000, 1 << 30));
//! let mut heap = ShuffleLayer::new(base, 256, Marsaglia::seeded(1));
//! let a = heap.malloc(64).unwrap();
//! let b = heap.malloc(64).unwrap();
//! assert_ne!(a, b);
//! heap.free(a);
//! ```

mod diehard;
mod livemap;
mod region;
mod segregated;
mod shuffle;
mod tlsf;

pub use diehard::DieHardAllocator;
pub use livemap::LiveMap;
pub use region::Region;
pub use segregated::SegregatedAllocator;
pub use shuffle::ShuffleLayer;
pub use tlsf::TlsfAllocator;

/// A heap allocator over a simulated address space.
///
/// Implementations hand out non-overlapping, aligned addresses;
/// freeing an address not previously returned by `malloc` (or freeing
/// twice) is a caller bug and panics.
pub trait Allocator {
    /// Allocates `size` bytes; returns the address, or `None` if the
    /// backing region is exhausted.
    ///
    /// A zero-byte request is implementation-defined: the shuffling
    /// layer rounds it up to its minimum size class (C's `malloc(0)`
    /// is legal and appears in real workloads); the deterministic
    /// base allocators panic.
    fn malloc(&mut self, size: u64) -> Option<u64>;

    /// Releases an allocation.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not a live allocation from this allocator.
    fn free(&mut self, addr: u64);

    /// Fallible variant of [`Allocator::free`]: returns `false` —
    /// leaving the allocator untouched — when `addr` is not a live
    /// allocation, so callers (the VM's `Free` instruction) can turn
    /// a bad guest free into a structured error instead of aborting
    /// the whole experiment process.
    ///
    /// The default delegates to [`Allocator::free`] for allocators
    /// that cannot detect liveness cheaply; those still panic.
    fn try_free(&mut self, addr: u64) -> bool {
        self.free(addr);
        true
    }

    /// Human-readable allocator name (for reports).
    fn name(&self) -> &'static str;

    /// Bytes currently handed out to the caller.
    fn live_bytes(&self) -> u64;
}

/// Rounds `size` up to the next power of two, with a floor of
/// `min_class` bytes.
pub(crate) fn size_class(size: u64, min_class: u64) -> u64 {
    size.max(min_class).next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sz_rng::Marsaglia;

    /// Every allocator must satisfy the same basic contract; run the
    /// whole battery over each.
    fn implementations() -> Vec<Box<dyn Allocator>> {
        vec![
            Box::new(SegregatedAllocator::new(Region::new(0x10_0000, 1 << 28))),
            Box::new(TlsfAllocator::new(Region::new(0x10_0000, 1 << 28))),
            Box::new(DieHardAllocator::new(
                Region::new(0x10_0000, 1 << 30),
                Marsaglia::seeded(11),
            )),
            Box::new(ShuffleLayer::new(
                SegregatedAllocator::new(Region::new(0x10_0000, 1 << 28)),
                256,
                Marsaglia::seeded(12),
            )),
        ]
    }

    #[test]
    fn no_overlap_across_live_allocations() {
        for mut a in implementations() {
            let mut live: Vec<(u64, u64)> = Vec::new();
            for i in 0..200u64 {
                let size = 1 + (i * 37) % 500;
                let addr = a.malloc(size).expect("arena large enough");
                for &(other, osize) in &live {
                    let disjoint = addr + size <= other || other + osize <= addr;
                    assert!(
                        disjoint,
                        "{}: [{addr:#x}+{size}] overlaps [{other:#x}+{osize}]",
                        a.name()
                    );
                }
                live.push((addr, size));
            }
        }
    }

    #[test]
    fn addresses_are_aligned() {
        for mut a in implementations() {
            for size in [1u64, 8, 24, 64, 100, 4096] {
                let addr = a.malloc(size).unwrap();
                assert_eq!(addr % 16, 0, "{}: {addr:#x} for size {size}", a.name());
            }
        }
    }

    #[test]
    fn free_then_realloc_works() {
        for mut a in implementations() {
            let addrs: Vec<u64> = (0..50).map(|_| a.malloc(64).unwrap()).collect();
            for &p in &addrs {
                a.free(p);
            }
            assert_eq!(a.live_bytes(), 0, "{}", a.name());
            // The allocator must still function afterwards.
            let p = a.malloc(64).unwrap();
            assert!(p > 0);
        }
    }

    #[test]
    fn live_bytes_tracks_outstanding() {
        for mut a in implementations() {
            assert_eq!(a.live_bytes(), 0);
            let p = a.malloc(100).unwrap();
            let q = a.malloc(20).unwrap();
            assert_eq!(a.live_bytes(), 120, "{}", a.name());
            a.free(p);
            assert_eq!(a.live_bytes(), 20, "{}", a.name());
            a.free(q);
            assert_eq!(a.live_bytes(), 0, "{}", a.name());
        }
    }

    #[test]
    fn size_class_rounding() {
        assert_eq!(size_class(1, 16), 16);
        assert_eq!(size_class(16, 16), 16);
        assert_eq!(size_class(17, 16), 32);
        assert_eq!(size_class(4097, 16), 8192);
    }
}
