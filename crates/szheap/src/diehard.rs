//! A DieHard-style bitmap-based randomized allocator.
//!
//! STABILIZER was originally implemented on DieHard (§3.2): a
//! randomized allocator with power-of-two size classes that places
//! each object at a uniformly random free slot of an over-provisioned
//! "miniheap" and never preferentially reuses recently-freed memory.
//! The paper notes its downsides — no reuse and a huge virtual
//! footprint cause TLB pressure — which is why the shipped STABILIZER
//! shuffles a deterministic base instead.

use std::collections::HashMap;

use sz_rng::{Marsaglia, Rng};

use crate::{size_class, Allocator, Region};

const MIN_CLASS: u64 = 16;
/// Initial slots per miniheap.
const INITIAL_SLOTS: u64 = 256;
/// Keep occupancy at or below 1/2 so random probing terminates fast.
const MAX_LOAD_NUM: u64 = 1;
const MAX_LOAD_DEN: u64 = 2;

#[derive(Debug, Clone)]
struct MiniHeap {
    base: u64,
    slots: u64,
    used: Vec<bool>,
    live: u64,
}

/// The DieHard allocation strategy over the simulated address space.
#[derive(Debug, Clone)]
pub struct DieHardAllocator {
    region: Region,
    rng: Marsaglia,
    /// Miniheaps per class exponent; multiple per class as the heap grows.
    heaps: Vec<Vec<MiniHeap>>,
    live: HashMap<u64, u64>,
    live_bytes: u64,
}

impl DieHardAllocator {
    /// Creates an allocator drawing randomness from `rng`.
    pub fn new(region: Region, rng: Marsaglia) -> Self {
        DieHardAllocator {
            region,
            rng,
            heaps: vec![Vec::new(); 64],
            live: HashMap::new(),
            live_bytes: 0,
        }
    }

    fn class_live(&self, k: usize) -> (u64, u64) {
        let mut live = 0;
        let mut capacity = 0;
        for h in &self.heaps[k] {
            live += h.live;
            capacity += h.slots;
        }
        (live, capacity)
    }

    /// Ensures class `k` has capacity for one more object at the target
    /// load factor; grows by doubling.
    fn ensure_capacity(&mut self, k: usize, class: u64) -> Option<()> {
        let (live, capacity) = self.class_live(k);
        if (live + 1) * MAX_LOAD_DEN <= capacity * MAX_LOAD_NUM {
            return Some(());
        }
        let slots = capacity.max(INITIAL_SLOTS);
        let base = self.region.carve(slots * class, class)?;
        self.heaps[k].push(MiniHeap {
            base,
            slots,
            used: vec![false; slots as usize],
            live: 0,
        });
        Some(())
    }
}

impl Allocator for DieHardAllocator {
    fn malloc(&mut self, size: u64) -> Option<u64> {
        assert!(size > 0, "zero-size allocation");
        let class = size_class(size, MIN_CLASS);
        let k = class.trailing_zeros() as usize;
        self.ensure_capacity(k, class)?;

        // Random probing across the whole class (all miniheaps),
        // weighted by slot count: pick a global slot index uniformly.
        let total_slots: u64 = self.heaps[k].iter().map(|h| h.slots).sum();
        loop {
            let mut idx = self.rng.below(total_slots);
            for heap in &mut self.heaps[k] {
                if idx < heap.slots {
                    if !heap.used[idx as usize] {
                        heap.used[idx as usize] = true;
                        heap.live += 1;
                        let addr = heap.base + idx * class;
                        self.live.insert(addr, size);
                        self.live_bytes += size;
                        return Some(addr);
                    }
                    break; // occupied: re-draw
                }
                idx -= heap.slots;
            }
        }
    }

    fn free(&mut self, addr: u64) {
        assert!(self.try_free(addr), "free of non-live address {addr:#x}");
    }

    fn try_free(&mut self, addr: u64) -> bool {
        let Some(size) = self.live.remove(&addr) else {
            return false;
        };
        self.live_bytes -= size;
        let class = size_class(size, MIN_CLASS);
        let k = class.trailing_zeros() as usize;
        let heap = self.heaps[k]
            .iter_mut()
            .find(|h| addr >= h.base && addr < h.base + h.slots * class)
            .expect("live address belongs to a miniheap");
        let slot = ((addr - heap.base) / class) as usize;
        assert!(heap.used[slot], "slot bookkeeping corrupt");
        heap.used[slot] = false;
        heap.live -= 1;
        true
    }

    fn name(&self) -> &'static str {
        "diehard"
    }

    fn live_bytes(&self) -> u64 {
        self.live_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc() -> DieHardAllocator {
        DieHardAllocator::new(Region::new(0x4000_0000, 1 << 32), Marsaglia::seeded(42))
    }

    #[test]
    fn no_deterministic_reuse() {
        // The defining contrast with the segregated base: malloc/free
        // cycles do NOT return the same address.
        let mut a = alloc();
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..50 {
            let p = a.malloc(64).unwrap();
            distinct.insert(p);
            a.free(p);
        }
        assert!(
            distinct.len() > 30,
            "only {} distinct addresses",
            distinct.len()
        );
    }

    #[test]
    fn addresses_are_class_aligned() {
        let mut a = alloc();
        for _ in 0..100 {
            let p = a.malloc(100).unwrap(); // class 128
            assert_eq!(p % 128, 0);
        }
    }

    #[test]
    fn load_factor_stays_at_or_below_half() {
        let mut a = alloc();
        let mut ptrs = Vec::new();
        for _ in 0..1000 {
            ptrs.push(a.malloc(64).unwrap());
        }
        let k = 64u64.trailing_zeros() as usize;
        let (live, capacity) = a.class_live(k);
        assert_eq!(live, 1000);
        assert!(capacity >= 2 * live, "capacity {capacity} for {live} live");
        for p in ptrs {
            a.free(p);
        }
    }

    #[test]
    fn footprint_exceeds_deterministic_allocator() {
        // The paper's reason for abandoning DieHard as default: the
        // over-provisioned virtual footprint spans more pages.
        let mut dh = alloc();
        let mut pages = std::collections::HashSet::new();
        for _ in 0..512 {
            pages.insert(dh.malloc(64).unwrap() / 4096);
        }
        // 512 x 64B objects fit in 8 pages densely; DieHard spreads them.
        assert!(pages.len() > 12, "only {} pages touched", pages.len());
    }

    #[test]
    fn same_seed_same_addresses() {
        let mut a = DieHardAllocator::new(Region::new(0x1000, 1 << 30), Marsaglia::seeded(7));
        let mut b = DieHardAllocator::new(Region::new(0x1000, 1 << 30), Marsaglia::seeded(7));
        for _ in 0..100 {
            assert_eq!(a.malloc(48), b.malloc(48));
        }
    }
}
