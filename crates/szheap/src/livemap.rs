//! An open-addressed live-allocation table for the shuffling layer.
//!
//! [`crate::ShuffleLayer`] must remember the requested size of every
//! address it has handed out so `free` can route the object back to
//! its size class. A `HashMap<u64, u64>` does the job but pays SipHash
//! plus bucket indirection on *every* malloc and free — the two
//! operations STABILIZER's shuffling adds to each heap call. This
//! table exploits what the generic map cannot: keys are size-class-
//! aligned simulated addresses (the base allocators align every block
//! to its power-of-two class, 16 bytes minimum), so a single
//! multiplicative hash of the address scatters them uniformly, and
//! linear probing over one flat slab stays in cache.
//!
//! Deletion uses backward-shift compaction rather than tombstones, so
//! the table never degrades no matter how many malloc/free cycles a
//! workload performs. All operations are deterministic: identical
//! call sequences leave identical tables.

/// Slot key marking an empty slot. No real key collides with it: a
/// live allocation of at least one byte based at `u64::MAX` would
/// overflow the address space.
const EMPTY: u64 = u64::MAX;

/// Fibonacci hashing constant (2^64 / φ, odd).
const HASH_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

/// An open-addressed `address -> requested size` map.
#[derive(Debug, Clone)]
pub struct LiveMap {
    keys: Box<[u64]>,
    vals: Box<[u64]>,
    /// Live entries.
    len: usize,
    /// `capacity - 1`; capacity is always a power of two.
    mask: usize,
}

impl Default for LiveMap {
    fn default() -> Self {
        Self::new()
    }
}

impl LiveMap {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::with_pow2_capacity(64)
    }

    fn with_pow2_capacity(capacity: usize) -> Self {
        debug_assert!(capacity.is_power_of_two());
        LiveMap {
            keys: vec![EMPTY; capacity].into_boxed_slice(),
            vals: vec![0; capacity].into_boxed_slice(),
            len: 0,
            mask: capacity - 1,
        }
    }

    /// Live entries in the table.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Home slot for a key: multiplicative hash folded to the table
    /// size. The multiply mixes the (always-zero) low alignment bits
    /// of the address into every output bit.
    #[inline]
    fn home(&self, key: u64) -> usize {
        let h = key.wrapping_mul(HASH_MUL);
        (h >> 32) as usize & self.mask
    }

    /// Inserts `key -> val`, replacing any previous value for `key`.
    pub fn insert(&mut self, key: u64, val: u64) {
        debug_assert_ne!(key, EMPTY, "u64::MAX is not a valid address");
        // Resize at 7/8 load to keep probe chains short.
        if (self.len + 1) * 8 > (self.mask + 1) * 7 {
            self.grow();
        }
        let mut i = self.home(key);
        loop {
            if self.keys[i] == EMPTY {
                self.keys[i] = key;
                self.vals[i] = val;
                self.len += 1;
                return;
            }
            if self.keys[i] == key {
                self.vals[i] = val;
                return;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Looks up the value stored for `key`.
    #[inline]
    pub fn get(&self, key: u64) -> Option<u64> {
        let mut i = self.home(key);
        loop {
            if self.keys[i] == EMPTY {
                return None;
            }
            if self.keys[i] == key {
                return Some(self.vals[i]);
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Removes `key`, returning its value, or `None` if absent.
    ///
    /// Uses backward-shift deletion: every entry in the probe cluster
    /// after the hole is moved back if (and only if) the hole lies on
    /// its probe path, so lookups never need tombstones.
    pub fn remove(&mut self, key: u64) -> Option<u64> {
        let mut i = self.home(key);
        loop {
            if self.keys[i] == EMPTY {
                return None;
            }
            if self.keys[i] == key {
                break;
            }
            i = (i + 1) & self.mask;
        }
        let val = self.vals[i];
        let mut hole = i;
        let mut j = i;
        loop {
            j = (j + 1) & self.mask;
            if self.keys[j] == EMPTY {
                break;
            }
            let home = self.home(self.keys[j]);
            // `j`'s entry may fill the hole iff its home precedes the
            // hole on the cyclic probe path ending at `j`.
            if (j.wrapping_sub(home) & self.mask) >= (j.wrapping_sub(hole) & self.mask) {
                self.keys[hole] = self.keys[j];
                self.vals[hole] = self.vals[j];
                hole = j;
            }
        }
        self.keys[hole] = EMPTY;
        self.len -= 1;
        Some(val)
    }

    fn grow(&mut self) {
        let mut bigger = Self::with_pow2_capacity((self.mask + 1) * 2);
        for (&k, &v) in self.keys.iter().zip(self.vals.iter()) {
            if k != EMPTY {
                bigger.insert(k, v);
            }
        }
        *self = bigger;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m = LiveMap::new();
        m.insert(0x1000, 64);
        m.insert(0x2000, 128);
        assert_eq!(m.get(0x1000), Some(64));
        assert_eq!(m.len(), 2);
        assert_eq!(m.remove(0x1000), Some(64));
        assert_eq!(m.get(0x1000), None);
        assert_eq!(m.remove(0x1000), None);
        assert_eq!(m.get(0x2000), Some(128));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn insert_overwrites_like_a_map() {
        let mut m = LiveMap::new();
        m.insert(0x40, 1);
        m.insert(0x40, 2);
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove(0x40), Some(2));
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut m = LiveMap::new();
        for i in 0..10_000u64 {
            m.insert(0x10_0000 + i * 16, i);
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(m.get(0x10_0000 + i * 16), Some(i));
        }
    }

    #[test]
    fn backward_shift_keeps_clusters_probeable() {
        // Force a dense cluster, delete from its middle, and verify
        // every survivor is still reachable.
        let mut m = LiveMap::with_pow2_capacity(16);
        let keys: Vec<u64> = (1..=13u64).map(|i| i * 16).collect();
        for &k in &keys {
            m.insert(k, k + 1);
        }
        for &k in &keys {
            assert_eq!(m.remove(k), Some(k + 1), "key {k:#x}");
            for &other in &keys {
                if other > k {
                    assert_eq!(
                        m.get(other),
                        Some(other + 1),
                        "lost {other:#x} after removing {k:#x}"
                    );
                }
            }
        }
        assert!(m.is_empty());
    }

    #[test]
    fn zero_address_and_zero_value_are_legal() {
        let mut m = LiveMap::new();
        m.insert(0, 0);
        assert_eq!(m.get(0), Some(0));
        assert_eq!(m.remove(0), Some(0));
    }

    #[test]
    fn matches_hashmap_over_a_random_history() {
        // Differential check against std's map over a pseudo-random
        // insert/remove interleaving (SplitMix64 stream, fixed seed).
        let mut state = 0x5EEDu64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut ours = LiveMap::new();
        let mut reference = std::collections::HashMap::new();
        for _ in 0..50_000 {
            let r = next();
            let key = (r >> 8) % 4096 * 16; // class-aligned, collision-heavy
            if r % 3 == 0 {
                assert_eq!(ours.remove(key), reference.remove(&key));
            } else {
                ours.insert(key, r);
                reference.insert(key, r);
            }
            assert_eq!(ours.len(), reference.len());
        }
        for (&k, &v) in &reference {
            assert_eq!(ours.get(k), Some(v));
        }
    }
}
