//! The power-of-two, size-segregated base allocator (§3.2).

use std::collections::HashMap;

use crate::{size_class, Allocator, Region};

/// Smallest size class in bytes (also the alignment guarantee).
const MIN_CLASS: u64 = 16;

/// STABILIZER's default base allocator: power-of-two size classes with
/// LIFO free lists (§3.2: "a power of two, size-segregated allocator").
///
/// The LIFO reuse is what makes it *deterministic* — and what the
/// shuffling layer exists to undo: without shuffling, a malloc/free
/// loop returns the same address every iteration.
#[derive(Debug, Clone)]
pub struct SegregatedAllocator {
    region: Region,
    /// Free list per class exponent (`free[k]` holds blocks of `2^k`).
    free: Vec<Vec<u64>>,
    /// Size class of every block ever carved, live or free.
    class_of: HashMap<u64, u64>,
    /// Requested (not rounded) size of live allocations.
    live: HashMap<u64, u64>,
    live_bytes: u64,
}

impl SegregatedAllocator {
    /// Creates an allocator that carves from `region`.
    pub fn new(region: Region) -> Self {
        SegregatedAllocator {
            region,
            free: vec![Vec::new(); 64],
            class_of: HashMap::new(),
            live: HashMap::new(),
            live_bytes: 0,
        }
    }

    /// Internal-use size class for a request.
    pub fn class_for(size: u64) -> u64 {
        size_class(size, MIN_CLASS)
    }
}

impl Allocator for SegregatedAllocator {
    fn malloc(&mut self, size: u64) -> Option<u64> {
        assert!(size > 0, "zero-size allocation");
        let class = Self::class_for(size);
        let k = class.trailing_zeros() as usize;
        let addr = match self.free[k].pop() {
            Some(a) => a,
            None => {
                // Natural alignment: blocks of 2^k are 2^k-aligned, so
                // the low bits of every address in a class are zero —
                // the address-entropy structure §3.2 discusses.
                let a = self.region.carve(class, class)?;
                self.class_of.insert(a, class);
                a
            }
        };
        self.live.insert(addr, size);
        self.live_bytes += size;
        Some(addr)
    }

    fn free(&mut self, addr: u64) {
        assert!(self.try_free(addr), "free of non-live address {addr:#x}");
    }

    fn try_free(&mut self, addr: u64) -> bool {
        let Some(size) = self.live.remove(&addr) else {
            return false;
        };
        self.live_bytes -= size;
        let class = self.class_of[&addr];
        self.free[class.trailing_zeros() as usize].push(addr);
        true
    }

    fn name(&self) -> &'static str {
        "segregated-pow2"
    }

    fn live_bytes(&self) -> u64 {
        self.live_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc() -> SegregatedAllocator {
        SegregatedAllocator::new(Region::new(0x100_0000, 1 << 26))
    }

    #[test]
    fn lifo_reuse_is_deterministic() {
        // The motivating property: the base allocator alone produces
        // *identical* addresses across malloc/free cycles.
        let mut a = alloc();
        let p = a.malloc(100).unwrap();
        a.free(p);
        let q = a.malloc(80).unwrap(); // same 128-byte class
        assert_eq!(p, q, "LIFO free list returns the most recent block");
    }

    #[test]
    fn classes_are_naturally_aligned() {
        let mut a = alloc();
        for size in [1u64, 17, 33, 100, 1000, 5000] {
            let class = SegregatedAllocator::class_for(size);
            let p = a.malloc(size).unwrap();
            assert_eq!(p % class, 0, "size {size} (class {class})");
        }
    }

    #[test]
    fn different_classes_do_not_mix() {
        let mut a = alloc();
        let small = a.malloc(16).unwrap();
        a.free(small);
        let big = a.malloc(1024).unwrap();
        assert_ne!(
            small, big,
            "1024-byte request must not reuse a 16-byte block"
        );
    }

    #[test]
    #[should_panic(expected = "free of non-live address")]
    fn double_free_panics() {
        let mut a = alloc();
        let p = a.malloc(64).unwrap();
        a.free(p);
        a.free(p);
    }

    #[test]
    fn exhaustion_is_none_not_panic() {
        let mut a = SegregatedAllocator::new(Region::new(0, 64));
        assert!(a.malloc(16).is_some());
        assert!(a.malloc(16).is_some());
        assert!(a.malloc(16).is_some());
        assert!(a.malloc(16).is_some());
        assert_eq!(a.malloc(16), None);
    }

    #[test]
    fn rounding_wastes_space_for_awkward_sizes() {
        // This is cactusADM's Figure-6 overhead story: arrays rounded up
        // to powers of two waste heap space.
        let mut a = alloc();
        let p = a.malloc(4097).unwrap();
        let q = a.malloc(4097).unwrap();
        assert!(
            q - p >= 8192,
            "each 4097-byte array occupies an 8 KiB class"
        );
    }
}
