//! A bump-allocated span of the simulated virtual address space.

/// A contiguous span of simulated virtual memory that allocators carve
/// chunks from (an `sbrk`/`mmap` stand-in).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    base: u64,
    size: u64,
    cursor: u64,
}

impl Region {
    /// Creates a region spanning `[base, base + size)`.
    ///
    /// # Panics
    ///
    /// Panics if the span would wrap the address space.
    pub fn new(base: u64, size: u64) -> Self {
        assert!(
            base.checked_add(size).is_some(),
            "region wraps the address space"
        );
        Region {
            base,
            size,
            cursor: base,
        }
    }

    /// First address of the region.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Total span in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Bytes not yet handed out.
    pub fn remaining(&self) -> u64 {
        self.base + self.size - self.cursor
    }

    /// Carves `bytes` aligned to `align` from the region.
    ///
    /// Returns `None` when exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn carve(&mut self, bytes: u64, align: u64) -> Option<u64> {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let aligned = self.cursor.checked_add(align - 1)? & !(align - 1);
        let end = aligned.checked_add(bytes)?;
        if end > self.base + self.size {
            return None;
        }
        self.cursor = end;
        Some(aligned)
    }

    /// Whether `addr` lies inside this region.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.base + self.size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carve_respects_alignment() {
        let mut r = Region::new(0x1001, 0x1000);
        let a = r.carve(10, 64).unwrap();
        assert_eq!(a % 64, 0);
        assert!(a >= 0x1001);
        let b = r.carve(10, 64).unwrap();
        assert!(b >= a + 10);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut r = Region::new(0, 128);
        assert!(r.carve(100, 16).is_some());
        assert!(r.carve(100, 16).is_none());
    }

    #[test]
    fn remaining_shrinks() {
        let mut r = Region::new(0x1000, 0x1000);
        let before = r.remaining();
        r.carve(256, 16).unwrap();
        assert_eq!(r.remaining(), before - 256);
    }

    #[test]
    fn contains_bounds() {
        let r = Region::new(0x1000, 0x100);
        assert!(r.contains(0x1000));
        assert!(r.contains(0x10FF));
        assert!(!r.contains(0x1100));
        assert!(!r.contains(0xFFF));
    }
}
