//! The STABILIZER shuffling layer (§3.2, Figure 1).
//!
//! A size-`N` array of pointers per size class sits between the
//! program and the base allocator. At first use the array is filled
//! with `N` objects from the base heap and shuffled with Fisher–Yates.
//! Every `malloc` allocates a fresh object, swaps it with a random
//! array slot, and returns the swapped-out pointer; every `free` swaps
//! the incoming pointer with a random slot and frees the swapped-out
//! one — each operation is one step of an inside-out Fisher–Yates
//! shuffle, so the stream of returned addresses is a random
//! interleaving of base-heap objects.

use sz_rng::{fisher_yates, Rng};

use crate::{size_class, Allocator, LiveMap};

/// Smallest shuffled size class (matches the base allocator's floor).
const MIN_CLASS: u64 = 16;

/// STABILIZER's shuffling heap layer over a base allocator.
///
/// The shuffle parameter `N` trades randomness for overhead; the paper
/// settles on `N = 256`, which passes the same NIST tests as `lrand48`
/// (§3.2).
#[derive(Debug, Clone)]
pub struct ShuffleLayer<A, R = sz_rng::Marsaglia> {
    base: A,
    rng: R,
    shuffle_size: usize,
    /// Shuffle array per class exponent, created lazily.
    arrays: Vec<Option<Vec<u64>>>,
    /// Requested size of allocations handed to the caller, in an
    /// open-addressed table keyed by the class-aligned address — the
    /// per-malloc bookkeeping is on the simulation's hottest path.
    live: LiveMap,
    live_bytes: u64,
}

impl<A: Allocator, R: Rng> ShuffleLayer<A, R> {
    /// Wraps `base` with a shuffling layer of `shuffle_size` slots per
    /// size class, drawing randomness from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `shuffle_size` is zero.
    pub fn new(base: A, shuffle_size: usize, rng: R) -> Self {
        assert!(shuffle_size > 0, "shuffle size must be positive");
        ShuffleLayer {
            base,
            rng,
            shuffle_size,
            arrays: (0..64).map(|_| None).collect(),
            live: LiveMap::new(),
            live_bytes: 0,
        }
    }

    /// The shuffle parameter `N`.
    pub fn shuffle_size(&self) -> usize {
        self.shuffle_size
    }

    /// Access to the wrapped base allocator.
    pub fn base(&self) -> &A {
        &self.base
    }

    /// Fills and shuffles the array for class exponent `k` (§3.2:
    /// "initialized with a fill: N calls to Base::malloc ... then the
    /// array is shuffled using the Fisher-Yates shuffle").
    fn ensure_array(&mut self, k: usize, class: u64) -> Option<()> {
        if self.arrays[k].is_none() {
            let mut array = Vec::with_capacity(self.shuffle_size);
            for _ in 0..self.shuffle_size {
                match self.base.malloc(class) {
                    Some(p) => array.push(p),
                    None => {
                        // Mid-fill exhaustion: hand the partial fill
                        // back so the failed attempt leaks nothing.
                        for p in array {
                            self.base.free(p);
                        }
                        return None;
                    }
                }
            }
            fisher_yates(&mut array, &mut self.rng);
            self.arrays[k] = Some(array);
        }
        Some(())
    }
}

impl<A: Allocator, R: Rng> Allocator for ShuffleLayer<A, R> {
    fn malloc(&mut self, size: u64) -> Option<u64> {
        // C's `malloc(0)` is legal and must return a unique pointer;
        // `size_class` rounds the request up to the minimum class.
        let class = size_class(size, MIN_CLASS);
        let k = class.trailing_zeros() as usize;
        self.ensure_array(k, class)?;
        // One inside-out Fisher-Yates step: new object in, random
        // object out.
        let fresh = self.base.malloc(class)?;
        let i = self.rng.below(self.shuffle_size as u64) as usize;
        let array = self.arrays[k].as_mut().expect("array ensured above");
        let out = std::mem::replace(&mut array[i], fresh);
        self.live.insert(out, size);
        self.live_bytes += size;
        Some(out)
    }

    fn free(&mut self, addr: u64) {
        assert!(self.try_free(addr), "free of non-live address {addr:#x}");
    }

    fn try_free(&mut self, addr: u64) -> bool {
        let Some(size) = self.live.remove(addr) else {
            return false;
        };
        self.live_bytes -= size;
        let class = size_class(size, MIN_CLASS);
        let k = class.trailing_zeros() as usize;
        // The mirror step: freed object in, random object out to the
        // base heap.
        let i = self.rng.below(self.shuffle_size as u64) as usize;
        let array = self.arrays[k]
            .as_mut()
            .expect("freeing into an initialized class");
        let out = std::mem::replace(&mut array[i], addr);
        self.base.free(out);
        true
    }

    fn name(&self) -> &'static str {
        "shuffle"
    }

    fn live_bytes(&self) -> u64 {
        self.live_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Region, SegregatedAllocator};
    use sz_rng::Marsaglia;

    fn layer(n: usize, seed: u64) -> ShuffleLayer<SegregatedAllocator> {
        ShuffleLayer::new(
            SegregatedAllocator::new(Region::new(0x1000_0000, 1 << 28)),
            n,
            Marsaglia::seeded(seed),
        )
    }

    #[test]
    fn malloc_free_loop_addresses_vary() {
        // The base alone would return one address forever; the shuffle
        // layer must return many distinct addresses.
        let mut h = layer(256, 3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let p = h.malloc(64).unwrap();
            seen.insert(p);
            h.free(p);
        }
        assert!(seen.len() > 100, "only {} distinct addresses", seen.len());
    }

    #[test]
    fn all_addresses_come_from_the_base() {
        // The layer must be a permutation of base-heap objects — never
        // invent addresses.
        let mut h = layer(64, 9);
        for i in 0..500u64 {
            let p = h.malloc(16 + i % 100).unwrap();
            assert!(p >= 0x1000_0000, "address {p:#x} escaped the base region");
            if i % 3 == 0 {
                h.free(p);
            }
        }
    }

    #[test]
    fn returned_objects_never_alias_the_array_or_each_other() {
        let mut h = layer(32, 5);
        let mut live = std::collections::HashSet::new();
        for _ in 0..100 {
            let p = h.malloc(64).unwrap();
            assert!(live.insert(p), "address {p:#x} returned twice while live");
        }
        // Also disjoint from everything still parked in the shuffle array.
        let array = h.arrays[6].as_ref().unwrap().clone();
        for a in array {
            assert!(!live.contains(&a), "array object {a:#x} is also live");
        }
    }

    #[test]
    fn shuffle_one_behaves_like_one_step_delay() {
        // N = 1 still works: every malloc returns the previously parked
        // object.
        let mut h = layer(1, 1);
        let a = h.malloc(64).unwrap();
        let b = h.malloc(64).unwrap();
        assert_ne!(a, b);
        h.free(a);
        h.free(b);
        assert_eq!(h.live_bytes(), 0);
    }

    #[test]
    fn larger_n_gives_more_address_entropy() {
        let spread = |n: usize| {
            let mut h = layer(n, 77);
            let mut seen = std::collections::HashSet::new();
            for _ in 0..300 {
                let p = h.malloc(64).unwrap();
                seen.insert(p);
                h.free(p);
            }
            seen.len()
        };
        assert!(
            spread(256) > spread(4),
            "N=256 must spread further than N=4"
        );
    }

    #[test]
    fn classes_are_independent() {
        let mut h = layer(16, 2);
        let small = h.malloc(16).unwrap();
        let big = h.malloc(4096).unwrap();
        assert_ne!(small, big);
        h.free(small);
        h.free(big);
        assert_eq!(h.live_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "free of non-live address")]
    fn free_of_unknown_address_panics() {
        let mut h = layer(8, 1);
        h.malloc(64).unwrap();
        h.free(0xDEAD_BEEF);
    }

    #[test]
    fn try_free_of_non_live_address_reports_without_state_damage() {
        let mut h = layer(8, 1);
        let p = h.malloc(64).unwrap();
        assert!(!h.try_free(0xDEAD_BEEF), "unknown address");
        assert!(!h.try_free(p + 8), "interior pointer");
        assert_eq!(
            h.live_bytes(),
            64,
            "failed frees must not disturb accounting"
        );
        assert!(h.try_free(p), "the real allocation still frees");
        assert!(!h.try_free(p), "double free is reported, not fatal");
        assert_eq!(h.live_bytes(), 0);
    }

    #[test]
    fn mid_fill_exhaustion_leaks_nothing() {
        // A base region that fits only 5 of the 8 fill objects: the
        // fill fails partway and every already-carved object must be
        // handed back (the pre-fix code dropped them on the floor).
        let base = SegregatedAllocator::new(Region::new(0x1000, 5 * 64));
        let mut h = ShuffleLayer::new(base, 8, Marsaglia::seeded(4));
        assert_eq!(h.malloc(64), None, "fill cannot complete");
        assert_eq!(
            h.base().live_bytes(),
            0,
            "partial fill must be freed back to the base"
        );
        // A retry pulls the rolled-back blocks off the free list,
        // fails at the same carve, and must roll back again.
        assert_eq!(h.malloc(64), None);
        assert_eq!(h.base().live_bytes(), 0, "repeated attempts stay leak-free");
    }

    #[test]
    fn malloc_zero_is_legal_and_rounds_to_the_minimum_class() {
        let mut h = layer(16, 7);
        let p = h.malloc(0).unwrap();
        let q = h.malloc(0).unwrap();
        assert_ne!(p, q, "zero-size allocations are distinct objects");
        assert_eq!(h.live_bytes(), 0, "zero bytes are live to the caller");
        h.free(p);
        h.free(q);
        assert_eq!(h.live_bytes(), 0);
    }
}
