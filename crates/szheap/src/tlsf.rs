//! A two-level segregated-fits (TLSF) allocator.
//!
//! The paper (§3.2) offers TLSF as an alternative base allocator
//! beneath the shuffling layer. Unlike the power-of-two base, TLSF
//! splits and coalesces blocks, so its address patterns differ — which
//! is exactly why the shuffling layer, not the base, must provide the
//! randomness.

use std::collections::HashMap;

use crate::{Allocator, Region};

/// log2 of the number of second-level subdivisions per first level.
const SL_LOG: u32 = 4;
/// Minimum block size (and the alignment guarantee).
const MIN_BLOCK: u64 = 16;
/// Size of each pool carved from the region when the allocator grows.
const POOL_BYTES: u64 = 1 << 20;

#[derive(Debug, Clone)]
struct BlockMeta {
    size: u64,
    prev_phys: Option<u64>,
    next_phys: Option<u64>,
    free: bool,
}

/// Two-level segregated-fits allocator (Masmano et al.), with block
/// splitting and immediate coalescing.
#[derive(Debug, Clone)]
pub struct TlsfAllocator {
    region: Region,
    blocks: HashMap<u64, BlockMeta>,
    /// `free_lists[fl][sl]` holds addresses of free blocks.
    free_lists: Vec<Vec<Vec<u64>>>,
    live: HashMap<u64, u64>,
    live_bytes: u64,
}

impl TlsfAllocator {
    /// Creates an allocator that carves pools from `region` on demand.
    pub fn new(region: Region) -> Self {
        TlsfAllocator {
            region,
            blocks: HashMap::new(),
            free_lists: vec![vec![Vec::new(); 1 << SL_LOG]; 64],
            live: HashMap::new(),
            live_bytes: 0,
        }
    }

    /// Maps a size to its (first level, second level) indices.
    fn mapping(size: u64) -> (usize, usize) {
        let fl = 63 - size.leading_zeros();
        let sl = if fl >= SL_LOG {
            ((size >> (fl - SL_LOG)) - (1 << SL_LOG)) as usize
        } else {
            0
        };
        (fl as usize, sl)
    }

    fn insert_free(&mut self, addr: u64) {
        let size = self.blocks[&addr].size;
        let (fl, sl) = Self::mapping(size);
        self.free_lists[fl][sl].push(addr);
    }

    fn remove_free(&mut self, addr: u64) {
        let size = self.blocks[&addr].size;
        let (fl, sl) = Self::mapping(size);
        let list = &mut self.free_lists[fl][sl];
        let pos = list
            .iter()
            .position(|&a| a == addr)
            .expect("block in its free list");
        list.swap_remove(pos);
    }

    /// Finds a free block of at least `size` bytes (good fit: smallest
    /// list at or above the request's mapping).
    fn find_block(&self, size: u64) -> Option<u64> {
        let (fl0, sl0) = Self::mapping(size);
        for fl in fl0..self.free_lists.len() {
            let start = if fl == fl0 { sl0 } else { 0 };
            for sl in start..(1 << SL_LOG) {
                // A block in the request's own list may be smaller than
                // the request (the list holds [class, next) sizes), so
                // verify.
                if let Some(&addr) = self.free_lists[fl][sl]
                    .iter()
                    .find(|&&a| self.blocks[&a].size >= size)
                {
                    return Some(addr);
                }
            }
        }
        None
    }

    fn grow(&mut self, at_least: u64) -> Option<()> {
        let bytes = at_least.max(POOL_BYTES);
        let addr = self.region.carve(bytes, MIN_BLOCK)?;
        self.blocks.insert(
            addr,
            BlockMeta {
                size: bytes,
                prev_phys: None,
                next_phys: None,
                free: true,
            },
        );
        self.insert_free(addr);
        Some(())
    }

    fn round(size: u64) -> u64 {
        size.div_ceil(MIN_BLOCK) * MIN_BLOCK
    }
}

impl Allocator for TlsfAllocator {
    fn malloc(&mut self, size: u64) -> Option<u64> {
        assert!(size > 0, "zero-size allocation");
        let need = Self::round(size);
        let addr = match self.find_block(need) {
            Some(a) => a,
            None => {
                self.grow(need)?;
                self.find_block(need)?
            }
        };
        self.remove_free(addr);
        let meta = self.blocks.get_mut(&addr).expect("found block exists");
        meta.free = false;
        let block_size = meta.size;

        // Split if the remainder is usable.
        if block_size >= need + MIN_BLOCK {
            let rest_addr = addr + need;
            let rest_size = block_size - need;
            let old_next = meta.next_phys;
            meta.size = need;
            meta.next_phys = Some(rest_addr);
            self.blocks.insert(
                rest_addr,
                BlockMeta {
                    size: rest_size,
                    prev_phys: Some(addr),
                    next_phys: old_next,
                    free: true,
                },
            );
            if let Some(next) = old_next {
                self.blocks
                    .get_mut(&next)
                    .expect("physical neighbor exists")
                    .prev_phys = Some(rest_addr);
            }
            self.insert_free(rest_addr);
        }

        self.live.insert(addr, size);
        self.live_bytes += size;
        Some(addr)
    }

    fn free(&mut self, addr: u64) {
        assert!(self.try_free(addr), "free of non-live address {addr:#x}");
    }

    fn try_free(&mut self, addr: u64) -> bool {
        let Some(size) = self.live.remove(&addr) else {
            return false;
        };
        self.live_bytes -= size;

        let mut addr = addr;
        self.blocks
            .get_mut(&addr)
            .expect("live block has metadata")
            .free = true;

        // Coalesce with the next physical block.
        if let Some(next) = self.blocks[&addr].next_phys {
            if self.blocks[&next].free {
                self.remove_free(next);
                let next_meta = self.blocks.remove(&next).expect("neighbor exists");
                let meta = self.blocks.get_mut(&addr).expect("block exists");
                meta.size += next_meta.size;
                meta.next_phys = next_meta.next_phys;
                if let Some(nn) = next_meta.next_phys {
                    self.blocks.get_mut(&nn).expect("neighbor exists").prev_phys = Some(addr);
                }
            }
        }
        // Coalesce with the previous physical block.
        if let Some(prev) = self.blocks[&addr].prev_phys {
            if self.blocks[&prev].free {
                self.remove_free(prev);
                let meta = self.blocks.remove(&addr).expect("block exists");
                let prev_meta = self.blocks.get_mut(&prev).expect("neighbor exists");
                prev_meta.size += meta.size;
                prev_meta.next_phys = meta.next_phys;
                if let Some(nn) = meta.next_phys {
                    self.blocks.get_mut(&nn).expect("neighbor exists").prev_phys = Some(prev);
                }
                addr = prev;
            }
        }
        self.insert_free(addr);
        true
    }

    fn name(&self) -> &'static str {
        "tlsf"
    }

    fn live_bytes(&self) -> u64 {
        self.live_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc() -> TlsfAllocator {
        TlsfAllocator::new(Region::new(0x200_0000, 1 << 26))
    }

    #[test]
    fn mapping_is_monotone() {
        let mut prev = (0usize, 0usize);
        for size in (16u64..4096).step_by(16) {
            let m = TlsfAllocator::mapping(size);
            assert!(m >= prev, "mapping must not decrease: {size}");
            prev = m;
        }
    }

    #[test]
    fn split_and_reuse() {
        let mut a = alloc();
        let p = a.malloc(64).unwrap();
        let q = a.malloc(64).unwrap();
        // TLSF splits sequentially from the pool: q follows p.
        assert_eq!(q, p + 64);
    }

    #[test]
    fn coalescing_restores_large_blocks() {
        let mut a = alloc();
        // Allocate three adjacent blocks, free in an order that
        // exercises both forward and backward merges.
        let p = a.malloc(1024).unwrap();
        let q = a.malloc(1024).unwrap();
        let r = a.malloc(1024).unwrap();
        a.free(p);
        a.free(r);
        a.free(q); // merges with both neighbors
                   // After full coalescing a pool-sized request near the original
                   // block must be satisfiable from the merged space.
        let big = a.malloc(3072).unwrap();
        assert_eq!(big, p, "coalesced block reused from the start");
    }

    #[test]
    fn awkward_sizes_do_not_round_to_power_of_two() {
        // TLSF's selling point vs the pow2 base: a 4097-byte request
        // consumes ~4112 bytes, not 8192.
        let mut a = alloc();
        let p = a.malloc(4097).unwrap();
        let q = a.malloc(4097).unwrap();
        assert!(q - p < 8192, "gap {} should be close to the request", q - p);
    }

    #[test]
    #[should_panic(expected = "free of non-live address")]
    fn double_free_panics() {
        let mut a = alloc();
        let p = a.malloc(64).unwrap();
        a.free(p);
        a.free(p);
    }

    #[test]
    fn stress_random_malloc_free_keeps_invariants() {
        let mut a = alloc();
        let mut live: Vec<(u64, u64)> = Vec::new();
        let mut state = 0x12345u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..2000 {
            if live.len() < 50 || next() % 2 == 0 {
                let size = 1 + next() % 2000;
                let addr = a.malloc(size).unwrap();
                for &(o, os) in &live {
                    assert!(addr + size <= o || o + os <= addr, "overlap");
                }
                live.push((addr, size));
            } else {
                let idx = (next() % live.len() as u64) as usize;
                let (addr, _) = live.swap_remove(idx);
                a.free(addr);
            }
        }
        let total: u64 = live.iter().map(|&(_, s)| s).sum();
        assert_eq!(a.live_bytes(), total);
    }
}
