//! Shrinker properties, exercised against a real divergence: the
//! injected global-aliasing engine (`--inject-global-alias` in the
//! binary) makes the ordinary matrix check fail, and the shrinker must
//! minimize that failure deterministically, monotonically, and without
//! ever losing the divergence class.

use sz_fuzz::diff::{check_program, recheck_class, Divergence, DivergenceKind};
use sz_fuzz::gen;
use sz_fuzz::inject::GlobalAlias;
use sz_fuzz::shrink::shrink;
use sz_ir::Program;

/// Finds a seed whose generated program the aliasing engine breaks,
/// with enough instructions that shrinking has real work to do.
fn find_injected_divergence() -> (u64, Program, Divergence) {
    for k in 0..500u64 {
        let seed = gen::DEFAULT_SEED.wrapping_add(k);
        let program = gen::generate(seed);
        if program.instr_count() < 40 {
            continue;
        }
        if let Err(d) = check_program(&program, seed, true) {
            assert_eq!(
                d.engine,
                GlobalAlias::LABEL,
                "seed {seed:#x}: the honest engines diverged before the injected one"
            );
            return (seed, program, d);
        }
    }
    panic!("no seed in 500 triggered the injected aliasing engine");
}

fn run_shrink(seed: u64, program: &Program, divergence: &Divergence) -> sz_fuzz::ShrinkOutcome {
    let class = divergence.class();
    shrink(program, class, &mut |candidate: &Program| {
        recheck_class(candidate, seed, class)
    })
}

#[test]
fn shrinking_is_deterministic_monotone_and_class_preserving() {
    let (seed, program, divergence) = find_injected_divergence();
    assert_eq!(divergence.kind, DivergenceKind::EngineDisagreement);

    let first = run_shrink(seed, &program, &divergence);
    let second = run_shrink(seed, &program, &divergence);

    // Deterministic: equal inputs, equal trajectory and result.
    assert_eq!(first.program, second.program, "shrink is not deterministic");
    assert_eq!(first.steps, second.steps);
    assert_eq!(first.candidates_tried, second.candidates_tried);

    // Monotone: every accepted step is no larger than the previous,
    // starting from the original.
    let mut prev = program.instr_count();
    for (i, &count) in first.steps.iter().enumerate() {
        assert!(
            count <= prev,
            "step {i} grew the program: {prev} -> {count}"
        );
        prev = count;
    }
    assert_eq!(first.program.instr_count(), prev);

    // Class-preserving: the reduced program still fails, on the same
    // engine with the same comparison kind, and still validates. (The
    // check is the focused one the shrinker itself uses: shrinking may
    // break the generator's layout-invariance discipline for *other*
    // engines, which is fine — the preserved class is the contract.)
    assert!(first.program.validate().is_ok());
    let reduced_divergence = recheck_class(&first.program, seed, divergence.class())
        .expect("reduced program no longer diverges");
    assert_eq!(reduced_divergence.class(), divergence.class());

    // And the minimization is substantial — the acceptance bar is ≤25%
    // of the original instruction count.
    let original = program.instr_count();
    let reduced = first.program.instr_count();
    assert!(
        reduced * 4 <= original,
        "reduced {reduced} instrs from {original}: more than 25% left"
    );
}

#[test]
fn driver_catches_and_shrinks_the_injected_divergence() {
    // End to end through the fuzz driver: armed with the broken
    // engine, a short run must fail and hand back a finished
    // reproducer whose artifact identifies the injected engine.
    let config = sz_fuzz::FuzzConfig {
        seed_base: gen::DEFAULT_SEED,
        programs: 500,
        threads: 4,
        inject_global_alias: true,
        ..sz_fuzz::FuzzConfig::default()
    };
    let summary = sz_fuzz::driver::run(&config);
    let failure = summary.failure.expect("injected engine must be caught");
    let divergence = match failure {
        sz_fuzz::FuzzFailure::Divergence(d) => d,
        other => panic!("expected a divergence, got {other:?}"),
    };
    assert_eq!(divergence.engine, GlobalAlias::LABEL);

    let reproducer = summary.reproducer.expect("driver must shrink on failure");
    assert!(reproducer.reduced_instructions <= reproducer.original_instructions);
    assert!(reproducer.reduced.validate().is_ok());
    let json = reproducer.to_json().to_string();
    assert!(json.contains("\"type\":\"reproducer\""));
    assert!(json.contains(GlobalAlias::LABEL));
}

#[test]
fn clean_programs_do_not_trigger_the_shrinker() {
    // Sanity on the negative control's scope: without the injected
    // engine, the same seed region is clean.
    let config = sz_fuzz::FuzzConfig {
        seed_base: gen::DEFAULT_SEED,
        programs: 64,
        threads: 4,
        ..sz_fuzz::FuzzConfig::default()
    };
    let summary = sz_fuzz::driver::run(&config);
    assert_eq!(summary.failure, None, "honest engines diverged");
    assert_eq!(summary.programs_run, 64);
    assert!(summary.reproducer.is_none());
}
