//! Golden pin: the staged (record + instantiate) pipeline emits
//! programs bit-identical to the retired single-pass generator.
//!
//! This is what licenses deleting `tests/conf_gen`: if these pins
//! hold, the conformance suite's covered program space is exactly what
//! it was before the staging refactor — for every seed, not just the
//! defaults. The pinned seeds are spread across magnitudes (small,
//! round, adversarial bit patterns, `u64::MAX`) so a draw-order or
//! short-circuit regression in the walker cannot hide behind one lucky
//! region of seed space.

use sz_fuzz::gen::{self, Generator};

/// Seeds pinned forever; chosen to cover both defaults, bit-pattern
/// extremes, and arbitrary interior points.
const PINNED_SEEDS: [u64; 10] = [
    0,
    1,
    gen::DEFAULT_SEED,
    0xDEAD_BEEF,
    0xDEAD_BEF0,
    0x0123_4567_89AB_CDEF,
    0x8000_0000_0000_0000,
    0x5555_5555_5555_5555,
    42,
    u64::MAX,
];

#[test]
fn staged_pipeline_matches_single_pass_on_pinned_seeds() {
    let mut generator = Generator::new();
    for &seed in &PINNED_SEEDS {
        let staged = generator.generate(seed);
        let reference = gen::single_pass(seed);
        assert_eq!(
            staged, reference,
            "seed {seed:#x}: staged pipeline diverged from the single-pass generator"
        );
    }
}

#[test]
fn staged_pipeline_matches_single_pass_across_the_suite_range() {
    // The whole default conformance sweep, plus the SZ_CONF_SEED hook:
    // whatever region CI points the suite at, staging must not move it.
    let base = gen::base_seed();
    let mut generator = Generator::new();
    for k in 0..gen::DEFAULT_PROGRAMS {
        let seed = base.wrapping_add(k);
        assert_eq!(
            generator.generate(seed),
            gen::single_pass(seed),
            "seed {seed:#x}: staged pipeline diverged from the single-pass generator"
        );
    }
}

#[test]
fn recorded_tapes_replay_to_the_same_program() {
    // Stage separation: tapes recorded once instantiate the identical
    // program any number of times, through a fresh reader each time.
    let mut generator = Generator::new();
    for &seed in &PINNED_SEEDS {
        let from_pipeline = generator.generate(seed);
        let tapes = generator.record(seed).clone();
        let once = gen::instantiate(seed, &tapes);
        let twice = gen::instantiate(seed, &tapes);
        assert_eq!(once, twice, "seed {seed:#x}: instantiate is not a function");
        assert_eq!(
            once, from_pipeline,
            "seed {seed:#x}: replay from saved tapes diverged"
        );
    }
}

#[test]
fn arena_reuse_does_not_leak_between_seeds() {
    // A generator that has seen a large program must still produce the
    // identical small one (cleared tapes, reused capacity).
    let mut reused = Generator::new();
    for &warm in &PINNED_SEEDS {
        reused.generate(warm);
    }
    for &seed in &PINNED_SEEDS {
        assert_eq!(
            reused.generate(seed),
            Generator::new().generate(seed),
            "seed {seed:#x}: warm generator diverged from a fresh one"
        );
    }
}
