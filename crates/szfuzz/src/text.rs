//! A readable text rendering of IR programs for reproducer artifacts.
//!
//! The dump is for humans triaging a divergence: one line per
//! instruction, `#` marks immediates, block labels are jump targets.
//! It is not a parseable syntax — the tapes in the same artifact are
//! the machine-replayable form.

use std::fmt::Write;
use sz_ir::{GlobalInit, Instr, Operand, Program, Terminator};

fn op(o: &Operand) -> String {
    match o {
        Operand::Reg(r) => format!("r{}", r.0),
        Operand::Imm(v) => format!("#{v}"),
    }
}

/// Renders `program` as indented text, one instruction per line.
pub fn render_program(program: &Program) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "program {} (entry {}, {} instrs)",
        program.name,
        program.functions[program.entry.0 as usize].name,
        program.instr_count()
    );
    for (gi, g) in program.globals.iter().enumerate() {
        let init = match g.init {
            GlobalInit::Zero => "zero".to_string(),
            GlobalInit::U64(v) => format!("u64 {v}"),
            GlobalInit::F64Bits(b) => format!("f64 {}", f64::from_bits(b)),
        };
        let _ = writeln!(s, "global g{gi} \"{}\" size={} init={init}", g.name, g.size);
    }
    for (fi, f) in program.functions.iter().enumerate() {
        let _ = writeln!(
            s,
            "fn f{fi} \"{}\" params={} regs={} slots={}",
            f.name, f.params, f.num_regs, f.num_slots
        );
        for (bi, b) in f.blocks.iter().enumerate() {
            let _ = writeln!(s, "  b{bi}:");
            for ins in &b.instrs {
                let line = match ins {
                    Instr::Alu { dst, op: o, a, b } => {
                        format!("r{} = {:?} {}, {}", dst.0, o, op(a), op(b))
                    }
                    Instr::FpConst { dst, bits } => {
                        format!("r{} = fpconst {}", dst.0, f64::from_bits(*bits))
                    }
                    Instr::IntToFp { dst, src } => format!("r{} = int_to_fp {}", dst.0, op(src)),
                    Instr::FpToInt { dst, src } => format!("r{} = fp_to_int {}", dst.0, op(src)),
                    Instr::LoadSlot { dst, slot } => format!("r{} = slot[{slot}]", dst.0),
                    Instr::StoreSlot { src, slot } => format!("slot[{slot}] = {}", op(src)),
                    Instr::LoadGlobal {
                        dst,
                        global,
                        offset,
                    } => format!("r{} = g{}[{}]", dst.0, global.0, op(offset)),
                    Instr::StoreGlobal {
                        src,
                        global,
                        offset,
                    } => format!("g{}[{}] = {}", global.0, op(offset), op(src)),
                    Instr::LoadPtr { dst, base, offset } => {
                        format!("r{} = [r{} + {offset}]", dst.0, base.0)
                    }
                    Instr::StorePtr { src, base, offset } => {
                        format!("[r{} + {offset}] = {}", base.0, op(src))
                    }
                    Instr::Malloc { dst, size } => format!("r{} = malloc {}", dst.0, op(size)),
                    Instr::Free { ptr } => format!("free r{}", ptr.0),
                    Instr::Call { func, args, ret } => {
                        let args: Vec<String> = args.iter().map(op).collect();
                        let dst = match ret {
                            Some(r) => format!("r{} = ", r.0),
                            None => String::new(),
                        };
                        format!("{dst}call f{}({})", func.0, args.join(", "))
                    }
                    Instr::Nop { bytes } => format!("nop {bytes}"),
                };
                let _ = writeln!(s, "    {line}");
            }
            let term = match &b.term {
                Terminator::Jump(t) => format!("jump b{}", t.0),
                Terminator::Branch {
                    cond,
                    taken,
                    not_taken,
                } => format!("branch {} ? b{} : b{}", op(cond), taken.0, not_taken.0),
                Terminator::Ret { value: Some(v) } => format!("ret {}", op(v)),
                Terminator::Ret { value: None } => "ret".to_string(),
            };
            let _ = writeln!(s, "    {term}");
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_every_construct() {
        let p = crate::gen::generate(crate::gen::DEFAULT_SEED);
        let text = render_program(&p);
        assert!(text.contains("program conf-0xc0ffee00"));
        assert!(text.contains("fn f0"));
        assert!(text.contains("b0:"));
        assert!(text.lines().count() > p.instr_count());
    }
}
