//! Greedy deterministic minimization of a diverging program.
//!
//! Classic delta debugging, specialized to the IR: six candidate
//! passes — drop uncalled functions, straighten branches (pruning
//! unreachable blocks), return early from loop bodies, remove
//! instruction chunks, stub out calls, shrink operands (constants
//! toward zero, registers severed to `0`) — run to a fixpoint. A candidate is accepted only if it still
//! validates *and* the checker reports a divergence of the same
//! [`DivergenceClass`] (same engine, same comparison kind) as the
//! original failure; the expected/got values may drift, since removing
//! code changes what the program computes.
//!
//! Invariants (pinned by `tests/shrinker_props.rs`):
//!
//! - **Deterministic**: candidate order is fixed and the checker is a
//!   pure function of the program, so equal inputs shrink identically.
//! - **Monotone**: every accepted step has an instruction count ≤ the
//!   previous step's; the final program is ≤ the original.
//! - **Class-preserving**: every accepted step (and hence the result)
//!   reproduces the original divergence class.
//!
//! Termination: every accepted candidate strictly decreases the
//! lexicographic potential (instructions, blocks, functions, non-`ret`
//! terminators, branches, calls, register operands, constant
//! magnitude) and no pass ever increases an earlier component; a
//! global candidate budget bounds checker work on adversarial inputs.

use crate::diff::{Divergence, DivergenceClass};
use sz_ir::{AluOp, BlockId, Instr, Operand, Program, Terminator};

/// Hard cap on checker invocations per shrink.
const CANDIDATE_BUDGET: usize = 20_000;

/// Instruction-chunk sizes tried by the removal pass, coarse to fine.
const CHUNKS: [usize; 4] = [8, 4, 2, 1];

/// The result of shrinking.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The minimized program (still reproducing the divergence class).
    pub program: Program,
    /// Instruction count after each accepted step, in order.
    pub steps: Vec<usize>,
    /// Total candidates handed to the checker.
    pub candidates_tried: usize,
}

/// Shrinks `original` while `check` keeps reporting a divergence of
/// `class`. `check` runs the full conformance matrix on a candidate
/// and returns its divergence, if any; it must be deterministic.
pub fn shrink(
    original: &Program,
    class: DivergenceClass,
    check: &mut dyn FnMut(&Program) -> Option<Divergence>,
) -> ShrinkOutcome {
    let mut state = Shrinker {
        program: original.clone(),
        class,
        check,
        steps: Vec::new(),
        tried: 0,
    };
    loop {
        let before = state.steps.len();
        state.pass_drop_functions();
        state.pass_straighten_branches();
        state.pass_early_ret();
        state.pass_remove_instructions();
        state.pass_stub_calls();
        state.pass_shrink_constants();
        if state.steps.len() == before || state.exhausted() {
            break;
        }
    }
    ShrinkOutcome {
        program: state.program,
        steps: state.steps,
        candidates_tried: state.tried,
    }
}

struct Shrinker<'a> {
    program: Program,
    class: DivergenceClass,
    check: &'a mut dyn FnMut(&Program) -> Option<Divergence>,
    steps: Vec<usize>,
    tried: usize,
}

impl Shrinker<'_> {
    fn exhausted(&self) -> bool {
        self.tried >= CANDIDATE_BUDGET
    }

    /// Tries one candidate; on acceptance it becomes the current
    /// program and the step is recorded.
    fn try_accept(&mut self, candidate: Program) -> bool {
        if self.exhausted() || candidate.validate().is_err() {
            return false;
        }
        self.tried += 1;
        match (self.check)(&candidate) {
            Some(d) if d.class() == self.class => {
                debug_assert!(candidate.instr_count() <= self.program.instr_count());
                self.steps.push(candidate.instr_count());
                self.program = candidate;
                true
            }
            _ => false,
        }
    }

    /// Drops functions nothing calls (the entry is never a candidate),
    /// remapping every `FuncId` above the hole.
    fn pass_drop_functions(&mut self) {
        let mut fi = self.program.functions.len();
        while fi > 0 {
            fi -= 1;
            if fi == self.program.entry.0 as usize || self.exhausted() {
                continue;
            }
            let called = self.program.functions.iter().enumerate().any(|(i, f)| {
                i != fi
                    && f.blocks.iter().any(|b| {
                        b.instrs.iter().any(
                            |ins| matches!(ins, Instr::Call { func, .. } if func.0 as usize == fi),
                        )
                    })
            });
            if called {
                continue;
            }
            let mut cand = self.program.clone();
            cand.functions.remove(fi);
            for f in &mut cand.functions {
                for b in &mut f.blocks {
                    for ins in &mut b.instrs {
                        if let Instr::Call { func, .. } = ins {
                            if func.0 as usize > fi {
                                func.0 -= 1;
                            }
                        }
                    }
                }
            }
            if cand.entry.0 as usize > fi {
                cand.entry.0 -= 1;
            }
            self.try_accept(cand);
            // Whether or not it was accepted, move on; indices below
            // `fi` are unaffected either way.
        }
    }

    /// Rewrites branches to unconditional jumps (each arm tried in
    /// turn), pruning blocks that become unreachable.
    fn pass_straighten_branches(&mut self) {
        for fi in 0..self.program.functions.len() {
            let mut bi = 0;
            while bi < self.program.functions[fi].blocks.len() {
                if self.exhausted() {
                    return;
                }
                let term = self.program.functions[fi].blocks[bi].term.clone();
                if let Terminator::Branch {
                    taken, not_taken, ..
                } = term
                {
                    let mut accepted = false;
                    for target in [taken, not_taken] {
                        let mut cand = self.program.clone();
                        cand.functions[fi].blocks[bi].term = Terminator::Jump(target);
                        prune_unreachable_blocks(&mut cand, fi);
                        if self.try_accept(cand) {
                            accepted = true;
                            break;
                        }
                    }
                    if accepted {
                        // Pruning may have renumbered or removed this
                        // block; rescan the function from the top.
                        bi = 0;
                        continue;
                    }
                }
                bi += 1;
            }
        }
    }

    /// Tries to end blocks early with a `ret`, short-circuiting loop
    /// machinery: when the divergent value is computed inside a loop
    /// body, returning it right there makes the back-edge, the exit
    /// test, and the blocks after the loop unreachable in one step.
    /// Candidate values are the block's own defs, latest first (the
    /// most processed value), then no value. `Malloc` defs are skipped
    /// — returning a raw address would manufacture a layout-dependent
    /// result that no honest program has.
    fn pass_early_ret(&mut self) {
        for fi in 0..self.program.functions.len() {
            let mut bi = 0;
            while bi < self.program.functions[fi].blocks.len() {
                if self.exhausted() {
                    return;
                }
                let block = &self.program.functions[fi].blocks[bi];
                if matches!(block.term, Terminator::Ret { .. }) {
                    bi += 1;
                    continue;
                }
                let mut candidates: Vec<Option<Operand>> = block
                    .instrs
                    .iter()
                    .rev()
                    .filter(|ins| !matches!(ins, Instr::Malloc { .. }))
                    .filter_map(Instr::def)
                    .take(4)
                    .map(|r| Some(Operand::Reg(r)))
                    .collect();
                candidates.push(None);
                let mut accepted = false;
                for value in candidates {
                    let mut cand = self.program.clone();
                    cand.functions[fi].blocks[bi].term = Terminator::Ret { value };
                    prune_unreachable_blocks(&mut cand, fi);
                    if self.try_accept(cand) {
                        accepted = true;
                        break;
                    }
                }
                if accepted {
                    // Pruning may have renumbered or removed blocks;
                    // rescan the function from the top. Blocks already
                    // ending in `ret` are skipped, so this converges.
                    bi = 0;
                    continue;
                }
                bi += 1;
            }
        }
    }

    /// Removes instruction chunks, coarse to fine, scanning each block
    /// from the back (later instructions depend on earlier ones, so
    /// suffixes are the likeliest dead weight).
    fn pass_remove_instructions(&mut self) {
        for chunk in CHUNKS {
            for fi in 0..self.program.functions.len() {
                for bi in 0..self.program.functions[fi].blocks.len() {
                    let len = self.program.functions[fi].blocks[bi].instrs.len();
                    let mut start = len.saturating_sub(chunk);
                    loop {
                        if self.exhausted() {
                            return;
                        }
                        let len = self.program.functions[fi].blocks[bi].instrs.len();
                        if len < chunk || start + chunk > len {
                            if start == 0 {
                                break;
                            }
                            start = start.saturating_sub(1).min(len.saturating_sub(chunk));
                            continue;
                        }
                        let mut cand = self.program.clone();
                        cand.functions[fi].blocks[bi]
                            .instrs
                            .drain(start..start + chunk);
                        if !self.try_accept(cand) {
                            if start == 0 {
                                break;
                            }
                            start -= 1;
                        }
                        // On acceptance, retry the same start: new
                        // instructions shifted into the window.
                    }
                }
            }
        }
    }

    /// Replaces calls with cheap equivalents — a zero-producing ALU op
    /// when the result is used, plain removal when it is not — so the
    /// callee becomes uncalled and a later `pass_drop_functions` round
    /// can delete it whole.
    fn pass_stub_calls(&mut self) {
        for fi in 0..self.program.functions.len() {
            for bi in 0..self.program.functions[fi].blocks.len() {
                let mut ii = 0;
                while ii < self.program.functions[fi].blocks[bi].instrs.len() {
                    if self.exhausted() {
                        return;
                    }
                    let ins = self.program.functions[fi].blocks[bi].instrs[ii].clone();
                    if let Instr::Call { ret, .. } = ins {
                        let mut cand = self.program.clone();
                        match ret {
                            Some(dst) => {
                                cand.functions[fi].blocks[bi].instrs[ii] = Instr::Alu {
                                    dst,
                                    op: AluOp::Add,
                                    a: Operand::Imm(0),
                                    b: Operand::Imm(0),
                                };
                            }
                            None => {
                                cand.functions[fi].blocks[bi].instrs.remove(ii);
                            }
                        }
                        if self.try_accept(cand) && ret.is_none() {
                            // The removal shifted the next instruction
                            // into this index; don't skip it.
                            continue;
                        }
                    }
                    ii += 1;
                }
            }
        }
    }

    /// Shrinks operands toward zero: immediates, pointer offsets, FP
    /// bit patterns, global initializers (tried as `0` first, then
    /// halving), and register operands (replaced outright with `0` to
    /// sever def-use edges).
    fn pass_shrink_constants(&mut self) {
        // Global initializers first (cheap, high leverage for the
        // aliasing class of bugs).
        for gi in 0..self.program.globals.len() {
            // Chase the halving chain to its floor inside this pass,
            // instead of paying a whole fixpoint round per halving.
            while let sz_ir::GlobalInit::U64(v) = self.program.globals[gi].init {
                let mut accepted = false;
                for next in [0, v / 2] {
                    if next == v || self.exhausted() {
                        continue;
                    }
                    let mut cand = self.program.clone();
                    cand.globals[gi].init = sz_ir::GlobalInit::U64(next);
                    if self.try_accept(cand) {
                        accepted = true;
                        break;
                    }
                }
                if !accepted {
                    break;
                }
            }
        }
        for fi in 0..self.program.functions.len() {
            for bi in 0..self.program.functions[fi].blocks.len() {
                let n = self.program.functions[fi].blocks[bi].instrs.len();
                for ii in 0..n {
                    // Instruction counts are frozen inside this pass,
                    // so indices stay valid across accepted candidates.
                    // Halving chains are chased to their floor here
                    // (accepted shrinks re-enter the loop with the
                    // smaller constant) rather than one halving per
                    // fixpoint round.
                    loop {
                        if self.exhausted() {
                            return;
                        }
                        let ins = self.program.functions[fi].blocks[bi].instrs[ii].clone();
                        let mut accepted = false;
                        for cand_ins in shrink_instr_constants(&ins) {
                            let mut cand = self.program.clone();
                            cand.functions[fi].blocks[bi].instrs[ii] = cand_ins;
                            if self.try_accept(cand) {
                                accepted = true;
                                break;
                            }
                        }
                        if !accepted {
                            break;
                        }
                    }
                }
                loop {
                    if self.exhausted() {
                        return;
                    }
                    let term = self.program.functions[fi].blocks[bi].term.clone();
                    let mut accepted = false;
                    for cand_term in shrink_term_constants(&term) {
                        let mut cand = self.program.clone();
                        cand.functions[fi].blocks[bi].term = cand_term;
                        if self.try_accept(cand) {
                            accepted = true;
                            break;
                        }
                    }
                    if !accepted {
                        break;
                    }
                }
            }
        }
    }
}

/// Removes blocks unreachable from the function's entry block (0),
/// remapping terminator targets onto the compacted numbering.
fn prune_unreachable_blocks(p: &mut Program, fi: usize) {
    let f = &mut p.functions[fi];
    let n = f.blocks.len();
    let mut reachable = vec![false; n];
    let mut work = vec![0usize];
    while let Some(b) = work.pop() {
        if reachable[b] {
            continue;
        }
        reachable[b] = true;
        for succ in f.blocks[b].term.successors() {
            let s = succ.0 as usize;
            if s < n && !reachable[s] {
                work.push(s);
            }
        }
    }
    if reachable.iter().all(|&r| r) {
        return;
    }
    let mut remap = vec![u32::MAX; n];
    let mut next = 0u32;
    for (i, &r) in reachable.iter().enumerate() {
        if r {
            remap[i] = next;
            next += 1;
        }
    }
    let mut kept = Vec::with_capacity(next as usize);
    for (i, block) in std::mem::take(&mut f.blocks).into_iter().enumerate() {
        if reachable[i] {
            kept.push(block);
        }
    }
    for block in &mut kept {
        block.term = match block.term.clone() {
            Terminator::Jump(b) => Terminator::Jump(BlockId(remap[b.0 as usize])),
            Terminator::Branch {
                cond,
                taken,
                not_taken,
            } => Terminator::Branch {
                cond,
                taken: BlockId(remap[taken.0 as usize]),
                not_taken: BlockId(remap[not_taken.0 as usize]),
            },
            ret @ Terminator::Ret { .. } => ret,
        };
    }
    f.blocks = kept;
}

/// Halves toward zero, zero first.
fn smaller_i64(v: i64) -> Vec<i64> {
    if v == 0 {
        Vec::new()
    } else {
        let mut out = vec![0];
        if v / 2 != 0 {
            out.push(v / 2);
        }
        out
    }
}

fn shrink_operand(o: Operand) -> Vec<Operand> {
    match o {
        Operand::Imm(v) => smaller_i64(v).into_iter().map(Operand::Imm).collect(),
        // Replacing a register with zero cuts the def-use edge, which
        // is what lets the removal pass later delete the now-unused
        // defining instruction.
        Operand::Reg(_) => vec![Operand::Imm(0)],
    }
}

/// Candidate replacements for one instruction with some constant made
/// smaller. At most a handful per instruction; order is fixed.
fn shrink_instr_constants(ins: &Instr) -> Vec<Instr> {
    let mut out = Vec::new();
    match ins {
        Instr::Alu { dst, op, a, b } => {
            for na in shrink_operand(*a) {
                out.push(Instr::Alu {
                    dst: *dst,
                    op: *op,
                    a: na,
                    b: *b,
                });
            }
            for nb in shrink_operand(*b) {
                out.push(Instr::Alu {
                    dst: *dst,
                    op: *op,
                    a: *a,
                    b: nb,
                });
            }
        }
        Instr::FpConst { dst, bits } => {
            if *bits != 0 {
                out.push(Instr::FpConst { dst: *dst, bits: 0 });
            }
        }
        Instr::IntToFp { dst, src } => {
            for ns in shrink_operand(*src) {
                out.push(Instr::IntToFp { dst: *dst, src: ns });
            }
        }
        Instr::FpToInt { dst, src } => {
            for ns in shrink_operand(*src) {
                out.push(Instr::FpToInt { dst: *dst, src: ns });
            }
        }
        Instr::StoreSlot { src, slot } => {
            for ns in shrink_operand(*src) {
                out.push(Instr::StoreSlot {
                    src: ns,
                    slot: *slot,
                });
            }
        }
        Instr::LoadGlobal {
            dst,
            global,
            offset,
        } => {
            for no in shrink_operand(*offset) {
                out.push(Instr::LoadGlobal {
                    dst: *dst,
                    global: *global,
                    offset: no,
                });
            }
        }
        Instr::StoreGlobal {
            src,
            global,
            offset,
        } => {
            for ns in shrink_operand(*src) {
                out.push(Instr::StoreGlobal {
                    src: ns,
                    global: *global,
                    offset: *offset,
                });
            }
            for no in shrink_operand(*offset) {
                out.push(Instr::StoreGlobal {
                    src: *src,
                    global: *global,
                    offset: no,
                });
            }
        }
        Instr::LoadPtr { dst, base, offset } => {
            for no in smaller_i64(*offset) {
                out.push(Instr::LoadPtr {
                    dst: *dst,
                    base: *base,
                    offset: no,
                });
            }
        }
        Instr::StorePtr { src, base, offset } => {
            for ns in shrink_operand(*src) {
                out.push(Instr::StorePtr {
                    src: ns,
                    base: *base,
                    offset: *offset,
                });
            }
            for no in smaller_i64(*offset) {
                out.push(Instr::StorePtr {
                    src: *src,
                    base: *base,
                    offset: no,
                });
            }
        }
        Instr::Malloc { dst, size } => {
            for ns in shrink_operand(*size) {
                out.push(Instr::Malloc {
                    dst: *dst,
                    size: ns,
                });
            }
        }
        Instr::Call { func, args, ret } => {
            for (k, a) in args.iter().enumerate() {
                for na in shrink_operand(*a) {
                    let mut nargs = args.clone();
                    nargs[k] = na;
                    out.push(Instr::Call {
                        func: *func,
                        args: nargs,
                        ret: *ret,
                    });
                }
            }
        }
        Instr::Free { .. } | Instr::LoadSlot { .. } | Instr::Nop { .. } => {}
    }
    out
}

fn shrink_term_constants(term: &Terminator) -> Vec<Terminator> {
    match term {
        Terminator::Branch {
            cond,
            taken,
            not_taken,
        } => shrink_operand(*cond)
            .into_iter()
            .map(|nc| Terminator::Branch {
                cond: nc,
                taken: *taken,
                not_taken: *not_taken,
            })
            .collect(),
        Terminator::Ret { value: Some(v) } => shrink_operand(*v)
            .into_iter()
            .map(|nv| Terminator::Ret { value: Some(nv) })
            .collect(),
        _ => Vec::new(),
    }
}
