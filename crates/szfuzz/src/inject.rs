//! A deliberately broken layout engine: the fuzz pipeline's negative
//! control.
//!
//! A fuzzer that never fires is indistinguishable from a fuzzer that
//! cannot fire. [`GlobalAlias`] wraps [`SimpleLayout`] and answers
//! every [`global_base`] query with global 0's address, aliasing all
//! globals onto one 128-byte region. Any program that initializes or
//! stores through more than one global then computes a different
//! result than under every honest engine — a genuine, layout-caused
//! architectural divergence, detected by the ordinary matrix check
//! with no special-casing.
//!
//! CI runs a short fuzz batch with this engine armed
//! (`sz-fuzz --inject-global-alias`) and requires a nonzero exit plus
//! a shrunk reproducer; the shrinker property tests use it the same
//! way. It is gated by a runtime flag rather than a cargo feature so
//! the control runs against the identical binary CI just built.
//!
//! [`global_base`]: LayoutEngine::global_base

use sz_ir::{FuncId, GlobalId, Program};
use sz_machine::{MemorySystem, PerfCounters};
use sz_vm::{FrameView, LayoutEngine, SimpleLayout};

/// [`SimpleLayout`] with every global aliased onto global 0.
#[derive(Debug, Clone, Default)]
pub struct GlobalAlias {
    inner: SimpleLayout,
}

impl GlobalAlias {
    /// Engine label used in divergence reports.
    pub const LABEL: &'static str = "injected-global-alias";

    /// Creates the engine.
    pub fn new() -> GlobalAlias {
        GlobalAlias {
            inner: SimpleLayout::new(),
        }
    }
}

impl LayoutEngine for GlobalAlias {
    fn prepare(&mut self, program: &Program) {
        self.inner.prepare(program);
    }

    fn enter_function(&mut self, func: FuncId, mem: &mut MemorySystem) -> u64 {
        self.inner.enter_function(func, mem)
    }

    fn stack_pad(&mut self, func: FuncId, mem: &mut MemorySystem) -> u64 {
        self.inner.stack_pad(func, mem)
    }

    fn global_base(&self, _g: GlobalId) -> u64 {
        // The bug: every global lands on global 0.
        self.inner.global_base(GlobalId(0))
    }

    fn stack_base(&self) -> u64 {
        self.inner.stack_base()
    }

    fn malloc(&mut self, size: u64, mem: &mut MemorySystem) -> Option<u64> {
        self.inner.malloc(size, mem)
    }

    fn free(&mut self, addr: u64, mem: &mut MemorySystem) -> bool {
        self.inner.free(addr, mem)
    }

    fn tick(&mut self, now_cycles: u64, stack: &[FrameView], mem: &mut MemorySystem) {
        self.inner.tick(now_cycles, stack, mem);
    }

    fn name(&self) -> &'static str {
        GlobalAlias::LABEL
    }

    fn period_marks(&self) -> &[PerfCounters] {
        self.inner.period_marks()
    }
}
