//! Self-contained reproducer artifacts for divergences.
//!
//! A reproducer carries everything needed to replay and triage a
//! failure without this repo's generator even existing: the seed (for
//! `sz-fuzz --seed`), the recorded choice tapes (the program's exact
//! structural decisions), the shrunk program as readable text, and
//! the engine/comparison that failed. The JSON form is what the CI
//! fuzz gate prints on failure; EXPERIMENTS.md documents the format.

use crate::diff::Divergence;
use crate::gen::{ChoiceTapes, CLASSES};
use crate::shrink::ShrinkOutcome;
use crate::text::render_program;
use sz_harness::Json;
use sz_ir::Program;

/// Everything needed to replay and understand one divergence.
#[derive(Debug, Clone, PartialEq)]
pub struct Reproducer {
    /// The failure, as observed on the original generated program.
    pub divergence: Divergence,
    /// Choice tapes recorded for the failing seed.
    pub tapes: ChoiceTapes,
    /// Instruction count of the original generated program.
    pub original_instructions: usize,
    /// Instruction count of the shrunk program.
    pub reduced_instructions: usize,
    /// Instruction count after each accepted shrink step.
    pub shrink_steps: Vec<usize>,
    /// The shrunk program, still reproducing the divergence class.
    pub reduced: Program,
}

impl Reproducer {
    /// Assembles a reproducer from a divergence, the failing seed's
    /// tapes, and a finished shrink.
    pub fn new(
        divergence: Divergence,
        tapes: ChoiceTapes,
        original_instructions: usize,
        shrunk: &ShrinkOutcome,
    ) -> Reproducer {
        Reproducer {
            divergence,
            tapes,
            original_instructions,
            reduced_instructions: shrunk.program.instr_count(),
            shrink_steps: shrunk.steps.clone(),
            reduced: shrunk.program.clone(),
        }
    }

    /// The machine-readable artifact (one JSON object).
    pub fn to_json(&self) -> Json {
        let d = &self.divergence;
        let tapes = Json::Obj(
            CLASSES
                .iter()
                .map(|class| {
                    (
                        class.name().to_string(),
                        Json::Arr(
                            self.tapes
                                .tape(*class)
                                .iter()
                                .map(|&v| Json::U64(v))
                                .collect(),
                        ),
                    )
                })
                .collect(),
        );
        Json::obj([
            ("type", Json::Str("reproducer".into())),
            ("seed", Json::U64(d.seed)),
            ("engine", Json::Str(d.engine.into())),
            ("kind", Json::Str(d.kind.name().into())),
            ("expected", Json::Str(d.expected.render())),
            ("got", Json::Str(d.got.render())),
            (
                "original_instructions",
                Json::U64(self.original_instructions as u64),
            ),
            (
                "reduced_instructions",
                Json::U64(self.reduced_instructions as u64),
            ),
            (
                "shrink_steps",
                Json::Arr(
                    self.shrink_steps
                        .iter()
                        .map(|&s| Json::U64(s as u64))
                        .collect(),
                ),
            ),
            ("tapes", tapes),
            ("reduced_ir", Json::Str(render_program(&self.reduced))),
        ])
    }

    /// The human-readable triage report.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("=== conformance divergence ===\n");
        s.push_str(&self.divergence.render());
        s.push('\n');
        s.push_str(&format!(
            "shrunk {} -> {} instructions in {} accepted steps\n",
            self.original_instructions,
            self.reduced_instructions,
            self.shrink_steps.len()
        ));
        s.push_str(&format!(
            "replay: sz-fuzz --seed {:#x}{}\n",
            self.divergence.seed,
            if self.divergence.engine == crate::inject::GlobalAlias::LABEL {
                " --inject-global-alias"
            } else {
                ""
            }
        ));
        s.push_str("reduced program:\n");
        s.push_str(&render_program(&self.reduced));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::{ArchResult, DivergenceKind};

    #[test]
    fn artifact_round_trips_through_json_text() {
        let mut generator = crate::gen::Generator::new();
        let program = generator.generate(42);
        let tapes = generator.record(42).clone();
        let divergence = Divergence {
            seed: 42,
            engine: "simple",
            kind: DivergenceKind::InterpreterMismatch,
            expected: ArchResult::Ok(Some(7)),
            got: ArchResult::OutOfFuel,
        };
        let shrunk = ShrinkOutcome {
            program: program.clone(),
            steps: vec![program.instr_count()],
            candidates_tried: 1,
        };
        let rep = Reproducer::new(divergence, tapes, program.instr_count(), &shrunk);
        let text = rep.to_json().to_string();
        let back = Json::parse(&text).expect("artifact is valid JSON");
        assert_eq!(back.get("type").and_then(Json::as_str), Some("reproducer"));
        assert_eq!(back.get("seed").and_then(Json::as_u64), Some(42));
        assert_eq!(
            back.get("kind").and_then(Json::as_str),
            Some("interpreter-mismatch")
        );
        assert!(back
            .get("tapes")
            .and_then(|t| t.get("structure"))
            .and_then(Json::as_arr)
            .is_some_and(|a| !a.is_empty()));
        assert!(rep.render().contains("replay: sz-fuzz --seed 0x2a"));
    }
}
