//! `sz-fuzz` — the standing differential fuzz gate.
//!
//! Generates seeded random programs and checks that every layout
//! engine × allocator configuration (and both interpreters) agree on
//! each program's architectural result. Exits 0 when every program
//! agrees, 1 with a printed (and shrunk) reproducer on the first
//! failure in seed order.
//!
//!     sz-fuzz --programs 2000 --threads 8 --time-cap-ms 50000
//!     sz-fuzz --seed 0xc0ffee42          # replay one seed
//!     SZ_CONF_SEED=12345 sz-fuzz         # sweep a fresh seed region
//!
//! Results are bit-identical at any `--threads` value; the wall-clock
//! cap only decides *how many* seeds run, never what any seed reports.

use std::process::ExitCode;
use sz_fuzz::driver::{self, FuzzConfig, FuzzFailure};
use sz_fuzz::gen::base_seed;

const USAGE: &str = "usage: sz-fuzz [options]

options:
  --seed <u64>          check exactly one seed (replay mode)
  --seed-base <u64>     first seed of the sweep (default: SZ_CONF_SEED or the built-in base)
  --programs <n>        how many consecutive seeds to check (default 2000)
  --threads <n>         worker threads (default: available parallelism)
  --batch <n>           seeds per pool dispatch (default 256)
  --time-cap-ms <n>     stop cleanly at the next batch boundary past this budget
  --inject-global-alias arm the deliberately broken engine (negative control)
  --fuel-sweep          re-cut every clean program at reduced fuel budgets
  --no-shrink           report divergences without minimizing them
  --json                print the machine-readable summary record
  --help                this text

numbers accept decimal or 0x-prefixed hex";

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

struct Options {
    config: FuzzConfig,
    single_seed: Option<u64>,
    json: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut config = FuzzConfig {
        seed_base: base_seed(),
        programs: 2000,
        threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        ..FuzzConfig::default()
    };
    let mut single_seed = None;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--seed" => {
                let v = value("--seed")?;
                single_seed = Some(parse_u64(&v).ok_or_else(|| format!("bad --seed {v:?}"))?);
            }
            "--seed-base" => {
                let v = value("--seed-base")?;
                config.seed_base = parse_u64(&v).ok_or_else(|| format!("bad --seed-base {v:?}"))?;
            }
            "--programs" => {
                let v = value("--programs")?;
                config.programs = parse_u64(&v).ok_or_else(|| format!("bad --programs {v:?}"))?;
            }
            "--threads" => {
                let v = value("--threads")?;
                config.threads =
                    parse_u64(&v).ok_or_else(|| format!("bad --threads {v:?}"))? as usize;
            }
            "--batch" => {
                let v = value("--batch")?;
                config.batch = parse_u64(&v)
                    .ok_or_else(|| format!("bad --batch {v:?}"))?
                    .max(1) as usize;
            }
            "--time-cap-ms" => {
                let v = value("--time-cap-ms")?;
                let ms = parse_u64(&v).ok_or_else(|| format!("bad --time-cap-ms {v:?}"))?;
                config.time_cap = Some(std::time::Duration::from_millis(ms));
            }
            "--inject-global-alias" => config.inject_global_alias = true,
            "--fuel-sweep" => config.fuel_sweep = true,
            "--no-shrink" => config.shrink = false,
            "--json" => json = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if let Some(seed) = single_seed {
        config.seed_base = seed;
        config.programs = 1;
        config.time_cap = None;
    }
    Ok(Options {
        config,
        single_seed,
        json,
    })
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("sz-fuzz: {e}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    if let Some(seed) = options.single_seed {
        eprintln!("sz-fuzz: replaying seed {seed:#x}");
    }
    let summary = driver::run(&options.config);
    if options.json {
        println!("{}", summary.to_json());
    } else {
        print!("{}", summary.render());
    }
    match (&summary.failure, &summary.reproducer) {
        (None, _) => ExitCode::SUCCESS,
        (Some(FuzzFailure::Divergence(_)), Some(rep)) => {
            // The artifact goes to stdout in both modes so CI can
            // capture it with a plain redirect.
            println!("{}", rep.to_json());
            eprint!("{}", rep.render());
            ExitCode::FAILURE
        }
        (Some(_), _) => ExitCode::FAILURE,
    }
}
