//! Staged random-IR generation: a precomputed choice-tape stage and an
//! allocation-lean instantiation stage.
//!
//! The single-pass generator this replaces (preserved verbatim as
//! [`single_pass`], and pinned bit-identical by the golden tests)
//! interleaved RNG draws with IR construction: every structural
//! decision paid for rejection sampling, `f64` conversion, *and* the
//! `String`/`Vec` churn of the builder, per decision. Following the
//! Fail-Faster staging idea (PAPERS.md #4), generation is now split:
//!
//! 1. **Record** ([`Generator::record`]): walk the structural decision
//!    tree with a *skeleton* sink that builds no IR — the data pool is
//!    a `Vec<()>` (length-only, never allocates), function handles are
//!    units — and write every decoded decision onto one flat `u64`
//!    tape per decision [`Class`]. All RNG work (rejection sampling,
//!    float draws) happens here, against reusable tape arenas.
//! 2. **Instantiate** ([`instantiate`]): replay the tapes through the
//!    *same* generic walker with the real [`ProgramBuilder`] sink.
//!    This stage is RNG-free: every choice is a bounds-checked tape
//!    read.
//!
//! Both stages run the one shared walker ([`build_program`]), generic
//! over where choices come from ([`ChoiceSource`]) and where IR goes
//! ([`GenSink`]) — record and replay cannot drift apart by
//! construction, and the tapes are a self-contained, inspectable
//! description of a program's structure (they ship inside reproducer
//! artifacts).
//!
//! The generated-program *contract* is unchanged from the original
//! generator, because the conformance suite's soundness depends on it:
//! programs are always-terminating (bounded counter loops, acyclic
//! calls) and layout-invariant by construction — addresses never
//! become data, heap reads are dominated by same-allocation writes,
//! and only live pointers are freed. See the module comment on
//! [`single_pass`]'s original in git history (`tests/conf_gen/mod.rs`)
//! and DESIGN.md §8.

use sz_ir::{AluOp, FuncId, FunctionBuilder, GlobalId, GlobalInit, Operand, Program};
use sz_ir::{ProgramBuilder, Reg};
use sz_rng::{Rng, SplitMix64};

/// Base seed used when `SZ_CONF_SEED` is not set.
pub const DEFAULT_SEED: u64 = 0xC0FF_EE00;

/// Number of programs the in-tree conformance test checks per run (the
/// CI fuzz gate runs far more; see `ci.sh`).
pub const DEFAULT_PROGRAMS: u64 = 64;

/// Reads the suite's base seed, overridable via `SZ_CONF_SEED` so CI
/// (and bug hunts) can sweep fresh regions of program space without a
/// code change.
pub fn base_seed() -> u64 {
    match std::env::var("SZ_CONF_SEED") {
        Ok(s) if !s.trim().is_empty() => s
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("SZ_CONF_SEED must be an integer, got {s:?}")),
        _ => DEFAULT_SEED,
    }
}

// --- choice tapes ----------------------------------------------------

/// Structural decision classes. Every decision the generator makes
/// lands on exactly one class tape; the split keeps the tapes
/// human-readable in reproducer artifacts (all loop-trip choices in
/// one place, all constants in another) and lets the instantiation
/// stage read each stream with a dedicated cursor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Counts and coin flips that shape the program: how many globals,
    /// leaves, slots, ops; whether the mid-tier exists.
    Structure,
    /// Operation selection: op-kind dice, ALU/float op indices, callee
    /// picks, nop widths.
    Ops,
    /// Operand routing: immediate-vs-pool coins and pool indices.
    Operands,
    /// Memory shape: global indices, offsets, heap episode geometry,
    /// store/load/free coins.
    Mem,
    /// Literal constants: initializers, immediates, trip counts.
    Consts,
}

/// Number of decision classes (tape count).
pub const NUM_CLASSES: usize = 5;

/// All classes, in tape-index order.
pub const CLASSES: [Class; NUM_CLASSES] = [
    Class::Structure,
    Class::Ops,
    Class::Operands,
    Class::Mem,
    Class::Consts,
];

impl Class {
    /// Tape index of this class.
    pub fn index(self) -> usize {
        match self {
            Class::Structure => 0,
            Class::Ops => 1,
            Class::Operands => 2,
            Class::Mem => 3,
            Class::Consts => 4,
        }
    }

    /// Stable wire/artifact name of this class.
    pub fn name(self) -> &'static str {
        match self {
            Class::Structure => "structure",
            Class::Ops => "ops",
            Class::Operands => "operands",
            Class::Mem => "mem",
            Class::Consts => "consts",
        }
    }
}

/// Flat decision tapes, one per [`Class`]. Coin flips are stored as
/// 0/1; bounded draws store the decoded value (always `< bound`).
///
/// The vectors are arenas: [`ChoiceTapes::clear`] keeps their capacity,
/// so a long fuzz run stops allocating for tapes after the largest
/// program seen.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChoiceTapes {
    tapes: [Vec<u64>; NUM_CLASSES],
}

impl ChoiceTapes {
    /// Empty tapes.
    pub fn new() -> ChoiceTapes {
        ChoiceTapes::default()
    }

    /// Clears all tapes, keeping their capacity.
    pub fn clear(&mut self) {
        for t in &mut self.tapes {
            t.clear();
        }
    }

    /// The tape for `class`.
    pub fn tape(&self, class: Class) -> &[u64] {
        &self.tapes[class.index()]
    }

    /// Total decisions recorded across all classes.
    pub fn len(&self) -> usize {
        self.tapes.iter().map(Vec::len).sum()
    }

    /// Whether no decisions are recorded.
    pub fn is_empty(&self) -> bool {
        self.tapes.iter().all(Vec::is_empty)
    }
}

/// Where the walker's decisions come from: a recording RNG in stage 1,
/// a cursor over finished tapes in stage 2.
trait ChoiceSource {
    /// A uniform draw in `[0, bound)` of decision class `class`.
    fn below(&mut self, class: Class, bound: u64) -> u64;
    /// A biased coin of decision class `class`.
    fn chance(&mut self, class: Class, p: f64) -> bool;
}

/// Stage 1: draws from SplitMix64 exactly like the single-pass
/// generator and records every decoded decision on its class tape.
struct TapeRecorder<'a> {
    rng: SplitMix64,
    tapes: &'a mut ChoiceTapes,
}

impl ChoiceSource for TapeRecorder<'_> {
    fn below(&mut self, class: Class, bound: u64) -> u64 {
        let v = self.rng.below(bound);
        self.tapes.tapes[class.index()].push(v);
        v
    }

    fn chance(&mut self, class: Class, p: f64) -> bool {
        let v = self.rng.chance(p);
        self.tapes.tapes[class.index()].push(u64::from(v));
        v
    }
}

/// Stage 2: replays recorded decisions; never touches an RNG.
struct TapeReader<'a> {
    tapes: &'a ChoiceTapes,
    cursors: [usize; NUM_CLASSES],
}

impl<'a> TapeReader<'a> {
    fn new(tapes: &'a ChoiceTapes) -> TapeReader<'a> {
        TapeReader {
            tapes,
            cursors: [0; NUM_CLASSES],
        }
    }

    fn next(&mut self, class: Class) -> u64 {
        let i = class.index();
        let v = self.tapes.tapes[i][self.cursors[i]];
        self.cursors[i] += 1;
        v
    }

    /// Panics unless every tape was consumed exactly — a misaligned
    /// walk (which the shared-walker design makes impossible short of
    /// tape corruption) fails loudly instead of emitting a skewed
    /// program.
    fn finish(self) {
        for (i, class) in CLASSES.iter().enumerate() {
            assert_eq!(
                self.cursors[i],
                self.tapes.tapes[i].len(),
                "tape {} not fully consumed",
                class.name()
            );
        }
    }
}

impl ChoiceSource for TapeReader<'_> {
    fn below(&mut self, class: Class, bound: u64) -> u64 {
        let v = self.next(class);
        debug_assert!(v < bound, "tape value {v} out of range for bound {bound}");
        v
    }

    fn chance(&mut self, class: Class, _p: f64) -> bool {
        self.next(class) != 0
    }
}

// --- generation sinks ------------------------------------------------

/// An operand as the walker sees it: a pool value or an immediate.
#[derive(Clone, Copy)]
enum Opnd<V> {
    Val(V),
    Imm(i64),
}

/// Names the walker assigns (the build sink formats them; the skeleton
/// sink ignores them — stage 1 allocates no strings).
#[derive(Clone, Copy)]
enum FnName {
    Leaf(u64),
    Mid,
    Main,
}

/// A callable function: sink-specific id plus arity.
#[derive(Clone, Copy)]
struct Callee<F> {
    id: F,
    params: u16,
}

/// Where generated structure goes. The build sink emits real IR; the
/// skeleton sink only models the state decisions depend on (pool
/// lengths, callee arities), with zero-sized values throughout.
trait GenSink {
    /// A data-pool value (`Reg`, or `()` in the skeleton).
    type Val: Copy;
    /// A heap pointer (never enters the data pool).
    type Ptr: Copy;
    /// A finished function.
    type Func: Copy;
    /// A global.
    type Global: Copy;
    /// A block id.
    type Block: Copy;

    fn global(&mut self, index: u64, size: u64, init: Option<u64>) -> Self::Global;
    fn begin_function(&mut self, name: FnName, params: u16);
    fn end_function(&mut self) -> Self::Func;
    fn param(&mut self, k: u16) -> Self::Val;
    fn slot(&mut self) -> u32;
    fn store_slot(&mut self, slot: u32, v: Opnd<Self::Val>);
    fn load_slot(&mut self, slot: u32) -> Self::Val;
    fn new_block(&mut self) -> Self::Block;
    fn switch_to(&mut self, block: Self::Block);
    fn jump(&mut self, target: Self::Block);
    fn branch(&mut self, cond: Self::Val, taken: Self::Block, not_taken: Self::Block);
    fn ret(&mut self, value: Self::Val);
    fn alu(&mut self, op: AluOp, a: Opnd<Self::Val>, b: Opnd<Self::Val>) -> Self::Val;
    fn fp_const(&mut self, value: f64) -> Self::Val;
    fn int_to_fp(&mut self, src: Opnd<Self::Val>) -> Self::Val;
    fn fp_to_int(&mut self, src: Self::Val) -> Self::Val;
    fn load_global(&mut self, g: Self::Global, offset: Opnd<Self::Val>) -> Self::Val;
    fn store_global(&mut self, g: Self::Global, offset: Opnd<Self::Val>, v: Opnd<Self::Val>);
    fn malloc(&mut self, size: i64) -> Self::Ptr;
    fn store_ptr(&mut self, base: Self::Ptr, offset: i64, v: Opnd<Self::Val>);
    fn load_ptr(&mut self, base: Self::Ptr, offset: i64) -> Self::Val;
    fn free(&mut self, ptr: Self::Ptr);
    fn call(&mut self, func: Self::Func, args: &[Opnd<Self::Val>]) -> Self::Val;
    fn nop(&mut self, bytes: u8);
}

/// Stage-1 sink: no IR, no strings, no per-value allocation. Only the
/// slot counter is real (nothing depends on it, but keeping it costs
/// nothing and keeps the impl honest).
#[derive(Default)]
struct SkeletonSink {
    next_slot: u32,
}

impl GenSink for SkeletonSink {
    type Val = ();
    type Ptr = ();
    type Func = ();
    type Global = ();
    type Block = ();

    fn global(&mut self, _index: u64, _size: u64, _init: Option<u64>) {}
    fn begin_function(&mut self, _name: FnName, _params: u16) {
        self.next_slot = 0;
    }
    fn end_function(&mut self) {}
    fn param(&mut self, _k: u16) {}
    fn slot(&mut self) -> u32 {
        let s = self.next_slot;
        self.next_slot += 1;
        s
    }
    fn store_slot(&mut self, _slot: u32, _v: Opnd<()>) {}
    fn load_slot(&mut self, _slot: u32) {}
    fn new_block(&mut self) {}
    fn switch_to(&mut self, _block: ()) {}
    fn jump(&mut self, _target: ()) {}
    fn branch(&mut self, _cond: (), _taken: (), _not_taken: ()) {}
    fn ret(&mut self, _value: ()) {}
    fn alu(&mut self, _op: AluOp, _a: Opnd<()>, _b: Opnd<()>) {}
    fn fp_const(&mut self, _value: f64) {}
    fn int_to_fp(&mut self, _src: Opnd<()>) {}
    fn fp_to_int(&mut self, _src: ()) {}
    fn load_global(&mut self, _g: (), _offset: Opnd<()>) {}
    fn store_global(&mut self, _g: (), _offset: Opnd<()>, _v: Opnd<()>) {}
    fn malloc(&mut self, _size: i64) {}
    fn store_ptr(&mut self, _base: (), _offset: i64, _v: Opnd<()>) {}
    fn load_ptr(&mut self, _base: (), _offset: i64) {}
    fn free(&mut self, _ptr: ()) {}
    fn call(&mut self, _func: (), _args: &[Opnd<()>]) {}
    fn nop(&mut self, _bytes: u8) {}
}

/// Stage-2 sink: the real [`ProgramBuilder`]. Emits the exact builder
/// calls the single-pass generator made, in the exact order.
struct BuildSink {
    program: ProgramBuilder,
    func: Option<FunctionBuilder>,
}

impl BuildSink {
    fn new(seed: u64) -> BuildSink {
        BuildSink {
            program: ProgramBuilder::new(format!("conf-{seed:#x}")),
            func: None,
        }
    }

    fn f(&mut self) -> &mut FunctionBuilder {
        self.func.as_mut().expect("inside a function")
    }
}

fn to_operand(o: Opnd<Reg>) -> Operand {
    match o {
        Opnd::Val(r) => r.into(),
        Opnd::Imm(v) => v.into(),
    }
}

impl GenSink for BuildSink {
    type Val = Reg;
    type Ptr = Reg;
    type Func = FuncId;
    type Global = GlobalId;
    type Block = sz_ir::BlockId;

    fn global(&mut self, index: u64, size: u64, init: Option<u64>) -> GlobalId {
        match init {
            Some(v) => self
                .program
                .global_init(format!("g{index}"), size, GlobalInit::U64(v)),
            None => self.program.global(format!("g{index}"), size),
        }
    }
    fn begin_function(&mut self, name: FnName, params: u16) {
        let name = match name {
            FnName::Leaf(i) => format!("leaf{i}"),
            FnName::Mid => "mid".to_string(),
            FnName::Main => "main".to_string(),
        };
        self.func = Some(self.program.function(name, params));
    }
    fn end_function(&mut self) -> FuncId {
        let fb = self.func.take().expect("inside a function");
        self.program.add_function(fb)
    }
    fn param(&mut self, k: u16) -> Reg {
        self.f().param(k)
    }
    fn slot(&mut self) -> u32 {
        self.f().slot()
    }
    fn store_slot(&mut self, slot: u32, v: Opnd<Reg>) {
        let v = to_operand(v);
        self.f().store_slot(slot, v);
    }
    fn load_slot(&mut self, slot: u32) -> Reg {
        self.f().load_slot(slot)
    }
    fn new_block(&mut self) -> sz_ir::BlockId {
        self.f().new_block()
    }
    fn switch_to(&mut self, block: sz_ir::BlockId) {
        self.f().switch_to(block);
    }
    fn jump(&mut self, target: sz_ir::BlockId) {
        self.f().jump(target);
    }
    fn branch(&mut self, cond: Reg, taken: sz_ir::BlockId, not_taken: sz_ir::BlockId) {
        self.f().branch(cond, taken, not_taken);
    }
    fn ret(&mut self, value: Reg) {
        self.f().ret(Some(value.into()));
    }
    fn alu(&mut self, op: AluOp, a: Opnd<Reg>, b: Opnd<Reg>) -> Reg {
        let (a, b) = (to_operand(a), to_operand(b));
        self.f().alu(op, a, b)
    }
    fn fp_const(&mut self, value: f64) -> Reg {
        self.f().fp_const(value)
    }
    fn int_to_fp(&mut self, src: Opnd<Reg>) -> Reg {
        let src = to_operand(src);
        self.f().int_to_fp(src)
    }
    fn fp_to_int(&mut self, src: Reg) -> Reg {
        self.f().fp_to_int(src)
    }
    fn load_global(&mut self, g: GlobalId, offset: Opnd<Reg>) -> Reg {
        let offset = to_operand(offset);
        self.f().load_global(g, offset)
    }
    fn store_global(&mut self, g: GlobalId, offset: Opnd<Reg>, v: Opnd<Reg>) {
        let (offset, v) = (to_operand(offset), to_operand(v));
        self.f().store_global(g, offset, v);
    }
    fn malloc(&mut self, size: i64) -> Reg {
        self.f().malloc(size)
    }
    fn store_ptr(&mut self, base: Reg, offset: i64, v: Opnd<Reg>) {
        let v = to_operand(v);
        self.f().store_ptr(base, offset, v);
    }
    fn load_ptr(&mut self, base: Reg, offset: i64) -> Reg {
        self.f().load_ptr(base, offset)
    }
    fn free(&mut self, ptr: Reg) {
        self.f().free(ptr);
    }
    fn call(&mut self, func: FuncId, args: &[Opnd<Reg>]) -> Reg {
        let args: Vec<Operand> = args.iter().map(|&a| to_operand(a)).collect();
        self.f().call(func, args)
    }
    fn nop(&mut self, bytes: u8) {
        self.f().nop(bytes);
    }
}

// --- the shared walker -----------------------------------------------

/// Walks the whole program structure once: globals, straight-line
/// leaves, an optional looping mid-tier, then a looping `main`.
/// Returns the entry function. The decision sequence (and, with the
/// build sink, the emitted IR sequence) is statement-for-statement the
/// single-pass generator's.
fn build_program<C: ChoiceSource, S: GenSink>(c: &mut C, s: &mut S) -> S::Func {
    // Stage 1: globals (always at least one, 128 bytes each — offsets
    // stay 8-aligned and in-bounds).
    let n_globals = 1 + c.below(Class::Structure, 3);
    let mut globals: Vec<S::Global> = Vec::with_capacity(n_globals as usize);
    for i in 0..n_globals {
        let init = if c.chance(Class::Structure, 0.5) {
            Some(c.below(Class::Consts, 100_000))
        } else {
            None
        };
        globals.push(s.global(i, 128, init));
    }

    // Stage 2: straight-line leaves.
    let mut callees: Vec<Callee<S::Func>> = Vec::new();
    let n_leaves = 1 + c.below(Class::Structure, 3);
    for i in 0..n_leaves {
        let params = c.below(Class::Structure, 3) as u16;
        s.begin_function(FnName::Leaf(i), params);
        gen_straight_body(c, s, &globals, &[], params);
        let id = s.end_function();
        callees.push(Callee { id, params });
    }

    // Stage 3: an optional looping mid-tier calling the leaves.
    if c.chance(Class::Structure, 0.5) {
        let params = 1;
        s.begin_function(FnName::Mid, params);
        let trip = 2 + c.below(Class::Consts, 5);
        gen_loop_body(c, s, &globals, &callees, params, trip);
        let id = s.end_function();
        callees.push(Callee { id, params });
    }

    // Stage 4: main loops over everything.
    s.begin_function(FnName::Main, 0);
    let trip = 3 + c.below(Class::Consts, 10);
    gen_loop_body(c, s, &globals, &callees, 0, trip);
    s.end_function()
}

/// Emits a function that initializes its slots, runs a bounded counter
/// loop accumulating into a slot, and returns the accumulator.
fn gen_loop_body<C: ChoiceSource, S: GenSink>(
    c: &mut C,
    s: &mut S,
    globals: &[S::Global],
    callees: &[Callee<S::Func>],
    params: u16,
    trip: u64,
) {
    let s_i = s.slot();
    let s_acc = s.slot();
    s.store_slot(s_i, Opnd::Imm(0));
    let acc0 = c.below(Class::Consts, 1 << 20) as i64;
    s.store_slot(s_acc, Opnd::Imm(acc0));

    let header = s.new_block();
    let body = s.new_block();
    let exit = s.new_block();
    s.jump(header);

    s.switch_to(header);
    let i = s.load_slot(s_i);
    let cond = s.alu(AluOp::CmpLt, Opnd::Val(i), Opnd::Imm(trip as i64));
    s.branch(cond, body, exit);

    s.switch_to(body);
    let i = s.load_slot(s_i);
    let acc = s.load_slot(s_acc);
    let mut data: Vec<S::Val> = vec![i, acc];
    for k in 0..params {
        let p = s.param(k);
        data.push(p);
    }
    let n_ops = 2 + c.below(Class::Structure, 6);
    for _ in 0..n_ops {
        emit_op(c, s, &mut data, globals, callees);
    }
    let new_acc = fold_data(c, s, &data);
    s.store_slot(s_acc, Opnd::Val(new_acc));
    let ni = s.alu(AluOp::Add, Opnd::Val(i), Opnd::Imm(1));
    s.store_slot(s_i, Opnd::Val(ni));
    s.jump(header);

    s.switch_to(exit);
    let out = s.load_slot(s_acc);
    s.ret(out);
}

/// Emits a straight-line function body: init slots, a few ops, return
/// a fold of the data pool.
fn gen_straight_body<C: ChoiceSource, S: GenSink>(
    c: &mut C,
    s: &mut S,
    globals: &[S::Global],
    callees: &[Callee<S::Func>],
    params: u16,
) {
    let mut data: Vec<S::Val> = Vec::new();
    for k in 0..params {
        let p = s.param(k);
        data.push(p);
    }
    let n_slots = c.below(Class::Structure, 3);
    for _ in 0..n_slots {
        let sl = s.slot();
        let init = c.below(Class::Consts, 1 << 16) as i64;
        s.store_slot(sl, Opnd::Imm(init));
        let v = s.load_slot(sl);
        data.push(v);
    }
    if data.is_empty() {
        let init = c.below(Class::Consts, 1 << 16) as i64;
        let v = s.alu(AluOp::Add, Opnd::Imm(init), Opnd::Imm(0));
        data.push(v);
    }
    let n_ops = 1 + c.below(Class::Structure, 5);
    for _ in 0..n_ops {
        emit_op(c, s, &mut data, globals, callees);
    }
    let out = fold_data(c, s, &data);
    s.ret(out);
}

/// Emits one random operation into the current block, growing the data
/// pool. Pointer values produced here never enter `data`.
fn emit_op<C: ChoiceSource, S: GenSink>(
    c: &mut C,
    s: &mut S,
    data: &mut Vec<S::Val>,
    globals: &[S::Global],
    callees: &[Callee<S::Func>],
) {
    match c.below(Class::Ops, 10) {
        // ALU on data values.
        0..=3 => {
            const OPS: [AluOp; 13] = [
                AluOp::Add,
                AluOp::Sub,
                AluOp::Mul,
                AluOp::Div,
                AluOp::Rem,
                AluOp::And,
                AluOp::Or,
                AluOp::Xor,
                AluOp::Shl,
                AluOp::Shr,
                AluOp::CmpLt,
                AluOp::CmpEq,
                AluOp::CmpGt,
            ];
            let op = OPS[c.below(Class::Ops, OPS.len() as u64) as usize];
            let a = pick_operand(c, data);
            let b = pick_operand(c, data);
            let r = s.alu(op, a, b);
            data.push(r);
        }
        // Float round trip: int -> f64 -> arithmetic -> int.
        4 => {
            let src = pick_operand(c, data);
            let a = s.int_to_fp(src);
            let fv = c.below(Class::Consts, 1000) as f64 + 0.5;
            let b = s.fp_const(fv);
            const FOPS: [AluOp; 4] = [AluOp::FAdd, AluOp::FSub, AluOp::FMul, AluOp::FDiv];
            let op = FOPS[c.below(Class::Ops, 4) as usize];
            let fr = s.alu(op, Opnd::Val(a), Opnd::Val(b));
            let r = s.fp_to_int(fr);
            data.push(r);
        }
        // Global traffic, constant or masked register offset.
        5 | 6 => {
            let g = globals[c.below(Class::Mem, globals.len() as u64) as usize];
            let off: Opnd<S::Val> = if c.chance(Class::Mem, 0.5) {
                Opnd::Imm(8 * c.below(Class::Mem, 16) as i64)
            } else {
                // Mask a data value to an 8-aligned in-bounds offset.
                let base = data[c.below(Class::Operands, data.len() as u64) as usize];
                Opnd::Val(s.alu(AluOp::And, Opnd::Val(base), Opnd::Imm(0x78)))
            };
            if c.chance(Class::Mem, 0.5) {
                let v = pick_operand(c, data);
                s.store_global(g, off, v);
            } else {
                let r = s.load_global(g, off);
                data.push(r);
            }
        }
        // A heap episode: malloc, stores, loads of stored cells, free.
        7 | 8 => {
            let words = 1 + c.below(Class::Mem, 12);
            let ptr = s.malloc((words * 8) as i64);
            let mut stored: Vec<i64> = Vec::new();
            for w in 0..words {
                if c.chance(Class::Mem, 0.6) {
                    let v = pick_operand(c, data);
                    s.store_ptr(ptr, (w * 8) as i64, v);
                    stored.push((w * 8) as i64);
                }
            }
            for _ in 0..c.below(Class::Mem, 3) {
                if !stored.is_empty() {
                    let off = stored[c.below(Class::Mem, stored.len() as u64) as usize];
                    let r = s.load_ptr(ptr, off);
                    data.push(r);
                }
            }
            // Leaking sometimes is deliberate: engines must agree with
            // and without reuse pressure.
            if c.chance(Class::Mem, 0.75) {
                s.free(ptr);
            }
        }
        // A call; arguments are data values only.
        _ => {
            if callees.is_empty() {
                s.nop(c.below(Class::Ops, 6) as u8 + 1);
            } else {
                let callee = callees[c.below(Class::Ops, callees.len() as u64) as usize];
                let args: Vec<Opnd<S::Val>> =
                    (0..callee.params).map(|_| pick_operand(c, data)).collect();
                let r = s.call(callee.id, &args);
                data.push(r);
            }
        }
    }
}

/// Folds a few pool values into one register for accumulation.
fn fold_data<C: ChoiceSource, S: GenSink>(c: &mut C, s: &mut S, data: &[S::Val]) -> S::Val {
    let mut acc = *data.last().expect("pool is never empty");
    for _ in 0..2 {
        let other = data[c.below(Class::Operands, data.len() as u64) as usize];
        let op = if c.chance(Class::Ops, 0.5) {
            AluOp::Add
        } else {
            AluOp::Xor
        };
        acc = s.alu(op, Opnd::Val(acc), Opnd::Val(other));
    }
    acc
}

/// Short-circuit order matters: an empty pool must not draw the coin,
/// exactly like the single-pass generator's `is_empty() || chance`.
fn pick_operand<C: ChoiceSource, V: Copy>(c: &mut C, data: &[V]) -> Opnd<V> {
    if data.is_empty() || c.chance(Class::Operands, 0.3) {
        Opnd::Imm(c.below(Class::Consts, 1 << 12) as i64)
    } else {
        Opnd::Val(data[c.below(Class::Operands, data.len() as u64) as usize])
    }
}

// --- the public pipeline ---------------------------------------------

/// The staged generator: owns the tape arenas so a fuzz loop reuses
/// their capacity across programs.
#[derive(Debug, Default)]
pub struct Generator {
    tapes: ChoiceTapes,
}

impl Generator {
    /// A generator with empty arenas.
    pub fn new() -> Generator {
        Generator::default()
    }

    /// Stage 1 only: records `seed`'s decision tapes (for inspection or
    /// artifacts) without building the program.
    pub fn record(&mut self, seed: u64) -> &ChoiceTapes {
        self.tapes.clear();
        let mut recorder = TapeRecorder {
            rng: SplitMix64::new(seed),
            tapes: &mut self.tapes,
        };
        let mut skeleton = SkeletonSink::default();
        build_program(&mut recorder, &mut skeleton);
        &self.tapes
    }

    /// Both stages: records `seed`'s tapes, then instantiates the
    /// program from them. Bit-identical to [`single_pass`] for every
    /// seed (golden-pinned in `tests/staged_equivalence.rs`).
    pub fn generate(&mut self, seed: u64) -> Program {
        self.record(seed);
        instantiate(seed, &self.tapes)
    }
}

/// Stage 2 only: builds the program for `seed` from finished tapes.
/// RNG-free — every decision is a tape read.
///
/// # Panics
///
/// Panics if the tapes were not recorded for this program shape (a
/// cursor runs past a tape's end or a tape is left unconsumed).
pub fn instantiate(seed: u64, tapes: &ChoiceTapes) -> Program {
    let mut reader = TapeReader::new(tapes);
    let mut sink = BuildSink::new(seed);
    let entry = build_program(&mut reader, &mut sink);
    reader.finish();
    sink.program
        .finish(entry)
        .expect("generated programs are valid")
}

/// Generates one program through the full staged pipeline (convenience
/// for one-shot callers; fuzz loops should hold a [`Generator`] to
/// reuse the tape arenas).
pub fn generate(seed: u64) -> Program {
    Generator::new().generate(seed)
}

// --- the pinned single-pass reference --------------------------------

/// The original single-pass generator, preserved verbatim from
/// `tests/conf_gen/mod.rs` as the equivalence oracle for the staged
/// pipeline. The golden tests pin `generate(seed) == single_pass(seed)`
/// so the suite's covered program space can never silently shift;
/// nothing else should call this.
pub fn single_pass(seed: u64) -> Program {
    legacy::generate(seed)
}

mod legacy {
    //! Verbatim copy of the retired `tests/conf_gen/mod.rs` generator
    //! (sans the seed/env plumbing that moved to the crate root). Do
    //! not edit: its only job is to stay exactly what the conformance
    //! suite ran before the staged pipeline existed.

    use sz_ir::{AluOp, FuncId, FunctionBuilder, GlobalId, GlobalInit, Operand, Program};
    use sz_ir::{ProgramBuilder, Reg};
    use sz_rng::{Rng, SplitMix64};

    /// A function the generator may call: id, arity.
    #[derive(Clone, Copy)]
    struct Callee {
        id: FuncId,
        params: u16,
    }

    /// Generates one always-terminating, layout-invariant program.
    pub fn generate(seed: u64) -> Program {
        let mut rng = SplitMix64::new(seed);
        let mut p = ProgramBuilder::new(format!("conf-{seed:#x}"));

        // Stage 1: globals (always at least one, 128 bytes each).
        let globals: Vec<GlobalId> = (0..1 + rng.below(3))
            .map(|i| {
                if rng.chance(0.5) {
                    p.global_init(format!("g{i}"), 128, GlobalInit::U64(rng.below(100_000)))
                } else {
                    p.global(format!("g{i}"), 128)
                }
            })
            .collect();

        // Stage 2: straight-line leaves.
        let mut callees: Vec<Callee> = Vec::new();
        for i in 0..1 + rng.below(3) {
            let params = rng.below(3) as u16;
            let mut f = p.function(format!("leaf{i}"), params);
            gen_straight_body(&mut f, &mut rng, &globals, &[], params);
            let id = p.add_function(f);
            callees.push(Callee { id, params });
        }

        // Stage 3: an optional looping mid-tier calling the leaves.
        if rng.chance(0.5) {
            let params = 1;
            let mut f = p.function("mid", params);
            let trip = 2 + rng.below(5);
            gen_loop_body(&mut f, &mut rng, &globals, &callees, params, trip);
            let id = p.add_function(f);
            callees.push(Callee { id, params });
        }

        // Stage 4: main loops over everything.
        let mut f = p.function("main", 0);
        let trip = 3 + rng.below(10);
        gen_loop_body(&mut f, &mut rng, &globals, &callees, 0, trip);
        let main = p.add_function(f);
        p.finish(main).expect("generated programs are valid")
    }

    fn gen_loop_body(
        f: &mut FunctionBuilder,
        rng: &mut SplitMix64,
        globals: &[GlobalId],
        callees: &[Callee],
        params: u16,
        trip: u64,
    ) {
        let s_i = f.slot();
        let s_acc = f.slot();
        f.store_slot(s_i, 0);
        let acc0 = (rng.below(1 << 20)) as i64;
        f.store_slot(s_acc, acc0);

        let header = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        f.jump(header);

        f.switch_to(header);
        let i = f.load_slot(s_i);
        let c = f.alu(AluOp::CmpLt, i, trip as i64);
        f.branch(c, body, exit);

        f.switch_to(body);
        let i = f.load_slot(s_i);
        let acc = f.load_slot(s_acc);
        let mut data: Vec<Reg> = vec![i, acc];
        for k in 0..params {
            data.push(f.param(k));
        }
        let n_ops = 2 + rng.below(6);
        for _ in 0..n_ops {
            emit_op(f, rng, &mut data, globals, callees);
        }
        let new_acc = fold_data(f, rng, &data);
        f.store_slot(s_acc, new_acc);
        let ni = f.alu(AluOp::Add, i, 1);
        f.store_slot(s_i, ni);
        f.jump(header);

        f.switch_to(exit);
        let out = f.load_slot(s_acc);
        f.ret(Some(out.into()));
    }

    fn gen_straight_body(
        f: &mut FunctionBuilder,
        rng: &mut SplitMix64,
        globals: &[GlobalId],
        callees: &[Callee],
        params: u16,
    ) {
        let mut data: Vec<Reg> = (0..params).map(|k| f.param(k)).collect();
        let n_slots = rng.below(3);
        for _ in 0..n_slots {
            let s = f.slot();
            let init = (rng.below(1 << 16)) as i64;
            f.store_slot(s, init);
            let v = f.load_slot(s);
            data.push(v);
        }
        if data.is_empty() {
            let v = f.alu(AluOp::Add, (rng.below(1 << 16)) as i64, 0);
            data.push(v);
        }
        let n_ops = 1 + rng.below(5);
        for _ in 0..n_ops {
            emit_op(f, rng, &mut data, globals, callees);
        }
        let out = fold_data(f, rng, &data);
        f.ret(Some(out.into()));
    }

    fn emit_op(
        f: &mut FunctionBuilder,
        rng: &mut SplitMix64,
        data: &mut Vec<Reg>,
        globals: &[GlobalId],
        callees: &[Callee],
    ) {
        match rng.below(10) {
            0..=3 => {
                const OPS: [AluOp; 13] = [
                    AluOp::Add,
                    AluOp::Sub,
                    AluOp::Mul,
                    AluOp::Div,
                    AluOp::Rem,
                    AluOp::And,
                    AluOp::Or,
                    AluOp::Xor,
                    AluOp::Shl,
                    AluOp::Shr,
                    AluOp::CmpLt,
                    AluOp::CmpEq,
                    AluOp::CmpGt,
                ];
                let op = OPS[rng.below(OPS.len() as u64) as usize];
                let a = pick_operand(rng, data);
                let b = pick_operand(rng, data);
                let r = f.alu(op, a, b);
                data.push(r);
            }
            4 => {
                let a = f.int_to_fp(pick_operand(rng, data));
                let b = f.fp_const(rng.below(1000) as f64 + 0.5);
                const FOPS: [AluOp; 4] = [AluOp::FAdd, AluOp::FSub, AluOp::FMul, AluOp::FDiv];
                let op = FOPS[rng.below(4) as usize];
                let c = f.alu(op, a, b);
                let r = f.fp_to_int(c);
                data.push(r);
            }
            5 | 6 => {
                let g = globals[rng.below(globals.len() as u64) as usize];
                let off: Operand = if rng.chance(0.5) {
                    (8 * rng.below(16) as i64).into()
                } else {
                    let base = pick_reg(rng, data);
                    f.alu(AluOp::And, base, 0x78).into()
                };
                if rng.chance(0.5) {
                    let v = pick_operand(rng, data);
                    f.store_global(g, off, v);
                } else {
                    let r = f.load_global(g, off);
                    data.push(r);
                }
            }
            7 | 8 => {
                let words = 1 + rng.below(12);
                let ptr = f.malloc((words * 8) as i64);
                let mut stored: Vec<i64> = Vec::new();
                for w in 0..words {
                    if rng.chance(0.6) {
                        let v = pick_operand(rng, data);
                        f.store_ptr(ptr, (w * 8) as i64, v);
                        stored.push((w * 8) as i64);
                    }
                }
                for _ in 0..rng.below(3) {
                    if let Some(&off) = pick(rng, &stored) {
                        let r = f.load_ptr(ptr, off);
                        data.push(r);
                    }
                }
                if rng.chance(0.75) {
                    f.free(ptr);
                }
            }
            _ => {
                if let Some(&callee) = pick(rng, callees) {
                    let args: Vec<Operand> = (0..callee.params)
                        .map(|_| pick_operand(rng, data))
                        .collect();
                    let r = f.call(callee.id, args);
                    data.push(r);
                } else {
                    f.nop(rng.below(6) as u8 + 1);
                }
            }
        }
    }

    fn fold_data(f: &mut FunctionBuilder, rng: &mut SplitMix64, data: &[Reg]) -> Reg {
        let mut acc = *data.last().expect("pool is never empty");
        for _ in 0..2 {
            let other = *pick(rng, data).expect("pool is never empty");
            let op = if rng.chance(0.5) {
                AluOp::Add
            } else {
                AluOp::Xor
            };
            acc = f.alu(op, acc, other);
        }
        acc
    }

    fn pick_operand(rng: &mut SplitMix64, data: &[Reg]) -> Operand {
        if data.is_empty() || rng.chance(0.3) {
            ((rng.below(1 << 12)) as i64).into()
        } else {
            data[rng.below(data.len() as u64) as usize].into()
        }
    }

    fn pick_reg(rng: &mut SplitMix64, data: &[Reg]) -> Reg {
        data[rng.below(data.len() as u64) as usize]
    }

    fn pick<'a, T>(rng: &mut SplitMix64, pool: &'a [T]) -> Option<&'a T> {
        if pool.is_empty() {
            None
        } else {
            Some(&pool[rng.below(pool.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staged_matches_single_pass_on_a_seed() {
        assert_eq!(generate(DEFAULT_SEED), single_pass(DEFAULT_SEED));
    }

    #[test]
    fn equal_seeds_equal_programs() {
        let mut g = Generator::new();
        assert_eq!(g.generate(0xDEAD_BEEF), g.generate(0xDEAD_BEEF));
        assert_ne!(g.generate(0xDEAD_BEEF), g.generate(0xDEAD_BEF0));
    }

    #[test]
    fn tapes_are_reusable_and_exhausted_exactly() {
        let mut g = Generator::new();
        // Interleave two seeds; arena reuse must not leak state.
        let a1 = g.generate(1);
        let b = g.generate(2);
        let a2 = g.generate(1);
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        // record + instantiate separately agrees with generate.
        let tapes = g.record(7).clone();
        assert!(!tapes.is_empty());
        assert_eq!(instantiate(7, &tapes), generate(7));
    }

    #[test]
    fn every_class_tape_is_populated_somewhere() {
        // Across a handful of seeds, each decision class must see
        // traffic — an always-empty tape means a misclassified site.
        let mut g = Generator::new();
        let mut seen = [false; NUM_CLASSES];
        for seed in 0..16u64 {
            g.record(seed);
            for (i, class) in CLASSES.iter().enumerate() {
                seen[i] |= !g.tapes.tape(*class).is_empty();
            }
        }
        assert_eq!(seen, [true; NUM_CLASSES]);
    }

    #[test]
    fn generated_programs_validate() {
        for seed in 0..32u64 {
            let p = generate(DEFAULT_SEED.wrapping_add(seed));
            assert!(p.validate().is_ok(), "seed {seed}");
        }
    }
}
