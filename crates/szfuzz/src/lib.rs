//! Staged differential fuzzing for the layout-engine conformance
//! contract.
//!
//! STABILIZER's statistical claims assume layout randomization is
//! *semantics-preserving* (paper §3). This crate makes that premise a
//! standing proof obligation at fuzzing scale:
//!
//! - [`gen`] — the staged random-IR generator: a choice-tape recording
//!   stage plus an RNG-free, allocation-lean instantiation stage,
//!   bit-identical per seed to the retired single-pass generator.
//! - [`diff`] — one program, every engine: runs the full 6-config
//!   engine/allocator matrix under both interpreters and classifies
//!   any disagreement.
//! - [`driver`] — the parallel fuzz loop on `sz_harness::pool`:
//!   deterministic seed→slot assignment, so results are bit-identical
//!   at any thread count.
//! - [`shrink`] — greedy deterministic minimization of a failing
//!   program, re-checking the divergence class at every step.
//! - [`artifact`] — self-contained reproducer artifacts (seed, stage
//!   tapes, reduced IR text, engine label) for divergences.
//! - [`inject`] — a deliberately wrong layout engine used to prove,
//!   in CI, that the pipeline catches and shrinks real divergences.
//!
//! See DESIGN.md §8 and EXPERIMENTS.md "Fuzzing the engines".

pub mod artifact;
pub mod diff;
pub mod driver;
pub mod gen;
pub mod inject;
pub mod shrink;
pub mod text;

pub use artifact::Reproducer;
pub use diff::{ArchResult, Divergence, DivergenceClass, DivergenceKind};
pub use driver::{FuzzConfig, FuzzFailure, FuzzSummary};
pub use gen::{base_seed, generate, instantiate, ChoiceTapes, Generator};
pub use gen::{DEFAULT_PROGRAMS, DEFAULT_SEED};
pub use shrink::{shrink, ShrinkOutcome};
