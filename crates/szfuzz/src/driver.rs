//! The parallel differential fuzz loop.
//!
//! Seeds `base..base+programs` are checked in batches on
//! `sz_harness::pool`. Determinism is positional: every seed's outcome
//! is computed independently, the pool reassembles outcomes in seed
//! order, and the driver takes the *first* failure in seed order — so
//! the summary (and any reproducer) is bit-identical at any thread
//! count. The optional wall-clock cap is only consulted at batch
//! boundaries, which keeps the per-seed work schedule-independent;
//! runs with a cap may stop early (`capped`), but the seeds that did
//! run report identically.
//!
//! On divergence the driver re-records the failing seed's choice
//! tapes, shrinks the program while the divergence class reproduces,
//! and packages a [`Reproducer`].

use crate::artifact::Reproducer;
use crate::diff::{check_program, ArchResult, Divergence, ProgramVerdict, ARCH_CLASSES};
use crate::gen::{base_seed, Generator, DEFAULT_PROGRAMS};
use std::cell::RefCell;
use std::time::{Duration, Instant};
use sz_harness::{pool, Json};
use sz_ir::{Instr, Program};

/// Static instruction-kind histogram width (one bucket per [`Instr`]
/// variant).
pub const OP_KINDS: usize = 14;

/// Bucket names, index-aligned with [`op_kind_index`].
pub const OP_KIND_NAMES: [&str; OP_KINDS] = [
    "alu",
    "fp-const",
    "int-to-fp",
    "fp-to-int",
    "load-slot",
    "store-slot",
    "load-global",
    "store-global",
    "load-ptr",
    "store-ptr",
    "malloc",
    "free",
    "call",
    "nop",
];

fn op_kind_index(ins: &Instr) -> usize {
    match ins {
        Instr::Alu { .. } => 0,
        Instr::FpConst { .. } => 1,
        Instr::IntToFp { .. } => 2,
        Instr::FpToInt { .. } => 3,
        Instr::LoadSlot { .. } => 4,
        Instr::StoreSlot { .. } => 5,
        Instr::LoadGlobal { .. } => 6,
        Instr::StoreGlobal { .. } => 7,
        Instr::LoadPtr { .. } => 8,
        Instr::StorePtr { .. } => 9,
        Instr::Malloc { .. } => 10,
        Instr::Free { .. } => 11,
        Instr::Call { .. } => 12,
        Instr::Nop { .. } => 13,
    }
}

/// Fuzz-run parameters.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// First seed; seeds are consecutive from here.
    pub seed_base: u64,
    /// How many programs to check.
    pub programs: u64,
    /// Worker threads for the differential matrix.
    pub threads: usize,
    /// Seeds per pool dispatch (the time cap is checked between
    /// batches).
    pub batch: usize,
    /// Arm the deliberately broken engine (negative control).
    pub inject_global_alias: bool,
    /// Re-run each cleanly terminating program at 2–3 reduced fuel
    /// budgets and require both interpreters to cut identically
    /// ([`crate::diff::fuel_sweep_check`]).
    pub fuel_sweep: bool,
    /// Shrink the failing program and build a reproducer on failure.
    pub shrink: bool,
    /// Stop (cleanly, `capped = true`) once a batch boundary passes
    /// this wall-clock budget. `None` in determinism-sensitive runs.
    pub time_cap: Option<Duration>,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            seed_base: base_seed(),
            programs: DEFAULT_PROGRAMS,
            threads: 1,
            batch: 256,
            inject_global_alias: false,
            fuel_sweep: false,
            shrink: true,
            time_cap: None,
        }
    }
}

/// Why a fuzz run stopped before its budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FuzzFailure {
    /// An engine or interpreter disagreed.
    Divergence(Divergence),
    /// The baseline engine ran out of fuel: the generator's
    /// termination-by-construction contract is broken.
    TerminationExceeded {
        /// The offending seed.
        seed: u64,
    },
}

/// Per-run generator-health counters: what the checked programs
/// actually looked like and did. A collapsing histogram here flags a
/// generator regression even while every program still passes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Diversity {
    /// Architectural-result class counts ([`ArchResult::class_index`]).
    pub arch_classes: [u64; ARCH_CLASSES],
    /// How many clean runs returned `Ok(Some(_))`.
    pub returns_value: u64,
    /// How many programs were re-run through the reduced-fuel sweep.
    pub fuel_sweeps: u64,
    /// Static instruction-kind counts across all generated programs.
    pub op_mix: [u64; OP_KINDS],
}

/// The outcome of a fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzSummary {
    /// Programs fully checked (clean ones; a failing seed is reported
    /// in `failure`, not counted here).
    pub programs_run: u64,
    /// Generator-health counters over the clean programs.
    pub diversity: Diversity,
    /// Largest baseline instruction count observed — headroom against
    /// [`crate::diff::FUZZ_LIMITS`].
    pub max_instructions: u64,
    /// The first failure in seed order, if any.
    pub failure: Option<FuzzFailure>,
    /// Shrunk, self-contained artifact for a divergence failure.
    pub reproducer: Option<Reproducer>,
    /// Whether the wall-clock cap stopped the run early.
    pub capped: bool,
    /// Wall-clock duration (excluded from equality: everything else is
    /// bit-identical across thread counts, elapsed time is not).
    pub elapsed: Duration,
}

impl PartialEq for FuzzSummary {
    /// Everything except `elapsed`: a fuzz run's *results* are
    /// bit-identical across thread counts; its wall-clock time is not.
    fn eq(&self, other: &FuzzSummary) -> bool {
        self.programs_run == other.programs_run
            && self.diversity == other.diversity
            && self.max_instructions == other.max_instructions
            && self.failure == other.failure
            && self.reproducer == other.reproducer
            && self.capped == other.capped
    }
}

/// One seed's outcome, as computed on a worker.
struct SeedOutcome {
    verdict: Result<ProgramVerdict, Divergence>,
    op_mix: [u64; OP_KINDS],
    /// Whether the reduced-fuel sweep ran for this seed.
    swept: bool,
}

thread_local! {
    // Per-worker generator so tape arenas are reused across the many
    // programs each worker instantiates.
    static GENERATOR: RefCell<Generator> = RefCell::new(Generator::new());
}

fn run_seed(seed: u64, inject: bool, fuel_sweep: bool) -> SeedOutcome {
    let program = GENERATOR.with(|g| g.borrow_mut().generate(seed));
    let mut op_mix = [0u64; OP_KINDS];
    for f in &program.functions {
        for b in &f.blocks {
            for ins in &b.instrs {
                op_mix[op_kind_index(ins)] += 1;
            }
        }
    }
    let mut verdict = check_program(&program, seed, inject);
    let mut swept = false;
    if fuel_sweep {
        // Sweep only programs the matrix already certified clean, at
        // budgets that genuinely cut the run short (count > 1).
        if let Ok(v) = &verdict {
            if let Some(n) = v.baseline_instructions.filter(|&n| n > 1) {
                swept = true;
                if let Some(d) = crate::diff::fuel_sweep_check(&program, seed, n) {
                    verdict = Err(d);
                }
            }
        }
    }
    SeedOutcome {
        verdict,
        op_mix,
        swept,
    }
}

/// Runs the fuzz loop to completion, first failure, or the time cap.
pub fn run(config: &FuzzConfig) -> FuzzSummary {
    let start = Instant::now();
    let mut summary = FuzzSummary {
        programs_run: 0,
        diversity: Diversity::default(),
        max_instructions: 0,
        failure: None,
        reproducer: None,
        capped: false,
        elapsed: Duration::ZERO,
    };
    let batch = config.batch.max(1);
    let mut offset = 0u64;
    'batches: while offset < config.programs {
        if let Some(cap) = config.time_cap {
            if start.elapsed() >= cap {
                summary.capped = true;
                break;
            }
        }
        let n = ((config.programs - offset) as usize).min(batch);
        let base = config.seed_base.wrapping_add(offset);
        let inject = config.inject_global_alias;
        let fuel_sweep = config.fuel_sweep;
        let outcomes = pool::run_indexed(config.threads, n, |i| {
            run_seed(base.wrapping_add(i as u64), inject, fuel_sweep)
        });
        for (i, outcome) in outcomes.into_iter().enumerate() {
            let seed = base.wrapping_add(i as u64);
            match outcome.verdict {
                Ok(verdict) => {
                    if verdict.arch == ArchResult::OutOfFuel {
                        summary.failure = Some(FuzzFailure::TerminationExceeded { seed });
                        break 'batches;
                    }
                    summary.programs_run += 1;
                    summary.diversity.arch_classes[verdict.arch.class_index()] += 1;
                    if matches!(verdict.arch, ArchResult::Ok(Some(_))) {
                        summary.diversity.returns_value += 1;
                    }
                    if outcome.swept {
                        summary.diversity.fuel_sweeps += 1;
                    }
                    for (k, c) in outcome.op_mix.iter().enumerate() {
                        summary.diversity.op_mix[k] += c;
                    }
                    if let Some(instrs) = verdict.baseline_instructions {
                        summary.max_instructions = summary.max_instructions.max(instrs);
                    }
                }
                Err(divergence) => {
                    summary.failure = Some(FuzzFailure::Divergence(divergence));
                    if config.shrink {
                        summary.reproducer = Some(shrink_to_reproducer(divergence, inject));
                    }
                    break 'batches;
                }
            }
        }
        offset += n as u64;
    }
    summary.elapsed = start.elapsed();
    summary
}

fn shrink_to_reproducer(divergence: Divergence, _inject: bool) -> Reproducer {
    let mut generator = Generator::new();
    let program = generator.generate(divergence.seed);
    let tapes = generator.record(divergence.seed).clone();
    let seed = divergence.seed;
    let class = divergence.class();
    // Shrinking only needs the failing comparison, not the full
    // matrix — `recheck_class` is the cheap focused re-run.
    let outcome = crate::shrink::shrink(&program, class, &mut |p: &Program| {
        crate::diff::recheck_class(p, seed, class)
    });
    Reproducer::new(divergence, tapes, program.instr_count(), &outcome)
}

impl FuzzSummary {
    /// The machine-readable run record printed by `sz-fuzz --json`.
    pub fn to_json(&self) -> Json {
        let arch = Json::Obj(
            self.diversity
                .arch_classes
                .iter()
                .enumerate()
                .map(|(i, &c)| (ArchResult::class_name(i).to_string(), Json::U64(c)))
                .collect(),
        );
        let ops = Json::Obj(
            OP_KIND_NAMES
                .iter()
                .zip(self.diversity.op_mix.iter())
                .map(|(name, &c)| (name.to_string(), Json::U64(c)))
                .collect(),
        );
        let failure = match &self.failure {
            None => Json::Null,
            Some(FuzzFailure::Divergence(d)) => Json::obj([
                ("kind", Json::Str("divergence".into())),
                ("detail", Json::Str(d.render())),
            ]),
            Some(FuzzFailure::TerminationExceeded { seed }) => Json::obj([
                ("kind", Json::Str("termination-exceeded".into())),
                ("seed", Json::U64(*seed)),
            ]),
        };
        Json::obj([
            ("type", Json::Str("fuzz-summary".into())),
            ("programs_run", Json::U64(self.programs_run)),
            ("arch_classes", arch),
            ("returns_value", Json::U64(self.diversity.returns_value)),
            ("fuel_sweeps", Json::U64(self.diversity.fuel_sweeps)),
            ("op_mix", ops),
            ("max_instructions", Json::U64(self.max_instructions)),
            ("capped", Json::Bool(self.capped)),
            ("elapsed_ms", Json::U64(self.elapsed.as_millis() as u64)),
            ("failure", failure),
        ])
    }

    /// The human-readable run summary.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "checked {} programs in {:.1}s{}\n",
            self.programs_run,
            self.elapsed.as_secs_f64(),
            if self.capped { " (time cap hit)" } else { "" }
        ));
        let classes: Vec<String> = self
            .diversity
            .arch_classes
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| format!("{} {}", ArchResult::class_name(i), c))
            .collect();
        s.push_str(&format!(
            "arch classes: {} (with value: {})\n",
            classes.join(", "),
            self.diversity.returns_value
        ));
        let total_ops: u64 = self.diversity.op_mix.iter().sum();
        let mix: Vec<String> = OP_KIND_NAMES
            .iter()
            .zip(self.diversity.op_mix.iter())
            .filter(|(_, &c)| c > 0)
            .map(|(name, &c)| format!("{name} {c}"))
            .collect();
        s.push_str(&format!(
            "op mix ({total_ops} instrs): {}\n",
            mix.join(", ")
        ));
        s.push_str(&format!(
            "max baseline instructions: {}\n",
            self.max_instructions
        ));
        if self.diversity.fuel_sweeps > 0 {
            s.push_str(&format!(
                "fuel sweeps: {} programs re-cut at reduced budgets\n",
                self.diversity.fuel_sweeps
            ));
        }
        match &self.failure {
            None => s.push_str("no divergence\n"),
            Some(FuzzFailure::Divergence(d)) => {
                s.push_str(&format!("FAILURE: {}\n", d.render()));
            }
            Some(FuzzFailure::TerminationExceeded { seed }) => {
                s.push_str(&format!(
                    "FAILURE: seed {seed:#x} exceeded the termination bound\n"
                ));
            }
        }
        s
    }
}
