//! One program, every engine: the differential conformance check as a
//! fallible library routine.
//!
//! This is `tests/conformance_differential.rs`'s matrix — six
//! engine/allocator configurations, each run through both interpreters
//! — with `assert!` replaced by a structured [`Divergence`] value, so
//! the fuzz driver can report, shrink, and serialize a failure instead
//! of tearing the process down.

use crate::inject::GlobalAlias;
use stabilizer::{prepare_program, BaseAllocator, Config, Stabilizer};
use sz_ir::{FuncId, GlobalId, Program};
use sz_link::{LinkOrder, LinkedLayout};
use sz_machine::{MachineConfig, MemorySystem, PerfCounters, SimTime};
use sz_vm::{reference::run_reference, FrameView, LayoutEngine, RunLimits, RunReport, Vm, VmError};

/// Fuel/stack budget for every fuzz run. Generated programs terminate
/// by construction well under this bound (bounded counter loops,
/// acyclic calls) — the driver treats baseline `OutOfFuel` as a
/// generator bug, not a conformance failure.
pub const FUZZ_LIMITS: RunLimits = RunLimits {
    max_instructions: 2_000_000,
    max_stack_depth: 1_000,
};

/// The architectural result of a run: everything a program's *user*
/// can observe. Counters are deliberately excluded — they are the one
/// thing engines are supposed to change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArchResult {
    /// Clean termination with an optional return value.
    Ok(Option<u64>),
    /// Instruction budget exhausted.
    OutOfFuel,
    /// Stack depth budget exhausted.
    StackOverflow,
    /// Heap exhausted.
    OutOfMemory,
    /// The engine rejected a free.
    InvalidFree,
}

/// Number of [`ArchResult`] classes (histogram width).
pub const ARCH_CLASSES: usize = 5;

impl ArchResult {
    /// Histogram bucket of this result class.
    pub fn class_index(self) -> usize {
        match self {
            ArchResult::Ok(_) => 0,
            ArchResult::OutOfFuel => 1,
            ArchResult::StackOverflow => 2,
            ArchResult::OutOfMemory => 3,
            ArchResult::InvalidFree => 4,
        }
    }

    /// Stable name of the class at `class_index`.
    pub fn class_name(index: usize) -> &'static str {
        [
            "ok",
            "out-of-fuel",
            "stack-overflow",
            "out-of-memory",
            "invalid-free",
        ][index]
    }

    /// Human rendering, value included.
    pub fn render(self) -> String {
        match self {
            ArchResult::Ok(Some(v)) => format!("ok({v:#x})"),
            ArchResult::Ok(None) => "ok(no value)".to_string(),
            other => ArchResult::class_name(other.class_index()).to_string(),
        }
    }
}

fn arch(r: &Result<RunReport, VmError>) -> ArchResult {
    match r {
        Ok(rep) => ArchResult::Ok(rep.return_value),
        Err(VmError::OutOfFuel { .. }) => ArchResult::OutOfFuel,
        Err(VmError::StackOverflow { .. }) => ArchResult::StackOverflow,
        Err(VmError::OutOfMemory { .. }) => ArchResult::OutOfMemory,
        Err(VmError::InvalidFree { .. }) => ArchResult::InvalidFree,
    }
}

/// How a conformance run failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceKind {
    /// The pre-decoded and reference interpreters disagreed under one
    /// engine (full-report comparison when both succeed, error-class
    /// comparison otherwise).
    InterpreterMismatch,
    /// An engine produced a different architectural result than the
    /// baseline `simple` engine.
    EngineDisagreement,
    /// Re-running the program at a reduced instruction budget made the
    /// interpreters disagree — on the error, or on the counter state
    /// an engine observed before the cut. This exercises exactly the
    /// fuel-fallback seams of the batched span executor.
    FuelSeam,
}

impl DivergenceKind {
    /// Stable wire/artifact name.
    pub fn name(self) -> &'static str {
        match self {
            DivergenceKind::InterpreterMismatch => "interpreter-mismatch",
            DivergenceKind::EngineDisagreement => "engine-disagreement",
            DivergenceKind::FuelSeam => "fuel-seam",
        }
    }
}

/// A conformance failure: which engine, which comparison, what was
/// expected and what was observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Divergence {
    /// The seed of the generated program (carried for reporting; the
    /// shrinker re-checks mutated programs under the same seed).
    pub seed: u64,
    /// Engine label ("simple", "linked-shuffled", ...).
    pub engine: &'static str,
    /// Which comparison failed.
    pub kind: DivergenceKind,
    /// The baseline (or reference-interpreter) result.
    pub expected: ArchResult,
    /// The diverging result.
    pub got: ArchResult,
}

impl Divergence {
    /// The equivalence class the shrinker must preserve: same engine,
    /// same comparison kind. Expected/got values are allowed to drift
    /// during shrinking (removing instructions changes the computed
    /// result) — what must reproduce is *which engine disagrees, how*.
    pub fn class(&self) -> DivergenceClass {
        DivergenceClass {
            engine: self.engine,
            kind: self.kind,
        }
    }

    /// One-line human rendering.
    pub fn render(&self) -> String {
        format!(
            "seed {:#x}: {} under engine `{}` (expected {}, got {})",
            self.seed,
            self.kind.name(),
            self.engine,
            self.expected.render(),
            self.got.render()
        )
    }
}

/// The shrink-invariant part of a [`Divergence`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DivergenceClass {
    /// Engine label.
    pub engine: &'static str,
    /// Comparison kind.
    pub kind: DivergenceKind,
}

/// What a clean conformance run reports back to the driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgramVerdict {
    /// The architectural result every engine agreed on.
    pub arch: ArchResult,
    /// Instructions retired under the baseline engine (`None` when the
    /// baseline did not run to completion).
    pub baseline_instructions: Option<u64>,
}

/// Runs `program` under one engine through BOTH interpreters and
/// compares them: bit-for-bit on success, by error class otherwise.
fn run_both(
    program: &Program,
    engine_factory: impl Fn() -> Box<dyn LayoutEngine>,
    label: &'static str,
    seed: u64,
) -> Result<(ArchResult, Option<u64>), Divergence> {
    let machine = MachineConfig::tiny();
    let mut e1 = engine_factory();
    let decoded = Vm::new(program).run(e1.as_mut(), machine, FUZZ_LIMITS);
    let mut e2 = engine_factory();
    let reference = run_reference(program, e2.as_mut(), machine, FUZZ_LIMITS);
    let mismatch = match (&decoded, &reference) {
        (Ok(a), Ok(b)) => a != b,
        _ => arch(&decoded) != arch(&reference),
    };
    if mismatch {
        return Err(Divergence {
            seed,
            engine: label,
            kind: DivergenceKind::InterpreterMismatch,
            expected: arch(&reference),
            got: arch(&decoded),
        });
    }
    let instructions = decoded.as_ref().ok().map(|rep| rep.instructions);
    Ok((arch(&decoded), instructions))
}

/// STABILIZER engine configuration for a matrix label.
fn stab_config(label: &str) -> Config {
    match label {
        "stabilizer-segregated-rerand" => {
            Config::default().with_interval(SimTime::from_nanos(3_000.0))
        }
        "stabilizer-tlsf" => Config {
            base_allocator: BaseAllocator::Tlsf,
            ..Config::one_time()
        },
        "stabilizer-diehard" => Config {
            base_allocator: BaseAllocator::DieHard,
            ..Config::one_time()
        },
        other => panic!("unknown engine label {other:?}"),
    }
}

/// Architectural result of a single decoded-interpreter run under the
/// engine named by `label` (preparing the program for the STABILIZER
/// engines).
fn decoded_arch(program: &Program, seed: u64, label: &'static str) -> ArchResult {
    let machine = MachineConfig::tiny();
    let run = |program: &Program, engine: &mut dyn LayoutEngine| {
        arch(&Vm::new(program).run(engine, machine, FUZZ_LIMITS))
    };
    match label {
        "simple" => run(program, &mut sz_vm::SimpleLayout::new()),
        "linked-default" => run(
            program,
            &mut LinkedLayout::builder()
                .link_order(LinkOrder::Default)
                .build(),
        ),
        "linked-shuffled" => run(
            program,
            &mut LinkedLayout::builder()
                .link_order(LinkOrder::Shuffled { seed })
                .build(),
        ),
        GlobalAlias::LABEL => run(program, &mut GlobalAlias::new()),
        stab_label => {
            let (prepared, info) = prepare_program(program);
            let mut engine =
                Stabilizer::new(stab_config(stab_label).with_seed(seed), &machine, &info);
            run(&prepared, &mut engine)
        }
    }
}

/// Re-runs only the comparison a known divergence class needs.
///
/// The shrinker calls its checker once per candidate, and a candidate
/// only survives if it reproduces the *same* class — so running the
/// rest of the matrix would be pure waste (any divergence it might
/// produce has a different class and rejects the candidate exactly
/// like `None` does). For an engine disagreement that means two
/// decoded runs (baseline and the named engine); for an interpreter
/// mismatch, both interpreters under the named engine only.
pub fn recheck_class(program: &Program, seed: u64, class: DivergenceClass) -> Option<Divergence> {
    match class.kind {
        DivergenceKind::InterpreterMismatch => {
            let outcome = match class.engine {
                "simple" => run_both(
                    program,
                    || Box::new(sz_vm::SimpleLayout::new()),
                    "simple",
                    seed,
                ),
                "linked-default" => run_both(
                    program,
                    || {
                        Box::new(
                            LinkedLayout::builder()
                                .link_order(LinkOrder::Default)
                                .build(),
                        )
                    },
                    class.engine,
                    seed,
                ),
                "linked-shuffled" => run_both(
                    program,
                    || {
                        Box::new(
                            LinkedLayout::builder()
                                .link_order(LinkOrder::Shuffled { seed })
                                .build(),
                        )
                    },
                    class.engine,
                    seed,
                ),
                GlobalAlias::LABEL => {
                    run_both(program, || Box::new(GlobalAlias::new()), class.engine, seed)
                }
                stab_label => {
                    let machine = MachineConfig::tiny();
                    let (prepared, info) = prepare_program(program);
                    let config = stab_config(stab_label);
                    run_both(
                        &prepared,
                        || {
                            Box::new(Stabilizer::new(
                                config.clone().with_seed(seed),
                                &machine,
                                &info,
                            ))
                        },
                        stab_label,
                        seed,
                    )
                }
            };
            outcome.err().filter(|d| d.kind == class.kind)
        }
        DivergenceKind::EngineDisagreement => {
            let expected = decoded_arch(program, seed, "simple");
            let got = decoded_arch(program, seed, class.engine);
            (got != expected).then_some(Divergence {
                seed,
                engine: class.engine,
                kind: DivergenceKind::EngineDisagreement,
                expected,
                got,
            })
        }
        DivergenceKind::FuelSeam => {
            // A shrink candidate must still terminate cleanly to have
            // a retirement count worth sweeping below.
            let mut engine = sz_vm::SimpleLayout::new();
            let clean = Vm::new(program).run(&mut engine, MachineConfig::tiny(), FUZZ_LIMITS);
            let baseline = clean.ok().map(|r| r.instructions)?;
            fuel_sweep_check(program, seed, baseline)
        }
    }
}

/// Wraps the baseline engine and records the counter state it observes
/// at every callback carrying the memory system — the same oracle
/// `tests/error_paths.rs` uses. Identical traces mean the two
/// interpreters walked the engine past identical counter states all
/// the way to the cut.
struct CounterSpy {
    inner: sz_vm::SimpleLayout,
    trace: Vec<(&'static str, PerfCounters)>,
}

impl CounterSpy {
    fn new() -> Self {
        CounterSpy {
            inner: sz_vm::SimpleLayout::new(),
            trace: Vec::new(),
        }
    }
}

impl LayoutEngine for CounterSpy {
    fn prepare(&mut self, program: &Program) {
        self.inner.prepare(program);
    }
    fn enter_function(&mut self, func: FuncId, mem: &mut MemorySystem) -> u64 {
        self.trace.push(("enter", *mem.counters()));
        self.inner.enter_function(func, mem)
    }
    fn stack_pad(&mut self, func: FuncId, mem: &mut MemorySystem) -> u64 {
        self.trace.push(("pad", *mem.counters()));
        self.inner.stack_pad(func, mem)
    }
    fn global_base(&self, g: GlobalId) -> u64 {
        self.inner.global_base(g)
    }
    fn stack_base(&self) -> u64 {
        self.inner.stack_base()
    }
    fn malloc(&mut self, size: u64, mem: &mut MemorySystem) -> Option<u64> {
        self.trace.push(("malloc", *mem.counters()));
        self.inner.malloc(size, mem)
    }
    fn free(&mut self, addr: u64, mem: &mut MemorySystem) -> bool {
        self.trace.push(("free", *mem.counters()));
        self.inner.free(addr, mem)
    }
    fn tick(&mut self, now_cycles: u64, stack: &[FrameView], mem: &mut MemorySystem) {
        self.trace.push(("tick", *mem.counters()));
        self.inner.tick(now_cycles, stack, mem);
    }
    fn name(&self) -> &'static str {
        self.inner.name()
    }
    fn period_marks(&self) -> &[PerfCounters] {
        self.inner.period_marks()
    }
}

/// Re-runs `program` at reduced instruction budgets and checks both
/// interpreters report `OutOfFuel` identically — same error, same
/// engine-observed counter trace up to the cut.
///
/// A budget strictly below the clean-run retirement count is
/// *guaranteed* to cut the run short, and where it lands is
/// arbitrary relative to span boundaries — so the sweep drives the
/// span executor's fuel-fallback seams (span-straddling budgets, the
/// per-op tail after a mid-span cut) that a full-budget differential
/// run never touches.
pub fn fuel_sweep_check(
    program: &Program,
    seed: u64,
    baseline_instructions: u64,
) -> Option<Divergence> {
    let machine = MachineConfig::tiny();
    let budgets = [
        (baseline_instructions / 4).max(1),
        (baseline_instructions / 2).max(1),
        (baseline_instructions * 3 / 4).max(1),
    ];
    let mut prev = 0;
    for budget in budgets {
        if budget == prev || budget >= baseline_instructions {
            continue; // deduplicate tiny sweeps; only true cuts count
        }
        prev = budget;
        let limits = RunLimits {
            max_instructions: budget,
            max_stack_depth: FUZZ_LIMITS.max_stack_depth,
        };
        let mut spy_d = CounterSpy::new();
        let decoded = Vm::new(program).run(&mut spy_d, machine, limits);
        let mut spy_r = CounterSpy::new();
        let reference = run_reference(program, &mut spy_r, machine, limits);
        let exact_cut = matches!(
            (&decoded, &reference),
            (
                Err(VmError::OutOfFuel { limit: a }),
                Err(VmError::OutOfFuel { limit: b }),
            ) if *a == budget && *b == budget
        );
        if !exact_cut || spy_d.trace != spy_r.trace {
            return Some(Divergence {
                seed,
                engine: "simple",
                kind: DivergenceKind::FuelSeam,
                expected: arch(&reference),
                got: arch(&decoded),
            });
        }
    }
    None
}

/// One full conformance check: every engine/allocator combination must
/// agree with the baseline on the architectural result, and both
/// interpreters must agree under every engine.
///
/// With `inject_global_alias`, a deliberately wrong seventh engine
/// ([`GlobalAlias`]) joins the matrix — the CI negative control that
/// proves the pipeline detects and shrinks real divergences.
pub fn check_program(
    program: &Program,
    seed: u64,
    inject_global_alias: bool,
) -> Result<ProgramVerdict, Divergence> {
    let machine = MachineConfig::tiny();

    // Baseline: the unrandomized bump-allocator engine.
    let (expected, baseline_instructions) = run_both(
        program,
        || Box::new(sz_vm::SimpleLayout::new()),
        "simple",
        seed,
    )?;

    // Link-order engines (real allocator underneath).
    let linked: [(&'static str, LinkOrder); 2] = [
        ("linked-default", LinkOrder::Default),
        ("linked-shuffled", LinkOrder::Shuffled { seed }),
    ];
    for (label, order) in linked {
        let (got, _) = run_both(
            program,
            || Box::new(LinkedLayout::builder().link_order(order.clone()).build()),
            label,
            seed,
        )?;
        if got != expected {
            return Err(Divergence {
                seed,
                engine: label,
                kind: DivergenceKind::EngineDisagreement,
                expected,
                got,
            });
        }
    }

    // STABILIZER engines run the *prepared* program (the transform
    // must also be semantics-preserving), one per base allocator. The
    // segregated configuration re-randomizes aggressively mid-run.
    let (prepared, info) = prepare_program(program);
    let stab: [(&'static str, Config); 3] = [
        (
            "stabilizer-segregated-rerand",
            Config::default().with_interval(SimTime::from_nanos(3_000.0)),
        ),
        (
            "stabilizer-tlsf",
            Config {
                base_allocator: BaseAllocator::Tlsf,
                ..Config::one_time()
            },
        ),
        (
            "stabilizer-diehard",
            Config {
                base_allocator: BaseAllocator::DieHard,
                ..Config::one_time()
            },
        ),
    ];
    for (label, config) in stab {
        let (got, _) = run_both(
            &prepared,
            || {
                Box::new(Stabilizer::new(
                    config.clone().with_seed(seed),
                    &machine,
                    &info,
                ))
            },
            label,
            seed,
        )?;
        if got != expected {
            return Err(Divergence {
                seed,
                engine: label,
                kind: DivergenceKind::EngineDisagreement,
                expected,
                got,
            });
        }
    }

    // The negative control, when armed.
    if inject_global_alias {
        let (got, _) = run_both(
            program,
            || Box::new(GlobalAlias::new()),
            GlobalAlias::LABEL,
            seed,
        )?;
        if got != expected {
            return Err(Divergence {
                seed,
                engine: GlobalAlias::LABEL,
                kind: DivergenceKind::EngineDisagreement,
                expected,
                got,
            });
        }
    }

    Ok(ProgramVerdict {
        arch: expected,
        baseline_instructions,
    })
}
