//! Functions, basic blocks, and intra-function code layout.

use crate::{BlockId, Instr, Terminator};

/// A basic block: straight-line instructions plus one terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Instructions executed in order.
    pub instrs: Vec<Instr>,
    /// The control transfer ending the block.
    pub term: Terminator,
}

impl Block {
    /// Encoded size of the whole block in bytes.
    pub fn encoded_size(&self) -> u64 {
        self.instrs.iter().map(Instr::encoded_size).sum::<u64>() + self.term.encoded_size()
    }
}

/// A function: parameters, a register frame, stack slots, and blocks.
///
/// Block 0 is the entry block.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Symbol name.
    pub name: String,
    /// Number of parameters; arguments arrive in registers `r0..rN`.
    pub params: u16,
    /// Total virtual registers (≥ `params`).
    pub num_regs: u16,
    /// Stack frame size in 8-byte slots.
    pub num_slots: u32,
    /// Basic blocks; index = [`BlockId`].
    pub blocks: Vec<Block>,
}

impl Function {
    /// Frame size in bytes (slots are 8 bytes, x86-64 style).
    pub fn frame_bytes(&self) -> u64 {
        u64::from(self.num_slots) * 8
    }

    /// Total encoded code size in bytes.
    pub fn code_size(&self) -> u64 {
        self.blocks.iter().map(Block::encoded_size).sum()
    }

    /// Total instruction count (excluding terminators).
    pub fn instr_count(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }

    /// Computes byte offsets for every instruction (see [`CodeLayout`]).
    pub fn layout(&self) -> CodeLayout {
        let mut block_starts = Vec::with_capacity(self.blocks.len());
        let mut instr_offsets = Vec::with_capacity(self.blocks.len());
        let mut pc = 0u64;
        for block in &self.blocks {
            block_starts.push(pc);
            let mut offsets = Vec::with_capacity(block.instrs.len() + 1);
            for instr in &block.instrs {
                offsets.push(pc);
                pc += instr.encoded_size();
            }
            // Terminator offset goes last.
            offsets.push(pc);
            pc += block.term.encoded_size();
            instr_offsets.push(offsets);
        }
        CodeLayout {
            block_starts,
            instr_offsets,
            total_size: pc,
        }
    }
}

/// One element of a function's linear code stream: either an
/// instruction or the terminator of the block it closes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CodeElem<'f> {
    /// A straight-line instruction.
    Instr(&'f Instr),
    /// A block's terminating control transfer.
    Term(&'f Terminator),
}

impl CodeElem<'_> {
    /// Encoded size in bytes of this element.
    pub fn encoded_size(&self) -> u64 {
        match self {
            CodeElem::Instr(i) => i.encoded_size(),
            CodeElem::Term(t) => t.encoded_size(),
        }
    }

    /// Base execution latency in cycles of this element.
    pub fn base_cycles(&self) -> u64 {
        match self {
            CodeElem::Instr(i) => i.base_cycles(),
            CodeElem::Term(t) => t.base_cycles(),
        }
    }
}

impl Function {
    /// Walks the code stream in layout order — block after block, each
    /// block's instructions followed by its terminator — yielding
    /// `(block_index, byte_offset, element)` for every element.
    ///
    /// This is the stable decode-time metadata contract: the offsets
    /// agree with [`Function::layout`] exactly (the pre-decoder in
    /// `sz-vm` folds them into its flat stream instead of chasing
    /// `instr_offsets` per executed instruction), and the walk order is
    /// the order [`CodeLayout`] assigns offsets in.
    pub fn code_stream(&self) -> impl Iterator<Item = (usize, u64, CodeElem<'_>)> + '_ {
        let mut pc = 0u64;
        self.blocks.iter().enumerate().flat_map(move |(bi, block)| {
            let mut out = Vec::with_capacity(block.instrs.len() + 1);
            for instr in &block.instrs {
                out.push((bi, pc, CodeElem::Instr(instr)));
                pc += instr.encoded_size();
            }
            out.push((bi, pc, CodeElem::Term(&block.term)));
            pc += block.term.encoded_size();
            out
        })
    }
}

/// Byte offsets of every instruction within a function's code, laid
/// out block after block in block order.
///
/// The VM adds the function's (possibly randomized) base address to
/// these offsets to form fetch addresses — this is where code layout
/// meets the instruction cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeLayout {
    /// Starting offset of each block.
    pub block_starts: Vec<u64>,
    /// `instr_offsets[block][i]` = offset of instruction `i`; the final
    /// entry of each block is the terminator's offset.
    pub instr_offsets: Vec<Vec<u64>>,
    /// Total encoded size.
    pub total_size: u64,
}

impl CodeLayout {
    /// Offset of the terminator of `block`.
    pub fn terminator_offset(&self, block: BlockId) -> u64 {
        let offsets = &self.instr_offsets[block.0 as usize];
        offsets[offsets.len() - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AluOp, Operand, Reg};

    fn two_block_function() -> Function {
        Function {
            name: "f".into(),
            params: 0,
            num_regs: 2,
            num_slots: 1,
            blocks: vec![
                Block {
                    instrs: vec![
                        Instr::Alu {
                            dst: Reg(0),
                            op: AluOp::Add,
                            a: Operand::Imm(1),
                            b: Operand::Imm(2),
                        }, // 5 bytes
                        Instr::LoadSlot {
                            dst: Reg(1),
                            slot: 0,
                        }, // 4 bytes
                    ],
                    term: Terminator::Jump(BlockId(1)), // 5 bytes
                },
                Block {
                    instrs: vec![],
                    term: Terminator::Ret { value: None }, // 1 byte
                },
            ],
        }
    }

    #[test]
    fn layout_offsets() {
        let f = two_block_function();
        let l = f.layout();
        assert_eq!(l.block_starts, vec![0, 14]);
        assert_eq!(l.instr_offsets[0], vec![0, 5, 9]);
        assert_eq!(l.instr_offsets[1], vec![14]);
        assert_eq!(l.total_size, 15);
        assert_eq!(l.total_size, f.code_size());
        assert_eq!(l.terminator_offset(BlockId(0)), 9);
        assert_eq!(l.terminator_offset(BlockId(1)), 14);
    }

    #[test]
    fn frame_bytes() {
        let f = two_block_function();
        assert_eq!(f.frame_bytes(), 8);
        assert_eq!(f.instr_count(), 2);
    }

    #[test]
    fn layout_is_deterministic() {
        let f = two_block_function();
        assert_eq!(f.layout(), f.layout());
    }

    #[test]
    fn code_stream_offsets_agree_with_layout() {
        let f = two_block_function();
        let layout = f.layout();
        let mut count = 0;
        for (block, pc, elem) in f.code_stream() {
            match elem {
                CodeElem::Instr(i) => {
                    let pos = f.blocks[block]
                        .instrs
                        .iter()
                        .position(|x| std::ptr::eq(x, i))
                        .unwrap();
                    assert_eq!(pc, layout.instr_offsets[block][pos]);
                }
                CodeElem::Term(_) => {
                    assert_eq!(pc, layout.terminator_offset(BlockId(block as u32)));
                }
            }
            count += 1;
        }
        // Every instruction plus one terminator per block.
        assert_eq!(count, f.instr_count() + f.blocks.len());
    }
}
