//! Instructions, operands, and terminators.

use crate::{BlockId, FuncId, GlobalId, Reg};

/// A value source: either a register or a 64-bit immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Read a register.
    Reg(Reg),
    /// A constant (integer ops treat it as `u64` two's complement;
    /// floating ops never take immediates — see [`Instr::FpConst`]).
    Imm(i64),
}

/// Arithmetic/logic operations.
///
/// Integer ops wrap; `F*` ops reinterpret their operand bits as `f64`.
/// Comparison ops produce 0 or 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division (x / 0 = 0, like a guarded divide).
    Div,
    /// Unsigned remainder (x % 0 = x).
    Rem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical left shift (modulo 64).
    Shl,
    /// Logical right shift (modulo 64).
    Shr,
    /// Unsigned less-than comparison (result 0/1).
    CmpLt,
    /// Equality comparison (result 0/1).
    CmpEq,
    /// Unsigned greater-than comparison (result 0/1).
    CmpGt,
    /// IEEE-754 addition on the f64 bit patterns.
    FAdd,
    /// IEEE-754 subtraction.
    FSub,
    /// IEEE-754 multiplication.
    FMul,
    /// IEEE-754 division.
    FDiv,
}

impl AluOp {
    /// Whether this is a floating-point operation (relevant to the
    /// STABILIZER transformation of FP constants, §3.3).
    pub fn is_float(self) -> bool {
        matches!(self, AluOp::FAdd | AluOp::FSub | AluOp::FMul | AluOp::FDiv)
    }

    /// Evaluates the operation on two 64-bit values — the single
    /// source of truth for ALU semantics, shared by the interpreter
    /// and the constant folder.
    ///
    /// Integer ops wrap; division by zero yields 0 (and remainder by
    /// zero yields the dividend), matching a guarded divide; `F*` ops
    /// operate on the f64 bit patterns; comparisons yield 0 or 1.
    #[inline]
    pub fn eval(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => a.checked_div(b).unwrap_or(0),
            AluOp::Rem => a.checked_rem(b).unwrap_or(a),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl(b as u32 & 63),
            AluOp::Shr => a.wrapping_shr(b as u32 & 63),
            AluOp::CmpLt => u64::from(a < b),
            AluOp::CmpEq => u64::from(a == b),
            AluOp::CmpGt => u64::from(a > b),
            AluOp::FAdd => (f64::from_bits(a) + f64::from_bits(b)).to_bits(),
            AluOp::FSub => (f64::from_bits(a) - f64::from_bits(b)).to_bits(),
            AluOp::FMul => (f64::from_bits(a) * f64::from_bits(b)).to_bits(),
            AluOp::FDiv => (f64::from_bits(a) / f64::from_bits(b)).to_bits(),
        }
    }

    /// Whether `op(a, b) == op(b, a)` for all inputs.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            AluOp::Add | AluOp::Mul | AluOp::And | AluOp::Or | AluOp::Xor | AluOp::CmpEq
        )
    }

    /// Base latency in cycles (before memory effects).
    pub fn base_cycles(self) -> u64 {
        match self {
            AluOp::Mul => 3,
            AluOp::Div | AluOp::Rem => 20,
            AluOp::FAdd | AluOp::FSub => 3,
            AluOp::FMul => 5,
            AluOp::FDiv => 22,
            _ => 1,
        }
    }
}

/// One non-terminating instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `dst = a <op> b`.
    Alu {
        /// Destination register.
        dst: Reg,
        /// Operation.
        op: AluOp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// Materialize a floating-point constant (bit pattern of an `f64`).
    ///
    /// STABILIZER converts these to global-variable references so they
    /// are reached through the relocation table (§3.3).
    FpConst {
        /// Destination register.
        dst: Reg,
        /// IEEE-754 bit pattern.
        bits: u64,
    },
    /// Convert an integer to floating point (`sitofp`/`uitofp`).
    ///
    /// STABILIZER replaces this with a call to a per-module conversion
    /// helper — the only non-relocatable code (§3.3).
    IntToFp {
        /// Destination register.
        dst: Reg,
        /// Integer source.
        src: Operand,
    },
    /// Convert floating point to an integer (`fptosi`/`fptoui`).
    FpToInt {
        /// Destination register.
        dst: Reg,
        /// Floating source.
        src: Operand,
    },
    /// Load from this function's stack frame: `dst = frame[slot]`.
    LoadSlot {
        /// Destination register.
        dst: Reg,
        /// Frame slot index (8-byte slots).
        slot: u32,
    },
    /// Store into the stack frame: `frame[slot] = src`.
    StoreSlot {
        /// Value to store.
        src: Operand,
        /// Frame slot index.
        slot: u32,
    },
    /// Load from a global: `dst = global[offset]` (byte offset).
    LoadGlobal {
        /// Destination register.
        dst: Reg,
        /// The global.
        global: GlobalId,
        /// Byte offset within the global.
        offset: Operand,
    },
    /// Store to a global: `global[offset] = src`.
    StoreGlobal {
        /// Value to store.
        src: Operand,
        /// The global.
        global: GlobalId,
        /// Byte offset within the global.
        offset: Operand,
    },
    /// Load through a pointer: `dst = *(base + offset)`.
    LoadPtr {
        /// Destination register.
        dst: Reg,
        /// Register holding the base address.
        base: Reg,
        /// Constant byte displacement.
        offset: i64,
    },
    /// Store through a pointer: `*(base + offset) = src`.
    StorePtr {
        /// Value to store.
        src: Operand,
        /// Register holding the base address.
        base: Reg,
        /// Constant byte displacement.
        offset: i64,
    },
    /// Allocate `size` bytes on the heap; `dst` receives the address.
    Malloc {
        /// Destination register for the address.
        dst: Reg,
        /// Allocation size in bytes.
        size: Operand,
    },
    /// Free a heap allocation.
    Free {
        /// Register holding the address to free.
        ptr: Reg,
    },
    /// Call another function; arguments land in the callee's `r0..`.
    Call {
        /// Callee.
        func: FuncId,
        /// Argument values.
        args: Vec<Operand>,
        /// Register receiving the return value, if any.
        ret: Option<Reg>,
    },
    /// Padding bytes (models alignment or code the IR doesn't express).
    Nop {
        /// Encoded size in bytes.
        bytes: u8,
    },
}

impl Instr {
    /// Encoded size in bytes (x86-64-flavoured estimates) — this is
    /// what makes code layout byte-accurate.
    pub fn encoded_size(&self) -> u64 {
        match self {
            Instr::Alu {
                b: Operand::Imm(_), ..
            } => 5,
            Instr::Alu { .. } => 3,
            Instr::FpConst { .. } => 10, // movabs
            Instr::IntToFp { .. } | Instr::FpToInt { .. } => 4,
            Instr::LoadSlot { .. } | Instr::StoreSlot { .. } => 4,
            Instr::LoadGlobal { .. } | Instr::StoreGlobal { .. } => 7,
            Instr::LoadPtr { .. } | Instr::StorePtr { .. } => 4,
            Instr::Malloc { .. } | Instr::Free { .. } => 5, // call into allocator
            Instr::Call { .. } => 5,
            Instr::Nop { bytes } => u64::from(*bytes),
        }
    }

    /// Base execution latency in cycles, before memory-system effects.
    pub fn base_cycles(&self) -> u64 {
        match self {
            Instr::Alu { op, .. } => op.base_cycles(),
            Instr::FpConst { .. } => 1,
            Instr::IntToFp { .. } | Instr::FpToInt { .. } => 4,
            Instr::LoadSlot { .. } | Instr::StoreSlot { .. } => 1,
            Instr::LoadGlobal { .. } | Instr::StoreGlobal { .. } => 1,
            Instr::LoadPtr { .. } | Instr::StorePtr { .. } => 1,
            Instr::Malloc { .. } | Instr::Free { .. } => 30, // allocator work
            Instr::Call { .. } => 2,
            Instr::Nop { .. } => 1,
        }
    }

    /// The register this instruction writes, if any.
    pub fn def(&self) -> Option<Reg> {
        match self {
            Instr::Alu { dst, .. }
            | Instr::FpConst { dst, .. }
            | Instr::IntToFp { dst, .. }
            | Instr::FpToInt { dst, .. }
            | Instr::LoadSlot { dst, .. }
            | Instr::LoadGlobal { dst, .. }
            | Instr::LoadPtr { dst, .. }
            | Instr::Malloc { dst, .. } => Some(*dst),
            Instr::Call { ret, .. } => *ret,
            _ => None,
        }
    }

    /// Registers this instruction reads.
    pub fn uses(&self) -> Vec<Reg> {
        fn op_reg(o: &Operand, out: &mut Vec<Reg>) {
            if let Operand::Reg(r) = o {
                out.push(*r);
            }
        }
        let mut out = Vec::new();
        match self {
            Instr::Alu { a, b, .. } => {
                op_reg(a, &mut out);
                op_reg(b, &mut out);
            }
            Instr::FpConst { .. } | Instr::Nop { .. } => {}
            Instr::IntToFp { src, .. } | Instr::FpToInt { src, .. } => op_reg(src, &mut out),
            Instr::LoadSlot { .. } => {}
            Instr::StoreSlot { src, .. } => op_reg(src, &mut out),
            Instr::LoadGlobal { offset, .. } => op_reg(offset, &mut out),
            Instr::StoreGlobal { src, offset, .. } => {
                op_reg(src, &mut out);
                op_reg(offset, &mut out);
            }
            Instr::LoadPtr { base, .. } => out.push(*base),
            Instr::StorePtr { src, base, .. } => {
                op_reg(src, &mut out);
                out.push(*base);
            }
            Instr::Malloc { size, .. } => op_reg(size, &mut out),
            Instr::Free { ptr } => out.push(*ptr),
            Instr::Call { args, .. } => {
                for a in args {
                    op_reg(a, &mut out);
                }
            }
        }
        out
    }

    /// Whether this instruction has side effects beyond its register
    /// write (memory, allocation, control transfer) and therefore can
    /// never be removed by dead-code elimination.
    pub fn has_side_effects(&self) -> bool {
        matches!(
            self,
            Instr::StoreSlot { .. }
                | Instr::StoreGlobal { .. }
                | Instr::StorePtr { .. }
                | Instr::Malloc { .. }
                | Instr::Free { .. }
                | Instr::Call { .. }
        )
    }

    /// Whether the instruction is a pure computation on its operands
    /// (safe to CSE: same operands always give the same result).
    pub fn is_pure(&self) -> bool {
        matches!(
            self,
            Instr::Alu { .. }
                | Instr::FpConst { .. }
                | Instr::IntToFp { .. }
                | Instr::FpToInt { .. }
        )
    }
}

/// A basic block's terminating control transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Conditional branch: to `taken` if `cond != 0`, else `not_taken`.
    Branch {
        /// Condition value.
        cond: Operand,
        /// Target when the condition is non-zero.
        taken: BlockId,
        /// Target when the condition is zero.
        not_taken: BlockId,
    },
    /// Return from the function.
    Ret {
        /// Optional return value.
        value: Option<Operand>,
    },
}

impl Terminator {
    /// Encoded size in bytes.
    pub fn encoded_size(&self) -> u64 {
        match self {
            Terminator::Jump(_) => 5,
            Terminator::Branch { .. } => 6,
            Terminator::Ret { .. } => 1,
        }
    }

    /// Base execution latency in cycles, before memory-system effects.
    ///
    /// Every control transfer retires in one base cycle; mispredict
    /// and fetch penalties come from the memory/branch model, not from
    /// here. The interpreter and the pre-decoder both read this so the
    /// charged latency can never diverge between them.
    pub fn base_cycles(&self) -> u64 {
        1
    }

    /// Successor blocks.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch {
                taken, not_taken, ..
            } => vec![*taken, *not_taken],
            Terminator::Ret { .. } => vec![],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_positive() {
        let samples: Vec<Instr> = vec![
            Instr::Alu {
                dst: Reg(0),
                op: AluOp::Add,
                a: Operand::Imm(1),
                b: Operand::Imm(2),
            },
            Instr::FpConst {
                dst: Reg(0),
                bits: 0,
            },
            Instr::LoadSlot {
                dst: Reg(0),
                slot: 0,
            },
            Instr::Call {
                func: FuncId(0),
                args: vec![],
                ret: None,
            },
            Instr::Nop { bytes: 3 },
        ];
        for i in &samples {
            assert!(i.encoded_size() > 0, "{i:?}");
            assert!(i.base_cycles() > 0, "{i:?}");
        }
    }

    #[test]
    fn def_use_accounting() {
        let i = Instr::Alu {
            dst: Reg(3),
            op: AluOp::Add,
            a: Operand::Reg(Reg(1)),
            b: Operand::Reg(Reg(2)),
        };
        assert_eq!(i.def(), Some(Reg(3)));
        assert_eq!(i.uses(), vec![Reg(1), Reg(2)]);

        let s = Instr::StorePtr {
            src: Operand::Reg(Reg(5)),
            base: Reg(6),
            offset: 8,
        };
        assert_eq!(s.def(), None);
        assert_eq!(s.uses(), vec![Reg(5), Reg(6)]);
        assert!(s.has_side_effects());
    }

    #[test]
    fn purity_classification() {
        let alu = Instr::Alu {
            dst: Reg(0),
            op: AluOp::Mul,
            a: Operand::Imm(2),
            b: Operand::Imm(3),
        };
        assert!(alu.is_pure() && !alu.has_side_effects());
        let call = Instr::Call {
            func: FuncId(1),
            args: vec![],
            ret: Some(Reg(0)),
        };
        assert!(!call.is_pure() && call.has_side_effects());
        let load = Instr::LoadPtr {
            dst: Reg(0),
            base: Reg(1),
            offset: 0,
        };
        assert!(!load.is_pure(), "loads observe memory, not pure");
    }

    #[test]
    fn float_op_latencies_exceed_integer() {
        assert!(AluOp::FDiv.base_cycles() > AluOp::Add.base_cycles());
        assert!(AluOp::FAdd.is_float());
        assert!(!AluOp::Add.is_float());
    }

    #[test]
    fn terminator_successors() {
        assert_eq!(Terminator::Jump(BlockId(3)).successors(), vec![BlockId(3)]);
        let b = Terminator::Branch {
            cond: Operand::Reg(Reg(0)),
            taken: BlockId(1),
            not_taken: BlockId(2),
        };
        assert_eq!(b.successors(), vec![BlockId(1), BlockId(2)]);
        assert!(Terminator::Ret { value: None }.successors().is_empty());
    }
}
