//! IR validation errors.

use crate::{BlockId, FuncId, GlobalId, Reg};

/// A structural defect found by [`crate::Program::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IrError {
    /// A function reference is out of range.
    BadFunction {
        /// The offending reference.
        func: FuncId,
    },
    /// A function has no blocks.
    EmptyFunction {
        /// The offending function.
        func: FuncId,
    },
    /// A block reference is out of range.
    BadBlock {
        /// Function containing the reference.
        func: FuncId,
        /// The offending block id.
        block: BlockId,
    },
    /// A register index exceeds the function's register frame.
    BadRegister {
        /// Function containing the reference.
        func: FuncId,
        /// The offending register.
        reg: Reg,
    },
    /// A stack slot index exceeds the function's frame.
    BadSlot {
        /// Function containing the reference.
        func: FuncId,
        /// The offending slot index.
        slot: u32,
    },
    /// A global reference is out of range.
    BadGlobal {
        /// Function containing the reference.
        func: FuncId,
        /// The offending global id.
        global: GlobalId,
    },
    /// A call passes the wrong number of arguments.
    BadArity {
        /// Calling function.
        caller: FuncId,
        /// Called function.
        callee: FuncId,
        /// Parameters the callee declares.
        expected: u16,
        /// Arguments the call passes.
        got: usize,
    },
}

impl std::fmt::Display for IrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IrError::BadFunction { func } => write!(f, "function reference {func} out of range"),
            IrError::EmptyFunction { func } => write!(f, "function {func} has no blocks"),
            IrError::BadBlock { func, block } => {
                write!(f, "block reference {block} out of range in {func}")
            }
            IrError::BadRegister { func, reg } => {
                write!(f, "register {reg} out of range in {func}")
            }
            IrError::BadSlot { func, slot } => {
                write!(f, "stack slot {slot} out of range in {func}")
            }
            IrError::BadGlobal { func, global } => {
                write!(f, "global reference {global} out of range in {func}")
            }
            IrError::BadArity {
                caller,
                callee,
                expected,
                got,
            } => write!(
                f,
                "call from {caller} to {callee} passes {got} arguments, expected {expected}"
            ),
        }
    }
}

impl std::error::Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = IrError::BadArity {
            caller: FuncId(0),
            callee: FuncId(1),
            expected: 2,
            got: 3,
        };
        assert_eq!(
            e.to_string(),
            "call from @0 to @1 passes 3 arguments, expected 2"
        );
    }
}
