//! A register-machine intermediate representation with byte-accurate
//! code layout.
//!
//! The paper's subject programs are native binaries whose instruction
//! addresses, stack addresses, and heap addresses flow through
//! address-indexed hardware. This IR plays that role in the
//! reproduction: every instruction has an encoded byte size (so
//! function placement determines fetch addresses), every function has a
//! frame of stack slots (so stack placement determines data addresses),
//! and allocation is explicit (so the heap allocator determines object
//! addresses).
//!
//! Programs are built with [`ProgramBuilder`]/[`FunctionBuilder`] and
//! validated with [`Program::validate`]. Execution lives in the
//! `sz-vm` crate; optimization passes in `sz-opt`.
//!
//! # Examples
//!
//! ```
//! use sz_ir::{AluOp, Operand, ProgramBuilder};
//!
//! let mut p = ProgramBuilder::new("demo");
//! let mut f = p.function("main", 0);
//! let x = f.alu(AluOp::Add, Operand::Imm(2), Operand::Imm(3));
//! f.ret(Some(Operand::Reg(x)));
//! let main = p.add_function(f);
//! let program = p.finish(main)?;
//! assert_eq!(program.functions.len(), 1);
//! # Ok::<(), sz_ir::IrError>(())
//! ```

mod builder;
mod error;
mod func;
mod instr;
mod program;

pub use builder::{FunctionBuilder, ProgramBuilder};
pub use error::IrError;
pub use func::{Block, CodeElem, CodeLayout, Function};
pub use instr::{AluOp, Instr, Operand, Terminator};
pub use program::{Global, GlobalInit, Program};

/// Index of a function within its [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

/// Index of a basic block within its [`Function`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

/// Index of a global within its [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalId(pub u32);

/// A virtual register within a function frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u16);

impl std::fmt::Display for FuncId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "@{}", self.0)
    }
}

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl std::fmt::Display for GlobalId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "g{}", self.0)
    }
}
