//! Fluent builders for programs and functions.

use crate::{
    AluOp, Block, BlockId, FuncId, Function, Global, GlobalId, GlobalInit, Instr, IrError, Operand,
    Program, Reg, Terminator,
};

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Operand {
        Operand::Imm(v)
    }
}

/// Builds a [`Program`] incrementally.
///
/// Functions that call each other can be declared first with
/// [`ProgramBuilder::declare`] and defined later with
/// [`ProgramBuilder::define`].
///
/// # Examples
///
/// ```
/// use sz_ir::{AluOp, ProgramBuilder};
///
/// let mut p = ProgramBuilder::new("adder");
/// let mut helper = p.function("add1", 1);
/// let arg = helper.param(0);
/// let out = helper.alu(AluOp::Add, arg, 1);
/// helper.ret(Some(out.into()));
/// let add1 = p.add_function(helper);
///
/// let mut main = p.function("main", 0);
/// let v = main.call(add1, vec![41.into()]);
/// main.ret(Some(v.into()));
/// let entry = p.add_function(main);
///
/// let program = p.finish(entry)?;
/// assert_eq!(program.functions.len(), 2);
/// # Ok::<(), sz_ir::IrError>(())
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    functions: Vec<Option<Function>>,
    globals: Vec<Global>,
}

impl ProgramBuilder {
    /// Starts a new program.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            functions: Vec::new(),
            globals: Vec::new(),
        }
    }

    /// Reserves a function id for a body defined later (mutual
    /// recursion). The declared arity is recorded by the eventual
    /// [`ProgramBuilder::define`] call.
    pub fn declare(&mut self) -> FuncId {
        self.functions.push(None);
        FuncId(self.functions.len() as u32 - 1)
    }

    /// Creates a builder for a new function with `params` parameters.
    pub fn function(&self, name: impl Into<String>, params: u16) -> FunctionBuilder {
        FunctionBuilder::new(name, params)
    }

    /// Finishes `fb` and appends it, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if the builder has unterminated blocks.
    pub fn add_function(&mut self, fb: FunctionBuilder) -> FuncId {
        self.functions.push(Some(fb.finish()));
        FuncId(self.functions.len() as u32 - 1)
    }

    /// Fills a previously [`ProgramBuilder::declare`]d slot.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not declared, is already defined, or if the
    /// builder has unterminated blocks.
    pub fn define(&mut self, id: FuncId, fb: FunctionBuilder) {
        let slot = self
            .functions
            .get_mut(id.0 as usize)
            .unwrap_or_else(|| panic!("function {id} was never declared"));
        assert!(slot.is_none(), "function {id} is already defined");
        *slot = Some(fb.finish());
    }

    /// Adds a zero-initialized global of `size` bytes.
    pub fn global(&mut self, name: impl Into<String>, size: u64) -> GlobalId {
        self.global_init(name, size, GlobalInit::Zero)
    }

    /// Adds a global with explicit initial contents.
    pub fn global_init(
        &mut self,
        name: impl Into<String>,
        size: u64,
        init: GlobalInit,
    ) -> GlobalId {
        self.globals.push(Global {
            name: name.into(),
            size,
            init,
        });
        GlobalId(self.globals.len() as u32 - 1)
    }

    /// Completes the program with `entry` as its entry point and
    /// validates it.
    ///
    /// # Errors
    ///
    /// Returns any [`IrError`] found by [`Program::validate`].
    ///
    /// # Panics
    ///
    /// Panics if a declared function was never defined.
    pub fn finish(self, entry: FuncId) -> Result<Program, IrError> {
        let functions: Vec<Function> = self
            .functions
            .into_iter()
            .enumerate()
            .map(|(i, f)| f.unwrap_or_else(|| panic!("function @{i} declared but never defined")))
            .collect();
        let program = Program {
            name: self.name,
            functions,
            globals: self.globals,
            entry,
        };
        program.validate()?;
        Ok(program)
    }
}

/// Builds one [`Function`].
///
/// The builder maintains a *current block*; instruction methods append
/// to it, terminator methods seal it. Create more blocks with
/// [`FunctionBuilder::new_block`] and move between them with
/// [`FunctionBuilder::switch_to`].
#[derive(Debug)]
pub struct FunctionBuilder {
    name: String,
    params: u16,
    next_reg: u16,
    next_slot: u32,
    blocks: Vec<(Vec<Instr>, Option<Terminator>)>,
    current: usize,
}

impl FunctionBuilder {
    /// Starts a function with `params` parameters (arriving in
    /// registers `r0..r{params}`) and an empty entry block.
    pub fn new(name: impl Into<String>, params: u16) -> Self {
        FunctionBuilder {
            name: name.into(),
            params,
            next_reg: params,
            next_slot: 0,
            blocks: vec![(Vec::new(), None)],
            current: 0,
        }
    }

    /// The entry block's id (always `bb0`).
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Register holding parameter `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= params`.
    pub fn param(&self, i: u16) -> Reg {
        assert!(i < self.params, "parameter {i} out of range");
        Reg(i)
    }

    /// Allocates a fresh virtual register.
    pub fn reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Allocates one fresh stack slot and returns its index.
    pub fn slot(&mut self) -> u32 {
        self.slots(1)
    }

    /// Allocates `n` contiguous stack slots, returning the first index.
    pub fn slots(&mut self, n: u32) -> u32 {
        let s = self.next_slot;
        self.next_slot += n;
        s
    }

    /// Creates a new (unterminated) block and returns its id without
    /// switching to it.
    pub fn new_block(&mut self) -> BlockId {
        self.blocks.push((Vec::new(), None));
        BlockId(self.blocks.len() as u32 - 1)
    }

    /// Makes `block` the current block.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range or already sealed.
    pub fn switch_to(&mut self, block: BlockId) {
        let idx = block.0 as usize;
        assert!(idx < self.blocks.len(), "no such block {block}");
        assert!(
            self.blocks[idx].1.is_none(),
            "block {block} is already terminated"
        );
        self.current = idx;
    }

    fn push(&mut self, instr: Instr) {
        let (instrs, term) = &mut self.blocks[self.current];
        assert!(term.is_none(), "current block is already terminated");
        instrs.push(instr);
    }

    fn seal(&mut self, term: Terminator) {
        let (_, t) = &mut self.blocks[self.current];
        assert!(t.is_none(), "current block is already terminated");
        *t = Some(term);
    }

    // --- instructions -------------------------------------------------

    /// Appends `dst = a <op> b` with a fresh destination register.
    pub fn alu(&mut self, op: AluOp, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        self.push(Instr::Alu {
            dst,
            op,
            a: a.into(),
            b: b.into(),
        });
        dst
    }

    /// Appends `dst = a <op> b` into an existing register.
    pub fn alu_into(&mut self, dst: Reg, op: AluOp, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.push(Instr::Alu {
            dst,
            op,
            a: a.into(),
            b: b.into(),
        });
    }

    /// Materializes a floating-point constant.
    pub fn fp_const(&mut self, value: f64) -> Reg {
        let dst = self.reg();
        self.push(Instr::FpConst {
            dst,
            bits: value.to_bits(),
        });
        dst
    }

    /// Converts an integer value to floating point.
    pub fn int_to_fp(&mut self, src: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        self.push(Instr::IntToFp {
            dst,
            src: src.into(),
        });
        dst
    }

    /// Converts a floating-point value to an integer.
    pub fn fp_to_int(&mut self, src: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        self.push(Instr::FpToInt {
            dst,
            src: src.into(),
        });
        dst
    }

    /// Loads a stack slot.
    pub fn load_slot(&mut self, slot: u32) -> Reg {
        let dst = self.reg();
        self.push(Instr::LoadSlot { dst, slot });
        dst
    }

    /// Stores to a stack slot.
    pub fn store_slot(&mut self, slot: u32, src: impl Into<Operand>) {
        self.push(Instr::StoreSlot {
            src: src.into(),
            slot,
        });
    }

    /// Loads `global[offset]`.
    pub fn load_global(&mut self, global: GlobalId, offset: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        self.push(Instr::LoadGlobal {
            dst,
            global,
            offset: offset.into(),
        });
        dst
    }

    /// Stores to `global[offset]`.
    pub fn store_global(
        &mut self,
        global: GlobalId,
        offset: impl Into<Operand>,
        src: impl Into<Operand>,
    ) {
        self.push(Instr::StoreGlobal {
            src: src.into(),
            global,
            offset: offset.into(),
        });
    }

    /// Loads `*(base + offset)`.
    pub fn load_ptr(&mut self, base: Reg, offset: i64) -> Reg {
        let dst = self.reg();
        self.push(Instr::LoadPtr { dst, base, offset });
        dst
    }

    /// Stores `*(base + offset) = src`.
    pub fn store_ptr(&mut self, base: Reg, offset: i64, src: impl Into<Operand>) {
        self.push(Instr::StorePtr {
            src: src.into(),
            base,
            offset,
        });
    }

    /// Allocates heap memory.
    pub fn malloc(&mut self, size: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        self.push(Instr::Malloc {
            dst,
            size: size.into(),
        });
        dst
    }

    /// Frees heap memory.
    pub fn free(&mut self, ptr: Reg) {
        self.push(Instr::Free { ptr });
    }

    /// Calls `func`, capturing its return value in a fresh register.
    pub fn call(&mut self, func: FuncId, args: Vec<Operand>) -> Reg {
        let dst = self.reg();
        self.push(Instr::Call {
            func,
            args,
            ret: Some(dst),
        });
        dst
    }

    /// Calls `func`, ignoring any return value.
    pub fn call_void(&mut self, func: FuncId, args: Vec<Operand>) {
        self.push(Instr::Call {
            func,
            args,
            ret: None,
        });
    }

    /// Appends `bytes` of padding.
    pub fn nop(&mut self, bytes: u8) {
        self.push(Instr::Nop { bytes });
    }

    // --- terminators ----------------------------------------------------

    /// Seals the current block with an unconditional jump.
    pub fn jump(&mut self, target: BlockId) {
        self.seal(Terminator::Jump(target));
    }

    /// Seals the current block with a conditional branch.
    pub fn branch(&mut self, cond: impl Into<Operand>, taken: BlockId, not_taken: BlockId) {
        self.seal(Terminator::Branch {
            cond: cond.into(),
            taken,
            not_taken,
        });
    }

    /// Seals the current block with a return.
    pub fn ret(&mut self, value: Option<Operand>) {
        self.seal(Terminator::Ret { value });
    }

    /// Completes the function.
    ///
    /// # Panics
    ///
    /// Panics if any block lacks a terminator.
    pub fn finish(self) -> Function {
        let blocks: Vec<Block> = self
            .blocks
            .into_iter()
            .enumerate()
            .map(|(i, (instrs, term))| Block {
                instrs,
                term: term.unwrap_or_else(|| {
                    panic!("block bb{i} of function `{}` has no terminator", self.name)
                }),
            })
            .collect();
        Function {
            name: self.name,
            params: self.params,
            num_regs: self.next_reg.max(self.params).max(1),
            num_slots: self.next_slot,
            blocks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_a_loop() {
        // for (i = 0; i < 10; i++) sum += i;
        let mut p = ProgramBuilder::new("loop");
        let mut f = p.function("main", 0);
        let i = f.reg();
        let sum = f.reg();
        f.alu_into(i, AluOp::Add, 0, 0);
        f.alu_into(sum, AluOp::Add, 0, 0);
        let header = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();
        f.jump(header);
        f.switch_to(header);
        let cond = f.alu(AluOp::CmpLt, i, 10);
        f.branch(cond, body, exit);
        f.switch_to(body);
        f.alu_into(sum, AluOp::Add, sum, i);
        f.alu_into(i, AluOp::Add, i, 1);
        f.jump(header);
        f.switch_to(exit);
        f.ret(Some(sum.into()));
        let main = p.add_function(f);
        let prog = p.finish(main).unwrap();
        assert_eq!(prog.functions[0].blocks.len(), 4);
        assert!(prog.validate().is_ok());
    }

    #[test]
    fn declare_define_mutual_recursion() {
        let mut p = ProgramBuilder::new("mutual");
        let even = p.declare();
        let odd = p.declare();

        // even(n): n == 0 ? 1 : odd(n - 1)
        let mut fe = p.function("even", 1);
        let n = fe.param(0);
        let base = fe.new_block();
        let rec = fe.new_block();
        let z = fe.alu(AluOp::CmpEq, n, 0);
        fe.branch(z, base, rec);
        fe.switch_to(base);
        fe.ret(Some(1.into()));
        fe.switch_to(rec);
        let m = fe.alu(AluOp::Sub, n, 1);
        let r = fe.call(odd, vec![m.into()]);
        fe.ret(Some(r.into()));
        p.define(even, fe);

        // odd(n): n == 0 ? 0 : even(n - 1)
        let mut fo = p.function("odd", 1);
        let n = fo.param(0);
        let base = fo.new_block();
        let rec = fo.new_block();
        let z = fo.alu(AluOp::CmpEq, n, 0);
        fo.branch(z, base, rec);
        fo.switch_to(base);
        fo.ret(Some(0.into()));
        fo.switch_to(rec);
        let m = fo.alu(AluOp::Sub, n, 1);
        let r = fo.call(even, vec![m.into()]);
        fo.ret(Some(r.into()));
        p.define(odd, fo);

        let mut main = p.function("main", 0);
        let r = main.call(even, vec![6.into()]);
        main.ret(Some(r.into()));
        let entry = p.add_function(main);
        let prog = p.finish(entry).unwrap();
        assert_eq!(prog.functions.len(), 3);
    }

    #[test]
    #[should_panic(expected = "has no terminator")]
    fn unterminated_block_panics() {
        let fb = FunctionBuilder::new("broken", 0);
        fb.finish();
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn double_terminate_panics() {
        let mut fb = FunctionBuilder::new("f", 0);
        fb.ret(None);
        fb.ret(None);
    }

    #[test]
    fn globals_and_slots() {
        let mut p = ProgramBuilder::new("g");
        let g = p.global("table", 4096);
        let mut f = p.function("main", 0);
        let s = f.slots(4);
        assert_eq!(s, 0);
        assert_eq!(f.slot(), 4);
        let v = f.load_global(g, 16);
        f.store_slot(0, v);
        f.ret(None);
        let id = p.add_function(f);
        let prog = p.finish(id).unwrap();
        assert_eq!(prog.globals[0].size, 4096);
        assert_eq!(prog.functions[0].num_slots, 5);
    }
}
