//! Whole programs, globals, and validation.

use crate::{FuncId, Function, Instr, IrError, Operand, Terminator};

/// Initial contents of a global.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GlobalInit {
    /// Zero-initialized (BSS).
    Zero,
    /// An 8-byte floating-point constant (how STABILIZER materializes
    /// FP literals, §3.3).
    F64Bits(u64),
    /// An 8-byte integer constant.
    U64(u64),
}

/// A global data object.
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Symbol name.
    pub name: String,
    /// Size in bytes.
    pub size: u64,
    /// Initial contents.
    pub init: GlobalInit,
}

/// A complete program: functions, globals, and an entry point.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Program name (benchmark name in the suite).
    pub name: String,
    /// All functions; index = [`FuncId`].
    pub functions: Vec<Function>,
    /// All globals; index = `GlobalId`.
    pub globals: Vec<Global>,
    /// The function executed first.
    pub entry: FuncId,
}

impl Program {
    /// Total encoded code size across all functions.
    pub fn code_size(&self) -> u64 {
        self.functions.iter().map(Function::code_size).sum()
    }

    /// Total size of global data in bytes.
    pub fn global_size(&self) -> u64 {
        self.globals.iter().map(|g| g.size).sum()
    }

    /// Total instruction count.
    pub fn instr_count(&self) -> usize {
        self.functions.iter().map(Function::instr_count).sum()
    }

    /// Checks structural invariants: every block, register, slot,
    /// global, and function reference is in range; entry exists; call
    /// arity matches callee parameter counts; parameters fit in the
    /// register frame.
    ///
    /// # Errors
    ///
    /// Returns the first violation found as an [`IrError`].
    pub fn validate(&self) -> Result<(), IrError> {
        if self.entry.0 as usize >= self.functions.len() {
            return Err(IrError::BadFunction { func: self.entry });
        }
        for (fi, f) in self.functions.iter().enumerate() {
            let func = FuncId(fi as u32);
            if f.blocks.is_empty() {
                return Err(IrError::EmptyFunction { func });
            }
            if f.params > f.num_regs {
                return Err(IrError::BadRegister {
                    func,
                    reg: crate::Reg(f.params - 1),
                });
            }
            for block in &f.blocks {
                for instr in &block.instrs {
                    self.validate_instr(func, f, instr)?;
                }
                for succ in block.term.successors() {
                    if succ.0 as usize >= f.blocks.len() {
                        return Err(IrError::BadBlock { func, block: succ });
                    }
                }
                if let Terminator::Branch { cond, .. } = &block.term {
                    self.validate_operand(func, f, cond)?;
                }
                if let Terminator::Ret { value: Some(v) } = &block.term {
                    self.validate_operand(func, f, v)?;
                }
            }
        }
        Ok(())
    }

    fn validate_operand(&self, func: FuncId, f: &Function, op: &Operand) -> Result<(), IrError> {
        if let Operand::Reg(r) = op {
            if r.0 >= f.num_regs {
                return Err(IrError::BadRegister { func, reg: *r });
            }
        }
        Ok(())
    }

    fn validate_reg(&self, func: FuncId, f: &Function, r: crate::Reg) -> Result<(), IrError> {
        if r.0 >= f.num_regs {
            return Err(IrError::BadRegister { func, reg: r });
        }
        Ok(())
    }

    fn validate_instr(&self, func: FuncId, f: &Function, instr: &Instr) -> Result<(), IrError> {
        if let Some(d) = instr.def() {
            self.validate_reg(func, f, d)?;
        }
        for u in instr.uses() {
            self.validate_reg(func, f, u)?;
        }
        match instr {
            Instr::LoadSlot { slot, .. } | Instr::StoreSlot { slot, .. }
                if *slot >= f.num_slots =>
            {
                return Err(IrError::BadSlot { func, slot: *slot });
            }
            Instr::LoadGlobal { global, .. } | Instr::StoreGlobal { global, .. }
                if global.0 as usize >= self.globals.len() =>
            {
                return Err(IrError::BadGlobal {
                    func,
                    global: *global,
                });
            }
            Instr::Call {
                func: callee, args, ..
            } => {
                let Some(target) = self.functions.get(callee.0 as usize) else {
                    return Err(IrError::BadFunction { func: *callee });
                };
                if args.len() != usize::from(target.params) {
                    return Err(IrError::BadArity {
                        caller: func,
                        callee: *callee,
                        expected: target.params,
                        got: args.len(),
                    });
                }
            }
            _ => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AluOp, Block, BlockId, GlobalId, Reg};

    fn minimal() -> Program {
        Program {
            name: "t".into(),
            functions: vec![Function {
                name: "main".into(),
                params: 0,
                num_regs: 1,
                num_slots: 0,
                blocks: vec![Block {
                    instrs: vec![],
                    term: Terminator::Ret { value: None },
                }],
            }],
            globals: vec![],
            entry: FuncId(0),
        }
    }

    #[test]
    fn minimal_program_validates() {
        assert_eq!(minimal().validate(), Ok(()));
    }

    #[test]
    fn detects_bad_entry() {
        let mut p = minimal();
        p.entry = FuncId(7);
        assert!(matches!(p.validate(), Err(IrError::BadFunction { .. })));
    }

    #[test]
    fn detects_out_of_range_register() {
        let mut p = minimal();
        p.functions[0].blocks[0].instrs.push(Instr::Alu {
            dst: Reg(5),
            op: AluOp::Add,
            a: Operand::Imm(0),
            b: Operand::Imm(0),
        });
        assert!(matches!(p.validate(), Err(IrError::BadRegister { .. })));
    }

    #[test]
    fn detects_bad_slot_global_block() {
        let mut p = minimal();
        p.functions[0].blocks[0].instrs.push(Instr::LoadSlot {
            dst: Reg(0),
            slot: 3,
        });
        assert!(matches!(p.validate(), Err(IrError::BadSlot { .. })));

        let mut p = minimal();
        p.functions[0].blocks[0].instrs.push(Instr::LoadGlobal {
            dst: Reg(0),
            global: GlobalId(0),
            offset: Operand::Imm(0),
        });
        assert!(matches!(p.validate(), Err(IrError::BadGlobal { .. })));

        let mut p = minimal();
        p.functions[0].blocks[0].term = Terminator::Jump(BlockId(9));
        assert!(matches!(p.validate(), Err(IrError::BadBlock { .. })));
    }

    #[test]
    fn detects_arity_mismatch() {
        let mut p = minimal();
        p.functions.push(Function {
            name: "callee".into(),
            params: 2,
            num_regs: 2,
            num_slots: 0,
            blocks: vec![Block {
                instrs: vec![],
                term: Terminator::Ret { value: None },
            }],
        });
        p.functions[0].blocks[0].instrs.push(Instr::Call {
            func: FuncId(1),
            args: vec![Operand::Imm(1)],
            ret: None,
        });
        assert!(matches!(
            p.validate(),
            Err(IrError::BadArity {
                expected: 2,
                got: 1,
                ..
            })
        ));
    }

    #[test]
    fn size_accounting() {
        let p = minimal();
        assert_eq!(p.code_size(), 1, "a single ret");
        assert_eq!(p.global_size(), 0);
        assert_eq!(p.instr_count(), 0);
    }
}
