//! Offline trace scanner: replay recorded JSONL traces through the
//! sentinel and print alert/anomaly records as JSONL.
//!
//! Exit codes: 0 = scanned clean, 1 = at least one change-point
//! alert, 2 = usage or stream error. `--inject-step` exists for the
//! CI armed negative control: it multiplies the `seconds` metric of
//! late runs by a factor before detection, so a clean recorded trace
//! doubles as its own regression fixture.

use std::io::{self, BufRead, BufReader, Write};
use std::process::ExitCode;

use sz_sentinel::{parse_line, ParsedLine, Sentinel, SentinelConfig};

struct Options {
    config: SentinelConfig,
    inject_step: Option<f64>,
    inject_at: u64,
    files: Vec<String>,
}

fn usage() -> String {
    [
        "usage: sz-sentinel [options] [FILE ...]",
        "",
        "Scans JSONL trace streams (stdin when no FILE) for metric",
        "shifts and layout-sensitivity outliers; prints alerts as JSONL.",
        "",
        "options:",
        "  --window N        samples per change-point window (default 4)",
        "  --band F          practical-equivalence band (default 0.05)",
        "  --confidence F    CI confidence level (default 0.95)",
        "  --resamples N     bootstrap resamples (default 1000)",
        "  --metrics A,B     metrics to watch (default seconds,cpi)",
        "  --top-k N         anomalies surfaced per benchmark (default 3)",
        "  --no-anomalies    change-point alerts only",
        "  --inject-step F   multiply seconds of runs >= --inject-at by F",
        "  --inject-at N     first run index the injection hits (default 0)",
        "",
        "exit: 0 clean, 1 alerted, 2 error",
    ]
    .join("\n")
}

fn parse_options(args: Vec<String>) -> Result<(Options, bool), String> {
    let mut options = Options {
        config: SentinelConfig::default(),
        inject_step: None,
        inject_at: 0,
        files: Vec::new(),
    };
    let mut anomalies = true;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--help" | "-h" => return Err(usage()),
            "--window" => {
                options.config.change.window = value("--window")?
                    .parse::<usize>()
                    .map_err(|e| format!("--window: {e}"))?
                    .max(2)
            }
            "--band" => {
                options.config.change.verdict.band = value("--band")?
                    .parse::<f64>()
                    .map_err(|e| format!("--band: {e}"))?
            }
            "--confidence" => {
                options.config.change.verdict.confidence = value("--confidence")?
                    .parse::<f64>()
                    .map_err(|e| format!("--confidence: {e}"))?
            }
            "--resamples" => {
                options.config.change.verdict.resamples = value("--resamples")?
                    .parse::<usize>()
                    .map_err(|e| format!("--resamples: {e}"))?
            }
            "--metrics" => {
                options.config.metrics = value("--metrics")?
                    .split(',')
                    .map(|m| m.trim().to_string())
                    .filter(|m| !m.is_empty())
                    .collect()
            }
            "--top-k" => {
                options.config.top_k = value("--top-k")?
                    .parse::<usize>()
                    .map_err(|e| format!("--top-k: {e}"))?
            }
            "--no-anomalies" => anomalies = false,
            "--inject-step" => {
                options.inject_step = Some(
                    value("--inject-step")?
                        .parse::<f64>()
                        .map_err(|e| format!("--inject-step: {e}"))?,
                )
            }
            "--inject-at" => {
                options.inject_at = value("--inject-at")?
                    .parse::<u64>()
                    .map_err(|e| format!("--inject-at: {e}"))?
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown option {other}\n{}", usage()))
            }
            file => options.files.push(file.to_string()),
        }
    }
    Ok((options, anomalies))
}

fn scan_reader(
    sentinel: &mut Sentinel,
    reader: impl BufRead,
    options: &Options,
    out: &mut impl Write,
) -> Result<(), String> {
    let mut line_no = 0u64;
    for line in reader.lines() {
        let line = line.map_err(|e| format!("read failed: {e}"))?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let records = match options.inject_step {
            None => sentinel.ingest_line(trimmed).map_err(|e| e.to_string())?,
            Some(factor) => {
                line_no += 1;
                match parse_line(trimmed, line_no).map_err(|e| e.to_string())? {
                    ParsedLine::Run(mut sample) => {
                        if sample.run >= options.inject_at {
                            for (metric, v) in &mut sample.metrics {
                                if *metric == "seconds" {
                                    *v *= factor;
                                }
                            }
                        }
                        sentinel.ingest_run(&sample)
                    }
                    _ => {
                        // Headers/summaries pass through untouched; feed
                        // them to the engine for schema tracking.
                        sentinel.ingest_line(trimmed).map_err(|e| e.to_string())?
                    }
                }
            }
        };
        for record in records {
            writeln!(out, "{record}").map_err(|e| format!("write failed: {e}"))?;
        }
    }
    Ok(())
}

fn run() -> Result<bool, String> {
    let (options, anomalies) = parse_options(std::env::args().skip(1).collect())?;
    let mut sentinel = Sentinel::new(options.config.clone());
    let stdout = io::stdout();
    let mut out = stdout.lock();
    if options.files.is_empty() {
        let stdin = io::stdin();
        scan_reader(&mut sentinel, stdin.lock(), &options, &mut out)?;
    } else {
        for path in &options.files {
            let file = std::fs::File::open(path).map_err(|e| format!("{path}: {e}"))?;
            scan_reader(&mut sentinel, BufReader::new(file), &options, &mut out)?;
        }
    }
    if anomalies {
        for record in sentinel.anomalies() {
            writeln!(out, "{record}").map_err(|e| format!("write failed: {e}"))?;
        }
    }
    eprintln!(
        "sz-sentinel: {} lines, {} runs, {} alerts",
        sentinel.lines_seen(),
        sentinel.runs_seen(),
        sentinel.alerts_emitted()
    );
    Ok(sentinel.alerts_emitted() > 0)
}

fn main() -> ExitCode {
    match run() {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => ExitCode::from(1),
        Err(message) => {
            eprintln!("{message}");
            ExitCode::from(2)
        }
    }
}
