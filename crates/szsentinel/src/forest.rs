//! A seeded, deterministic isolation forest for anomaly scoring.
//!
//! Isolation forests (Liu, Ting & Zhou, ICDM 2008) score outliers by
//! how quickly random axis-aligned splits isolate a point: anomalies
//! sit in sparse regions and are separated in few splits, so their
//! expected path length is short. The score is
//! `2^(-E[h(x)] / c(ψ))` where `c(ψ)` is the average path length of
//! an unsuccessful BST search over the subsample size ψ — scores
//! near 1 are anomalous, near 0.5 or below are ordinary.
//!
//! Everything here is driven by one `SplitMix64` stream per tree
//! derived from the configured seed, and evaluation is sequential,
//! so scores are bit-identical across runs, machines with the same
//! float semantics, and thread counts. Scoring is *rank-based* at
//! the call sites: the sentinel surfaces the top-k scores per
//! benchmark rather than comparing against any threshold.

use sz_rng::{Rng, SplitMix64};

/// Forest parameters.
#[derive(Debug, Clone)]
pub struct ForestConfig {
    /// Number of trees.
    pub trees: usize,
    /// Subsample size ψ per tree (clamped to the data size).
    pub subsample: usize,
    /// Base seed; tree `t` uses an independent stream derived from
    /// `seed` and `t`.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> ForestConfig {
        ForestConfig {
            trees: 64,
            subsample: 32,
            seed: 0x5E27_14E1,
        }
    }
}

enum Node {
    Leaf {
        size: usize,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// Average path length of an unsuccessful search in a BST of `n`
/// nodes (the normalizer `c(n)` from the paper).
fn avg_path(n: usize) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    if n == 2 {
        return 1.0;
    }
    let nf = n as f64;
    let harmonic = (nf - 1.0).ln() + 0.577_215_664_901_532_9;
    2.0 * harmonic - 2.0 * (nf - 1.0) / nf
}

fn build(
    data: &[Vec<f64>],
    indices: &[usize],
    depth: usize,
    limit: usize,
    rng: &mut SplitMix64,
) -> Node {
    if indices.len() <= 1 || depth >= limit {
        return Node::Leaf {
            size: indices.len(),
        };
    }
    let dims = data[indices[0]].len();
    // Features where the subsample actually varies; constants cannot
    // split.
    let splittable: Vec<usize> = (0..dims)
        .filter(|&f| {
            let first = data[indices[0]][f];
            indices.iter().any(|&i| data[i][f] != first)
        })
        .collect();
    if splittable.is_empty() {
        return Node::Leaf {
            size: indices.len(),
        };
    }
    let feature = splittable[(rng.next_u64() % splittable.len() as u64) as usize];
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &i in indices.iter() {
        lo = lo.min(data[i][feature]);
        hi = hi.max(data[i][feature]);
    }
    let threshold = lo + rng.next_f64() * (hi - lo);
    // Stable partition keeps child order (and thus the RNG stream
    // consumption) deterministic.
    let mut left: Vec<usize> = Vec::new();
    let mut right: Vec<usize> = Vec::new();
    for &i in indices.iter() {
        if data[i][feature] < threshold {
            left.push(i);
        } else {
            right.push(i);
        }
    }
    if left.is_empty() || right.is_empty() {
        return Node::Leaf {
            size: indices.len(),
        };
    }
    Node::Split {
        feature,
        threshold,
        left: Box::new(build(data, &left, depth + 1, limit, rng)),
        right: Box::new(build(data, &right, depth + 1, limit, rng)),
    }
}

fn path_length(node: &Node, point: &[f64], depth: usize) -> f64 {
    match node {
        Node::Leaf { size } => depth as f64 + avg_path(*size),
        Node::Split {
            feature,
            threshold,
            left,
            right,
        } => {
            if point[*feature] < *threshold {
                path_length(left, point, depth + 1)
            } else {
                path_length(right, point, depth + 1)
            }
        }
    }
}

/// Scores every row of `data` (rows are feature vectors of equal
/// length). Returns one score per row in input order; higher is more
/// anomalous. Empty input yields an empty vector; non-finite feature
/// values are clamped to 0 before scoring so a corrupt counter
/// cannot poison the forest.
pub fn score_matrix(data: &[Vec<f64>], config: &ForestConfig) -> Vec<f64> {
    if data.is_empty() {
        return Vec::new();
    }
    let cleaned: Vec<Vec<f64>> = data
        .iter()
        .map(|row| {
            row.iter()
                .map(|v| if v.is_finite() { *v } else { 0.0 })
                .collect()
        })
        .collect();
    let n = cleaned.len();
    let psi = config.subsample.clamp(2, n.max(2)).min(n.max(1));
    let limit = (psi.max(2) as f64).log2().ceil() as usize;
    let trees = config.trees.max(1);
    let mut totals = vec![0.0f64; n];
    for t in 0..trees {
        let mut rng = SplitMix64::new(
            config
                .seed
                .wrapping_add((t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        // Deterministic subsample without replacement: partial
        // Fisher–Yates over the index range.
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..psi.min(n) {
            let j = i + (rng.next_u64() % (n - i) as u64) as usize;
            pool.swap(i, j);
        }
        let sample: Vec<usize> = pool[..psi.min(n)].to_vec();
        let tree = build(&cleaned, &sample, 0, limit, &mut rng);
        for (i, row) in cleaned.iter().enumerate() {
            totals[i] += path_length(&tree, row, 0);
        }
    }
    let norm = avg_path(psi);
    totals
        .into_iter()
        .map(|total| {
            let mean_path = total / trees as f64;
            if norm > 0.0 {
                2f64.powf(-mean_path / norm)
            } else {
                0.5
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster_with_outlier() -> Vec<Vec<f64>> {
        let mut rng = SplitMix64::new(0xF0_4E57);
        let mut rows: Vec<Vec<f64>> = (0..40)
            .map(|_| {
                (0..4)
                    .map(|_| 1.0 + 0.05 * (rng.next_f64() - 0.5))
                    .collect()
            })
            .collect();
        rows.push(vec![8.0, 8.0, 8.0, 8.0]);
        rows
    }

    #[test]
    fn planted_outlier_scores_highest() {
        let rows = cluster_with_outlier();
        let scores = score_matrix(&rows, &ForestConfig::default());
        assert_eq!(scores.len(), rows.len());
        let (top, _) = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite scores"))
            .expect("non-empty");
        assert_eq!(top, rows.len() - 1, "the planted outlier ranks first");
        assert!(scores[top] > 0.6, "outlier score is high: {}", scores[top]);
    }

    #[test]
    fn scores_are_deterministic() {
        let rows = cluster_with_outlier();
        let a = score_matrix(&rows, &ForestConfig::default());
        let b = score_matrix(&rows, &ForestConfig::default());
        assert_eq!(a, b, "same seed, same data, bit-identical scores");
        let other_seed = ForestConfig {
            seed: 1,
            ..ForestConfig::default()
        };
        let c = score_matrix(&rows, &other_seed);
        assert_ne!(a, c, "the seed actually drives the forest");
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        assert!(score_matrix(&[], &ForestConfig::default()).is_empty());
        let constant = vec![vec![1.0, 1.0]; 8];
        let scores = score_matrix(&constant, &ForestConfig::default());
        assert_eq!(scores.len(), 8);
        let with_nan = vec![vec![f64::NAN, 1.0], vec![0.5, 1.0], vec![0.4, 1.0]];
        let scores = score_matrix(&with_nan, &ForestConfig::default());
        assert!(scores.iter().all(|s| s.is_finite()));
    }
}
