//! Rolling two-window change-point detection.
//!
//! "Did this metric shift?" is framed exactly the way the batch
//! harness frames "is B slower than A?": the last `2w` samples are
//! split into an old window and a new window and handed to
//! `sz_stats::judge`, which combines a bootstrap effect-size CI with
//! the ±band practical-equivalence call and a Welch interval. A
//! change is flagged only on a robustly-slower or robustly-faster
//! verdict — there is no fixed percentage threshold anywhere in
//! this path; the band is the practical-equivalence region of the
//! statistical verdict, not a trip-wire on the point estimate.
//!
//! A hysteresis latch keeps one shift from alerting on every sample
//! while it straddles the windows: after an alert the detector
//! disarms, and re-arms only once the two windows are judged
//! *equivalent* again (i.e. the trajectory has settled at its new
//! level).

use sz_harness::RingBuffer;
use sz_stats::{judge, EffectVerdict, VerdictConfig, VerdictReport};

/// Change-point detector parameters.
#[derive(Debug, Clone)]
pub struct ChangeConfig {
    /// Samples per window; the test needs `2 * window` samples.
    pub window: usize,
    /// Ring capacity (rounded up to a power of two); only the most
    /// recent samples are retained.
    pub capacity: usize,
    /// Statistical verdict parameters (band, confidence, bootstrap
    /// resamples, seed).
    pub verdict: VerdictConfig,
}

impl Default for ChangeConfig {
    fn default() -> ChangeConfig {
        ChangeConfig {
            window: 4,
            capacity: 64,
            verdict: VerdictConfig::default(),
        }
    }
}

/// A flagged shift: the statistical report plus the exact windows
/// that produced it.
#[derive(Debug, Clone)]
pub struct ChangeAlert {
    /// Arrival index (0-based) of the sample that completed the new
    /// window.
    pub at: u64,
    /// Full verdict report (effect CI, Welch CI, band, sizes).
    pub report: VerdictReport,
    /// The old window, oldest first.
    pub old_window: Vec<f64>,
    /// The new window, oldest first.
    pub new_window: Vec<f64>,
}

/// Online detector over one scalar metric trajectory.
#[derive(Debug)]
pub struct ChangePointDetector {
    config: ChangeConfig,
    samples: RingBuffer<f64>,
    pushed: u64,
    armed: bool,
}

impl ChangePointDetector {
    /// Creates a detector; `config.capacity` is clamped to at least
    /// `2 * window` so a full test is always possible.
    pub fn new(config: ChangeConfig) -> ChangePointDetector {
        let capacity = config.capacity.max(config.window.max(1) * 2);
        ChangePointDetector {
            samples: RingBuffer::new(capacity),
            config,
            pushed: 0,
            armed: true,
        }
    }

    /// Total samples pushed (arrival index of the next sample).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Feeds one sample; returns an alert when the two-window test
    /// reaches a robust verdict while the detector is armed.
    ///
    /// Samples that are non-finite or non-positive still advance the
    /// trajectory but windows containing them are not judged (the
    /// bootstrap ratio CI is only defined over positive values).
    pub fn push(&mut self, value: f64) -> Option<ChangeAlert> {
        self.samples.push(value);
        let at = self.pushed;
        self.pushed += 1;

        let w = self.config.window.max(1);
        let len = self.samples.len();
        if len < 2 * w {
            return None;
        }
        let tail: Vec<f64> = self.samples.iter().skip(len - 2 * w).copied().collect();
        let (old_window, new_window) = tail.split_at(w);
        if tail.iter().any(|v| !v.is_finite() || *v <= 0.0) {
            return None;
        }
        let report = judge(old_window, new_window, &self.config.verdict).ok()?;
        match report.verdict {
            EffectVerdict::RobustlySlower | EffectVerdict::RobustlyFaster => {
                if self.armed {
                    self.armed = false;
                    return Some(ChangeAlert {
                        at,
                        report,
                        old_window: old_window.to_vec(),
                        new_window: new_window.to_vec(),
                    });
                }
            }
            EffectVerdict::Equivalent => self.armed = true,
            EffectVerdict::Inconclusive => {}
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sz_rng::{Rng, SplitMix64};

    fn noisy(rng: &mut SplitMix64, mean: f64) -> f64 {
        // Irwin–Hall-ish noise: bounded, symmetric, cheap.
        let u = rng.next_f64() + rng.next_f64() + rng.next_f64() - 1.5;
        mean * (1.0 + 0.01 * u)
    }

    #[test]
    fn needs_two_full_windows() {
        let mut det = ChangePointDetector::new(ChangeConfig::default());
        for i in 0..7 {
            assert!(det.push(1.0 + i as f64 * 1e-6).is_none());
        }
        assert_eq!(det.pushed(), 7);
    }

    #[test]
    fn step_change_alerts_once_then_relatches() {
        let mut det = ChangePointDetector::new(ChangeConfig::default());
        let mut rng = SplitMix64::new(42);
        let mut alerts = Vec::new();
        for i in 0..24 {
            let mean = if i < 12 { 10.0 } else { 15.0 };
            if let Some(alert) = det.push(noisy(&mut rng, mean)) {
                alerts.push(alert);
            }
        }
        assert_eq!(alerts.len(), 1, "one step, one alert");
        let alert = &alerts[0];
        assert_eq!(alert.report.verdict, EffectVerdict::RobustlySlower);
        assert!(alert.at >= 12, "alert fires after the shift");
        assert_eq!(alert.old_window.len(), 4);
        assert_eq!(alert.new_window.len(), 4);

        // A second, later step re-alerts because the windows settled
        // (equivalent) in between.
        for i in 0..16 {
            let mean = if i < 8 { 15.0 } else { 22.0 };
            if let Some(alert) = det.push(noisy(&mut rng, mean)) {
                alerts.push(alert);
            }
        }
        assert_eq!(alerts.len(), 2, "detector re-arms after settling");
    }

    #[test]
    fn clean_stream_stays_silent() {
        let mut det = ChangePointDetector::new(ChangeConfig::default());
        let mut rng = SplitMix64::new(7);
        for _ in 0..64 {
            assert!(det.push(noisy(&mut rng, 10.0)).is_none());
        }
    }

    #[test]
    fn non_positive_windows_are_skipped() {
        let mut det = ChangePointDetector::new(ChangeConfig::default());
        for _ in 0..8 {
            assert!(det.push(0.0).is_none());
        }
        for i in 0..8 {
            // Windows still contain the zeros at first; no panic, no
            // alert from undefined ratios.
            let _ = det.push(10.0 + i as f64 * 1e-3);
        }
    }
}
