//! Parsing of `TraceSink` JSONL streams into per-run samples.
//!
//! The sentinel consumes the same line protocol everywhere it taps
//! the stack: recorded trace files, sz-serve's live job output, and
//! stdin pipes. File-backed traces open with a `{"schema":N}`
//! header (see `sz_harness::TRACE_SCHEMA`); streamed and legacy
//! traces have none. Both are accepted — a missing header means
//! version 0. Record types other than `run` (summaries, szctl
//! result lines mixed into a captured stream) are skipped, not
//! errors, so the sentinel can tail any JSONL source that embeds
//! run records.

use sz_harness::{Json, TRACE_SCHEMA};

/// Feature names for the multi-counter anomaly vector, in the order
/// they appear in [`RunSample::features`]. Rates are normalized per
/// kilo-instruction (or per kilo-branch for mispredicts) so
/// benchmarks of different lengths land in comparable ranges.
pub const FEATURE_NAMES: [&str; 8] = [
    "cpi",
    "l1i_mpki",
    "l1d_mpki",
    "l2_mpki",
    "l3_mpki",
    "itlb_mpki",
    "dtlb_mpki",
    "mispredict_pkb",
];

/// One `run` record reduced to the quantities the detectors consume.
#[derive(Debug, Clone)]
pub struct RunSample {
    /// Series key: `benchmark/variant`.
    pub benchmark: String,
    /// Run index as recorded (informational; arrival order is what
    /// the detectors key on).
    pub run: u64,
    /// Scalar metric trajectory points: `(metric name, value)`.
    pub metrics: Vec<(&'static str, f64)>,
    /// Multi-counter feature vector ([`FEATURE_NAMES`] order), when
    /// the record carries counters.
    pub features: Option<Vec<f64>>,
}

/// Outcome of parsing one stream line.
#[derive(Debug)]
pub enum ParsedLine {
    /// A `{"schema":N}` stream header.
    Header(u64),
    /// A `run` record.
    Run(RunSample),
    /// Any other well-formed record (summary, szctl result, ...).
    Skipped,
}

/// Stream-level failures. Malformed JSON is an error (the stream is
/// a machine-written protocol, not free text); unknown record types
/// are not.
#[derive(Debug)]
pub enum StreamError {
    /// The line was not valid JSON.
    Malformed { line_no: u64, detail: String },
    /// The stream header declares a schema newer than this build.
    UnsupportedSchema { found: u64, supported: u64 },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Malformed { line_no, detail } => {
                write!(f, "malformed trace line {line_no}: {detail}")
            }
            StreamError::UnsupportedSchema { found, supported } => write!(
                f,
                "trace schema {found} is newer than supported schema {supported}"
            ),
        }
    }
}

impl std::error::Error for StreamError {}

fn counter(counters: &Json, key: &str) -> f64 {
    counters
        .get(key)
        .and_then(Json::as_f64)
        .unwrap_or(0.0)
        .max(0.0)
}

/// Parses one line of a trace stream. `line_no` is 1-based and only
/// used for error reporting.
pub fn parse_line(line: &str, line_no: u64) -> Result<ParsedLine, StreamError> {
    let value = Json::parse(line).map_err(|e| StreamError::Malformed {
        line_no,
        detail: e.to_string(),
    })?;
    if value.get("type").is_none() {
        if let Some(schema) = value.get("schema").and_then(Json::as_u64) {
            if schema > TRACE_SCHEMA {
                return Err(StreamError::UnsupportedSchema {
                    found: schema,
                    supported: TRACE_SCHEMA,
                });
            }
            return Ok(ParsedLine::Header(schema));
        }
        return Ok(ParsedLine::Skipped);
    }
    if value.get("type").and_then(Json::as_str) != Some("run") {
        return Ok(ParsedLine::Skipped);
    }

    let bench = value
        .get("benchmark")
        .and_then(Json::as_str)
        .unwrap_or("unknown");
    let variant = value
        .get("variant")
        .and_then(Json::as_str)
        .unwrap_or("default");
    let benchmark = format!("{bench}/{variant}");
    let run = value.get("run").and_then(Json::as_u64).unwrap_or(0);

    let mut metrics: Vec<(&'static str, f64)> = Vec::new();
    if let Some(seconds) = value.get("seconds").and_then(Json::as_f64) {
        metrics.push(("seconds", seconds));
    }

    let features = value.get("counters").map(|counters| {
        let instructions = counter(counters, "instructions");
        let cycles = counter(counters, "cycles");
        let branches = counter(counters, "branches");
        let per_ki = |n: f64| {
            if instructions > 0.0 {
                n * 1000.0 / instructions
            } else {
                0.0
            }
        };
        let cpi = if instructions > 0.0 {
            cycles / instructions
        } else {
            0.0
        };
        if cpi > 0.0 {
            metrics.push(("cpi", cpi));
        }
        vec![
            cpi,
            per_ki(counter(counters, "l1i_misses")),
            per_ki(counter(counters, "l1d_misses")),
            per_ki(counter(counters, "l2_misses")),
            per_ki(counter(counters, "l3_misses")),
            per_ki(counter(counters, "itlb_misses")),
            per_ki(counter(counters, "dtlb_misses")),
            if branches > 0.0 {
                counter(counters, "branch_mispredicts") * 1000.0 / branches
            } else {
                0.0
            },
        ]
    });

    Ok(ParsedLine::Run(RunSample {
        benchmark,
        run,
        metrics,
        features,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_and_legacy_streams_both_parse() {
        match parse_line("{\"schema\":1}", 1).unwrap() {
            ParsedLine::Header(1) => {}
            other => panic!("expected header, got {other:?}"),
        }
        match parse_line("{\"type\":\"summary\",\"experiment\":\"x\"}", 1).unwrap() {
            ParsedLine::Skipped => {}
            other => panic!("expected skip, got {other:?}"),
        }
    }

    #[test]
    fn future_schema_is_rejected() {
        let err = parse_line("{\"schema\":999}", 1).unwrap_err();
        assert!(matches!(
            err,
            StreamError::UnsupportedSchema { found: 999, .. }
        ));
    }

    #[test]
    fn malformed_line_reports_position() {
        let err = parse_line("{nope", 7).unwrap_err();
        match err {
            StreamError::Malformed { line_no, .. } => assert_eq!(line_no, 7),
            other => panic!("expected malformed, got {other:?}"),
        }
    }

    #[test]
    fn run_record_yields_metrics_and_features() {
        let line = concat!(
            "{\"type\":\"run\",\"experiment\":\"t\",\"benchmark\":\"bzip2\",",
            "\"variant\":\"stabilized\",\"run\":3,\"engine\":\"vm\",\"seconds\":0.5,",
            "\"counters\":{\"instructions\":1000,\"cycles\":1500,\"l1i_misses\":10,",
            "\"l1d_misses\":20,\"l2_misses\":5,\"l3_misses\":1,\"itlb_misses\":2,",
            "\"dtlb_misses\":3,\"branches\":200,\"branch_mispredicts\":8}}"
        );
        match parse_line(line, 1).unwrap() {
            ParsedLine::Run(sample) => {
                assert_eq!(sample.benchmark, "bzip2/stabilized");
                assert_eq!(sample.run, 3);
                assert_eq!(sample.metrics[0], ("seconds", 0.5));
                assert_eq!(sample.metrics[1], ("cpi", 1.5));
                let features = sample.features.expect("counters present");
                assert_eq!(features.len(), FEATURE_NAMES.len());
                assert_eq!(features[0], 1.5); // cpi
                assert_eq!(features[1], 10.0); // l1i per kilo-instruction
                assert_eq!(features[7], 40.0); // mispredicts per kilo-branch
            }
            other => panic!("expected run, got {other:?}"),
        }
    }
}
