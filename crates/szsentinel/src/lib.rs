//! szsentinel: a continuous regression sentinel over the trace stream.
//!
//! STABILIZER's layout randomization makes per-run timings i.i.d.
//! enough for sound inference; the batch harness exploits that one
//! experiment at a time. This crate runs the same statistics
//! *online*: it ingests `run` records from any JSONL trace source
//! (recorded `TraceSink` files, sz-serve's live job output, stdin)
//! into bounded ring buffers keyed by `(benchmark, metric)` and runs
//! two detectors over the trajectories:
//!
//! - a **change-point detector** ([`ChangePointDetector`]) that
//!   frames "did this metric shift?" as a rolling two-window
//!   hypothesis test through `sz_stats::judge` — bootstrap effect
//!   CI, ±band practical equivalence, Welch interval — alerting
//!   only on a robustly-slower/faster verdict, never on a fixed
//!   percentage threshold;
//! - an **isolation-forest anomaly scorer** ([`forest::score_matrix`])
//!   over multi-counter feature vectors (CPI, cache/TLB miss rates,
//!   branch mispredict rates) that surfaces layout-sensitivity
//!   outliers per benchmark by rank, with a seeded deterministic
//!   forest.
//!
//! Everything is single-threaded and seeded, so for a given input
//! stream the emitted alert JSONL is byte-for-byte identical across
//! runs and across the thread count of whatever produced the trace.

pub mod change;
pub mod forest;
pub mod stream;

pub use change::{ChangeAlert, ChangeConfig, ChangePointDetector};
pub use forest::{score_matrix, ForestConfig};
pub use stream::{parse_line, ParsedLine, RunSample, StreamError, FEATURE_NAMES};

use std::collections::BTreeMap;
use std::io::BufRead;

use sz_harness::{Json, RingBuffer};

/// Engine parameters.
#[derive(Debug, Clone)]
pub struct SentinelConfig {
    /// Change-point detector parameters (shared by every series).
    pub change: ChangeConfig,
    /// Which scalar metrics get a change-point series. Metrics a
    /// record does not carry are simply absent from its series.
    pub metrics: Vec<String>,
    /// Anomaly forest parameters.
    pub forest: ForestConfig,
    /// Minimum runs per benchmark before the forest scores it.
    pub min_forest_samples: usize,
    /// Feature-vector ring capacity per benchmark.
    pub feature_capacity: usize,
    /// Outliers surfaced per benchmark (by score rank).
    pub top_k: usize,
}

impl Default for SentinelConfig {
    fn default() -> SentinelConfig {
        SentinelConfig {
            change: ChangeConfig::default(),
            metrics: vec!["seconds".to_string(), "cpi".to_string()],
            forest: ForestConfig::default(),
            min_forest_samples: 8,
            feature_capacity: 64,
            top_k: 3,
        }
    }
}

/// The online engine: feed it trace lines, collect alert records.
#[derive(Debug)]
pub struct Sentinel {
    config: SentinelConfig,
    /// (benchmark, metric) → detector. BTreeMap so end-of-stream
    /// passes iterate in a deterministic order.
    series: BTreeMap<(String, String), ChangePointDetector>,
    /// benchmark → recent (run, feature vector) pairs.
    features: BTreeMap<String, RingBuffer<(u64, Vec<f64>)>>,
    schema: Option<u64>,
    lines: u64,
    runs: u64,
    alerts: u64,
}

impl Sentinel {
    /// Creates an engine with the given configuration.
    pub fn new(config: SentinelConfig) -> Sentinel {
        Sentinel {
            config,
            series: BTreeMap::new(),
            features: BTreeMap::new(),
            schema: None,
            lines: 0,
            runs: 0,
            alerts: 0,
        }
    }

    /// Stream schema declared by the header, if one was seen.
    pub fn schema(&self) -> Option<u64> {
        self.schema
    }

    /// Total non-blank lines ingested.
    pub fn lines_seen(&self) -> u64 {
        self.lines
    }

    /// Total `run` records ingested.
    pub fn runs_seen(&self) -> u64 {
        self.runs
    }

    /// Total change-point alerts emitted.
    pub fn alerts_emitted(&self) -> u64 {
        self.alerts
    }

    /// Ingests one line; returns the alert records (possibly empty)
    /// it triggered, as JSON objects ready for JSONL output.
    ///
    /// Blank lines are ignored; record types other than `run` are
    /// skipped. A `{"schema":N}` header anywhere in the stream is
    /// accepted (streams concatenated from several files carry
    /// several), as are headerless legacy streams.
    ///
    /// # Errors
    ///
    /// Malformed JSON and headers newer than the supported trace
    /// schema are [`StreamError`]s.
    pub fn ingest_line(&mut self, line: &str) -> Result<Vec<Json>, StreamError> {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return Ok(Vec::new());
        }
        self.lines += 1;
        match parse_line(trimmed, self.lines)? {
            ParsedLine::Header(version) => {
                self.schema = Some(version);
                Ok(Vec::new())
            }
            ParsedLine::Skipped => Ok(Vec::new()),
            ParsedLine::Run(sample) => Ok(self.ingest_run(&sample)),
        }
    }

    /// Feeds one parsed run sample through both detectors' stores and
    /// returns any change-point alerts.
    pub fn ingest_run(&mut self, sample: &RunSample) -> Vec<Json> {
        self.runs += 1;
        let mut out = Vec::new();
        for (metric, value) in &sample.metrics {
            if !self.config.metrics.iter().any(|m| m == metric) {
                continue;
            }
            let key = (sample.benchmark.clone(), metric.to_string());
            let detector = self
                .series
                .entry(key)
                .or_insert_with(|| ChangePointDetector::new(self.config.change.clone()));
            if let Some(alert) = detector.push(*value) {
                self.alerts += 1;
                out.push(alert_json(&sample.benchmark, metric, &alert));
            }
        }
        if let Some(features) = &sample.features {
            let capacity = self.config.feature_capacity;
            self.features
                .entry(sample.benchmark.clone())
                .or_insert_with(|| RingBuffer::new(capacity))
                .push((sample.run, features.clone()));
        }
        out
    }

    /// End-of-stream anomaly pass: per benchmark with enough runs,
    /// scores the buffered feature vectors with the seeded isolation
    /// forest and returns the top-k outliers by rank. Purely
    /// informational records — no thresholds, no exit-code impact.
    pub fn anomalies(&self) -> Vec<Json> {
        let mut out = Vec::new();
        for (benchmark, ring) in &self.features {
            if ring.len() < self.config.min_forest_samples.max(2) {
                continue;
            }
            let rows: Vec<Vec<f64>> = ring.iter().map(|(_, f)| f.clone()).collect();
            let scores = score_matrix(&rows, &self.config.forest);
            let mut ranked: Vec<(usize, f64)> = scores.into_iter().enumerate().collect();
            ranked.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.0.cmp(&b.0))
            });
            for (rank, (index, score)) in ranked.iter().take(self.config.top_k).enumerate() {
                let (run, _) = ring.get(*index).expect("ranked index in range");
                out.push(Json::obj([
                    ("type", "anomaly".into()),
                    ("detector", "isolation-forest".into()),
                    ("benchmark", benchmark.as_str().into()),
                    ("run", Json::U64(*run)),
                    ("sample", Json::U64(*index as u64)),
                    ("score", Json::F64(*score)),
                    ("rank", Json::U64(rank as u64 + 1)),
                    ("of", Json::U64(ring.len() as u64)),
                ]));
            }
        }
        out
    }

    /// Scans a whole stream: ingests every line, then appends the
    /// end-of-stream anomaly records. Returns all emitted records in
    /// order.
    ///
    /// # Errors
    ///
    /// I/O failures and stream-protocol violations.
    pub fn scan(&mut self, reader: impl BufRead) -> Result<Vec<Json>, ScanError> {
        let mut out = Vec::new();
        for line in reader.lines() {
            let line = line.map_err(ScanError::Io)?;
            out.extend(self.ingest_line(&line).map_err(ScanError::Stream)?);
        }
        out.extend(self.anomalies());
        Ok(out)
    }
}

/// Failures from [`Sentinel::scan`].
#[derive(Debug)]
pub enum ScanError {
    /// Reading the input failed.
    Io(std::io::Error),
    /// The stream violated the trace protocol.
    Stream(StreamError),
}

impl std::fmt::Display for ScanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScanError::Io(e) => write!(f, "trace read failed: {e}"),
            ScanError::Stream(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ScanError {}

/// Renders one change-point alert as a JSON object. The offending
/// windows ride along verbatim so an operator (or the CI armed
/// control) can see exactly which samples tripped the verdict.
fn alert_json(benchmark: &str, metric: &str, alert: &ChangeAlert) -> Json {
    let window = |samples: &[f64]| Json::Arr(samples.iter().map(|v| Json::F64(*v)).collect());
    Json::obj([
        ("type", "alert".into()),
        ("detector", "change-point".into()),
        ("benchmark", benchmark.into()),
        ("metric", metric.into()),
        ("at", Json::U64(alert.at)),
        ("window", Json::U64(alert.new_window.len() as u64)),
        ("verdict", alert.report.verdict.as_str().into()),
        ("ratio", Json::F64(alert.report.effect.ratio)),
        ("ratio_lo", Json::F64(alert.report.effect.lo)),
        ("ratio_hi", Json::F64(alert.report.effect.hi)),
        ("welch_lo", Json::F64(alert.report.welch.lo)),
        ("welch_hi", Json::F64(alert.report.welch.hi)),
        ("band", Json::F64(alert.report.band)),
        ("old_window", window(&alert.old_window)),
        ("new_window", window(&alert.new_window)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use sz_rng::{Rng, SplitMix64};

    fn run_line(benchmark: &str, run: usize, seconds: f64) -> String {
        format!(
            concat!(
                "{{\"type\":\"run\",\"experiment\":\"t\",\"benchmark\":\"{}\",",
                "\"variant\":\"default\",\"run\":{},\"engine\":\"vm\",\"seconds\":{},",
                "\"counters\":{{\"instructions\":1000,\"cycles\":1500,",
                "\"l1i_misses\":10,\"l1d_misses\":20,\"l2_misses\":5,\"l3_misses\":1,",
                "\"itlb_misses\":2,\"dtlb_misses\":3,\"branches\":200,",
                "\"branch_mispredicts\":8}}}}"
            ),
            benchmark, run, seconds
        )
    }

    fn synthetic_stream(step_at: Option<usize>, n: usize, seed: u64) -> Vec<String> {
        let mut rng = SplitMix64::new(seed);
        let mut lines = vec!["{\"schema\":1}".to_string()];
        for i in 0..n {
            let mut mean = 10.0;
            if let Some(at) = step_at {
                if i >= at {
                    mean = 14.0;
                }
            }
            let u = rng.next_f64() + rng.next_f64() + rng.next_f64() - 1.5;
            lines.push(run_line("bzip2", i, mean * (1.0 + 0.01 * u)));
        }
        lines
    }

    #[test]
    fn injected_step_alerts_and_clean_stream_does_not() {
        let mut clean = Sentinel::new(SentinelConfig::default());
        for line in synthetic_stream(None, 24, 11) {
            assert!(clean.ingest_line(&line).unwrap().is_empty());
        }
        assert_eq!(clean.alerts_emitted(), 0);
        assert_eq!(clean.schema(), Some(1));
        assert_eq!(clean.runs_seen(), 24);

        let mut stepped = Sentinel::new(SentinelConfig::default());
        let mut alerts = Vec::new();
        for line in synthetic_stream(Some(12), 24, 11) {
            alerts.extend(stepped.ingest_line(&line).unwrap());
        }
        assert_eq!(stepped.alerts_emitted(), 1, "one step, one alert");
        let rendered = alerts[0].to_string();
        assert!(rendered.contains("\"type\":\"alert\""), "{rendered}");
        assert!(
            rendered.contains("\"benchmark\":\"bzip2/default\""),
            "{rendered}"
        );
        assert!(
            rendered.contains("\"verdict\":\"robustly-slower\""),
            "{rendered}"
        );
        assert!(rendered.contains("\"old_window\""), "{rendered}");
    }

    #[test]
    fn scan_is_byte_deterministic() {
        let stream = synthetic_stream(Some(12), 24, 99).join("\n");
        let render = |records: Vec<Json>| {
            records
                .iter()
                .map(|r| r.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        };
        let a = render(
            Sentinel::new(SentinelConfig::default())
                .scan(stream.as_bytes())
                .unwrap(),
        );
        let b = render(
            Sentinel::new(SentinelConfig::default())
                .scan(stream.as_bytes())
                .unwrap(),
        );
        assert_eq!(a, b, "same stream, byte-identical output");
        assert!(!a.is_empty());
    }

    #[test]
    fn anomaly_pass_surfaces_ranked_outliers() {
        let mut sentinel = Sentinel::new(SentinelConfig::default());
        for line in synthetic_stream(None, 16, 5) {
            sentinel.ingest_line(&line).unwrap();
        }
        let anomalies = sentinel.anomalies();
        assert_eq!(anomalies.len(), 3, "top-k per benchmark");
        let first = anomalies[0].to_string();
        assert!(
            first.contains("\"detector\":\"isolation-forest\""),
            "{first}"
        );
        assert!(first.contains("\"rank\":1"), "{first}");
    }

    #[test]
    fn malformed_line_is_an_error_but_unknown_type_is_not() {
        let mut sentinel = Sentinel::new(SentinelConfig::default());
        assert!(sentinel
            .ingest_line("{\"type\":\"result\"}")
            .unwrap()
            .is_empty());
        assert!(sentinel.ingest_line("").unwrap().is_empty());
        assert!(sentinel.ingest_line("not json").is_err());
    }
}
