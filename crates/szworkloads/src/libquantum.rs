//! `libquantum` — quantum computer simulation: regular bit-twiddling
//! sweeps over a register file (SPEC 462.libquantum's character).

use sz_ir::{AluOp, Operand, Program, ProgramBuilder};

use crate::util::{counted_loop, Scale};

/// Builds the benchmark.
pub fn build(scale: Scale) -> Program {
    let states = (scale.bytes(131_072) / 8) as i64;
    let gates = scale.iters(64);

    let mut p = ProgramBuilder::new("libquantum");
    let reg_file = p.global("register_file", states as u64 * 8);

    // apply_gate(mask, phase): sweep the register, flipping amplitude
    // words that match the control mask.
    let mut f = p.function("apply_gate", 2);
    let mask = f.param(0);
    let phase = f.param(1);
    let flips = f.reg();
    f.alu_into(flips, AluOp::Add, 0, 0);
    counted_loop(&mut f, states, |f, i| {
        let off = f.alu(AluOp::Shl, i, 3);
        let amp = f.load_global(reg_file, off);
        let controlled = f.alu(AluOp::And, amp, mask);
        let hit = f.alu(AluOp::CmpEq, controlled, mask);
        // Branch-free update, like the real tight loops: amplitude
        // XORed with (hit * phase).
        let delta = f.alu(AluOp::Mul, hit, phase);
        let new = f.alu(AluOp::Xor, amp, delta);
        f.store_global(reg_file, off, new);
        f.alu_into(flips, AluOp::Add, flips, hit);
    });
    f.ret(Some(flips.into()));
    let apply_gate = p.add_function(f);

    // main: initialize the register, apply a circuit of gates.
    let mut m = p.function("main", 0);
    counted_loop(&mut m, states, |f, i| {
        let off = f.alu(AluOp::Shl, i, 3);
        let v = f.alu(AluOp::Mul, i, 0x9E37_79B9);
        f.store_global(reg_file, off, v);
    });
    let acc = m.reg();
    m.alu_into(acc, AluOp::Add, 0, 0);
    counted_loop(&mut m, gates, |f, g| {
        let bit = f.alu(AluOp::And, g, 31);
        let mask = f.alu(AluOp::Shl, 1, bit);
        let phase = f.alu(AluOp::Mul, g, 0xC0FFEE);
        let flips = f.call(apply_gate, vec![Operand::Reg(mask), Operand::Reg(phase)]);
        f.alu_into(acc, AluOp::Add, acc, flips);
    });
    m.ret(Some(acc.into()));
    let main = p.add_function(m);
    p.finish(main).expect("libquantum generates valid IR")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sz_machine::MachineConfig;
    use sz_vm::{RunLimits, SimpleLayout, Vm};

    #[test]
    fn regular_streaming_bit_ops() {
        let prog = build(Scale::Tiny);
        let mut e = SimpleLayout::new();
        let r = Vm::new(&prog)
            .run(&mut e, MachineConfig::tiny(), RunLimits::default())
            .unwrap();
        // Almost all branches are loop back-edges: near-perfect
        // prediction.
        assert!(r.counters.mispredict_rate() < 0.1);
    }
}
