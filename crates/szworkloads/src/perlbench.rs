//! `perlbench` — interpreter: opcode-dispatch trees, many handler
//! functions, and heavy malloc/free churn for short-lived scalars
//! (SPEC 400.perlbench's character — the paper's classic example of
//! heap-intensive behaviour and many-function stack-table overhead).

use sz_ir::{AluOp, FuncId, Operand, Program, ProgramBuilder};

use crate::util::{counted_loop, lcg_next, lcg_seed, Scale};

/// Number of opcode handlers.
const HANDLERS: usize = 12;

/// Builds the benchmark.
pub fn build(scale: Scale) -> Program {
    let opcodes = scale.iters(4_000);

    let mut p = ProgramBuilder::new("perlbench");
    let pad_stash = p.global("pad_stash", 4096);

    // Opcode handlers: each does distinct small work; several allocate
    // short-lived "scalars" (the generational-hypothesis behaviour §4
    // relies on for heap re-randomization to bite).
    let mut handlers: Vec<FuncId> = Vec::with_capacity(HANDLERS);
    for k in 0..HANDLERS {
        let mut f = p.function(format!("pp_op{k}"), 1);
        let arg = f.param(0);
        let out = match k % 4 {
            0 => {
                // String-ish op: allocate, fill, read back, free.
                let sv = f.malloc(24 + (k as i64 * 8));
                f.store_ptr(sv, 0, arg);
                let hash = f.alu(AluOp::Mul, arg, 31);
                f.store_ptr(sv, 8, hash);
                let v = f.load_ptr(sv, 0);
                f.free(sv);
                f.alu(AluOp::Add, v, k as i64)
            }
            1 => {
                // Pad lookup: scratch-table read/write.
                let off = f.alu(AluOp::And, arg, 4088);
                let cur = f.load_global(pad_stash, off);
                let nv = f.alu(AluOp::Add, cur, 1);
                f.store_global(pad_stash, off, nv);
                f.alu(AluOp::Xor, nv, arg)
            }
            2 => {
                // Numeric op: a short arithmetic chain.
                let a = f.alu(AluOp::Mul, arg, 7);
                let b = f.alu(AluOp::Add, a, k as i64);
                f.alu(AluOp::Rem, b, 8191)
            }
            _ => {
                // Match-ish op: branch on a bit of the argument.
                let bit = f.alu(AluOp::And, arg, 1);
                let t = f.new_block();
                let e = f.new_block();
                let done = f.new_block();
                let r = f.reg();
                f.branch(bit, t, e);
                f.switch_to(t);
                f.alu_into(r, AluOp::Shl, arg, 1);
                f.jump(done);
                f.switch_to(e);
                f.alu_into(r, AluOp::Shr, arg, 1);
                f.jump(done);
                f.switch_to(done);
                r
            }
        };
        f.ret(Some(out.into()));
        handlers.push(p.add_function(f));
    }

    // main: the dispatch loop — decode an opcode, walk a branch tree
    // to the handler (indirect-branch-like behaviour), accumulate.
    let mut m = p.function("main", 0);
    let rng = lcg_seed(&mut m, 0x9E71);
    let acc = m.reg();
    m.alu_into(acc, AluOp::Add, 0, 0);
    counted_loop(&mut m, opcodes, |f, _pc| {
        let r = lcg_next(f, rng);
        let op = f.alu(AluOp::Rem, r, HANDLERS as i64);
        let arg = f.alu(AluOp::And, r, 0xFFFF);
        // Binary dispatch tree over 12 handlers.
        dispatch(f, &handlers, 0, HANDLERS, op, arg, acc);
    });
    m.ret(Some(acc.into()));
    let main = p.add_function(m);
    p.finish(main).expect("perlbench generates valid IR")
}

/// Emits a binary branch tree selecting `handlers[lo..hi]` by `op`,
/// calling the match and folding the result into `acc`.
fn dispatch(
    f: &mut sz_ir::FunctionBuilder,
    handlers: &[FuncId],
    lo: usize,
    hi: usize,
    op: sz_ir::Reg,
    arg: sz_ir::Reg,
    acc: sz_ir::Reg,
) {
    if hi - lo == 1 {
        let v = f.call(handlers[lo], vec![Operand::Reg(arg)]);
        f.alu_into(acc, AluOp::Add, acc, v);
        return;
    }
    let mid = (lo + hi) / 2;
    let below = f.alu(AluOp::CmpLt, op, mid as i64);
    let left = f.new_block();
    let right = f.new_block();
    let done = f.new_block();
    f.branch(below, left, right);
    f.switch_to(left);
    dispatch(f, handlers, lo, mid, op, arg, acc);
    f.jump(done);
    f.switch_to(right);
    dispatch(f, handlers, mid, hi, op, arg, acc);
    f.jump(done);
    f.switch_to(done);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sz_machine::MachineConfig;
    use sz_vm::{RunLimits, SimpleLayout, Vm};

    #[test]
    fn heap_churn_and_dispatch() {
        let prog = build(Scale::Tiny);
        assert!(prog.functions.len() > HANDLERS);
        let mut e = SimpleLayout::new();
        let r = Vm::new(&prog)
            .run(&mut e, MachineConfig::tiny(), RunLimits::default())
            .unwrap();
        // Dispatch on random opcodes defeats the direction predictor.
        assert!(
            r.counters.mispredict_rate() > 0.05,
            "rate {}",
            r.counters.mispredict_rate()
        );
    }
}
