//! `sphinx3` — speech recognition: Gaussian-mixture acoustic scoring
//! with floating-point polynomial kernels (SPEC 482.sphinx3's
//! character).

use sz_ir::{AluOp, Operand, Program, ProgramBuilder};

use crate::util::{counted_loop, lcg_next, lcg_seed, Scale};

/// Builds the benchmark.
pub fn build(scale: Scale) -> Program {
    let frames = scale.iters(240);
    let mixtures = scale.iters(32);

    let mut p = ProgramBuilder::new("sphinx3");
    let means = p.global("means", mixtures as u64 * 8);
    let variances = p.global("variances", mixtures as u64 * 8);
    let scores = p.global("scores", frames as u64 * 8);

    // gauss_score(x_bits, k): -(x - mean_k)^2 / var_k, then a cubic
    // polynomial approximation of exp.
    let mut f = p.function("gauss_score", 2);
    let x = f.param(0);
    let k = f.param(1);
    let ko = f.alu(AluOp::Shl, k, 3);
    let mean = f.load_global(means, ko);
    let var = f.load_global(variances, ko);
    let d = f.alu(AluOp::FSub, x, mean);
    let d2 = f.alu(AluOp::FMul, d, d);
    let t = f.alu(AluOp::FDiv, d2, var);
    // exp(-t) ~= 1 - t + t^2/2 - t^3/6 for small t.
    let one = f.fp_const(1.0);
    let half = f.fp_const(0.5);
    let sixth = f.fp_const(0.166_666_666_667);
    let t2 = f.alu(AluOp::FMul, t, t);
    let t3 = f.alu(AluOp::FMul, t2, t);
    let a = f.alu(AluOp::FSub, one, t);
    let b = f.alu(AluOp::FMul, t2, half);
    let c = f.alu(AluOp::FMul, t3, sixth);
    let ab = f.alu(AluOp::FAdd, a, b);
    let out = f.alu(AluOp::FSub, ab, c);
    f.ret(Some(out.into()));
    let gauss_score = p.add_function(f);

    // main: initialize the mixture model, score every frame against
    // every mixture, track the best with a data-dependent branch.
    let mut m = p.function("main", 0);
    let rng = lcg_seed(&mut m, 0x5F1);
    let base = m.fp_const(0.4);
    let step = m.fp_const(0.07);
    let mv = m.reg();
    m.alu_into(mv, AluOp::Add, base, 0);
    counted_loop(&mut m, mixtures, |f, k| {
        let ko = f.alu(AluOp::Shl, k, 3);
        f.store_global(means, ko, mv);
        f.alu_into(mv, AluOp::FAdd, mv, step);
        let v = f.fp_const(1.5);
        f.store_global(variances, ko, v);
    });
    let best_total = m.reg();
    m.alu_into(best_total, AluOp::Add, 0, 0);
    counted_loop(&mut m, frames, |f, fr| {
        let r = lcg_next(f, rng);
        let cents = f.alu(AluOp::And, r, 255);
        let xf = f.int_to_fp(cents);
        let scale_c = f.fp_const(0.0078125); // /128
        let x = f.alu(AluOp::FMul, xf, scale_c);
        let best = f.reg();
        f.alu_into(best, AluOp::Add, 0, 0);
        counted_loop(f, mixtures, |f, k| {
            let s = f.call(gauss_score, vec![Operand::Reg(x), Operand::Reg(k)]);
            // Positive doubles compare like their bit patterns.
            let better = f.alu(AluOp::CmpLt, best, s);
            let take = f.new_block();
            let keep = f.new_block();
            f.branch(better, take, keep);
            f.switch_to(take);
            f.alu_into(best, AluOp::Add, s, 0);
            f.jump(keep);
            f.switch_to(keep);
        });
        let fo = f.alu(AluOp::Shl, fr, 3);
        f.store_global(scores, fo, best);
        f.alu_into(best_total, AluOp::Xor, best_total, best);
    });
    let out = m.alu(AluOp::Shr, best_total, 32);
    m.ret(Some(out.into()));
    let main = p.add_function(m);
    p.finish(main).expect("sphinx3 generates valid IR")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sz_machine::MachineConfig;
    use sz_vm::{RunLimits, SimpleLayout, Vm};

    #[test]
    fn fp_scoring_profile() {
        let prog = build(Scale::Tiny);
        let mut e = SimpleLayout::new();
        let r = Vm::new(&prog)
            .run(&mut e, MachineConfig::tiny(), RunLimits::default())
            .unwrap();
        assert!(
            r.counters.cpi() > 1.5,
            "FP latency should show: CPI {}",
            r.counters.cpi()
        );
    }
}
