//! `cactusADM` — numerical relativity: FP stencils over large heap
//! arrays whose awkward sizes round badly in a power-of-two allocator
//! (the paper singles this benchmark out for exactly that, §5.2).

use sz_ir::{AluOp, Program, ProgramBuilder};

use crate::util::{counted_loop, Scale};

/// Builds the benchmark.
pub fn build(scale: Scale) -> Program {
    // Deliberately pow2-hostile array size (in 8-byte lattice cells).
    let cells = (scale.bytes(36_000) / 8) as i64;
    let sweeps = scale.iters(48);

    let mut p = ProgramBuilder::new("cactusADM");
    // Pointers to the heap arrays live in globals.
    let field_ptr = p.global("field_ptr", 8);
    let next_ptr = p.global("next_ptr", 8);

    // relax_strip(base_cell): one 8-cell strip of the 1-D Einstein-toy
    // relaxation: next[i] = 0.25*field[i-1] + 0.5*field[i] + 0.25*field[i+1].
    let mut f = p.function("relax_strip", 1);
    let base = f.param(0);
    let field = f.load_global(field_ptr, 0);
    let next = f.load_global(next_ptr, 0);
    let quarter = f.fp_const(0.25);
    let half = f.fp_const(0.5);
    counted_loop(&mut f, 8, |f, k| {
        let cell = f.alu(AluOp::Add, base, k);
        let off = f.alu(AluOp::Shl, cell, 3);
        let addr = f.alu(AluOp::Add, field, off);
        let left = f.load_ptr(addr, 0);
        let mid = f.load_ptr(addr, 8);
        let right = f.load_ptr(addr, 16);
        let a = f.alu(AluOp::FMul, left, quarter);
        let b = f.alu(AluOp::FMul, mid, half);
        let c = f.alu(AluOp::FMul, right, quarter);
        let ab = f.alu(AluOp::FAdd, a, b);
        let abc = f.alu(AluOp::FAdd, ab, c);
        let daddr = f.alu(AluOp::Add, next, off);
        f.store_ptr(daddr, 8, abc);
    });
    f.ret(None);
    let relax_strip = p.add_function(f);

    // main: allocate the two big arrays, initialize, sweep repeatedly.
    let mut m = p.function("main", 0);
    let bytes = (cells as u64 * 8 + 16) as i64; // +ghost cells
    let a1 = m.malloc(bytes);
    let a2 = m.malloc(bytes);
    m.store_global(field_ptr, 0, a1);
    m.store_global(next_ptr, 0, a2);
    let one = m.fp_const(1.0);
    let tiny = m.fp_const(0.001);
    let val = m.reg();
    m.alu_into(val, AluOp::Add, one, 0);
    counted_loop(&mut m, cells, |f, i| {
        let off = f.alu(AluOp::Shl, i, 3);
        f.store_ptr(a1, 0, val); // warm the allocator's first line
        let addr = f.alu(AluOp::Add, a1, off);
        f.store_ptr(addr, 0, val);
        f.alu_into(val, AluOp::FAdd, val, tiny);
    });
    let strips = cells / 8 - 1;
    counted_loop(&mut m, sweeps, |f, _t| {
        counted_loop(f, strips, |f, s| {
            let base = f.alu(AluOp::Shl, s, 3);
            f.call_void(relax_strip, vec![base.into()]);
        });
        // Swap field/next pointers for the next sweep.
        let fp = f.load_global(field_ptr, 0);
        let np = f.load_global(next_ptr, 0);
        f.store_global(field_ptr, 0, np);
        f.store_global(next_ptr, 0, fp);
    });
    // Checksum: center cell, bit pattern truncated.
    let field = m.load_global(field_ptr, 0);
    let mid_off = (cells / 2) * 8;
    let center = m.load_ptr(field, mid_off);
    let sum = m.alu(AluOp::Shr, center, 32);
    m.free(a1);
    m.free(a2);
    m.ret(Some(sum.into()));
    let main = p.add_function(m);
    p.finish(main).expect("cactusADM generates valid IR")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sz_machine::MachineConfig;
    use sz_vm::{RunLimits, SimpleLayout, Vm};

    #[test]
    fn fp_streaming_profile() {
        let prog = build(Scale::Tiny);
        let mut e = SimpleLayout::new();
        let r = Vm::new(&prog)
            .run(&mut e, MachineConfig::tiny(), RunLimits::default())
            .unwrap();
        // Few functions, low branch fraction (stencil, not logic).
        assert!(prog.functions.len() <= 4);
        assert!(
            r.counters.branches * 4 < r.counters.instructions,
            "stencil code should be branch-light"
        );
    }
}
