//! `h264ref` — video encoding: sum-of-absolute-differences motion
//! search with data-dependent minimum tracking (SPEC 464.h264ref's
//! character).

use sz_ir::{AluOp, Operand, Program, ProgramBuilder};

use crate::util::{counted_loop, lcg_next, lcg_seed, Scale};

/// Builds the benchmark.
pub fn build(scale: Scale) -> Program {
    let frame = scale.bytes(65_536);
    let blocks = scale.iters(256);
    let mask = (frame - 256) as i64 & !7;

    let mut p = ProgramBuilder::new("h264ref");
    let cur = p.global("cur_frame", frame);
    let reference = p.global("ref_frame", frame);

    // sad16(a_off, b_off): 16-sample sum of absolute differences.
    let mut f = p.function("sad16", 2);
    let a = f.param(0);
    let b = f.param(1);
    let acc = f.reg();
    f.alu_into(acc, AluOp::Add, 0, 0);
    counted_loop(&mut f, 16, |f, k| {
        let step = f.alu(AluOp::Shl, k, 3);
        let ao = f.alu(AluOp::Add, a, step);
        let bo = f.alu(AluOp::Add, b, step);
        let va = f.load_global(cur, ao);
        let vb = f.load_global(reference, bo);
        // |va - vb| with a branch (as the sign check compiles on x86
        // with cmov disabled — deliberately branchy like the original).
        let lt = f.alu(AluOp::CmpLt, va, vb);
        let t = f.new_block();
        let e = f.new_block();
        let done = f.new_block();
        f.branch(lt, t, e);
        f.switch_to(t);
        let d1 = f.alu(AluOp::Sub, vb, va);
        f.alu_into(acc, AluOp::Add, acc, d1);
        f.jump(done);
        f.switch_to(e);
        let d2 = f.alu(AluOp::Sub, va, vb);
        f.alu_into(acc, AluOp::Add, acc, d2);
        f.jump(done);
        f.switch_to(done);
    });
    f.ret(Some(acc.into()));
    let sad16 = p.add_function(f);

    // main: fill both frames, then motion-search each block over 9
    // candidate displacements, tracking the minimum.
    let mut m = p.function("main", 0);
    let rng = lcg_seed(&mut m, 0x264);
    counted_loop(&mut m, (frame / 8) as i64, |f, i| {
        let off = f.alu(AluOp::Shl, i, 3);
        let r = lcg_next(f, rng);
        let pix = f.alu(AluOp::And, r, 255);
        f.store_global(cur, off, pix);
        let r2 = lcg_next(f, rng);
        let pix2 = f.alu(AluOp::And, r2, 255);
        f.store_global(reference, off, pix2);
    });
    let total = m.reg();
    m.alu_into(total, AluOp::Add, 0, 0);
    counted_loop(&mut m, blocks, |f, b| {
        let scaled = f.alu(AluOp::Mul, b, 131);
        let base = f.alu(AluOp::And, scaled, mask);
        let best = f.reg();
        f.alu_into(best, AluOp::Add, i64::MAX, 0);
        counted_loop(f, 9, |f, cand| {
            let disp = f.alu(AluOp::Mul, cand, 24);
            let cpos = f.alu(AluOp::Add, base, disp);
            let cmask = f.alu(AluOp::And, cpos, mask);
            let sad = f.call(sad16, vec![Operand::Reg(base), Operand::Reg(cmask)]);
            let better = f.alu(AluOp::CmpLt, sad, best);
            let take = f.new_block();
            let keep = f.new_block();
            f.branch(better, take, keep);
            f.switch_to(take);
            f.alu_into(best, AluOp::Add, sad, 0);
            f.jump(keep);
            f.switch_to(keep);
        });
        f.alu_into(total, AluOp::Add, total, best);
    });
    m.ret(Some(total.into()));
    let main = p.add_function(m);
    p.finish(main).expect("h264ref generates valid IR")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sz_machine::MachineConfig;
    use sz_vm::{RunLimits, SimpleLayout, Vm};

    #[test]
    fn data_dependent_branches_mispredict() {
        let prog = build(Scale::Tiny);
        let mut e = SimpleLayout::new();
        let r = Vm::new(&prog)
            .run(&mut e, MachineConfig::tiny(), RunLimits::default())
            .unwrap();
        // The |a-b| sign branches follow random pixels: the predictor
        // cannot learn them.
        assert!(
            r.counters.mispredict_rate() > 0.05,
            "mispredict rate {}",
            r.counters.mispredict_rate()
        );
    }
}
