//! `gcc` — a compiler-shaped workload: dozens of distinct "pass"
//! functions with a very large combined code footprint, so instruction
//! cache behaviour (and therefore code layout) dominates (SPEC
//! 403.gcc's character; the paper notes gcc's many functions make
//! stack-table overhead visible too).

use sz_ir::{AluOp, Operand, Program, ProgramBuilder};

use crate::util::{counted_loop, lcg_next, lcg_seed, Scale};

/// Number of distinct pass functions.
const PASSES: usize = 36;

/// Builds the benchmark.
pub fn build(scale: Scale) -> Program {
    let units = scale.iters(600);

    let mut p = ProgramBuilder::new("gcc");
    let symtab = p.global("symtab", scale.bytes(32_768));
    let symtab_mask = (scale.bytes(32_768) - 8) as i64 & !7;

    // Generate PASSES distinct pass functions. Each has a different
    // body size (code-footprint diversity) and hits the symbol table
    // at pass-specific offsets.
    let mut passes = Vec::with_capacity(PASSES);
    for k in 0..PASSES {
        let mut f = p.function(format!("pass_{k}"), 1);
        let ir = f.param(0);
        // Size diversity: pass k carries k*11 bytes of extra code.
        for _ in 0..(k % 12) {
            f.nop(11);
        }
        let acc = f.reg();
        f.alu_into(acc, AluOp::Add, ir, k as i64);
        // A few symbol-table probes at pass-specific strides.
        let stride = (k as i64 % 7 + 1) * 8;
        counted_loop(&mut f, 4, |f, i| {
            let step = f.alu(AluOp::Mul, i, stride);
            let mix = f.alu(AluOp::Add, step, acc);
            let off = f.alu(AluOp::And, mix, symtab_mask);
            let sym = f.load_global(symtab, off);
            f.alu_into(acc, AluOp::Xor, acc, sym);
            let upd = f.alu(AluOp::Add, sym, 1);
            f.store_global(symtab, off, upd);
        });
        let out = f.alu(AluOp::And, acc, 0xFFFF);
        f.ret(Some(out.into()));
        passes.push(p.add_function(f));
    }

    // main: for each "compilation unit", run a front-end group of
    // passes unconditionally and a back-end pass selected by the unit's
    // content (a 3-way branch tree — dispatch is how gcc behaves).
    let mut m = p.function("main", 0);
    let rng = lcg_seed(&mut m, 0x6CC);
    let acc = m.reg();
    m.alu_into(acc, AluOp::Add, 0, 0);
    counted_loop(&mut m, units, |f, i| {
        let r = lcg_next(f, rng);
        let ir0 = f.alu(AluOp::And, r, 1023);
        // Front end: first 12 passes, always.
        let cur = f.reg();
        f.alu_into(cur, AluOp::Add, ir0, 0);
        for &pass in &passes[..12] {
            let out = f.call(pass, vec![Operand::Reg(cur)]);
            f.alu_into(cur, AluOp::Add, out, 0);
        }
        // Back end: pick one of three pass groups by the unit's shape.
        let sel = f.alu(AluOp::Rem, r, 3);
        let is0 = f.alu(AluOp::CmpEq, sel, 0);
        let is1 = f.alu(AluOp::CmpEq, sel, 1);
        let g0 = f.new_block();
        let g12 = f.new_block();
        let g1 = f.new_block();
        let g2 = f.new_block();
        let done = f.new_block();
        f.branch(is0, g0, g12);
        f.switch_to(g0);
        for &pass in &passes[12..20] {
            let out = f.call(pass, vec![Operand::Reg(cur)]);
            f.alu_into(cur, AluOp::Add, out, 0);
        }
        f.jump(done);
        f.switch_to(g12);
        f.branch(is1, g1, g2);
        f.switch_to(g1);
        for &pass in &passes[20..28] {
            let out = f.call(pass, vec![Operand::Reg(cur)]);
            f.alu_into(cur, AluOp::Add, out, 0);
        }
        f.jump(done);
        f.switch_to(g2);
        for &pass in &passes[28..36] {
            let out = f.call(pass, vec![Operand::Reg(cur)]);
            f.alu_into(cur, AluOp::Add, out, 0);
        }
        f.jump(done);
        f.switch_to(done);
        f.alu_into(acc, AluOp::Xor, acc, cur);
        let _ = i;
    });
    m.ret(Some(acc.into()));
    let main = p.add_function(m);
    p.finish(main).expect("gcc generates valid IR")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sz_machine::MachineConfig;
    use sz_vm::{RunLimits, SimpleLayout, Vm};

    #[test]
    fn huge_code_footprint() {
        let prog = build(Scale::Small);
        assert!(prog.functions.len() >= PASSES, "one function per pass");
        // Big combined code size: i-cache pressure is the point.
        assert!(prog.code_size() > 4_000, "code size {}", prog.code_size());
    }

    #[test]
    fn icache_misses_appear_on_a_small_machine() {
        let prog = build(Scale::Tiny);
        let mut e = SimpleLayout::new();
        let r = Vm::new(&prog)
            .run(&mut e, MachineConfig::tiny(), RunLimits::default())
            .unwrap();
        assert!(
            r.counters.l1i_misses > 50,
            "only {} L1I misses",
            r.counters.l1i_misses
        );
    }
}
