//! `gobmk` — Go engine: recursive game-tree search over a board with
//! many small evaluation functions (SPEC 445.gobmk's character).

use sz_ir::{AluOp, Operand, Program, ProgramBuilder};

use crate::util::{counted_loop, Scale};

/// Number of pattern-matcher helper functions.
const PATTERNS: usize = 16;

/// Builds the benchmark.
pub fn build(scale: Scale) -> Program {
    let root_moves = scale.iters(96);
    let depth = 4i64;

    let mut p = ProgramBuilder::new("gobmk");
    let board = p.global("board", 368 * 8); // 19x19 + edges

    // Pattern matchers: small distinct functions probing the board.
    let mut patterns = Vec::with_capacity(PATTERNS);
    for k in 0..PATTERNS {
        let mut f = p.function(format!("pattern_{k}"), 1);
        let pos = f.param(0);
        let o1 = f.alu(AluOp::Add, pos, (k as i64 * 3 + 1) % 32);
        let w1 = f.alu(AluOp::Rem, o1, 368);
        let b1 = f.alu(AluOp::Shl, w1, 3);
        let s1 = f.load_global(board, b1);
        let o2 = f.alu(AluOp::Add, pos, (k as i64 * 5 + 2) % 32);
        let w2 = f.alu(AluOp::Rem, o2, 368);
        let b2 = f.alu(AluOp::Shl, w2, 3);
        let s2 = f.load_global(board, b2);
        let m = f.alu(AluOp::Xor, s1, s2);
        let score = f.alu(AluOp::And, m, 0xFF);
        f.ret(Some(score.into()));
        patterns.push(p.add_function(f));
    }

    // evaluate(pos): sum a spread of pattern matchers (many calls).
    let mut ev = p.function("evaluate", 1);
    let pos = ev.param(0);
    let total = ev.reg();
    ev.alu_into(total, AluOp::Add, 0, 0);
    for &pat in &patterns[..8] {
        let s = ev.call(pat, vec![Operand::Reg(pos)]);
        ev.alu_into(total, AluOp::Add, total, s);
    }
    ev.ret(Some(total.into()));
    let evaluate = p.add_function(ev);

    // search(pos, depth): recursive 3-way tree with board mutation.
    let search = p.declare();
    let mut s = p.function("search", 2);
    let pos = s.param(0);
    let d = s.param(1);
    let leaf = s.new_block();
    let rec = s.new_block();
    let at_leaf = s.alu(AluOp::CmpEq, d, 0);
    s.branch(at_leaf, leaf, rec);
    s.switch_to(leaf);
    let e = s.call(evaluate, vec![Operand::Reg(pos)]);
    s.ret(Some(e.into()));
    s.switch_to(rec);
    let best = s.reg();
    s.alu_into(best, AluOp::Add, 0, 0);
    let nd = s.alu(AluOp::Sub, d, 1);
    counted_loop(&mut s, 3, |f, mv| {
        // Play: perturb the board at a move-dependent point.
        let delta = f.alu(AluOp::Mul, mv, 37);
        let np = f.alu(AluOp::Add, pos, delta);
        let w = f.alu(AluOp::Rem, np, 368);
        let boff = f.alu(AluOp::Shl, w, 3);
        let old = f.load_global(board, boff);
        let played = f.alu(AluOp::Xor, old, 1);
        f.store_global(board, boff, played);
        let child = f.call(search, vec![Operand::Reg(w), Operand::Reg(nd)]);
        // Undo.
        f.store_global(board, boff, old);
        // best = max(best, child): data-dependent branch.
        let better = f.alu(AluOp::CmpLt, best, child);
        let take = f.new_block();
        let keep = f.new_block();
        f.branch(better, take, keep);
        f.switch_to(take);
        f.alu_into(best, AluOp::Add, child, 0);
        f.jump(keep);
        f.switch_to(keep);
    });
    s.ret(Some(best.into()));
    p.define(search, s);

    // main: seed the board, then search from many root positions.
    let mut m = p.function("main", 0);
    counted_loop(&mut m, 368, |f, i| {
        let off = f.alu(AluOp::Shl, i, 3);
        let v = f.alu(AluOp::Mul, i, 0x9E37);
        let stone = f.alu(AluOp::And, v, 3);
        f.store_global(board, off, stone);
    });
    let acc = m.reg();
    m.alu_into(acc, AluOp::Add, 0, 0);
    counted_loop(&mut m, root_moves, |f, i| {
        let root = f.alu(AluOp::Rem, i, 361);
        let v = f.call(search, vec![Operand::Reg(root), depth.into()]);
        f.alu_into(acc, AluOp::Add, acc, v);
    });
    m.ret(Some(acc.into()));
    let main = p.add_function(m);
    p.finish(main).expect("gobmk generates valid IR")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sz_machine::MachineConfig;
    use sz_vm::{RunLimits, SimpleLayout, Vm};

    #[test]
    fn recursion_and_many_functions() {
        let prog = build(Scale::Tiny);
        assert!(prog.functions.len() >= PATTERNS + 3);
        let mut e = SimpleLayout::new();
        let r = Vm::new(&prog)
            .run(&mut e, MachineConfig::tiny(), RunLimits::default())
            .unwrap();
        assert!(r.counters.branches > 500, "tree search is branchy");
    }
}
