//! The suite registry.

use sz_ir::Program;

use crate::Scale;

/// One benchmark of the suite: a name, the workload class it
/// reproduces, and its program generator.
#[derive(Clone)]
pub struct BenchmarkSpec {
    /// Benchmark name, matching the paper's tables.
    pub name: &'static str,
    /// One-line description of the workload character.
    pub description: &'static str,
    /// Raw generator producing the benchmark at a given scale.
    pub build: fn(Scale) -> Program,
}

impl BenchmarkSpec {
    /// Builds the benchmark in *naive frontend form* (the shape real
    /// code reaches an optimizer in — see
    /// [`crate::util::naive_codegen`]). This is what experiments
    /// should run and what `sz-opt` levels should be applied to.
    pub fn program(&self, scale: Scale) -> Program {
        let mut p = (self.build)(scale);
        crate::util::naive_codegen(&mut p);
        p
    }
}

impl std::fmt::Debug for BenchmarkSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BenchmarkSpec")
            .field("name", &self.name)
            .field("description", &self.description)
            .finish()
    }
}

/// All 18 benchmarks, in the paper's alphabetical order.
pub fn suite() -> Vec<BenchmarkSpec> {
    vec![
        BenchmarkSpec {
            name: "astar",
            description: "grid pathfinding: pointer-linked open list, data-dependent branches",
            build: crate::astar::build,
        },
        BenchmarkSpec {
            name: "bzip2",
            description: "block compression: move-to-front tables, bit-level branches",
            build: crate::bzip2::build,
        },
        BenchmarkSpec {
            name: "cactusADM",
            description: "numerical relativity stencil over large heap arrays (pow2-hostile sizes)",
            build: crate::cactusadm::build,
        },
        BenchmarkSpec {
            name: "gcc",
            description: "compiler: dozens of pass functions, very large code footprint",
            build: crate::gcc::build,
        },
        BenchmarkSpec {
            name: "gobmk",
            description: "Go engine: recursive tree search over a board, many functions",
            build: crate::gobmk::build,
        },
        BenchmarkSpec {
            name: "gromacs",
            description: "molecular dynamics: reciprocal-power force kernels, FP-heavy",
            build: crate::gromacs::build,
        },
        BenchmarkSpec {
            name: "h264ref",
            description: "video encoder: SAD motion search with data-dependent minima",
            build: crate::h264ref::build,
        },
        BenchmarkSpec {
            name: "hmmer",
            description: "profile HMM: three-matrix dynamic programming, branchy max chains",
            build: crate::hmmer::build,
        },
        BenchmarkSpec {
            name: "lbm",
            description: "lattice Boltzmann: streaming stencil, bandwidth-bound, few branches",
            build: crate::lbm::build,
        },
        BenchmarkSpec {
            name: "libquantum",
            description: "quantum simulation: bit manipulation sweeps over a register file",
            build: crate::libquantum::build,
        },
        BenchmarkSpec {
            name: "mcf",
            description: "network simplex: random-order linked-list chasing, miss-bound",
            build: crate::mcf::build,
        },
        BenchmarkSpec {
            name: "milc",
            description: "lattice QCD: small complex-matrix FP kernels over a big lattice",
            build: crate::milc::build,
        },
        BenchmarkSpec {
            name: "namd",
            description: "molecular dynamics: pair-list interactions with cutoff branches",
            build: crate::namd::build,
        },
        BenchmarkSpec {
            name: "perlbench",
            description: "interpreter: opcode dispatch tree, malloc/free churn, many handlers",
            build: crate::perlbench::build,
        },
        BenchmarkSpec {
            name: "sjeng",
            description: "chess: recursive alpha-beta-ish search with a hash table",
            build: crate::sjeng::build,
        },
        BenchmarkSpec {
            name: "sphinx3",
            description: "speech recognition: Gaussian-mixture scoring, FP polynomial kernels",
            build: crate::sphinx3::build,
        },
        BenchmarkSpec {
            name: "wrf",
            description: "weather model: several FP stencil kernels over multiple fields",
            build: crate::wrf::build,
        },
        BenchmarkSpec {
            name: "zeusmp",
            description: "astrophysics: stencils with boundary-condition branches",
            build: crate::zeusmp::build,
        },
    ]
}

/// Builds a benchmark by name (in naive frontend form), if it exists
/// in the suite.
pub fn build(name: &str, scale: Scale) -> Option<Program> {
    suite()
        .into_iter()
        .find(|s| s.name == name)
        .map(|s| s.program(scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_by_name() {
        assert!(build("mcf", Scale::Tiny).is_some());
        assert!(build("nonesuch", Scale::Tiny).is_none());
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = suite().iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 18);
    }
}
