//! Shared IR-construction helpers for the benchmark generators.

use sz_ir::{AluOp, FunctionBuilder, Instr, Operand, Program, Reg};

/// Workload size: all benchmarks scale their loop counts and data
/// footprints from the same knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Minimal: unit tests and smoke checks (sub-second suites).
    Tiny,
    /// The default for statistical experiments: large enough for
    /// layout effects, small enough for 30-run batches.
    Small,
    /// Benchmark scale for the figure-regeneration harness.
    Full,
}

impl Scale {
    /// Scales an iteration count.
    pub fn iters(self, base: i64) -> i64 {
        match self {
            Scale::Tiny => (base / 8).max(2),
            Scale::Small => base,
            Scale::Full => base * 4,
        }
    }

    /// Scales a data size in bytes (kept a multiple of 8).
    pub fn bytes(self, base: u64) -> u64 {
        let b = match self {
            Scale::Tiny => (base / 16).max(64),
            Scale::Small => base,
            Scale::Full => base * 4,
        };
        b & !7
    }
}

/// Builds `for i in 0..n { body(i) }` around `body`, using a register
/// counter. The current block must be open; the builder is left in a
/// fresh open block after the loop.
pub fn counted_loop(
    f: &mut FunctionBuilder,
    n: impl Into<Operand>,
    body: impl FnOnce(&mut FunctionBuilder, Reg),
) {
    let i = f.reg();
    f.alu_into(i, AluOp::Add, 0, 0);
    let header = f.new_block();
    let body_block = f.new_block();
    let exit = f.new_block();
    f.jump(header);
    f.switch_to(header);
    let c = f.alu(AluOp::CmpLt, i, n);
    f.branch(c, body_block, exit);
    f.switch_to(body_block);
    body(f, i);
    f.alu_into(i, AluOp::Add, i, 1);
    f.jump(header);
    f.switch_to(exit);
}

/// Seeds an in-IR linear congruential generator into a fresh register.
pub fn lcg_seed(f: &mut FunctionBuilder, seed: i64) -> Reg {
    let s = f.reg();
    f.alu_into(s, AluOp::Add, seed, 0);
    s
}

/// Advances the in-IR LCG and returns a register with well-mixed bits
/// (the state's upper half). Gives benchmarks data-dependent — but
/// deterministic — branches and indices.
pub fn lcg_next(f: &mut FunctionBuilder, state: Reg) -> Reg {
    // Knuth's MMIX multiplier.
    let m = f.alu(AluOp::Mul, state, 0x5851_F42D_4C95_7F2D_u64 as i64);
    f.alu_into(state, AluOp::Add, m, 0x1405_7B7E_F767_814F_u64 as i64);
    f.alu(AluOp::Shr, state, 33)
}

/// Expands a program into *naive frontend form*, the shape real code
/// reaches an optimizer in: common subexpressions are recomputed per
/// expression tree instead of reused.
///
/// Concretely, every pure integer ALU result that is used again later
/// in its block gets a redundant recomputation (inserted immediately
/// after the original, so the operand values are identical), and the
/// next use reads the duplicate. Semantics are unchanged; `-O2`'s
/// local CSE + copy propagation + DCE collapse the redundancy, which
/// is precisely the `-O2`-vs-`-O1` gap the paper's Figure 7 measures
/// on real SPEC builds.
pub fn naive_codegen(p: &mut Program) {
    for f in &mut p.functions {
        for block in &mut f.blocks {
            let mut i = 0;
            while i < block.instrs.len() {
                let dup = match &block.instrs[i] {
                    Instr::Alu { dst, op, a, b }
                        if !op.is_float()
                            && *a != Operand::Reg(*dst)
                            && *b != Operand::Reg(*dst)
                            // Skip canonical movs: duplicating them is noise.
                            && !(matches!(op, AluOp::Add) && *b == Operand::Imm(0)) =>
                    {
                        // The register frame is bounded; stop when full.
                        if f.num_regs == u16::MAX {
                            None
                        } else {
                            Some((*dst, *op, *a, *b))
                        }
                    }
                    _ => None,
                };
                if let Some((dst, op, a, b)) = dup {
                    // Find the next in-block use of dst after i.
                    let next_use = block.instrs[i + 1..]
                        .iter()
                        .position(|ins| ins.uses().contains(&dst) && ins.def() != Some(dst))
                        .map(|k| i + 1 + k);
                    // Only duplicate if no redefinition of dst or the
                    // operands occurs before that use.
                    if let Some(u) = next_use {
                        let clobbered = block.instrs[i + 1..u].iter().any(|ins| match ins.def() {
                            Some(d) => d == dst || a == Operand::Reg(d) || b == Operand::Reg(d),
                            None => false,
                        });
                        if !clobbered {
                            let scratch = Reg(f.num_regs);
                            f.num_regs += 1;
                            block.instrs.insert(
                                i + 1,
                                Instr::Alu {
                                    dst: scratch,
                                    op,
                                    a,
                                    b,
                                },
                            );
                            replace_use(&mut block.instrs[u + 1], dst, scratch);
                            i += 2;
                            continue;
                        }
                    }
                }
                i += 1;
            }
        }
    }
    debug_assert_eq!(p.validate(), Ok(()), "naive codegen must stay valid");
}

/// Rewrites the first read of `from` in `instr` to `to`.
// Collapsing these ifs into match guards would run `swap_op`'s side
// effect during arm selection; keep the mutation inside the arm body.
#[allow(clippy::collapsible_match)]
fn replace_use(instr: &mut Instr, from: Reg, to: Reg) {
    let swap_op = |o: &mut Operand| {
        if *o == Operand::Reg(from) {
            *o = Operand::Reg(to);
            true
        } else {
            false
        }
    };
    match instr {
        Instr::Alu { a, b, .. } => {
            if !swap_op(a) {
                swap_op(b);
            }
        }
        Instr::StoreSlot { src, .. } => {
            swap_op(src);
        }
        Instr::StorePtr { src, base, .. } => {
            if !swap_op(src) && *base == from {
                *base = to;
            }
        }
        Instr::Free { ptr } => {
            if *ptr == from {
                *ptr = to;
            }
        }
        Instr::LoadGlobal { offset, .. } => {
            swap_op(offset);
        }
        Instr::StoreGlobal { src, offset, .. } => {
            if !swap_op(src) {
                swap_op(offset);
            }
        }
        Instr::Malloc { size, .. } => {
            swap_op(size);
        }
        Instr::Call { args, .. } => {
            for a in args {
                if swap_op(a) {
                    break;
                }
            }
        }
        Instr::IntToFp { src, .. } | Instr::FpToInt { src, .. } => {
            swap_op(src);
        }
        Instr::LoadPtr { base, .. } => {
            if *base == from {
                *base = to;
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sz_ir::ProgramBuilder;
    use sz_machine::MachineConfig;
    use sz_vm::{RunLimits, SimpleLayout, Vm};

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Tiny.iters(100) < Scale::Small.iters(100));
        assert!(Scale::Small.iters(100) < Scale::Full.iters(100));
        assert!(Scale::Tiny.bytes(4096) < Scale::Full.bytes(4096));
        assert_eq!(Scale::Small.bytes(4096) % 8, 0);
    }

    #[test]
    fn counted_loop_iterates_exactly_n_times() {
        let mut p = ProgramBuilder::new("t");
        let mut f = p.function("main", 0);
        let acc = f.reg();
        f.alu_into(acc, AluOp::Add, 0, 0);
        counted_loop(&mut f, 17, |f, _i| {
            f.alu_into(acc, AluOp::Add, acc, 1);
        });
        f.ret(Some(acc.into()));
        let main = p.add_function(f);
        let prog = p.finish(main).unwrap();
        let mut e = SimpleLayout::new();
        let r = Vm::new(&prog)
            .run(&mut e, MachineConfig::tiny(), RunLimits::default())
            .unwrap();
        assert_eq!(r.return_value, Some(17));
    }

    #[test]
    fn nested_loops_compose() {
        let mut p = ProgramBuilder::new("t");
        let mut f = p.function("main", 0);
        let acc = f.reg();
        f.alu_into(acc, AluOp::Add, 0, 0);
        counted_loop(&mut f, 5, |f, _| {
            counted_loop(f, 7, |f, _| {
                f.alu_into(acc, AluOp::Add, acc, 1);
            });
        });
        f.ret(Some(acc.into()));
        let main = p.add_function(f);
        let prog = p.finish(main).unwrap();
        let mut e = SimpleLayout::new();
        let r = Vm::new(&prog)
            .run(&mut e, MachineConfig::tiny(), RunLimits::default())
            .unwrap();
        assert_eq!(r.return_value, Some(35));
    }

    #[test]
    fn lcg_produces_varied_values() {
        let mut p = ProgramBuilder::new("t");
        let mut f = p.function("main", 0);
        let s = lcg_seed(&mut f, 42);
        let a = lcg_next(&mut f, s);
        let b = lcg_next(&mut f, s);
        let same = f.alu(AluOp::CmpEq, a, b);
        f.ret(Some(same.into()));
        let main = p.add_function(f);
        let prog = p.finish(main).unwrap();
        let mut e = SimpleLayout::new();
        let r = Vm::new(&prog)
            .run(&mut e, MachineConfig::tiny(), RunLimits::default())
            .unwrap();
        assert_eq!(r.return_value, Some(0), "consecutive draws differ");
    }
}
