//! `wrf` — weather modelling (Fortran): several floating-point stencil
//! kernels over multiple field arrays (SPEC 481.wrf's character).

use sz_ir::{AluOp, Program, ProgramBuilder};

use crate::util::{counted_loop, Scale};

/// Builds the benchmark.
pub fn build(scale: Scale) -> Program {
    let cells = (scale.bytes(98_304) / 8) as i64;
    let steps = scale.iters(16);

    let mut p = ProgramBuilder::new("wrf");
    let temp = p.global("temperature", cells as u64 * 8 + 64);
    let wind = p.global("wind", cells as u64 * 8 + 64);
    let moist = p.global("moisture", cells as u64 * 8 + 64);

    // advect(base): wind-driven upwind update of temperature, strip of 8.
    let mut f = p.function("advect", 1);
    let base = f.param(0);
    let dt = f.fp_const(0.05);
    counted_loop(&mut f, 8, |f, k| {
        let cell = f.alu(AluOp::Add, base, k);
        let off = f.alu(AluOp::Shl, cell, 3);
        let t0 = f.load_global(temp, off);
        let off_next = f.alu(AluOp::Add, off, 8);
        let t1 = f.load_global(temp, off_next);
        let w = f.load_global(wind, off);
        let grad = f.alu(AluOp::FSub, t1, t0);
        let flux = f.alu(AluOp::FMul, w, grad);
        let d = f.alu(AluOp::FMul, flux, dt);
        let nt = f.alu(AluOp::FAdd, t0, d);
        f.store_global(temp, off, nt);
    });
    f.ret(None);
    let advect = p.add_function(f);

    // diffuse(base): 3-point moisture diffusion, strip of 8.
    let mut f = p.function("diffuse", 1);
    let base = f.param(0);
    let kappa = f.fp_const(0.125);
    counted_loop(&mut f, 8, |f, k| {
        let cell = f.alu(AluOp::Add, base, k);
        let off = f.alu(AluOp::Shl, cell, 3);
        let m0 = f.load_global(moist, off);
        let offn = f.alu(AluOp::Add, off, 8);
        let m1 = f.load_global(moist, offn);
        let sum = f.alu(AluOp::FAdd, m0, m1);
        let avg = f.alu(AluOp::FMul, sum, kappa);
        f.store_global(moist, off, avg);
    });
    f.ret(None);
    let diffuse = p.add_function(f);

    // couple(base): moisture feeds back into wind, strip of 8.
    let mut f = p.function("couple", 1);
    let base = f.param(0);
    let gamma = f.fp_const(0.9);
    counted_loop(&mut f, 8, |f, k| {
        let cell = f.alu(AluOp::Add, base, k);
        let off = f.alu(AluOp::Shl, cell, 3);
        let w = f.load_global(wind, off);
        let m0 = f.load_global(moist, off);
        let damped = f.alu(AluOp::FMul, w, gamma);
        let nw = f.alu(AluOp::FAdd, damped, m0);
        f.store_global(wind, off, nw);
    });
    f.ret(None);
    let couple = p.add_function(f);

    // main: initialize fields, run the coupled timestep loop.
    let mut m = p.function("main", 0);
    let t_init = m.fp_const(288.0);
    let w_init = m.fp_const(3.5);
    let m_init = m.fp_const(0.6);
    counted_loop(&mut m, cells, |f, i| {
        let off = f.alu(AluOp::Shl, i, 3);
        f.store_global(temp, off, t_init);
        f.store_global(wind, off, w_init);
        f.store_global(moist, off, m_init);
    });
    let strips = cells / 8 - 1;
    counted_loop(&mut m, steps, |f, _t| {
        counted_loop(f, strips, |f, s| {
            let base = f.alu(AluOp::Shl, s, 3);
            f.call_void(advect, vec![base.into()]);
        });
        counted_loop(f, strips, |f, s| {
            let base = f.alu(AluOp::Shl, s, 3);
            f.call_void(diffuse, vec![base.into()]);
        });
        counted_loop(f, strips, |f, s| {
            let base = f.alu(AluOp::Shl, s, 3);
            f.call_void(couple, vec![base.into()]);
        });
    });
    let sample = m.load_global(temp, 1024);
    let out = m.alu(AluOp::Shr, sample, 36);
    m.ret(Some(out.into()));
    let main = p.add_function(m);
    p.finish(main).expect("wrf generates valid IR")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sz_machine::MachineConfig;
    use sz_vm::{RunLimits, SimpleLayout, Vm};

    #[test]
    fn multi_field_stencil_profile() {
        let prog = build(Scale::Tiny);
        let mut e = SimpleLayout::new();
        let r = Vm::new(&prog)
            .run(&mut e, MachineConfig::tiny(), RunLimits::default())
            .unwrap();
        assert!(
            r.counters.l1d_misses > 20,
            "three streamed fields must miss"
        );
        assert!(
            r.counters.mispredict_rate() < 0.2,
            "stencil branches are regular"
        );
    }
}
