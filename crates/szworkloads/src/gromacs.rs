//! `gromacs` — molecular dynamics: reciprocal-power force kernels,
//! floating-point heavy with regular array access (SPEC 435.gromacs's
//! character).

use sz_ir::{AluOp, Operand, Program, ProgramBuilder};

use crate::util::{counted_loop, Scale};

/// Builds the benchmark.
pub fn build(scale: Scale) -> Program {
    let particles = scale.iters(512);
    let steps = scale.iters(24);

    let mut p = ProgramBuilder::new("gromacs");
    let xs = p.global("pos_x", particles as u64 * 8);
    let ys = p.global("pos_y", particles as u64 * 8);
    let fs = p.global("force", particles as u64 * 8);

    // lj_force(i, j): Lennard-Jones-flavoured 1/r^6, 1/r^12 kernel.
    let mut f = p.function("lj_force", 2);
    let i = f.param(0);
    let j = f.param(1);
    let io = f.alu(AluOp::Shl, i, 3);
    let jo = f.alu(AluOp::Shl, j, 3);
    let xi = f.load_global(xs, io);
    let xj = f.load_global(xs, jo);
    let yi = f.load_global(ys, io);
    let yj = f.load_global(ys, jo);
    let dx = f.alu(AluOp::FSub, xi, xj);
    let dy = f.alu(AluOp::FSub, yi, yj);
    let dx2 = f.alu(AluOp::FMul, dx, dx);
    let dy2 = f.alu(AluOp::FMul, dy, dy);
    let r2pre = f.alu(AluOp::FAdd, dx2, dy2);
    let eps = f.fp_const(0.03125);
    let r2 = f.alu(AluOp::FAdd, r2pre, eps); // softening avoids /0
    let one = f.fp_const(1.0);
    let inv = f.alu(AluOp::FDiv, one, r2);
    let inv2 = f.alu(AluOp::FMul, inv, inv);
    let inv6 = f.alu(AluOp::FMul, inv2, inv2);
    let rep = f.alu(AluOp::FMul, inv6, inv6);
    let force = f.alu(AluOp::FSub, rep, inv6);
    f.ret(Some(force.into()));
    let lj_force = p.add_function(f);

    // main: initialize positions, run neighbor-window force sweeps.
    let mut m = p.function("main", 0);
    let spacing = m.fp_const(0.7);
    counted_loop(&mut m, particles, |f, i| {
        let off = f.alu(AluOp::Shl, i, 3);
        let fi = f.int_to_fp(i);
        let x = f.alu(AluOp::FMul, fi, spacing);
        f.store_global(xs, off, x);
        let jig = f.alu(AluOp::Rem, i, 17);
        let fj = f.int_to_fp(jig);
        let y = f.alu(AluOp::FMul, fj, spacing);
        f.store_global(ys, off, y);
    });
    counted_loop(&mut m, steps, |f, _t| {
        counted_loop(f, particles - 8, |f, i| {
            let io = f.alu(AluOp::Shl, i, 3);
            let facc = f.load_global(fs, io);
            let total = f.reg();
            f.alu_into(total, AluOp::Add, facc, 0);
            // 8-neighbour window.
            counted_loop(f, 8, |f, k| {
                let j = f.alu(AluOp::Add, i, k);
                let jj = f.alu(AluOp::Add, j, 1);
                let fv = f.call(lj_force, vec![Operand::Reg(i), Operand::Reg(jj)]);
                f.alu_into(total, AluOp::FAdd, total, fv);
            });
            f.store_global(fs, io, total);
        });
    });
    let mid = (particles / 2) * 8;
    let out = m.load_global(fs, mid);
    let sum = m.alu(AluOp::Shr, out, 30);
    m.ret(Some(sum.into()));
    let main = p.add_function(m);
    p.finish(main).expect("gromacs generates valid IR")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sz_machine::MachineConfig;
    use sz_vm::{RunLimits, SimpleLayout, Vm};

    #[test]
    fn floating_point_dominates() {
        let prog = build(Scale::Tiny);
        let mut e = SimpleLayout::new();
        let r = Vm::new(&prog)
            .run(&mut e, MachineConfig::tiny(), RunLimits::default())
            .unwrap();
        // FDiv/FMul latency should push CPI well above integer code.
        assert!(r.counters.cpi() > 2.0, "CPI {}", r.counters.cpi());
    }
}
