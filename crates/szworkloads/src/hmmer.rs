//! `hmmer` — profile hidden-Markov-model search: three-matrix dynamic
//! programming with branchy three-way maxima (SPEC 456.hmmer's
//! character; the paper notes its alignment-sensitive floating point).

use sz_ir::{AluOp, Operand, Program, ProgramBuilder};

use crate::util::{counted_loop, lcg_next, lcg_seed, Scale};

/// Builds the benchmark.
pub fn build(scale: Scale) -> Program {
    let model_len = scale.iters(128);
    let seq_len = scale.iters(160);

    let mut p = ProgramBuilder::new("hmmer");
    let m_row = p.global("match_row", model_len as u64 * 8 + 16);
    let i_row = p.global("insert_row", model_len as u64 * 8 + 16);
    let d_row = p.global("delete_row", model_len as u64 * 8 + 16);
    let emissions = p.global("emissions", 256 * 8);

    // cell(j, emit): the Viterbi cell update — a three-way max of the
    // match/insert/delete paths, each a load plus an add.
    let mut f = p.function("cell", 2);
    let j = f.param(0);
    let emit = f.param(1);
    let jo = f.alu(AluOp::Shl, j, 3);
    let mprev = f.load_global(m_row, jo);
    let iprev = f.load_global(i_row, jo);
    let dprev = f.load_global(d_row, jo);
    let mpath = f.alu(AluOp::Add, mprev, emit);
    let ipath = f.alu(AluOp::Add, iprev, 3);
    let dpath = f.alu(AluOp::Add, dprev, 7);
    // max(mpath, ipath, dpath) with branches (data-dependent).
    let best = f.reg();
    f.alu_into(best, AluOp::Add, mpath, 0);
    let c1 = f.alu(AluOp::CmpLt, best, ipath);
    let t1 = f.new_block();
    let n1 = f.new_block();
    f.branch(c1, t1, n1);
    f.switch_to(t1);
    f.alu_into(best, AluOp::Add, ipath, 0);
    f.jump(n1);
    f.switch_to(n1);
    let c2 = f.alu(AluOp::CmpLt, best, dpath);
    let t2 = f.new_block();
    let n2 = f.new_block();
    f.branch(c2, t2, n2);
    f.switch_to(t2);
    f.alu_into(best, AluOp::Add, dpath, 0);
    f.jump(n2);
    f.switch_to(n2);
    // Write back the new row values (next j+1 column reads them).
    let jn = f.alu(AluOp::Add, jo, 8);
    f.store_global(m_row, jn, best);
    let ins = f.alu(AluOp::Shr, best, 1);
    f.store_global(i_row, jn, ins);
    let del = f.alu(AluOp::Shr, best, 2);
    f.store_global(d_row, jn, del);
    f.ret(Some(best.into()));
    let cell = p.add_function(f);

    // main: random sequence against the model, full DP sweep.
    let mut m = p.function("main", 0);
    let rng = lcg_seed(&mut m, 0x4333);
    counted_loop(&mut m, 256, |f, i| {
        let off = f.alu(AluOp::Shl, i, 3);
        let r = lcg_next(f, rng);
        let e = f.alu(AluOp::And, r, 31);
        f.store_global(emissions, off, e);
    });
    let score = m.reg();
    m.alu_into(score, AluOp::Add, 0, 0);
    counted_loop(&mut m, seq_len, |f, _si| {
        let r = lcg_next(f, rng);
        let sym = f.alu(AluOp::And, r, 255);
        let so = f.alu(AluOp::Shl, sym, 3);
        let emit = f.load_global(emissions, so);
        counted_loop(f, model_len, |f, j| {
            let v = f.call(cell, vec![Operand::Reg(j), Operand::Reg(emit)]);
            f.alu_into(score, AluOp::Xor, score, v);
        });
    });
    m.ret(Some(score.into()));
    let main = p.add_function(m);
    p.finish(main).expect("hmmer generates valid IR")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sz_machine::MachineConfig;
    use sz_vm::{RunLimits, SimpleLayout, Vm};

    #[test]
    fn dp_inner_loop_dominates() {
        let prog = build(Scale::Tiny);
        let mut e = SimpleLayout::new();
        let r = Vm::new(&prog)
            .run(&mut e, MachineConfig::tiny(), RunLimits::default())
            .unwrap();
        // Rows stay resident: high load count, decent hit rate.
        assert!(r.counters.branches > 200);
        assert!(r.instructions > 5_000);
    }
}
