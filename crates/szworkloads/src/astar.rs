//! `astar` — grid pathfinding: pointer-linked node traversal with
//! data-dependent branches (SPEC 473.astar's character).

use sz_ir::{AluOp, Program, ProgramBuilder};

use crate::util::{counted_loop, lcg_next, lcg_seed, Scale};

/// Builds the benchmark.
pub fn build(scale: Scale) -> Program {
    let nodes = scale.iters(256);
    let steps = scale.iters(6_000);

    let mut p = ProgramBuilder::new("astar");
    // Pointer table for the node graph.
    let node_table = p.global("node_table", (nodes as u64) * 8);
    // Terrain cost field.
    let grid = p.global("grid", scale.bytes(16_384));

    // heuristic(dx, dy): |dx| + |dy| in branchless-ish arithmetic.
    let mut h = p.function("heuristic", 2);
    let dx = h.param(0);
    let dy = h.param(1);
    // abs(x) for our unsigned values: min(x, -x) by comparison.
    let ndx = h.alu(AluOp::Sub, 0, dx);
    let c1 = h.alu(AluOp::CmpLt, dx, ndx);
    let sel1 = h.alu(AluOp::Mul, c1, dx);
    let nc1 = h.alu(AluOp::CmpEq, c1, 0);
    let sel2 = h.alu(AluOp::Mul, nc1, ndx);
    let ax = h.alu(AluOp::Add, sel1, sel2);
    let out = h.alu(AluOp::Add, ax, dy);
    h.ret(Some(out.into()));
    let heuristic = p.add_function(h);

    // visit(node): load f-cost and position, fold in terrain cost.
    let mut v = p.function("visit", 1);
    let node = v.param(0);
    let fcost = v.load_ptr(node, 0);
    let pos = v.load_ptr(node, 8);
    let off = v.alu(AluOp::And, pos, (scale.bytes(16_384) - 8) as i64 & !7);
    let terrain = v.load_global(grid, off);
    let sum = v.alu(AluOp::Add, fcost, terrain);
    v.ret(Some(sum.into()));
    let visit = p.add_function(v);

    // main: build the node graph on the heap, then search.
    let mut m = p.function("main", 0);
    let rng = lcg_seed(&mut m, 0xA57A);
    // Allocation phase: one 32-byte node per slot.
    counted_loop(&mut m, nodes, |f, i| {
        let node = f.malloc(32);
        let idx = f.alu(AluOp::Shl, i, 3);
        f.store_global(node_table, idx, node);
        let r = lcg_next(f, rng);
        f.store_ptr(node, 0, r); // f-cost
        f.store_ptr(node, 8, i); // position
    });
    // Linking phase: node[i].next = node[(i * 7 + 3) % nodes] — a long
    // pseudo-random cycle, so traversal hops around the heap.
    counted_loop(&mut m, nodes, |f, i| {
        let idx = f.alu(AluOp::Shl, i, 3);
        let node = f.load_global(node_table, idx);
        let j7 = f.alu(AluOp::Mul, i, 7);
        let j = f.alu(AluOp::Add, j7, 3);
        let jm = f.alu(AluOp::Rem, j, nodes);
        let jidx = f.alu(AluOp::Shl, jm, 3);
        let next = f.load_global(node_table, jidx);
        f.store_ptr(node, 16, next);
    });
    // Search phase: walk the list, scoring each node; branch on the
    // score's parity (data-dependent).
    let acc = m.reg();
    m.alu_into(acc, AluOp::Add, 0, 0);
    let cur = m.load_global(node_table, 0);
    counted_loop(&mut m, steps, |f, i| {
        let score = f.call(visit, vec![cur.into()]);
        let hx = f.alu(AluOp::And, score, 63);
        let hv = f.call(heuristic, vec![hx.into(), i.into()]);
        let odd = f.alu(AluOp::And, score, 1);
        let then_b = f.new_block();
        let else_b = f.new_block();
        let done = f.new_block();
        f.branch(odd, then_b, else_b);
        f.switch_to(then_b);
        f.alu_into(acc, AluOp::Add, acc, hv);
        f.jump(done);
        f.switch_to(else_b);
        f.alu_into(acc, AluOp::Xor, acc, score);
        f.jump(done);
        f.switch_to(done);
        let next = f.load_ptr(cur, 16);
        f.alu_into(cur, AluOp::Add, next, 0);
    });
    m.ret(Some(acc.into()));
    let main = p.add_function(m);
    p.finish(main).expect("astar generates valid IR")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sz_machine::MachineConfig;
    use sz_vm::{RunLimits, SimpleLayout, Vm};

    #[test]
    fn pointer_chasing_dominates() {
        let prog = build(Scale::Tiny);
        let mut e = SimpleLayout::new();
        let r = Vm::new(&prog)
            .run(&mut e, MachineConfig::tiny(), RunLimits::default())
            .unwrap();
        // Characteristic: plenty of branches AND loads.
        assert!(r.counters.branches > 100);
        assert!(r.counters.l1d_misses > 10, "graph walk must miss");
    }
}
